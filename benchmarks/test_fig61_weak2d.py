"""Figure 6.1: 2D Jacobi weak scaling, small/medium/large domains.

Paper headlines at 8 GPUs (±: see EXPERIMENTS.md for the measured
values and deviations):

- small:  +41.6% over Baseline NVSHMEM, +96.2% over Copy/Overlap
- medium: +48.2% over Baseline NVSHMEM, +95.7% over Copy/Overlap
- large:  CPU-Free degrades below the baselines (co-residency tiling),
          PERKS +18.8% over the best baseline with ~9% weak-scaling
          dropoff.
"""

import pytest

from repro.bench import fig61_weak_2d, render_figure


@pytest.mark.parametrize("size", ["small", "medium", "large"])
def test_fig61_weak_scaling(run_once, benchmark, size):
    fig = run_once(fig61_weak_2d, size)
    print("\n" + render_figure(fig))
    benchmark.extra_info.update(fig.headlines)

    if size in ("small", "medium"):
        # CPU-free beats every baseline, by tens of percent over the
        # best (NVSHMEM) and >90% over the CPU-controlled ones
        assert 20.0 < fig.headlines["speedup_vs_nvshmem_%"] < 70.0
        assert fig.headlines["speedup_vs_copy_%"] > 90.0
        assert fig.headlines["speedup_vs_overlap_%"] > 90.0
    else:
        # large domains: the co-residency tiling penalty flips the sign
        assert fig.headlines["speedup_vs_nvshmem_%"] < 0.0
        # ... and PERKS' tiling + caching recovers the win (paper 18.8%)
        assert 10.0 < fig.headlines["perks_vs_best_baseline_%"] < 35.0


def test_fig61_baselines_degrade_with_gpu_count(run_once):
    fig = run_once(fig61_weak_2d, "small")
    for variant in ("baseline_copy", "baseline_overlap"):
        t2 = fig.at(variant, 2).per_iteration_us
        t8 = fig.at(variant, 8).per_iteration_us
        assert t8 > 3 * t2, variant
    # CPU-free weak scaling is flat
    assert fig.at("cpufree", 8).per_iteration_us < 1.2 * fig.at("cpufree", 2).per_iteration_us


def test_fig61_ordering_matches_paper(run_once):
    """At 8 GPUs, small domain: cpufree < nvshmem < p2p < copy < overlap."""
    fig = run_once(fig61_weak_2d, "small")
    t = {v: fig.at(v, 8).per_iteration_us
         for v in ("cpufree", "baseline_nvshmem", "baseline_p2p",
                   "baseline_copy", "baseline_overlap")}
    assert (t["cpufree"] < t["baseline_nvshmem"] < t["baseline_p2p"]
            < t["baseline_copy"] < t["baseline_overlap"])
