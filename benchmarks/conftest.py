"""Shared benchmark configuration.

Every benchmark runs a deterministic simulator sweep exactly once
(`rounds=1`): the *simulated* microseconds are the measurement — they
are attached to ``benchmark.extra_info`` and printed as paper-style
tables — while pytest-benchmark's wall-clock column merely tracks
harness cost.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` once under pytest-benchmark and return its result."""

    def runner(fn, *args, **kwargs):
        box = {}

        def call():
            box["result"] = fn(*args, **kwargs)

        benchmark.pedantic(call, rounds=1, iterations=1)
        return box["result"]

    return runner
