"""Ablation: the §4.1.2 closed-form TB split vs empirical autotuning.

If the paper's formula is right, an exhaustive search over boundary
block counts should find (nearly) the same split.  The autotuner
(`repro.core.autotune_tb_split`) runs the search on the simulator.
"""

from repro.core import autotune_tb_split
from repro.stencil import StencilConfig


def test_formula_near_optimal_across_regimes(run_once, benchmark):
    def experiment():
        regimes = {
            "balanced_2d": StencilConfig(
                global_shape=(2048 + 2, 2048 + 2), num_gpus=8,
                iterations=15, with_data=False),
            "unbalanced_3d": StencilConfig(
                global_shape=(4 * 8 + 2, 1024 + 2, 1024 + 2), num_gpus=8,
                iterations=15, with_data=False),
            "small_2d": StencilConfig(
                global_shape=(8 * 32 + 2, 256 + 2), num_gpus=8,
                iterations=15, with_data=False),
        }
        return {name: autotune_tb_split(cfg, iterations=15)
                for name, cfg in regimes.items()}

    reports = run_once(experiment)
    print(f"\n{'regime':>15} {'formula':>8} {'best':>6} {'regret':>8}")
    for name, report in reports.items():
        print(f"{name:>15} {report.formula.boundary_tb_per_side:>8} "
              f"{report.best.boundary_tb_per_side:>6} "
              f"{report.formula_regret_percent:>7.1f}%")
        benchmark.extra_info[f"{name}_regret_%"] = report.formula_regret_percent
    # the closed form stays within 25% of the empirical optimum everywhere
    assert all(r.formula_regret_percent < 25.0 for r in reports.values())
