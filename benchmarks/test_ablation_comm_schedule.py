"""Ablations §5.3.2/§5.4: communication scheduling in generated code.

1. Issuing-scope: the generated code schedules puts from a single
   thread (THREAD scope), which cannot saturate NVLink; the paper's
   future work is block-cooperative scheduling (BLOCK scope).  The
   ablation quantifies the headroom the §5.4 limitation leaves.
2. Barrier relaxation (§5.1): grid syncs limited to subgraph edges vs
   the conservative barrier-after-every-state schedule.
"""

import numpy as np

from repro.hw import HGX_A100_8GPU
from repro.nvshmem.device import Scope
from repro.runtime import MultiGPUContext
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.distributed import SlabDecomposition1D
from repro.sdfg.programs import (
    CONJUGATES_1D,
    build_jacobi_1d_sdfg,
    cpufree_pipeline,
)
from repro.sdfg.transforms import (
    gpu_persistent_kernel,
    gpu_transform,
    mpi_to_nvshmem,
    nvshmem_array,
)
from repro.sim import Tracer


def run_1d_generated(ranks=8, per_gpu=1_000_000, tsteps=11, *,
                     comm_scope=Scope.THREAD, relax_barriers=True):
    n_global = per_gpu * ranks
    decomp = SlabDecomposition1D(n_global, ranks)
    args = decomp.rank_args(np.zeros(n_global + 2), tsteps)
    args = [{k: v for k, v in a.items() if k not in ("A", "B")} for a in args]
    sdfg = build_jacobi_1d_sdfg()
    gpu_transform(sdfg)
    mpi_to_nvshmem(sdfg, CONJUGATES_1D)
    nvshmem_array(sdfg)
    gpu_persistent_kernel(sdfg, relax_barriers=relax_barriers)
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
    executor = SDFGExecutor(sdfg, ctx, with_data=False, comm_scope=comm_scope)
    return executor.run(args)


def test_block_scope_leaves_headroom_over_thread_scope(run_once, benchmark):
    """§5.4: cooperative block-scope puts (unsupported in generated
    code) would improve on the single-thread scheduling for larger
    transfers; for 1D's single elements the effect is small."""

    def experiment():
        thread = run_1d_generated(comm_scope=Scope.THREAD)
        block = run_1d_generated(comm_scope=Scope.BLOCK)
        return thread, block

    thread, block = run_once(experiment)
    print(f"\nthread-scope={thread.per_iteration_us:.1f}us/iter "
          f"block-scope={block.per_iteration_us:.1f}us/iter")
    benchmark.extra_info["thread_scope_us"] = thread.per_iteration_us
    benchmark.extra_info["block_scope_us"] = block.per_iteration_us
    assert block.total_time_us <= thread.total_time_us * 1.001


def test_relaxed_barriers_beat_conservative(run_once, benchmark):
    """§5.1: limiting grid syncs to subgraph edges reduces the
    persistent kernel's per-iteration synchronization cost."""

    def experiment():
        relaxed = run_1d_generated(relax_barriers=True)
        conservative = run_1d_generated(relax_barriers=False)
        return relaxed, conservative

    relaxed, conservative = run_once(experiment)
    improvement = (conservative.total_time_us - relaxed.total_time_us) \
        / conservative.total_time_us * 100
    print(f"\nrelaxed={relaxed.per_iteration_us:.1f}us/iter "
          f"conservative={conservative.per_iteration_us:.1f}us/iter "
          f"improvement={improvement:.1f}%")
    benchmark.extra_info["barrier_relaxation_improvement_%"] = improvement
    assert improvement > 1.0
