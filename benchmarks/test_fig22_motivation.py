"""Figure 2.2: the motivation experiment.

(a) pure communication + synchronization overhead with no computation
    on 2-8 GPUs: the CPU-controlled overlapping baseline's overhead
    grows steeply with GPU count while CPU-Free stays flat and small;
(b) at 8 GPUs on the small domain, communication consumes ~96% of the
    baseline's execution time with little of it overlapped, while the
    CPU-Free version hides almost all of it.
"""

from repro.bench import fig22_motivation, render_figure


def test_fig22a_pure_comm_overhead(run_once):
    fig_a, _ = run_once(fig22_motivation)
    print("\n" + render_figure(fig_a))
    overlap_2 = fig_a.at("baseline_overlap", 2).per_iteration_us
    overlap_8 = fig_a.at("baseline_overlap", 8).per_iteration_us
    cpufree_2 = fig_a.at("cpufree", 2).per_iteration_us
    cpufree_8 = fig_a.at("cpufree", 8).per_iteration_us
    # baseline overhead grows steeply with GPUs; CPU-free stays flat
    assert overlap_8 > 3 * overlap_2
    assert cpufree_8 < 1.5 * cpufree_2
    # and the gap at 8 GPUs is an order of magnitude
    assert overlap_8 > 10 * cpufree_8


def test_fig22b_comm_fraction_and_overlap(run_once, benchmark):
    _, fig_b = run_once(fig22_motivation)
    print("\n" + render_figure(fig_b))
    benchmark.extra_info.update(fig_b.headlines)
    # paper: communication takes ~96% of baseline execution time
    assert fig_b.headlines["baseline_overlap_comm_fraction"] > 0.9
    # paper: CPU-free's total is almost pure overhead-free execution;
    # its residual comm path is tiny in absolute terms
    base = fig_b.at("baseline_overlap", 8)
    free = fig_b.at("cpufree", 8)
    assert free.comm_us_per_iter < 0.1 * base.comm_us_per_iter
