"""Perf smoke benchmarks for the engine and transport hot paths.

Unlike the figure benchmarks (which measure *simulated* microseconds),
these measure the *host* throughput of the hot loops the fast paths
target: simulator events per wall-clock second, executor stencil cells
per wall-clock second, and the event savings of transport coalescing.
Everything lands in ``benchmark.extra_info`` so trajectories can be
tracked across PRs (baseline numbers in BENCH_PR1.json; calendar-queue
scheduler + coalescing numbers in BENCH_PR5.json).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_engine.py -q
"""

import time

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime, SignalOp
from repro.runtime import MultiGPUContext
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.distributed import SlabDecomposition1D
from repro.sdfg.programs import CONJUGATES_1D, build_jacobi_1d_sdfg, cpufree_pipeline
from repro.sim import Delay, Flag, Simulator, Tracer, WaitFlag


def _engine_workload(n_chains: int = 200, hops: int = 50, *,
                     indexed: bool = False) -> tuple[float, int]:
    """Signal-chain workload: stresses the heap, the zero-delay ready
    queue, and flag waits.  ``indexed=True`` expresses the waits as
    structured ``ge=`` conditions (the calendar-queue scheduler's
    indexed wakeup path); ``False`` keeps opaque predicates (the
    legacy scan path).  Returns (wall seconds, events processed)."""
    sim = Simulator()
    flags = [Flag(sim, 0, name=f"f{i}") for i in range(n_chains)]

    def pinger(i):
        for hop in range(1, hops + 1):
            yield Delay(0.1 * (i % 7))
            flags[i].set(hop)
            if indexed:
                yield WaitFlag(flags[(i + 1) % n_chains], ge=hop)
            else:
                yield WaitFlag(flags[(i + 1) % n_chains], lambda v, h=hop: v >= h)

    for i in range(n_chains):
        sim.spawn(pinger(i), name=f"p{i}")
    events = n_chains * hops * 2  # delays + flag wakeups, lower bound
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, events


def _halo_burst(coalesce: bool, pes: int = 4, blocks: int = 8,
                rounds: int = 100) -> tuple[float, "NVSHMEMRuntime"]:
    """Neighbor halo exchange: on each PE, ``blocks`` concurrent lanes
    (thread-block groups) each put one same-size halo segment to the
    ring neighbor per round.  Lanes on one PE issue in lock-step, so
    their delivery legs share a ``(src, dst, arrival)`` slot — the
    pattern transport coalescing batches.  Returns (wall seconds,
    runtime)."""
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(pes), coalesce_comm=coalesce)
    rt = NVSHMEMRuntime(ctx)
    arr = rt.malloc("halo", (64 * blocks,), fill=0.0)
    sig = rt.malloc_signals("sig", pes)

    def lane(pe, k):
        dev = rt.device(pe)
        dst = (pe + 1) % pes
        for _ in range(rounds):
            yield from dev.putmem_signal_nbi(
                arr, slice(64 * k, 64 * (k + 1)), np.full(64, 1.0),
                sig, pe, 1, dest_pe=dst, sig_op=SignalOp.ADD)
            yield Delay(5.0)
        yield from dev.quiet()

    for pe in range(pes):
        for k in range(blocks):
            ctx.sim.spawn(lane(pe, k), name=f"pe{pe}.b{k}")
    started = time.perf_counter()
    ctx.run()
    return time.perf_counter() - started, rt


def _executor_workload(n_global: int = 60_000, ranks: int = 2,
                       tsteps: int = 12) -> tuple[float, int]:
    """Full CPU-Free 1D Jacobi with real data; returns (wall seconds,
    stencil cells updated)."""
    rng = np.random.default_rng(3)
    u0 = rng.random(n_global + 2)
    decomp = SlabDecomposition1D(n_global, ranks)
    sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
    args = decomp.rank_args(u0, tsteps)
    started = time.perf_counter()
    SDFGExecutor(sdfg, ctx).run(args)
    elapsed = time.perf_counter() - started
    # two relaxation phases per iteration over the global interior
    cells = 2 * (tsteps - 1) * n_global
    return elapsed, cells


class TestEngineThroughput:
    def test_events_per_second(self, benchmark):
        box = {}

        def run():
            box["wall"], box["events"] = _engine_workload()

        benchmark.pedantic(run, rounds=1, iterations=1)
        rate = box["events"] / box["wall"]
        benchmark.extra_info["events_per_sec"] = round(rate)
        benchmark.extra_info["events"] = box["events"]
        # the pre-calendar-queue engine sustained ~320k events/s on this
        # workload shape, the bucketed scheduler >700k; loose floor so
        # CI noise cannot flake the smoke test
        assert rate > 50_000

    def test_events_per_second_indexed_waits(self, benchmark):
        """Same chain workload with structured ``ge=`` waits: the
        scheduler wakes exactly the eligible waiters from the flag's
        threshold index instead of scanning predicates."""
        box = {}

        def run():
            box["wall"], box["events"] = _engine_workload(indexed=True)

        benchmark.pedantic(run, rounds=1, iterations=1)
        rate = box["events"] / box["wall"]
        benchmark.extra_info["events_per_sec"] = round(rate)
        benchmark.extra_info["events"] = box["events"]
        assert rate > 50_000


class TestTransportCoalescing:
    def test_batched_vs_per_leg(self, benchmark):
        """Wall time and engine-event savings of merging same-route
        same-arrival delivery legs into one batched event.  Equivalence
        of everything observable is asserted property-style in
        tests/properties/test_coalesce_properties.py; this records the
        trajectory numbers."""
        box = {}

        def run():
            box["wall_on"], box["rt_on"] = _halo_burst(True)
            box["wall_off"], box["rt_off"] = _halo_burst(False)

        benchmark.pedantic(run, rounds=1, iterations=1)
        rt_on, rt_off = box["rt_on"], box["rt_off"]
        benchmark.extra_info["wall_coalesced_s"] = round(box["wall_on"], 4)
        benchmark.extra_info["wall_per_leg_s"] = round(box["wall_off"], 4)
        benchmark.extra_info["batches"] = rt_on.n_batches
        benchmark.extra_info["coalesced_legs"] = rt_on.n_coalesced_legs
        # per-leg mode never batches; coalesced mode merges every leg
        assert rt_off.n_batches == 0 and rt_off.n_coalesced_legs == 0
        assert 0 < rt_on.n_batches < rt_on.n_coalesced_legs


class TestExecutorThroughput:
    def test_cells_per_second(self, benchmark):
        box = {}

        def run():
            box["wall"], box["cells"] = _executor_workload()

        benchmark.pedantic(run, rounds=1, iterations=1)
        rate = box["cells"] / box["wall"]
        benchmark.extra_info["cells_per_sec"] = round(rate)
        benchmark.extra_info["cells"] = box["cells"]
        # vectorized maps sustain well over 10M cells/s; the scalar
        # per-eval seed managed far less on large domains
        assert rate > 1_000_000

    @pytest.mark.parametrize("mode", ["vector", "scalar"])
    def test_modes_agree_while_timed(self, benchmark, mode):
        """Throughput of each mode on a small domain, recorded for the
        trajectory; correctness equivalence is asserted in
        tests/sdfg/test_fastpath.py."""
        rng = np.random.default_rng(4)
        n_global, ranks, tsteps = 2_000, 2, 6
        u0 = rng.random(n_global + 2)
        decomp = SlabDecomposition1D(n_global, ranks)
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
        args = decomp.rank_args(u0, tsteps)
        box = {}

        def run():
            started = time.perf_counter()
            SDFGExecutor(sdfg, ctx, fastpath=mode).run(args)
            box["wall"] = time.perf_counter() - started

        benchmark.pedantic(run, rounds=1, iterations=1)
        cells = 2 * (tsteps - 1) * n_global
        benchmark.extra_info["cells_per_sec"] = round(cells / box["wall"])
        benchmark.extra_info["mode"] = mode
