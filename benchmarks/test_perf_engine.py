"""Perf smoke benchmarks for the fast-path execution layer (PR 1).

Unlike the figure benchmarks (which measure *simulated* microseconds),
these measure the *host* throughput of the two hot loops the fast
paths target: simulator events per wall-clock second and executor
stencil cells per wall-clock second.  Both land in
``benchmark.extra_info`` so trajectories can be tracked across PRs
(baseline numbers in BENCH_PR1.json).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_engine.py -q
"""

import time

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.distributed import SlabDecomposition1D
from repro.sdfg.programs import CONJUGATES_1D, build_jacobi_1d_sdfg, cpufree_pipeline
from repro.sim import Delay, Flag, Simulator, Tracer, WaitFlag


def _engine_workload(n_chains: int = 200, hops: int = 50) -> tuple[float, int]:
    """Signal-chain workload: stresses the heap, the zero-delay ready
    queue, and flag waits.  Returns (wall seconds, events processed)."""
    sim = Simulator()
    flags = [Flag(sim, 0, name=f"f{i}") for i in range(n_chains)]

    def pinger(i):
        for hop in range(1, hops + 1):
            yield Delay(0.1 * (i % 7))
            flags[i].set(hop)
            yield WaitFlag(flags[(i + 1) % n_chains], lambda v, h=hop: v >= h)

    for i in range(n_chains):
        sim.spawn(pinger(i), name=f"p{i}")
    events = n_chains * hops * 2  # delays + flag wakeups, lower bound
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, events


def _executor_workload(n_global: int = 60_000, ranks: int = 2,
                       tsteps: int = 12) -> tuple[float, int]:
    """Full CPU-Free 1D Jacobi with real data; returns (wall seconds,
    stencil cells updated)."""
    rng = np.random.default_rng(3)
    u0 = rng.random(n_global + 2)
    decomp = SlabDecomposition1D(n_global, ranks)
    sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
    args = decomp.rank_args(u0, tsteps)
    started = time.perf_counter()
    SDFGExecutor(sdfg, ctx).run(args)
    elapsed = time.perf_counter() - started
    # two relaxation phases per iteration over the global interior
    cells = 2 * (tsteps - 1) * n_global
    return elapsed, cells


class TestEngineThroughput:
    def test_events_per_second(self, benchmark):
        box = {}

        def run():
            box["wall"], box["events"] = _engine_workload()

        benchmark.pedantic(run, rounds=1, iterations=1)
        rate = box["events"] / box["wall"]
        benchmark.extra_info["events_per_sec"] = round(rate)
        benchmark.extra_info["events"] = box["events"]
        # seed engine sustained ~265k events/s on this workload shape;
        # loose floor so CI noise cannot flake the smoke test
        assert rate > 50_000


class TestExecutorThroughput:
    def test_cells_per_second(self, benchmark):
        box = {}

        def run():
            box["wall"], box["cells"] = _executor_workload()

        benchmark.pedantic(run, rounds=1, iterations=1)
        rate = box["cells"] / box["wall"]
        benchmark.extra_info["cells_per_sec"] = round(rate)
        benchmark.extra_info["cells"] = box["cells"]
        # vectorized maps sustain well over 10M cells/s; the scalar
        # per-eval seed managed far less on large domains
        assert rate > 1_000_000

    @pytest.mark.parametrize("mode", ["vector", "scalar"])
    def test_modes_agree_while_timed(self, benchmark, mode):
        """Throughput of each mode on a small domain, recorded for the
        trajectory; correctness equivalence is asserted in
        tests/sdfg/test_fastpath.py."""
        rng = np.random.default_rng(4)
        n_global, ranks, tsteps = 2_000, 2, 6
        u0 = rng.random(n_global + 2)
        decomp = SlabDecomposition1D(n_global, ranks)
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
        args = decomp.rank_args(u0, tsteps)
        box = {}

        def run():
            started = time.perf_counter()
            SDFGExecutor(sdfg, ctx, fastpath=mode).run(args)
            box["wall"] = time.perf_counter() - started

        benchmark.pedantic(run, rounds=1, iterations=1)
        cells = 2 * (tsteps - 1) * n_global
        benchmark.extra_info["cells_per_sec"] = round(cells / box["wall"])
        benchmark.extra_info["mode"] = mode
