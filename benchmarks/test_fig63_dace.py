"""Figure 6.3: compiler-generated CPU-Free code versus the DaCe
distributed (MPI) baseline.

Paper headlines at 8 GPUs: Jacobi 1D +44.5% total / +26.8% comm;
Jacobi 2D +96.8% total with the baseline >99% communication-dominated
and 81.2% CPU-Free weak-scaling efficiency.
"""

from repro.bench import fig63a_dace_1d, fig63b_dace_2d, render_figure


def test_fig63a_jacobi1d(run_once, benchmark):
    fig = run_once(fig63a_dace_1d)
    print("\n" + render_figure(fig))
    benchmark.extra_info.update(fig.headlines)
    # paper: 44.5% total improvement at 8 GPUs
    assert 30.0 < fig.headlines["total_improvement_%"] < 70.0
    # paper: 26.8% communication improvement
    assert fig.headlines["comm_improvement_%"] > 15.0


def test_fig63a_gains_grow_with_gpu_count(run_once):
    fig = run_once(fig63a_dace_1d)
    imp_2 = fig.speedup("dace_cpufree", "dace_baseline", 2)
    imp_8 = fig.speedup("dace_cpufree", "dace_baseline", 8)
    assert imp_8 >= imp_2 > 0.0


def test_fig63b_jacobi2d(run_once, benchmark):
    fig = run_once(fig63b_dace_2d)
    print("\n" + render_figure(fig))
    benchmark.extra_info.update(fig.headlines)
    # paper: 96.8% improvement at 8 GPUs
    assert fig.headlines["total_improvement_%"] > 85.0
    # paper: baseline >99% dominated by communication
    assert fig.headlines["baseline_comm_fraction_%"] > 90.0
    # paper: 81.2% weak-scaling efficiency for generated CPU-Free code
    assert fig.headlines["cpufree_weak_scaling_efficiency_%"] > 55.0


def test_fig63b_rectangular_split_bump(run_once):
    """Paper: the baseline's execution time bumps at 2 and 8 GPUs
    (rectangular tiles with long strided columns); the CPU-Free
    version shows no such inefficiency."""
    fig = run_once(fig63b_dace_2d)
    base = {x: fig.at("dace_baseline", x).per_iteration_us for x in (1, 2, 4, 8)}
    free = {x: fig.at("dace_cpufree", x).per_iteration_us for x in (1, 2, 4, 8)}
    # per-GPU halo work at 2 GPUs exceeds the square 4-GPU split
    assert base[2] > base[4] * 0.9  # rectangular bump (2 vs square 4)
    assert base[8] > base[4]       # and again at 8
    # the CPU-Free version stays comparatively smooth
    assert free[8] < 2.0 * free[4]
