"""Ablation §5.3.2: non-blocking (nbi) vs blocking NVSHMEM expansion.

"In order to ameliorate this [limited intra-kernel overlap], we expand
to nonblocking variants of NVSHMEM memory operations, such as
nvshmem_putmem_nbi() by default in our library nodes."
"""

import numpy as np

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.distributed import GridDecomposition2D
from repro.sdfg.programs import (
    CONJUGATES_2D,
    build_jacobi_2d_sdfg,
    cpufree_pipeline,
)
from repro.sim import Tracer


def run_2d_generated(nbi: bool, ranks: int = 8, tile: int = 1024, tsteps: int = 6):
    gy, gx = tile * 2, tile * 4  # matches the wide 2x4 grid at 8 ranks
    decomp = GridDecomposition2D(gy, gx, ranks)
    args = decomp.rank_args(np.zeros((gy + 2, gx + 2)), tsteps)
    args = [{k: v for k, v in a.items() if k not in ("A", "B")} for a in args]
    sdfg = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D, nbi=nbi)
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
    return SDFGExecutor(sdfg, ctx, with_data=False).run(args)


def test_nbi_default_beats_blocking_puts(run_once, benchmark):
    def experiment():
        return run_2d_generated(nbi=True), run_2d_generated(nbi=False)

    nonblocking, blocking = run_once(experiment)
    improvement = (blocking.total_time_us - nonblocking.total_time_us) \
        / blocking.total_time_us * 100
    print(f"\nnbi={nonblocking.per_iteration_us:.1f}us/iter "
          f"blocking={blocking.per_iteration_us:.1f}us/iter "
          f"improvement={improvement:.1f}%")
    benchmark.extra_info["nbi_improvement_%"] = improvement
    # blocking puts serialize wire time into the single issuing thread
    assert improvement > 2.0


def test_blocking_variant_still_correct():
    """The blocking expansion must produce identical numerics."""
    rng = np.random.default_rng(11)
    gy, gx, ranks, tsteps = 16, 24, 8, 4
    u0 = rng.random((gy + 2, gx + 2))
    decomp = GridDecomposition2D(gy, gx, ranks)

    results = []
    for nbi in (True, False):
        sdfg = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D, nbi=nbi)
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
        report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, tsteps))
        results.append(decomp.gather(report.arrays, u0))
    np.testing.assert_array_equal(results[0], results[1])
