"""Ablation §4: single persistent kernel vs two co-resident kernels.

"We did not observe any significant performance improvement or
degradation from this design compared to the single-stream version."
"""

import pytest

from repro.stencil import StencilConfig, run_variant


@pytest.mark.parametrize("edge", [256, 2048])
def test_coresident_design_is_performance_neutral(run_once, benchmark, edge):
    def experiment():
        shape = ((edge // 8) * 8 + 2, edge + 2)
        config = StencilConfig(global_shape=shape, num_gpus=8,
                               iterations=30, with_data=False)
        single = run_variant("cpufree", config)
        dual = run_variant("cpufree_coresident", config)
        return single, dual

    single, dual = run_once(experiment)
    ratio = dual.total_time_us / single.total_time_us
    print(f"\nsingle={single.per_iteration_us:.2f}us/iter "
          f"coresident={dual.per_iteration_us:.2f}us/iter ratio={ratio:.3f}")
    benchmark.extra_info["coresident_over_single_ratio"] = ratio
    # "no significant improvement or degradation": within ~20% either way
    # (the dual design pays one extra local flag handshake per step)
    assert 0.8 < ratio < 1.35


def test_coresident_still_beats_cpu_controlled_baselines(run_once):
    def experiment():
        shape = (32 * 8 + 2, 258)
        config = StencilConfig(global_shape=shape, num_gpus=8,
                               iterations=30, with_data=False)
        return (run_variant("cpufree_coresident", config),
                run_variant("baseline_overlap", config))

    dual, overlap = run_once(experiment)
    assert dual.total_time_us < 0.2 * overlap.total_time_us
