"""Extension: the §5.4 future work, implemented.

"The most substantial component of the CPU-Free Model that is yet to
be implemented in DaCe is thread block optimization (sec. 3.1.3) ...
Future work will draft new syntax and Map types to allow such
scheduling to be described in code."

``gpu_persistent_kernel(specialize_comm=True)`` implements that future
work in this reproduction: communication states get their own TB group
inside the generated persistent kernel, ordered against the compute
group with local-memory progress flags instead of grid-wide barriers.
This benchmark quantifies how much of the generated-code overhead the
paper's proposed extension recovers.
"""

import numpy as np

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.distributed import GridDecomposition2D
from repro.sdfg.programs import (
    CONJUGATES_2D,
    build_jacobi_2d_sdfg,
    cpufree_pipeline,
)
from repro.sim import Tracer


def run_2d(specialize: bool, ranks: int = 8, tile: int = 1024, tsteps: int = 6):
    gy, gx = tile * 2, tile * 4
    decomp = GridDecomposition2D(gy, gx, ranks)
    args = decomp.rank_args(np.zeros((gy + 2, gx + 2)), tsteps)
    args = [{k: v for k, v in a.items() if k not in ("A", "B")} for a in args]
    sdfg = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D,
                            specialize_comm=specialize)
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
    return SDFGExecutor(sdfg, ctx, with_data=False).run(args)


def test_specialized_codegen_beats_single_thread_schedule(run_once, benchmark):
    def experiment():
        return run_2d(False), run_2d(True)

    plain, specialized = run_once(experiment)
    improvement = (plain.total_time_us - specialized.total_time_us) \
        / plain.total_time_us * 100
    print(f"\nsingle-group={plain.per_iteration_us:.1f}us/iter "
          f"specialized={specialized.per_iteration_us:.1f}us/iter "
          f"improvement={improvement:.1f}%")
    benchmark.extra_info["specialization_improvement_%"] = improvement
    # replacing per-state grid barriers with local progress flags and
    # overlapping comm issue with compute recovers a solid chunk
    assert improvement > 10.0


def test_specialized_codegen_bit_exact():
    rng = np.random.default_rng(5)
    gy, gx, ranks, tsteps = 16, 24, 8, 5
    u0 = rng.random((gy + 2, gx + 2))
    decomp = GridDecomposition2D(gy, gx, ranks)
    results = []
    for specialize in (False, True):
        sdfg = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D,
                                specialize_comm=specialize)
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
        report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, tsteps))
        results.append(decomp.gather(report.arrays, u0))
    np.testing.assert_array_equal(results[0], results[1])
