"""Ablation §4.1.2: proportional TB split vs a fixed minimal split.

"Splitting the thread blocks proportionally to the amount of work is
necessary for smaller and unbalanced 3D domains to achieve proper
overlap, as they are susceptible to being bound by the boundary region
computation and communication time otherwise."
"""

from repro.core import SpecializationPlan
from repro.stencil import StencilConfig
from repro.stencil.variants.cpufree import CPUFree


class CPUFreeFixedSplit(CPUFree):
    """CPU-Free with a naive fixed 1-block-per-side specialization."""

    name = "cpufree_fixed_split"

    def specialization(self, rank):
        return SpecializationPlan(
            tb_total=self.coresident_blocks(), boundary_tb_per_side=1, sides=2
        )


def unbalanced_3d_config():
    """Thin-slab 3D domain: few planes per GPU, large plane area —
    the boundary-heavy shape the paper warns about."""
    return StencilConfig(
        global_shape=(4 * 8 + 2, 1024 + 2, 1024 + 2),  # 4 planes/GPU of 1024^2
        num_gpus=8,
        iterations=30,
        with_data=False,
    )


def test_proportional_split_beats_fixed_on_unbalanced_3d(run_once, benchmark):
    def experiment():
        config = unbalanced_3d_config()
        proportional = CPUFree(config).run()
        fixed = CPUFreeFixedSplit(config).run()
        return proportional, fixed

    proportional, fixed = run_once(experiment)
    speedup = (fixed.total_time_us - proportional.total_time_us) / fixed.total_time_us * 100
    print(f"\nproportional={proportional.per_iteration_us:.2f}us/iter "
          f"fixed={fixed.per_iteration_us:.2f}us/iter speedup={speedup:.1f}%")
    benchmark.extra_info["proportional_vs_fixed_speedup_%"] = speedup
    # the fixed split is boundary-bound; proportional wins clearly
    assert speedup > 20.0


def test_proportional_split_harmless_on_balanced_2d(run_once):
    """On a balanced 2D domain both splits are near-equivalent —
    the formula costs nothing when it is not needed."""

    def experiment():
        config = StencilConfig(
            global_shape=(2048 + 2, 2048 + 2), num_gpus=8,
            iterations=30, with_data=False,
        )
        return CPUFree(config).run(), CPUFreeFixedSplit(config).run()

    proportional, fixed = run_once(experiment)
    ratio = proportional.total_time_us / fixed.total_time_us
    assert 0.9 < ratio < 1.1
