"""Figure 6.2: 3D Jacobi weak and strong scaling.

Paper headlines: 58.8% communication-latency improvement over the
CPU-controlled baselines at 8 GPUs (no-compute), and in strong scaling
the CPU-Free curve stays largely flat while CPU-controlled baselines
degrade as communication/overheads become dominant.
"""

from repro.bench import fig62_3d, render_figure


def test_fig62_weak_scaling(run_once, benchmark):
    figs = run_once(fig62_3d)
    print("\n" + render_figure(figs["weak"]))
    benchmark.extra_info.update(figs["weak_nocompute"].headlines)
    # weak scaling: CPU-free per-iteration time grows only mildly
    fig = figs["weak"]
    growth = fig.at("cpufree", 8).per_iteration_us / fig.at("cpufree", 1).per_iteration_us
    assert growth < 1.3


def test_fig62_no_compute_comm_latency(run_once, benchmark):
    figs = run_once(fig62_3d)
    nc = figs["weak_nocompute"]
    print("\n" + render_figure(nc))
    benchmark.extra_info.update(nc.headlines)
    # paper: 58.8% improvement vs CPU-controlled baselines at 8 GPUs
    assert nc.headlines["comm_improvement_vs_best_host_controlled_%"] > 40.0
    # and still ahead of the NVSHMEM discrete baseline
    assert nc.headlines["comm_improvement_vs_nvshmem_%"] > 0.0


def test_fig62_strong_scaling_cpufree_flat(run_once, benchmark):
    figs = run_once(fig62_3d)
    strong_nc = figs["strong_nocompute"]
    print("\n" + render_figure(figs["strong"]))
    print("\n" + render_figure(strong_nc))
    benchmark.extra_info.update(strong_nc.headlines)
    # no-compute strong scaling: CPU-free flat, host-controlled grows
    assert strong_nc.headlines["cpufree_growth_%"] < 60.0
    assert strong_nc.headlines["copy_growth_%"] > 300.0


def test_fig62_strong_scaling_baselines_bottom_out(run_once):
    figs = run_once(fig62_3d)
    strong = figs["strong"]
    # with compute, cpufree keeps scaling down close to ideal 1->8
    t1 = strong.at("cpufree", 1).per_iteration_us
    t8 = strong.at("cpufree", 8).per_iteration_us
    assert t8 < t1 / 4  # >50% parallel efficiency at 8 GPUs
    # CPU-controlled baselines fall far from ideal at 8 GPUs
    b1 = strong.at("baseline_overlap", 1).per_iteration_us
    b8 = strong.at("baseline_overlap", 8).per_iteration_us
    assert b8 > b1 / 4
    # and cpufree beats the fully CPU-controlled versions at the limit
    # (the domain is still 'large' per GPU at 8, so the NVSHMEM discrete
    # baseline remains competitive — exactly the Fig 6.1 large-domain
    # crossover)
    for variant in ("baseline_copy", "baseline_overlap"):
        assert t8 < strong.at(variant, 8).per_iteration_us
