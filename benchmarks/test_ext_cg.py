"""Extension benchmark: Conjugate Gradient (reduction-bound solver).

CG is the latency-bound extreme of the CPU-Free argument: the solver's
two global reductions per iteration cost the CPU-controlled version
two ``MPI_Allreduce`` latencies plus multiple kernel launches and
stream syncs per step.  PERKS (whose kernels the paper integrates,
§4.1.3) evaluates CG alongside the stencil for exactly this reason.
"""

from repro.apps import CGConfig, run_cg


def sweep(gpu_counts=(1, 2, 4, 8), per_gpu_rows=64, cols=512, iterations=15):
    rows_at = {g: per_gpu_rows * g + 2 for g in gpu_counts}
    out = {}
    for gpus in gpu_counts:
        cfg = CGConfig(global_shape=(rows_at[gpus], cols + 2), num_gpus=gpus,
                       iterations=iterations, with_data=False)
        out[gpus] = {v: run_cg(v, cfg) for v in ("cg_baseline", "cg_cpufree")}
    return out


def test_cg_weak_scaling(run_once, benchmark):
    results = run_once(sweep)
    print(f"\n{'GPUs':>6} {'cg_baseline':>12} {'cg_cpufree':>12} {'speedup':>9}")
    for gpus, pair in results.items():
        base, free = pair["cg_baseline"], pair["cg_cpufree"]
        print(f"{gpus:>6} {base.per_iteration_us:>12.1f} "
              f"{free.per_iteration_us:>12.1f} "
              f"{free.speedup_over(base):>8.1f}%")
    speedup_8 = results[8]["cg_cpufree"].speedup_over(results[8]["cg_baseline"])
    benchmark.extra_info["cg_speedup_at_8_gpus_%"] = speedup_8
    # reductions amplify the CPU-Free advantage beyond the stencil's
    assert speedup_8 > 60.0


def test_cg_baseline_dominated_by_host_overheads(run_once):
    results = run_once(sweep)
    base = results[8]["cg_baseline"]
    # at 8 GPUs the host path (API + syncs/allreduces) dominates
    overhead = base.api_time_us + base.sync_time_us
    assert overhead > 0.5 * base.total_time_us


def test_cg_cpufree_flat_weak_scaling(run_once):
    results = run_once(sweep)
    t2 = results[2]["cg_cpufree"].per_iteration_us
    t8 = results[8]["cg_cpufree"].per_iteration_us
    # the flat partial-sum exchange issues (P-1) tiny puts per round,
    # so growth is linear in P but with a microsecond-scale constant —
    # still far below the baseline's allreduce+launch path at every P
    assert t8 < 2.5 * t2
    assert t8 < 0.5 * results[8]["cg_baseline"].per_iteration_us
