#!/usr/bin/env python3
"""Compile a high-level Python stencil to CPU-Free code (paper Ch. 5).

Walks the full compiler pipeline on the distributed 2D Jacobi
benchmark: parse the ``@program`` function into an SDFG, apply the
baseline passes (GPU port + map fusion), then the CPU-Free lowering
(MPI→NVSHMEM, symmetric storage, persistent-kernel fusion), show the
generated pseudo-CUDA for both versions, and execute both on the
simulator — validating the generated CPU-Free code bit-exactly against
the MPI baseline and reporting the speedup.

Usage::

    python examples/dace_cpufree_compile.py
"""

import numpy as np

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg.codegen import SDFGExecutor, generate_cuda
from repro.sdfg.distributed import GridDecomposition2D
from repro.sdfg.programs import (
    CONJUGATES_2D,
    baseline_pipeline,
    build_jacobi_2d_sdfg,
    cpufree_pipeline,
)
from repro.sim import Tracer

RANKS = 4
GY = GX = 32
TSTEPS = 6


def run(sdfg, decomp, u0):
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(RANKS), tracer=Tracer())
    report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, TSTEPS))
    return report, decomp.gather(report.arrays, u0)


def main() -> None:
    print("── frontend: high-level Python → SDFG " + "─" * 30)
    sdfg = build_jacobi_2d_sdfg()
    print(sdfg.describe()[:1200], "\n  ...")

    print("\n── baseline pipeline (GPUTransform + MapFusion) " + "─" * 20)
    baseline = baseline_pipeline(build_jacobi_2d_sdfg())
    baseline_code = generate_cuda(baseline)
    print("\n".join(baseline_code.splitlines()[:18]), "\n  ...")

    print("\n── CPU-Free pipeline (+ MPIToNVSHMEM + NVSHMEMArray "
          "+ GPUPersistentKernel) " + "─" * 5)
    cpufree = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D)
    cpufree_code = generate_cuda(cpufree)
    print("\n".join(cpufree_code.splitlines()[:26]), "\n  ...")

    for token in ("nvshmemx_putmem_signal_nbi_block", "nvshmem_double_iput",
                  "nvshmem_quiet", "grid.sync"):
        assert token in cpufree_code, token
    print("\ngenerated code contains the Listing 5.5/5.6 call sequence ✓")

    print("\n── execution on the simulated 4-GPU node " + "─" * 27)
    rng = np.random.default_rng(0)
    u0 = rng.random((GY + 2, GX + 2))
    decomp = GridDecomposition2D(GY, GX, RANKS)

    base_report, base_result = run(baseline, decomp, u0)
    free_report, free_result = run(cpufree, decomp, u0)

    assert np.array_equal(base_result, free_result), "generated code diverged!"
    print("baseline and CPU-Free results are bit-identical ✓")
    print(f"baseline : {base_report.per_iteration_us:9.1f} us/iteration "
          f"(comm {base_report.comm_time_us / base_report.iterations:7.1f})")
    print(f"cpu-free : {free_report.per_iteration_us:9.1f} us/iteration "
          f"(comm {free_report.comm_time_us / free_report.iterations:7.1f})")
    improvement = (base_report.total_time_us - free_report.total_time_us) \
        / base_report.total_time_us * 100
    print(f"improvement: {improvement:.1f}% "
          f"(paper Fig 6.3b reports 96.8% at 8 GPUs on large domains)")


if __name__ == "__main__":
    main()
