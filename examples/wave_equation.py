#!/usr/bin/env python3
"""Build your own CPU-Free application: a 1D wave-equation solver.

This example uses the library's *public primitives directly* — no
`repro.stencil` involved — to show that the CPU-Free blueprint
(persistent kernel + iteration-parity signals + GPU-initiated puts)
carries over to new applications.  The accompanying walkthrough is
``docs/tutorial.md``.

Physics: the 1D wave equation ``u_tt = c^2 u_xx`` with fixed ends,
leapfrog scheme::

    u[t+1][i] = 2 u[t][i] - u[t-1][i] + r^2 (u[t][i-1] - 2 u[t][i] + u[t][i+1])

The scheme needs *two* previous time levels, so the solver cycles a
triple buffer — a wrinkle the Jacobi examples don't have, and a good
test that the signal protocol generalizes (reuse distance 3, skew
bounded by 1: safe).

Usage::

    python examples/wave_equation.py
"""

import numpy as np

from repro.core import TBGroup, launch_persistent
from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime, WaitCond
from repro.runtime import MultiGPUContext
from repro.sim import Tracer
from repro.stencil.grid import slab_partition

R2 = 0.25  # (c dt / dx)^2, stable for r <= 1


def leapfrog_reference(u_prev: np.ndarray, u_curr: np.ndarray, steps: int) -> np.ndarray:
    """Single-array oracle."""
    prev, curr = np.array(u_prev), np.array(u_curr)
    for _ in range(steps):
        new = np.array(curr)
        new[1:-1] = (2 * curr[1:-1] - prev[1:-1]
                     + R2 * (curr[:-2] - 2 * curr[1:-1] + curr[2:]))
        prev, curr = curr, new
    return curr


def run_wave_cpufree(u_prev: np.ndarray, u_curr: np.ndarray,
                     ranks: int, steps: int):
    """Distributed CPU-Free leapfrog; returns (solution, per-iter µs)."""
    n_interior = u_curr.shape[0] - 2
    ranges = slab_partition(n_interior, ranks)
    rows = {r: hi - lo for r, (lo, hi) in enumerate(ranges)}
    max_rows = max(rows.values())

    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
    rt = NVSHMEMRuntime(ctx)

    # triple-buffered field in the symmetric heap: levels[t % 3]
    levels = rt.malloc("u_levels", (3, max_rows + 2), fill=0.0)
    # flags[0] = halo-from-left arrived, flags[1] = halo-from-right
    flags = rt.malloc_signals("wave_flags", 2)

    # scatter both initial time levels (level 0 = t-1, level 1 = t)
    for rank, (lo, hi) in enumerate(ranges):
        local = levels.local(rank)
        local[0, : rows[rank] + 2] = u_prev[lo : hi + 2]
        local[1, : rows[rank] + 2] = u_curr[lo : hi + 2]
        # initial halos present for the first two levels
        flags.flag(rank, 0).set(1)
        flags.flag(rank, 1).set(1)

    def make_body(rank):
        local = levels.local(rank)
        nrows = rows[rank]
        left = rank - 1 if rank > 0 else None
        right = rank + 1 if rank < ranks - 1 else None

        def body(dev, grid):
            nv = rt.device(rank, lane=dev.lane)
            for it in range(1, steps + 1):
                read, prev, write = (it % 3), (it - 1) % 3, (it + 1) % 3
                # ① wait for this iteration's halos (value it means the
                #    current-level halo has been delivered)
                if left is not None:
                    yield from nv.signal_wait_until(flags, 0, WaitCond.GE, it)
                if right is not None:
                    yield from nv.signal_wait_until(flags, 1, WaitCond.GE, it)
                # ② leapfrog update of the interior
                yield from dev.compute(nrows, name="leapfrog")
                curr = local[read, : nrows + 2]
                older = local[prev, : nrows + 2]
                new = local[write, : nrows + 2]
                new[1:-1] = (2 * curr[1:-1] - older[1:-1]
                             + R2 * (curr[:-2] - 2 * curr[1:-1] + curr[2:]))
                # edge ranks keep the Dirichlet ends in every level
                new[0] = curr[0]
                new[-1] = curr[-1]
                # ③ send the new boundary values into the neighbors'
                #    write-level halos, signaling iteration it+1
                if left is not None:
                    yield from nv.putmem_signal_nbi(
                        levels, (write, rows[left] + 1), new[1],
                        flags, 1, it + 1, dest_pe=left, name="halo_left")
                if right is not None:
                    yield from nv.putmem_signal_nbi(
                        levels, (write, 0), new[nrows],
                        flags, 0, it + 1, dest_pe=right, name="halo_right")
                # ④ device-wide sync before the next time step
                yield from grid.wait()

        return body

    def host_program(rank):
        host = ctx.host(rank)
        stream = ctx.stream(rank)
        kernel = yield from launch_persistent(
            host, stream, "wave_leapfrog", [TBGroup("solver", 200, make_body(rank))]
        )
        yield from host.event_sync(kernel.event)

    for rank in range(ranks):
        ctx.sim.spawn(host_program(rank), name=f"wave.host{rank}")
    total = ctx.run()

    # gather level (steps+1) % 3 — the last level written
    out = np.array(u_curr)
    final = (steps + 1) % 3
    for rank, (lo, hi) in enumerate(ranges):
        out[lo + 1 : hi + 1] = levels.local(rank)[final, 1 : rows[rank] + 1]
    return out, total / steps


def main() -> None:
    n, ranks, steps = 96, 4, 60
    x = np.linspace(0.0, 1.0, n + 2)
    u_prev = np.sin(2 * np.pi * x)       # t = -dt (standing wave start)
    u_curr = np.sin(2 * np.pi * x)       # t = 0

    expected = leapfrog_reference(u_prev, u_curr, steps)
    got, per_iter = run_wave_cpufree(u_prev, u_curr, ranks, steps)

    exact = np.array_equal(got, expected)
    print(f"1D wave equation, {n} points, {ranks} GPUs, {steps} leapfrog steps")
    print(f"CPU-Free persistent solver: {per_iter:.2f} us/step, "
          f"numerics {'bit-exact' if exact else 'MISMATCH'} vs reference")
    if not exact:
        raise SystemExit("solver diverged!")
    amplitude = float(np.max(np.abs(got)))
    print(f"standing-wave amplitude after {steps} steps: {amplitude:.3f} (<= 1.0)")


if __name__ == "__main__":
    main()
