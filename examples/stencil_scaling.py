#!/usr/bin/env python3
"""Weak- and strong-scaling study across all stencil variants.

A compact version of the paper's Figure 6.1 / 6.2 sweeps: runs every
communication variant over 1-8 GPUs for a chosen domain-size class and
prints the paper-style scaling tables, including the no-compute
(pure communication overhead) mode of Figure 2.2a.

Usage::

    python examples/stencil_scaling.py [small|medium|large]
"""

import sys

from repro.bench import fig61_weak_2d, fig62_3d, render_figure
from repro.bench.figures import SIZE_CLASSES_2D


def main() -> None:
    size = sys.argv[1] if len(sys.argv) > 1 else "small"
    if size not in SIZE_CLASSES_2D:
        raise SystemExit(f"unknown size {size!r}; pick one of {sorted(SIZE_CLASSES_2D)}")

    print("=" * 70)
    print(f"2D Jacobi weak scaling — {size} "
          f"({SIZE_CLASSES_2D[size]}^2 global at 8 GPUs)")
    print("=" * 70)
    fig = fig61_weak_2d(size, iterations=40)
    print(render_figure(fig))

    print()
    print("=" * 70)
    print("3D Jacobi — weak scaling, strong scaling, and pure-comm mode")
    print("=" * 70)
    figs = fig62_3d(iterations=30)
    for key in ("weak", "weak_nocompute", "strong", "strong_nocompute"):
        print(render_figure(figs[key]))
        print()


if __name__ == "__main__":
    main()
