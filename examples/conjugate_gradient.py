#!/usr/bin/env python3
"""Conjugate Gradient on the CPU-Free model (extension application).

Solves the 2D Poisson system ``A u = b`` with unpreconditioned CG on 4
simulated GPUs, in both execution models, and verifies the distributed
solutions bit-exactly against a chunk-ordered reference solver.  CG's
two global reductions per iteration make it the latency-bound extreme
of the paper's argument — watch the speedup exceed the stencil's.

Usage::

    python examples/conjugate_gradient.py
"""

import numpy as np

from repro.apps import CGConfig, reference_cg, run_cg
from repro.apps.cg import default_rhs, laplacian_apply


def main() -> None:
    config = CGConfig(global_shape=(66, 66), num_gpus=4, iterations=40)
    print(f"solving A u = b on {config.global_shape} with "
          f"{config.num_gpus} GPUs, {config.iterations} CG iterations\n")

    b = default_rhs(config.global_shape, config.seed)
    expected = reference_cg(b, config.iterations, num_chunks=config.num_gpus)

    results = {}
    for variant in ("cg_baseline", "cg_cpufree"):
        result = run_cg(variant, config)
        exact = np.array_equal(result.solution, expected)
        results[variant] = result
        print(f"{variant:>12}: {result.per_iteration_us:8.2f} us/iteration   "
              f"residual |r|^2 = {result.final_residual_norm2:.3e}   "
              f"numerics {'bit-exact' if exact else 'MISMATCH'}")
        if not exact:
            raise SystemExit(f"{variant} diverged from the reference")

    speedup = results["cg_cpufree"].speedup_over(results["cg_baseline"])
    print(f"\nCPU-Free speedup: {speedup:.1f}% "
          f"(two device-side reductions/iter vs two MPI_Allreduce + 5 launches)")

    # show the solution actually solves the system
    x = results["cg_cpufree"].solution
    q = np.zeros_like(x)
    laplacian_apply(x, q)
    err = np.max(np.abs(q[1:-1, 1:-1] - b[1:-1, 1:-1]))
    print(f"max |A u - b| on the interior after {config.iterations} iterations: {err:.2e}")


if __name__ == "__main__":
    main()
