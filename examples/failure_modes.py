#!/usr/bin/env python3
"""What breaks when CPU-Free rules are violated — live demonstrations.

The CPU-Free model has hard correctness rules; the simulator enforces
them the way real hardware does.  This example triggers each failure
on purpose:

1. **Co-residency (§4.1.4)** — a cooperative (persistent) kernel that
   requests more thread blocks than fit on the device is rejected at
   launch, exactly like ``cudaLaunchCooperativeKernel``.
2. **Missing quiet (§5.3.1)** — a strided ``iput`` followed by a bare
   ``signal_op`` without ``nvshmem_quiet()`` lets the signal overtake
   the data: the destination reads stale halos (silent corruption).
3. **Broken semaphore protocol (§4.1.1)** — waiting on a flag nobody
   ever signals deadlocks the device; the simulator names the stuck
   thread-block group.

Usage::

    python examples/failure_modes.py
"""

import numpy as np

from repro.core import TBGroup, launch_persistent
from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime, WaitCond
from repro.runtime import CooperativeLaunchError, MultiGPUContext
from repro.sim import DeadlockError


def demo_coresidency() -> None:
    print("1) cooperative launch beyond the co-residency budget")
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(1))
    limit = ctx.node.gpu.max_coresident_blocks(1024)

    def body(dev, grid):
        yield from grid.wait()

    def host():
        yield from launch_persistent(
            ctx.host(0), ctx.stream(0), "too_big",
            [TBGroup("inner", limit + 1, body)],
        )

    ctx.sim.spawn(host(), name="host")
    try:
        ctx.run()
    except CooperativeLaunchError as exc:
        print(f"   rejected as expected: {exc}\n")


def demo_missing_quiet() -> None:
    print("2) strided iput + signal_op without quiet -> stale halo read")
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
    rt = NVSHMEMRuntime(ctx)
    halo = rt.malloc("halo", (4096,), fill=0.0)
    flags = rt.malloc_signals("flags", 1)
    observed = {}

    def sender():
        dev = rt.device(0)
        yield from dev.iput(halo, slice(None), np.full(4096, 7.0), dest_pe=1)
        # BUG: the quiet is missing here
        yield from dev.signal_op(flags, 0, 1, dest_pe=1)

    def receiver():
        dev = rt.device(1)
        yield from dev.signal_wait_until(flags, 0, WaitCond.GE, 1)
        observed["fresh"] = bool(np.all(halo.local(1) == 7.0))

    ctx.sim.spawn(sender(), name="sender")
    ctx.sim.spawn(receiver(), name="receiver")
    ctx.run()
    print(f"   destination saw fresh data: {observed['fresh']} "
          f"(the signal outran the strided put)\n")


def demo_deadlock() -> None:
    print("3) waiting on a signal nobody sends -> device-side deadlock")
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
    rt = NVSHMEMRuntime(ctx)
    flags = rt.malloc_signals("flags", 1)

    def stuck_kernel():
        dev = rt.device(0)
        yield from dev.signal_wait_until(flags, 0, WaitCond.GE, 1)

    ctx.sim.spawn(stuck_kernel(), name="gpu0.comm_top")
    try:
        ctx.run()
    except DeadlockError as exc:
        print(f"   detected as expected: {exc}\n")


def main() -> None:
    demo_coresidency()
    demo_missing_quiet()
    demo_deadlock()
    print("All three failure modes behaved as the paper's rules require.")


if __name__ == "__main__":
    main()
