#!/usr/bin/env python3
"""Nsight-style timeline comparison (paper Figures 2.1b / 5.1b).

Runs the CPU-controlled overlapping baseline and the CPU-Free variant
on a small domain and renders their simulated timelines as ASCII art:
``#`` compute, ``~`` communication, ``|`` synchronization waits,
``.`` host API calls.  The baseline's host lanes are littered with API
and sync activity every iteration; the CPU-Free host lanes go quiet
after a single launch.

Also writes each run as a Chrome Tracing JSON file
(``/tmp/repro_trace_<variant>.json``) — open it at ``chrome://tracing``
or https://ui.perfetto.dev for the full Nsight-like experience.

Usage::

    python examples/timeline_trace.py
"""

import json

from repro.stencil import StencilConfig, run_variant


def main() -> None:
    config = StencilConfig(
        global_shape=(66, 130), num_gpus=2, iterations=4, with_data=False,
    )

    for variant in ("baseline_overlap", "cpufree"):
        result = run_variant(variant, config)
        print("=" * 100)
        print(f"{variant}: {result.per_iteration_us:.2f} us/iteration, "
              f"overlap ratio {result.overlap_ratio:.2f}")
        print("=" * 100)
        print(result.tracer.render_ascii(width=96))
        path = f"/tmp/repro_trace_{variant}.json"
        with open(path, "w") as fh:
            json.dump(result.tracer.to_chrome_trace(), fh)
        print(f"(chrome trace written to {path})\n")

    print("legend:  # compute   ~ communication   | sync wait   . host API call")


if __name__ == "__main__":
    main()
