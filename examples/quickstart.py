#!/usr/bin/env python3
"""Quickstart: run one CPU-Free stencil and compare it to a baseline.

Runs a 2D Jacobi solver on 4 simulated A100 GPUs in two execution
models — the traditional CPU-controlled overlapping baseline (paper
Listing 2.1a) and the CPU-Free persistent-kernel model (Listing 4.1) —
verifies both against a single-array NumPy reference, and reports the
simulated per-iteration times.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.stencil import StencilConfig, jacobi_reference, run_variant
from repro.stencil.base import default_initial


def main() -> None:
    config = StencilConfig(
        global_shape=(130, 130),  # 128x128 interior + Dirichlet ring
        num_gpus=4,
        iterations=50,
    )

    print(f"domain {config.global_shape}, {config.num_gpus} GPUs, "
          f"{config.iterations} iterations\n")

    expected = jacobi_reference(
        default_initial(config.global_shape, config.seed), config.iterations
    )

    results = {}
    for variant in ("baseline_overlap", "baseline_nvshmem", "cpufree"):
        result = run_variant(variant, config)
        assert result.result is not None
        exact = np.array_equal(result.result, expected)
        results[variant] = result
        print(f"{variant:>20}: {result.per_iteration_us:8.2f} us/iteration   "
              f"comm {result.comm_time_us / config.iterations:6.2f} us/iter   "
              f"numerics {'bit-exact' if exact else 'MISMATCH'}")
        if not exact:
            raise SystemExit(f"{variant} diverged from the reference!")

    cpufree = results["cpufree"]
    for baseline in ("baseline_overlap", "baseline_nvshmem"):
        speedup = cpufree.speedup_over(results[baseline])
        print(f"\nCPU-Free speedup over {baseline}: {speedup:.1f}%")

    print("\nThe host launched the CPU-Free kernel exactly once per GPU:")
    launches = [s for s in cpufree.tracer.spans_in("api") if s.name.startswith("launch")]
    print(f"  kernel launches recorded: {len(launches)} "
          f"(vs {config.iterations} iterations x {config.num_gpus} GPUs "
          f"x 2+ calls for the baselines)")


if __name__ == "__main__":
    main()
