"""Tests for the TB-split autotuner."""

import pytest

from repro.core import autotune_tb_split, candidate_splits
from repro.stencil import StencilConfig


class TestCandidates:
    def test_candidates_start_at_one(self):
        assert candidate_splits(216)[0] == 1

    def test_candidates_within_feasible_range(self):
        for c in candidate_splits(216):
            assert 1 <= c <= (216 - 1) // 2

    def test_candidates_strictly_increasing(self):
        cs = candidate_splits(216)
        assert all(a < b for a, b in zip(cs, cs[1:]))

    def test_limit_included(self):
        cs = candidate_splits(216)
        assert cs[-1] == (216 - 1) // 2

    def test_tiny_device_rejected(self):
        with pytest.raises(ValueError):
            candidate_splits(2)


class TestAutotune:
    @pytest.fixture(scope="class")
    def balanced_report(self):
        config = StencilConfig(
            global_shape=(2048 + 2, 2048 + 2), num_gpus=8,
            iterations=10, with_data=False,
        )
        return autotune_tb_split(config, iterations=10)

    def test_measurements_cover_candidates(self, balanced_report):
        assert len(balanced_report.measurements) >= 5
        assert all(t > 0 for t in balanced_report.measurements.values())

    def test_formula_close_to_empirical_optimum_on_balanced_domain(
            self, balanced_report):
        """§4.1.2's formula should be near-optimal where it applies."""
        assert balanced_report.formula_regret_percent < 10.0

    def test_best_plan_is_feasible(self, balanced_report):
        plan = balanced_report.best
        assert plan.inner_tb >= 1
        assert plan.boundary_tb_per_side >= 1

    def test_unbalanced_3d_prefers_more_boundary_blocks(self):
        """Thin-slab 3D: the optimum needs far more than one boundary
        block — the regime where the proportional formula matters."""
        config = StencilConfig(
            global_shape=(4 * 8 + 2, 1024 + 2, 1024 + 2), num_gpus=8,
            iterations=10, with_data=False,
        )
        report = autotune_tb_split(config, iterations=10)
        assert report.best.boundary_tb_per_side > 1
        # and the formula lands close to the empirical best
        assert report.formula_regret_percent < 25.0

    def test_regret_zero_when_formula_is_best(self):
        config = StencilConfig(
            global_shape=(2048 + 2, 2048 + 2), num_gpus=8,
            iterations=10, with_data=False,
        )
        report = autotune_tb_split(config, iterations=10)
        if report.best.boundary_tb_per_side == report.formula.boundary_tb_per_side:
            assert report.formula_regret_percent == 0.0
