"""Tests for the persistent-kernel harness."""

import numpy as np
import pytest

from repro.core import TBGroup, launch_persistent
from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime, WaitCond
from repro.runtime import CooperativeLaunchError, MultiGPUContext
from repro.sim import Tracer


@pytest.fixture
def ctx():
    return MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())


def test_single_group_persistent_kernel(ctx):
    host = ctx.host(0)
    stream = ctx.stream(0)
    iterations = []

    def body(dev, grid):
        for it in range(3):
            yield from dev.busy(5.0, "inner", "compute")
            yield from grid.wait()
            iterations.append(it)

    def host_proc():
        pk = yield from launch_persistent(host, stream, "jacobi", [TBGroup("inner", 214, body)])
        yield from host.event_sync(pk.event)

    ctx.sim.spawn(host_proc(), name="host")
    ctx.run()
    assert iterations == [0, 1, 2]


def test_groups_synchronize_at_grid_sync(ctx):
    """A fast group must wait at grid.sync() for the slow group —
    iterations stay in lockstep (temporal dependency, §3.1.2)."""
    host = ctx.host(0)
    stream = ctx.stream(0)
    log = []

    def make_body(name, work_us):
        def body(dev, grid):
            for it in range(3):
                yield from dev.busy(work_us, name, "compute")
                yield from grid.wait()
                log.append((it, name, ctx.sim.now))
        return body

    def host_proc():
        pk = yield from launch_persistent(
            host, stream, "k",
            [TBGroup("fast", 2, make_body("fast", 1.0)),
             TBGroup("slow", 212, make_body("slow", 10.0))],
        )
        yield from host.event_sync(pk.event)

    ctx.sim.spawn(host_proc(), name="host")
    ctx.run()
    # per iteration, both groups leave the barrier at the same instant
    by_iter = {}
    for it, name, t in log:
        by_iter.setdefault(it, set()).add(t)
    assert all(len(times) == 1 for times in by_iter.values())


def test_coresidency_enforced(ctx):
    host = ctx.host(0)
    stream = ctx.stream(0)
    limit = ctx.node.gpu.max_coresident_blocks(1024)

    def body(dev, grid):
        yield from grid.wait()

    def host_proc():
        yield from launch_persistent(
            host, stream, "too_big", [TBGroup("inner", limit + 1, body)]
        )

    ctx.sim.spawn(host_proc(), name="host")
    with pytest.raises(CooperativeLaunchError):
        ctx.run()


def test_single_launch_only_one_host_api_call(ctx):
    """The defining property: one launch for N iterations, zero host
    involvement afterwards."""
    host = ctx.host(0)
    stream = ctx.stream(0)

    def body(dev, grid):
        for _ in range(50):
            yield from dev.busy(1.0, "w", "compute")
            yield from grid.wait()

    def host_proc():
        pk = yield from launch_persistent(host, stream, "k", [TBGroup("g", 8, body)])
        yield from host.event_sync(pk.event)

    ctx.sim.spawn(host_proc(), name="host")
    ctx.run()
    launches = [s for s in ctx.tracer.spans_in("api") if s.name.startswith("launch")]
    assert len(launches) == 1


def test_persistent_kernel_with_nvshmem_halo_exchange(ctx):
    """End-to-end miniature of Listing 4.1: two PEs exchange a halo
    value every iteration entirely on-device."""
    rt = NVSHMEMRuntime(ctx)
    data = rt.malloc("grid", (4,), fill=0.0)
    sig = rt.malloc_signals("flags", 1)
    iterations = 4
    results = {}

    def make_comm_body(me, other):
        def body(dev, grid):
            nv = rt.device(me, lane=dev.lane)
            for it in range(1, iterations + 1):
                # write my current value to the neighbor, signal iteration
                yield from nv.putmem_signal_nbi(
                    data, 0, float(me * 100 + it), sig, 0, it, dest_pe=other
                )
                yield from nv.signal_wait_until(sig, 0, WaitCond.GE, it)
                yield from grid.wait()
            results[me] = data.local(me)[0]
        return body

    def host_proc(rank):
        host = ctx.host(rank)
        stream = ctx.stream(rank)
        other = 1 - rank
        pk = yield from launch_persistent(
            host, stream, "stencil", [TBGroup("comm", 2, make_comm_body(rank, other)),
                                      TBGroup("inner", 200, make_inner(rank))]
        )
        yield from host.event_sync(pk.event)

    def make_inner(rank):
        def body(dev, grid):
            for _ in range(iterations):
                yield from dev.busy(2.0, "inner", "compute")
                yield from grid.wait()
        return body

    for r in range(2):
        ctx.sim.spawn(host_proc(r), name=f"host{r}")
    ctx.run()
    # each PE holds the final value written by its neighbor
    assert results[0] == 100.0 + iterations
    assert results[1] == 0.0 + iterations


def test_empty_groups_rejected(ctx):
    host = ctx.host(0)
    stream = ctx.stream(0)

    def host_proc():
        yield from launch_persistent(host, stream, "k", [])

    ctx.sim.spawn(host_proc(), name="host")
    with pytest.raises(ValueError):
        ctx.run()


def test_group_with_zero_blocks_rejected():
    def body(dev, grid):
        yield from grid.wait()

    with pytest.raises(ValueError):
        TBGroup("bad", 0, body)
