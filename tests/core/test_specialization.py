"""Tests for the TB work-allocation formula (paper §4.1.2)."""

import pytest

from repro.core import SpecializationPlan, plan_blocks


class TestPlanBlocks:
    def test_formula_matches_paper(self):
        """boundary_TB = TB_total * boundary / (inner + 2*boundary),
        rounded up so the boundary is never under-provisioned."""
        import math

        tb_total, inner, boundary = 216, 100_000, 10_000
        plan = plan_blocks(tb_total, inner, boundary)
        expected = math.ceil(tb_total * boundary / (inner + 2 * boundary))
        assert plan.boundary_tb_per_side == expected
        assert plan.inner_tb == tb_total - 2 * expected

    def test_minimum_one_boundary_block(self):
        # Tiny boundary: formula rounds to 0, but comm needs >= 1 block.
        plan = plan_blocks(216, 10**7, 10)
        assert plan.boundary_tb_per_side == 1

    def test_no_neighbors_no_boundary_blocks(self):
        plan = plan_blocks(216, 1000, 100, sides=0)
        assert plan.boundary_tb_per_side == 0
        assert plan.inner_tb == 216
        assert plan.inner_fraction == 1.0

    def test_zero_boundary_size(self):
        plan = plan_blocks(216, 1000, 0)
        assert plan.boundary_tb_total == 0

    def test_boundary_heavy_domain_capped(self):
        """Unbalanced 3D small domains: boundary may dominate the
        formula, but the inner domain keeps at least one block."""
        plan = plan_blocks(8, 10, 1000)
        assert plan.inner_tb >= 1
        assert plan.boundary_tb_total < 8

    def test_fractions_sum_to_one(self):
        plan = plan_blocks(216, 50_000, 5_000)
        total = plan.inner_fraction + plan.sides * plan.boundary_fraction_per_side
        assert total == pytest.approx(1.0)

    def test_larger_boundary_gets_more_blocks(self):
        small = plan_blocks(216, 10**6, 10**3)
        large = plan_blocks(216, 10**6, 10**5)
        assert large.boundary_tb_per_side > small.boundary_tb_per_side

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_blocks(0, 100, 10)
        with pytest.raises(ValueError):
            plan_blocks(216, -1, 10)
        with pytest.raises(ValueError):
            plan_blocks(216, 100, -1)

    def test_single_block_device_with_boundary_rejected(self):
        with pytest.raises(ValueError):
            plan_blocks(1, 100, 100, sides=2)

    def test_four_sides_2d_grid_decomposition(self):
        plan = plan_blocks(216, 10**6, 10**4, sides=4)
        assert plan.sides == 4
        assert plan.inner_tb == 216 - 4 * plan.boundary_tb_per_side


class TestSpecializationPlan:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            SpecializationPlan(tb_total=4, boundary_tb_per_side=2, sides=2)
        with pytest.raises(ValueError):
            SpecializationPlan(tb_total=0, boundary_tb_per_side=0, sides=0)
        with pytest.raises(ValueError):
            SpecializationPlan(tb_total=4, boundary_tb_per_side=-1, sides=2)

    def test_properties(self):
        plan = SpecializationPlan(tb_total=10, boundary_tb_per_side=2, sides=2)
        assert plan.boundary_tb_total == 4
        assert plan.inner_tb == 6
        assert plan.inner_fraction == pytest.approx(0.6)
        assert plan.boundary_fraction_per_side == pytest.approx(0.2)
