"""Tests for device-side synchronization primitives."""

import pytest

from repro.core import GridBarrier, LocalSpinFlag
from repro.sim import Delay, Simulator


class TestGridBarrier:
    def test_all_groups_released_together(self):
        sim = Simulator()
        barrier = GridBarrier(sim, parties=3, cost_us=1.9)
        times = []

        def group(delay):
            yield Delay(delay)
            yield from barrier.wait()
            times.append(sim.now)

        for d in (1.0, 4.0, 2.0):
            sim.spawn(group(d))
        sim.run()
        assert times == [5.9, 5.9, 5.9]

    def test_multiple_rounds_counted(self):
        sim = Simulator()
        barrier = GridBarrier(sim, parties=2, cost_us=0.0)

        def group():
            for _ in range(5):
                yield Delay(1.0)
                yield from barrier.wait()

        sim.spawn(group())
        sim.spawn(group())
        sim.run()
        assert barrier.rounds_completed == 5

    def test_single_party_barrier_trivial(self):
        sim = Simulator()
        barrier = GridBarrier(sim, parties=1, cost_us=2.0)

        def group():
            yield from barrier.wait()

        sim.spawn(group())
        assert sim.run() == 2.0

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            GridBarrier(Simulator(), parties=0, cost_us=1.0)

    def test_barrier_charges_grid_sync_cost(self):
        sim = Simulator()
        barrier = GridBarrier(sim, parties=2, cost_us=1.9)

        def group():
            yield from barrier.wait()

        sim.spawn(group())
        sim.spawn(group())
        assert sim.run() == pytest.approx(1.9)


class TestLocalSpinFlag:
    def test_wait_blocks_until_post(self):
        sim = Simulator()
        spin = LocalSpinFlag(sim, poll_us=0.4)
        woke = []

        def consumer():
            yield from spin.wait_until(1)
            woke.append(sim.now)

        def producer():
            yield Delay(5.0)
            spin.post(1)

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert woke == [5.0]

    def test_iteration_counter_protocol(self):
        """Co-resident kernels hand off iterations via a local flag."""
        sim = Simulator()
        ready = LocalSpinFlag(sim, poll_us=0.1, name="ready")
        done = LocalSpinFlag(sim, poll_us=0.1, name="done")
        log = []

        def comm_kernel():
            for it in range(1, 4):
                yield Delay(1.0)  # halo work
                ready.post(it)
                yield from done.wait_until(it)

        def comp_kernel():
            for it in range(1, 4):
                yield from ready.wait_until(it)
                yield Delay(2.0)  # inner compute
                log.append(it)
                done.post(it)

        sim.spawn(comm_kernel())
        sim.spawn(comp_kernel())
        sim.run()
        assert log == [1, 2, 3]

    def test_negative_poll_rejected(self):
        with pytest.raises(ValueError):
            LocalSpinFlag(Simulator(), poll_us=-1.0)

    def test_value_property(self):
        sim = Simulator()
        spin = LocalSpinFlag(sim, poll_us=0.0)
        assert spin.value == 0
        spin.post(3)
        assert spin.value == 3
