"""Tests for the NumPy reference Jacobi solvers."""

import numpy as np
import pytest

from repro.stencil import jacobi_reference, jacobi_step
from repro.stencil.reference import update_layers


class TestJacobiStep2D:
    def test_uniform_field_is_fixed_point(self):
        u = np.full((8, 8), 3.0)
        assert np.allclose(jacobi_step(u), u)

    def test_boundary_preserved(self):
        rng = np.random.default_rng(0)
        u = rng.random((8, 8))
        out = jacobi_step(u)
        assert np.array_equal(out[0], u[0])
        assert np.array_equal(out[-1], u[-1])
        assert np.array_equal(out[:, 0], u[:, 0])
        assert np.array_equal(out[:, -1], u[:, -1])

    def test_five_point_formula(self):
        u = np.zeros((3, 3))
        u[0, 1], u[2, 1], u[1, 0], u[1, 2] = 1.0, 2.0, 3.0, 4.0
        out = jacobi_step(u)
        assert out[1, 1] == pytest.approx(0.25 * (1 + 2 + 3 + 4))

    def test_input_not_mutated(self):
        u = np.ones((5, 5))
        u[2, 2] = 5.0
        snapshot = u.copy()
        jacobi_step(u)
        assert np.array_equal(u, snapshot)

    def test_converges_to_laplace_solution(self):
        """Hot top edge: after many sweeps the field is harmonic
        (each interior point equals its neighbor average)."""
        u = np.zeros((12, 12))
        u[0] = 1.0
        out = jacobi_reference(u, 4000)
        avg = 0.25 * (out[:-2, 1:-1] + out[2:, 1:-1] + out[1:-1, :-2] + out[1:-1, 2:])
        assert np.allclose(out[1:-1, 1:-1], avg, atol=1e-6)


class TestJacobiStep3D:
    def test_uniform_fixed_point(self):
        u = np.full((5, 5, 5), 2.0)
        assert np.allclose(jacobi_step(u), u)

    def test_seven_point_formula(self):
        u = np.zeros((3, 3, 3))
        for axis, value in zip(range(3), (1.0, 2.0, 3.0)):
            idx = [1, 1, 1]
            idx[axis] = 0
            u[tuple(idx)] = value
            idx[axis] = 2
            u[tuple(idx)] = value + 10
        out = jacobi_step(u)
        assert out[1, 1, 1] == pytest.approx((1 + 11 + 2 + 12 + 3 + 13) / 6.0)

    def test_boundary_preserved_3d(self):
        rng = np.random.default_rng(1)
        u = rng.random((5, 6, 7))
        out = jacobi_step(u)
        for axis in range(3):
            first = [slice(None)] * 3
            first[axis] = 0
            assert np.array_equal(out[tuple(first)], u[tuple(first)])


class TestUpdateLayers:
    def test_partial_update_only_touches_range(self):
        rng = np.random.default_rng(2)
        u = rng.random((10, 6))
        out = u.copy()
        update_layers(u, out, 3, 5)
        assert not np.array_equal(out[3:5, 1:-1], u[3:5, 1:-1])
        assert np.array_equal(out[:3], u[:3])
        assert np.array_equal(out[5:], u[5:])

    def test_split_equals_full_sweep(self):
        """Boundary + inner updates (the TB-specialized split) must
        equal the monolithic sweep exactly."""
        rng = np.random.default_rng(3)
        u = rng.random((12, 8))
        full = jacobi_step(u)
        split = u.copy()
        update_layers(u, split, 1, 2)       # top boundary
        update_layers(u, split, 11 - 1, 11)  # bottom boundary (row 10)
        update_layers(u, split, 2, 10)      # inner
        assert np.array_equal(split, full)

    def test_invalid_range_rejected(self):
        u = np.zeros((6, 6))
        with pytest.raises(ValueError):
            update_layers(u, u.copy(), 0, 3)
        with pytest.raises(ValueError):
            update_layers(u, u.copy(), 1, 6)

    def test_unsupported_ndim(self):
        u = np.zeros((6,))
        with pytest.raises(ValueError):
            update_layers(u, u.copy(), 1, 2)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            jacobi_reference(np.zeros((4, 4)), -1)

    def test_zero_iterations_identity(self):
        u = np.arange(16.0).reshape(4, 4)
        assert np.array_equal(jacobi_reference(u, 0), u)
