"""Tests for decomposition, scatter/gather, and process grids."""

import numpy as np
import pytest

from repro.stencil import (
    SlabDecomposition,
    best_process_grid,
    gather_slabs,
    scatter_slabs,
    slab_partition,
)


class TestSlabPartition:
    def test_even_split(self):
        assert slab_partition(8, 2) == [(0, 4), (4, 8)]

    def test_remainder_goes_to_front(self):
        assert slab_partition(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_single_part(self):
        assert slab_partition(5, 1) == [(0, 5)]

    def test_ranges_cover_exactly(self):
        ranges = slab_partition(23, 5)
        assert ranges[0][0] == 0 and ranges[-1][1] == 23
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_invalid(self):
        with pytest.raises(ValueError):
            slab_partition(3, 0)
        with pytest.raises(ValueError):
            slab_partition(2, 3)


class TestProcessGrid:
    def test_paper_gpu_counts(self):
        assert best_process_grid(1) == (1, 1)
        assert best_process_grid(2) == (2, 1)
        assert best_process_grid(4) == (2, 2)
        assert best_process_grid(8) == (4, 2)

    def test_square_counts(self):
        assert best_process_grid(16) == (4, 4)
        assert best_process_grid(9) == (3, 3)

    def test_prime(self):
        assert best_process_grid(7) == (7, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            best_process_grid(0)


class TestSlabDecomposition:
    def test_local_shapes_2d(self):
        d = SlabDecomposition((14, 10), 4)
        # 12 interior rows over 4 ranks = 3 each, +2 halos
        for r in range(4):
            assert d.local_shape(r) == (5, 10)

    def test_local_shapes_3d(self):
        d = SlabDecomposition((10, 6, 7), 2)
        assert d.local_shape(0) == (6, 6, 7)

    def test_neighbors(self):
        d = SlabDecomposition((14, 10), 4)
        assert d.neighbors(0) == {"bottom": 1}
        assert d.neighbors(1) == {"top": 0, "bottom": 2}
        assert d.neighbors(3) == {"top": 2}

    def test_single_rank_no_neighbors(self):
        d = SlabDecomposition((8, 8), 1)
        assert d.neighbors(0) == {}

    def test_element_accounting_2d(self):
        d = SlabDecomposition((14, 10), 4)
        assert d.row_elements == 8
        assert d.halo_elements == 10
        assert d.interior_elements(0) == 3 * 8
        assert d.inner_elements(0) == 1 * 8

    def test_element_accounting_3d(self):
        d = SlabDecomposition((10, 6, 7), 2)
        assert d.row_elements == 4 * 5
        assert d.halo_elements == 6 * 7

    def test_interiors_sum_to_global_interior(self):
        d = SlabDecomposition((30, 12), 4)
        total = sum(d.interior_elements(r) for r in range(4))
        assert total == (30 - 2) * (12 - 2)

    def test_too_small_for_ranks(self):
        with pytest.raises(ValueError):
            SlabDecomposition((7, 10), 2)  # 5 interior rows < 3*2

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            SlabDecomposition((10,), 1)

    def test_tiny_axis_rejected(self):
        with pytest.raises(ValueError):
            SlabDecomposition((8, 2), 1)


class TestScatterGather:
    def test_roundtrip_identity_2d(self):
        rng = np.random.default_rng(1)
        grid = rng.random((20, 9))
        d = SlabDecomposition(grid.shape, 3)
        locals_ = scatter_slabs(grid, d)
        out = gather_slabs(locals_, d, grid)
        assert np.array_equal(out, grid)

    def test_roundtrip_identity_3d(self):
        rng = np.random.default_rng(2)
        grid = rng.random((14, 5, 6))
        d = SlabDecomposition(grid.shape, 4)
        out = gather_slabs(scatter_slabs(grid, d), d, grid)
        assert np.array_equal(out, grid)

    def test_halos_match_neighbor_interiors(self):
        rng = np.random.default_rng(3)
        grid = rng.random((20, 9))
        d = SlabDecomposition(grid.shape, 3)
        locals_ = scatter_slabs(grid, d)
        for r in range(1, 3):
            # my top halo == top neighbor's last interior row
            assert np.array_equal(locals_[r][0], locals_[r - 1][-2])

    def test_scatter_produces_copies(self):
        grid = np.zeros((10, 8))
        d = SlabDecomposition(grid.shape, 2)
        locals_ = scatter_slabs(grid, d)
        locals_[0][1, 1] = 99.0
        assert grid[2, 1] == 0.0

    def test_shape_mismatch_rejected(self):
        d = SlabDecomposition((10, 8), 2)
        with pytest.raises(ValueError):
            scatter_slabs(np.zeros((9, 8)), d)
        with pytest.raises(ValueError):
            gather_slabs([np.zeros((5, 8))], d, np.zeros((10, 8)))
