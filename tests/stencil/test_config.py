"""Tests for StencilConfig validation and default initial conditions."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.stencil import StencilConfig
from repro.stencil.base import default_initial


class TestConfig:
    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            StencilConfig(global_shape=(10, 10), num_gpus=1, iterations=0)

    def test_node_scales_up_to_gpu_count(self):
        config = StencilConfig(global_shape=(66, 10), num_gpus=16,
                               iterations=1, node=HGX_A100_8GPU)
        assert config.node.num_gpus == 16

    def test_node_not_shrunk_for_small_counts(self):
        config = StencilConfig(global_shape=(10, 10), num_gpus=2, iterations=1)
        assert config.node.num_gpus >= 2

    def test_frozen(self):
        config = StencilConfig(global_shape=(10, 10), num_gpus=1, iterations=1)
        with pytest.raises(Exception):
            config.iterations = 5  # type: ignore[misc]


class TestDefaultInitial:
    def test_2d_edges(self):
        u = default_initial((8, 8))
        assert np.all(u[0, 1:-1] == 1.0)
        assert np.all(u[-1, 1:-1] == 0.5)
        assert np.all(u[1:-1, 0] == 0.25)
        assert np.all(u[1:-1, -1] == 0.75)

    def test_3d_faces(self):
        u = default_initial((6, 6, 6))
        assert np.all(u[0, 1:-1, 1:-1] == 1.0)
        assert np.all(u[-1, 1:-1, 1:-1] == 0.5)
        assert np.all(u[1:-1, 0, 1:-1] == 0.25)
        assert np.all(u[1:-1, 1:-1, 0] == 0.1)

    def test_interior_random_and_bounded(self):
        u = default_initial((10, 10))
        interior = u[1:-1, 1:-1]
        assert interior.std() > 0.0
        assert 0.0 <= interior.min() and interior.max() <= 1.0

    def test_seed_determinism(self):
        assert np.array_equal(default_initial((8, 8), 5), default_initial((8, 8), 5))
        assert not np.array_equal(default_initial((8, 8), 5), default_initial((8, 8), 6))
