"""Correctness of every communication variant against the reference.

The interior is random (seeded), so any halo-protocol mistake — wrong
row, wrong parity, missed signal, stale read — changes the result.
All variants are expected to be *bit-exact* with the single-array
reference because they use the same update expression.
"""

import numpy as np
import pytest

from repro.stencil import StencilConfig, jacobi_reference, run_variant, variant_names
from repro.stencil.base import default_initial

ALL_VARIANTS = variant_names()


def make_config(shape=(22, 12), gpus=3, iterations=7, **kw):
    return StencilConfig(global_shape=shape, num_gpus=gpus, iterations=iterations, **kw)


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_variant_matches_reference_2d(variant):
    config = make_config()
    res = run_variant(variant, config)
    expected = jacobi_reference(default_initial(config.global_shape, config.seed),
                                config.iterations)
    assert res.result is not None
    np.testing.assert_array_equal(res.result, expected)


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_variant_matches_reference_3d(variant):
    config = make_config(shape=(16, 7, 8), gpus=2, iterations=5)
    res = run_variant(variant, config)
    expected = jacobi_reference(default_initial(config.global_shape, config.seed),
                                config.iterations)
    np.testing.assert_array_equal(res.result, expected)


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_variant_single_gpu(variant):
    config = make_config(shape=(12, 9), gpus=1, iterations=4)
    res = run_variant(variant, config)
    expected = jacobi_reference(default_initial(config.global_shape, config.seed),
                                config.iterations)
    np.testing.assert_array_equal(res.result, expected)


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_variant_even_iterations_parity(variant):
    """Even vs odd iteration counts exercise both final parities."""
    config = make_config(iterations=6)
    res = run_variant(variant, config)
    expected = jacobi_reference(default_initial(config.global_shape, config.seed), 6)
    np.testing.assert_array_equal(res.result, expected)


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_variant_uneven_slabs(variant):
    """Interior rows not divisible by ranks → unequal chunk sizes."""
    config = make_config(shape=(25, 10), gpus=3, iterations=5)
    res = run_variant(variant, config)
    expected = jacobi_reference(default_initial(config.global_shape, config.seed), 5)
    np.testing.assert_array_equal(res.result, expected)


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_no_compute_mode_runs_and_reports_comm(variant):
    config = make_config(no_compute=True, iterations=5)
    res = run_variant(variant, config)
    assert res.result is None
    assert res.total_time_us > 0.0
    if config.num_gpus > 1:
        assert res.comm_time_us > 0.0


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_timing_only_mode_matches_data_mode_times(variant):
    """Simulated time must be independent of whether real data moves."""
    with_data = run_variant(variant, make_config())
    timing_only = run_variant(variant, make_config(with_data=False))
    assert timing_only.total_time_us == pytest.approx(with_data.total_time_us)
    assert timing_only.result is None


def test_unknown_variant_rejected():
    with pytest.raises(ValueError, match="unknown variant"):
        run_variant("nope", make_config())


class TestRelativePerformance:
    """The latency hierarchy the paper reports, on a small domain."""

    @pytest.fixture(scope="class")
    def results(self):
        config = StencilConfig(
            global_shape=(258, 256), num_gpus=4, iterations=50, with_data=False
        )
        return {v: run_variant(v, config) for v in ALL_VARIANTS}

    def test_cpufree_fastest_on_small_domain(self, results):
        cpufree = results["cpufree"].total_time_us
        for name, res in results.items():
            if name.startswith("cpufree"):
                continue
            if name == "auto_overlap":
                # cpufree with a compiler-chosen schedule: on small
                # domains the model picks one chunk and it ties exactly
                assert res.total_time_us == cpufree
                continue
            assert cpufree < res.total_time_us, name

    def test_nvshmem_baseline_beats_copy_baseline(self, results):
        assert results["baseline_nvshmem"].total_time_us < results["baseline_copy"].total_time_us

    def test_cpufree_large_speedup_over_copy(self, results):
        speedup = results["cpufree"].speedup_over(results["baseline_copy"])
        assert speedup > 80.0  # paper: ~96% on small domains at 8 GPUs

    def test_single_launch_for_cpufree(self, results):
        launches = [
            s for s in results["cpufree"].tracer.spans_in("api")
            if s.name.startswith("launch")
        ]
        assert len(launches) == 4  # one per GPU, total — not per iteration

    def test_baselines_launch_every_iteration(self, results):
        launches = [
            s for s in results["baseline_copy"].tracer.spans_in("api")
            if s.name.startswith("launch")
        ]
        assert len(launches) == 4 * 50
