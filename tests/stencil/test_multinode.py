"""Multi-domain (hierarchical-topology) stencil runs: correctness,
rail accounting, and flat-node behavior pinning."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.stencil import StencilConfig, jacobi_reference, run_variant
from repro.stencil.base import default_initial


def _config(gpus, iterations=4, **kw):
    return StencilConfig(global_shape=(gpus * 4 + 2, 34), num_gpus=gpus,
                         iterations=iterations, **kw)


@pytest.mark.parametrize("variant", ["cpufree", "baseline_nvshmem"])
def test_16_pe_two_domain_run_matches_reference(variant):
    config = _config(16)
    res = run_variant(variant, config)
    expected = jacobi_reference(
        default_initial(config.global_shape, config.seed), config.iterations)
    np.testing.assert_array_equal(res.result, expected)


def test_two_domain_run_is_hierarchical_and_sharded():
    config = _config(16)
    assert config.node.is_hierarchical
    assert config.node.num_domains == 2


def test_boundary_halos_cross_rails_interior_stays_on_nvlink():
    registry = MetricsRegistry()
    with use_metrics(registry):
        run_variant("cpufree", _config(16, with_data=False))
    rails = registry.find("hw.rail.bytes")
    assert rails, "no rail traffic recorded for a two-domain run"
    routes = {(labels["src_node"], labels["dst_node"]) for labels, _ in rails}
    # slab decomposition: only the 7<->8 halo pair crosses the rail
    assert routes == {("0", "1"), ("1", "0")}


def test_proxy_ops_accounted_per_source_pe():
    registry = MetricsRegistry()
    with use_metrics(registry):
        run_variant("cpufree", _config(16, with_data=False))
    proxy = registry.find("nvshmem.proxy.ops")
    pes = {labels["pe"] for labels, _ in proxy}
    # exactly the PEs on either side of the domain boundary proxy puts
    assert pes == {"7", "8"}


def test_flat_8_pe_run_unaffected_by_the_hierarchy_machinery():
    """An 8-PE single-domain run must not shard, not build rails, and
    not charge proxy time."""
    registry = MetricsRegistry()
    with use_metrics(registry):
        res = run_variant("cpufree", _config(8, with_data=False))
    assert not _config(8).node.is_hierarchical
    assert registry.find("hw.rail.bytes") == []
    assert registry.find("nvshmem.proxy.ops") == []
    assert res.total_time_us > 0.0


def test_weak_scaling_total_grows_mildly_across_domains():
    """Weak scaling 8 -> 32 PEs adds rail crossings but must not blow
    up: the per-iteration time stays within a small factor."""
    t8 = run_variant("cpufree", _config(8, with_data=False)).per_iteration_us
    t32 = run_variant("cpufree", _config(32, with_data=False)).per_iteration_us
    assert t32 < 10.0 * t8
