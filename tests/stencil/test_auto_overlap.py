"""AutoOverlap variant + cost-model schedule choice + repro.tune."""

import numpy as np
import pytest

from repro.obs.stablejson import dumps_stable
from repro.obs.timeline import pe_phases
from repro.perf import ResultCache, SweepManifest, SweepRunner
from repro.stencil.base import VARIANTS, StencilConfig
from repro.stencil.variants.auto_overlap import (
    CHUNK_CANDIDATES,
    AutoOverlap,
    OverlapSchedule,
    choose_schedule,
    model_inner_time_us,
)
from repro.tune import schedule_grid, schedule_payload, tune, win_loss_payload


def _config(shape=(256, 258), gpus=4, iterations=10, **kw):
    return StencilConfig(global_shape=shape, num_gpus=gpus,
                         iterations=iterations, **kw)


LARGE = (8192, 8194)


class TestChooseSchedule:
    def test_small_domain_degenerates_to_cpufree(self):
        # under the tiling knee every chunk count costs the same compute
        # but K>1 pays switch overhead -> the model must pick K=1
        assert choose_schedule(_config()).chunks == 1

    def test_large_domain_chunks(self):
        schedule = choose_schedule(_config(LARGE, gpus=8))
        assert schedule.chunks > 1

    def test_deterministic(self):
        a = choose_schedule(_config(LARGE, gpus=8))
        b = choose_schedule(_config(LARGE, gpus=8))
        assert a == b

    def test_model_monotone_overhead(self):
        # pure-overhead regime: with no tiling relief, more chunks can
        # only add switch cost
        config = _config()
        times = [model_inner_time_us(config, k) for k in CHUNK_CANDIDATES]
        assert times == sorted(times)


class TestOverlapSchedule:
    def test_validates(self):
        with pytest.raises(ValueError):
            OverlapSchedule(chunks=0)
        with pytest.raises(ValueError):
            OverlapSchedule(chunks=2, boundary_tb_per_side=0)

    def test_describe_round_trips_stably(self):
        s = OverlapSchedule(chunks=3, boundary_tb_per_side=4,
                            fuse_boundary=True)
        assert dumps_stable(s.describe()) == dumps_stable(s.describe())


class TestAutoOverlapVariant:
    def test_registered(self):
        assert "auto_overlap" in VARIANTS

    def test_k1_ties_cpufree_exactly(self):
        config = _config(with_data=False)
        assert choose_schedule(config).chunks == 1
        cf = VARIANTS["cpufree"](config).run()
        ao = VARIANTS["auto_overlap"](config).run()
        assert ao.per_iteration_us == cf.per_iteration_us

    def test_large_domain_beats_cpufree(self):
        config = _config(LARGE, gpus=8, iterations=5, with_data=False)
        cf = VARIANTS["cpufree"](config).run()
        ao = VARIANTS["auto_overlap"](config).run()
        assert ao.per_iteration_us < cf.per_iteration_us

    def test_data_matches_cpufree(self):
        config = _config((64, 66), gpus=4, iterations=6, seed=3)
        cf = VARIANTS["cpufree"](config).run()
        ao = AutoOverlap(config, schedule=OverlapSchedule(chunks=3)).run()
        np.testing.assert_array_equal(ao.result, cf.result)

    @pytest.mark.parametrize("schedule", [
        OverlapSchedule(chunks=2, fuse_boundary=True),
        OverlapSchedule(chunks=2, boundary_tb_per_side=4),
        OverlapSchedule(chunks=3, boundary_tb_per_side=2, fuse_boundary=True),
    ])
    def test_knobs_preserve_results(self, schedule):
        config = _config((64, 66), gpus=4, iterations=6, seed=3)
        cf = VARIANTS["cpufree"](config).run()
        ao = AutoOverlap(config, schedule=schedule).run()
        np.testing.assert_array_equal(ao.result, cf.result)

    def test_overlap_fraction_not_degraded(self):
        """obs/timeline validation: chunking must not hide less
        communication under compute than the hand-tuned schedule."""
        config = _config(LARGE, gpus=8, iterations=5, with_data=False)
        cf = VARIANTS["cpufree"](config)
        cf_res = cf.run()
        ao = VARIANTS["auto_overlap"](config)
        ao_res = ao.run()

        def mean_comm_overlap(variant):
            phases = pe_phases(variant.tracer.spans)
            fractions = [p.comm_overlap_fraction() for p in phases.values()]
            return sum(fractions) / len(fractions)

        assert mean_comm_overlap(ao) >= mean_comm_overlap(cf)
        assert ao_res.overlap_ratio >= cf_res.overlap_ratio


class TestTune:
    def test_grid_is_deterministic_and_deduped(self):
        config = _config(with_data=False)
        grid = schedule_grid(config)
        assert grid == schedule_grid(config)
        assert len(grid) == len(set(grid))
        # a small budget still spans every axis
        small = schedule_grid(config, budget=16)
        assert {s.chunks for s in small} == set(CHUNK_CANDIDATES)
        assert any(s.boundary_tb_per_side is not None for s in small)
        assert any(s.fuse_boundary for s in small)

    def test_tune_never_worse_than_cpufree(self):
        result = tune("small", 4, iterations=6, budget=8)
        assert result.best_per_iteration_us <= result.cpufree_per_iteration_us
        assert dumps_stable(schedule_payload(result)) \
            == dumps_stable(schedule_payload(result))

    def test_cache_replay_and_byte_stable_schedule(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        manifest = SweepManifest()
        first = tune("small", 2, iterations=4, budget=6,
                     runner=SweepRunner(cache=cache, manifest=manifest))
        manifest.save(tmp_path / "m.json")
        baseline = SweepManifest.load(tmp_path / "m.json")
        replay_runner = SweepRunner(cache=cache, baseline=baseline)
        second = tune("small", 2, iterations=4, budget=6,
                      runner=replay_runner)
        # >= 90% replayed is the acceptance bar; unchanged repo -> 100%
        assert replay_runner.replayed == len(manifest)
        assert replay_runner.changed == replay_runner.added == 0
        assert dumps_stable(schedule_payload(first)) \
            == dumps_stable(schedule_payload(second))

    def test_win_loss_payload_shape(self):
        table = win_loss_payload(sizes=("small",), gpu_counts=(1, 2),
                                 iterations=4)
        assert table["format"] == "repro-tune-winloss-v1"
        assert len(table["points"]) == 2
        assert table["wins"] + table["ties"] + table["losses"] == 2
        for point in table["points"]:
            assert point["outcome"] in ("win", "tie", "loss")
