"""Tests for result metrics: utilization, speedup, overlap."""

import pytest

from repro.stencil import StencilConfig, run_variant


def medium_config(**kw):
    # medium-sized per-GPU chunks so compute is a visible fraction
    return StencilConfig(global_shape=(4 * 256 + 2, 2050), num_gpus=4,
                         iterations=20, with_data=False, **kw)


class TestDeviceUtilization:
    def test_cpufree_utilization_beats_cpu_controlled(self):
        free = run_variant("cpufree", medium_config())
        copy = run_variant("baseline_copy", medium_config())
        for device in range(4):
            assert free.device_utilization()[device] > 3 * copy.device_utilization()[device]

    def test_utilization_in_unit_interval(self):
        res = run_variant("cpufree", medium_config())
        for value in res.device_utilization().values():
            assert 0.0 < value <= 1.0

    def test_no_compute_mode_zero_utilization(self):
        res = run_variant("cpufree", medium_config(no_compute=True))
        assert all(v == 0.0 for v in res.device_utilization().values())

    def test_all_devices_reported(self):
        res = run_variant("baseline_nvshmem", medium_config())
        assert set(res.device_utilization()) == {0, 1, 2, 3}


class TestOverlapRatio:
    def test_cpufree_overlaps_comm_with_compute_when_compute_dominates(self):
        # per-GPU 1024x2050: inner compute (~20us) exceeds the boundary
        # chain (~8us), so halo wire time hides under the inner kernel
        config = StencilConfig(global_shape=(4 * 1024 + 2, 2050), num_gpus=4,
                               iterations=20, with_data=False)
        res = run_variant("cpufree", config)
        assert res.overlap_ratio > 0.8

    def test_copy_baseline_serializes_comm(self):
        """Baseline Copy's halo copies run after the kernel in the
        same stream — zero overlap by construction."""
        res = run_variant("baseline_copy", medium_config())
        assert res.overlap_ratio < 0.2

    def test_overlap_variant_actually_overlaps(self):
        res = run_variant("baseline_overlap", medium_config())
        assert res.overlap_ratio > 0.5


class TestSpeedupFormula:
    def test_speedup_matches_paper_formula(self):
        free = run_variant("cpufree", medium_config())
        base = run_variant("baseline_copy", medium_config())
        expected = (base.total_time_us - free.total_time_us) / base.total_time_us * 100
        assert free.speedup_over(base) == pytest.approx(expected)

    def test_speedup_antisymmetric_sign(self):
        free = run_variant("cpufree", medium_config())
        base = run_variant("baseline_copy", medium_config())
        assert free.speedup_over(base) > 0
        assert base.speedup_over(free) < 0
