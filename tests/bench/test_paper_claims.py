"""The reproduction contract, as a test: every quantitative claim in
the paper's evaluation must reproduce within its acceptance band."""

import pytest

from repro.bench.paper import PAPER_CLAIMS, evaluate_claims, render_claims


@pytest.fixture(scope="module")
def results():
    return evaluate_claims(iterations=20)


def test_every_paper_claim_within_band(results):
    failed = [r for r in results if not r.ok]
    assert not failed, "\n" + render_claims(failed)


def test_all_figures_covered(results):
    figures = {r.claim.figure for r in results}
    assert {"2.2b", "6.1", "6.2", "6.3a", "6.3b"} <= figures


def test_claim_count_matches_registry(results):
    assert len(results) == len(PAPER_CLAIMS) >= 15


def test_render_mentions_verdicts(results):
    text = render_claims(results)
    assert "OK" in text
    assert f"{len(results)}/{len(results)} paper claims" in text


def test_cli_paper_flag(tmp_path, capsys):
    from repro.bench.__main__ import main

    out_file = tmp_path / "claims.txt"
    assert main(["--paper", "--out", str(out_file)]) == 0
    text = out_file.read_text()
    assert "paper claims reproduced within band" in text
    assert "verdict" in text


def test_bands_contain_paper_values():
    """Sanity on the registry itself: each band brackets the paper's
    own number (except the sign-only large-domain claim)."""
    for claim in PAPER_CLAIMS:
        assert claim.lo < claim.hi
        if claim.figure != "6.1" or "degrades" not in claim.description:
            assert claim.lo <= claim.paper_value <= claim.hi
