"""Tests for the table renderer's edge cases."""

from repro.bench import FigureData, Row, render_figure


def test_missing_cells_render_dashes():
    fig = FigureData("X", "sparse", [Row("a", 1, 10.0), Row("b", 2, 20.0)])
    text = render_figure(fig)
    assert "-" in text
    lines = [l for l in text.splitlines() if l.strip().startswith(("a", "b"))]
    assert len(lines) == 2


def test_comm_section_omitted_when_all_zero():
    fig = FigureData("X", "no comm", [Row("a", 1, 10.0)])
    assert "comm us/iter" not in render_figure(fig)


def test_comm_section_present_when_nonzero():
    fig = FigureData("X", "with comm",
                     [Row("a", 1, 10.0, comm_us_per_iter=3.0)])
    assert "comm us/iter" in render_figure(fig)


def test_series_sorted_alphabetically():
    fig = FigureData("X", "order", [Row("zeta", 1, 1.0), Row("alpha", 1, 2.0)])
    text = render_figure(fig)
    assert text.index("alpha") < text.index("zeta")


def test_gpu_columns_sorted():
    fig = FigureData("X", "cols",
                     [Row("a", 8, 1.0), Row("a", 1, 1.0), Row("a", 4, 1.0)])
    header = render_figure(fig).splitlines()[1]
    assert header.index("1 GPU") < header.index("4 GPU") < header.index("8 GPU")


def test_headlines_formatting():
    fig = FigureData("X", "h", [Row("a", 1, 1.0)],
                     headlines={"alpha_%": 1.0, "beta_%": -2.34})
    text = render_figure(fig)
    assert "alpha_% = 1.0" in text
    assert "beta_% = -2.3" in text
