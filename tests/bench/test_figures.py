"""Unit tests for the benchmark harness (small iteration counts)."""

import pytest

from repro.bench import (
    FigureData,
    Row,
    fig61_weak_2d,
    fig63a_dace_1d,
    render_figure,
    weak_shape_2d,
    weak_shape_3d,
)
from repro.bench.figures import SIZE_CLASSES_2D, STENCIL_VARIANTS


class TestShapes:
    def test_weak_shape_keeps_per_gpu_chunk_constant(self):
        for label in SIZE_CLASSES_2D.values():
            per_gpu = []
            for gpus in (1, 2, 4, 8):
                shape = weak_shape_2d(label, gpus)
                interior = (shape[0] - 2) * (shape[1] - 2)
                per_gpu.append(interior // gpus)
            assert len(set(per_gpu)) == 1

    def test_weak_shape_at_8_matches_label(self):
        shape = weak_shape_2d(2048, 8)
        assert shape == (2050, 2050)

    def test_weak_shape_3d(self):
        shape = weak_shape_3d(512, 8)
        assert shape == (514, 514, 514)

    def test_too_small_label_rejected(self):
        with pytest.raises(ValueError):
            weak_shape_2d(16, 4)


class TestFigureData:
    @pytest.fixture
    def fig(self):
        rows = [
            Row("a", 1, 10.0), Row("a", 2, 12.0),
            Row("b", 1, 20.0), Row("b", 2, 30.0),
        ]
        return FigureData("T", "test", rows)

    def test_series_filter(self, fig):
        assert len(fig.series("a")) == 2

    def test_at_lookup(self, fig):
        assert fig.at("b", 2).per_iteration_us == 30.0
        with pytest.raises(KeyError):
            fig.at("c", 1)

    def test_speedup_formula(self, fig):
        # (30 - 12) / 30 = 60%
        assert fig.speedup("a", "b", 2) == pytest.approx(60.0)

    def test_render_contains_all_series(self, fig):
        text = render_figure(fig)
        assert "a" in text and "b" in text and "Figure T" in text

    def test_render_includes_headlines(self, fig):
        fig.headlines = {"metric_%": 12.345}
        assert "metric_% = 12.3" in render_figure(fig)


class TestSweeps:
    def test_fig61_small_structure(self):
        fig = fig61_weak_2d("small", gpu_counts=(1, 2), iterations=5)
        assert {r.series for r in fig.rows} == set(STENCIL_VARIANTS)
        assert {r.x for r in fig.rows} == {1, 2}
        assert set(fig.headlines) >= {
            "speedup_vs_nvshmem_%", "speedup_vs_copy_%",
            "perks_vs_best_baseline_%",
        }

    def test_fig61_unknown_size_rejected(self):
        with pytest.raises(KeyError):
            fig61_weak_2d("gigantic")

    def test_fig63a_structure(self):
        fig = fig63a_dace_1d(gpu_counts=(1, 2), per_gpu_n=1000, tsteps=3)
        assert {r.series for r in fig.rows} == {"dace_baseline", "dace_cpufree"}
        assert "total_improvement_%" in fig.headlines
        assert "comm_improvement_%" in fig.headlines

    def test_rows_have_positive_times(self):
        fig = fig61_weak_2d("small", gpu_counts=(2,), iterations=5)
        for row in fig.rows:
            assert row.per_iteration_us > 0


class TestCLI:
    def test_main_runs_selected_figure(self, capsys):
        from repro.bench.__main__ import main

        assert main(["2.2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2.2a" in out

    def test_main_rejects_unknown_figure(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["9.9"])

    def test_main_writes_report_file(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out_file = tmp_path / "report.txt"
        assert main(["2.2", "--out", str(out_file)]) == 0
        assert "Figure 2.2a" in out_file.read_text()


class TestAutoOverlapFigure:
    def test_win_loss_headlines(self):
        from repro.bench.figures import fig_auto_overlap

        fig = fig_auto_overlap(sizes=("small",), gpu_counts=(1, 2),
                               iterations=4)
        assert len(fig.rows) == 4  # 2 variants x 2 gpu counts
        total = fig.headlines["wins"] + fig.headlines["ties"] \
            + fig.headlines["losses"]
        assert total == 2
        # small domains degenerate to cpufree's schedule -> never a loss
        assert fig.headlines["losses"] == 0
        assert fig.headlines["win_or_tie_fraction"] == 1.0

    def test_series_carry_size_label(self):
        from repro.bench.figures import fig_auto_overlap

        fig = fig_auto_overlap(sizes=("small",), gpu_counts=(1,),
                               iterations=4)
        assert {r.series for r in fig.rows} \
            == {"cpufree/small", "auto_overlap/small"}


class TestListFigures:
    def test_lists_all_figures_without_running(self, capsys):
        from repro.bench.__main__ import EXTRA_FIGURES, FIGURES, main

        assert main(["--list-figures"]) == 0
        out = capsys.readouterr().out
        for figure_id in (*FIGURES, *EXTRA_FIGURES):
            assert figure_id in out
        assert "auto_overlap" in out
        assert "opt-in" in out

    def test_catalog_covers_every_figure(self):
        from repro.bench.__main__ import EXTRA_FIGURES, FIGURE_CATALOG, FIGURES

        assert set(FIGURE_CATALOG) == set(FIGURES) | set(EXTRA_FIGURES)
        for title, variants, points in FIGURE_CATALOG.values():
            assert points > 0 and variants

    def test_point_counts_match_definitions(self):
        from repro.bench.__main__ import FIGURE_CATALOG
        from repro.bench.figures import DEFAULT_GPU_COUNTS

        assert FIGURE_CATALOG["6.1"][2] \
            == 3 * len(DEFAULT_GPU_COUNTS) * len(STENCIL_VARIANTS)
        assert FIGURE_CATALOG["auto_overlap"][2] \
            == 3 * len(DEFAULT_GPU_COUNTS) * 2
