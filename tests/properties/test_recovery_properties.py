"""Property-based recovery invariants: for any crash seed and
checkpoint cadence, the recovered run is byte-identical to the
fault-free reference and only simulated time grows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.stencil.variants  # noqa: F401 - populate the registry
from repro.faults import FaultPlan, PECrashFault
from repro.recover import UnrecoverableCrashError, run_with_recovery
from repro.stencil import StencilConfig, jacobi_reference
from repro.stencil.base import VARIANTS, default_initial

SHAPE = (34, 66)
ITERATIONS = 6

seeds = st.integers(min_value=0, max_value=2**32 - 1)
cadences = st.integers(min_value=1, max_value=ITERATIONS)


def _config(profile=None):
    return StencilConfig(global_shape=SHAPE, num_gpus=2,
                         iterations=ITERATIONS, fault_profile=profile)


def _plan(seed, every):
    return FaultPlan(
        name="crash_recover", seed=seed,
        crashes=(PECrashFault(pe=1, window_us=(10.0, 28.0)),),
        watchdog_budget_us=1_000_000.0,
        checkpoint_every=every,
        restart_cost_us=200.0,
        heartbeat_us=5.0,
        heartbeat_misses=2,
        expect="recover",
    )


def _reference():
    config = _config()
    return jacobi_reference(default_initial(config.global_shape, config.seed),
                            config.iterations)


class TestRecoveryProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds, every=cadences)
    def test_recovered_result_byte_identical(self, seed, every):
        outcome = run_with_recovery(VARIANTS["cpufree"],
                                    _config(f"crash_recover@{seed}"),
                                    checkpoint_every=every,
                                    plan=_plan(seed, every))
        np.testing.assert_array_equal(outcome.result, _reference())

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds, every=cadences)
    def test_time_grows_by_exactly_the_lost_time(self, seed, every):
        clean = run_with_recovery(VARIANTS["cpufree"], _config(),
                                  checkpoint_every=every)
        crashed = run_with_recovery(VARIANTS["cpufree"],
                                    _config(f"crash_recover@{seed}"),
                                    checkpoint_every=every,
                                    plan=_plan(seed, every))
        # approx: the two runs sum the same segment times in a
        # different association order (lost time is folded in
        # mid-stream), so the totals can differ by an ulp
        assert crashed.total_time_us == pytest.approx(
            clean.total_time_us + crashed.lost_time_us, rel=1e-12)
        if crashed.restarts:
            assert crashed.lost_time_us > 0.0
        else:
            assert crashed.lost_time_us == 0.0

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds, every=cadences)
    def test_recovery_is_deterministic(self, seed, every):
        runs = [run_with_recovery(VARIANTS["cpufree"],
                                  _config(f"crash_recover@{seed}"),
                                  checkpoint_every=every,
                                  plan=_plan(seed, every))
                for _ in range(2)]
        np.testing.assert_array_equal(runs[0].result, runs[1].result)
        assert runs[0].total_time_us == runs[1].total_time_us
        assert runs[0].crashed_pes == runs[1].crashed_pes
        assert runs[0].restarts == runs[1].restarts

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds, every=cadences)
    def test_metrics_match_fault_free_modulo_time_and_recovery(self, seed,
                                                               every):
        """The final segment's simulated behavior is crash-free, so
        its non-time metrics match a fault-free segmented run; the
        recovery counters are the only structural additions."""
        from repro.obs.metrics import MetricsRegistry, use_metrics

        clean_reg = MetricsRegistry()
        with use_metrics(clean_reg):
            run_with_recovery(VARIANTS["cpufree"], _config(),
                              checkpoint_every=every)
        crash_reg = MetricsRegistry()
        with use_metrics(crash_reg):
            outcome = run_with_recovery(VARIANTS["cpufree"],
                                        _config(f"crash_recover@{seed}"),
                                        checkpoint_every=every,
                                        plan=_plan(seed, every))
        clean_names = {s["name"] for s in clean_reg.to_dict()["counters"]}
        crash_names = {s["name"] for s in crash_reg.to_dict()["counters"]}
        extra = crash_names - clean_names
        assert extra <= {"recover.crashes_detected", "recover.restarts",
                         "recover.detect_latency_us", "recover.lost_time_us",
                         "faults.pe_crash", "faults.injected"}
        if outcome.restarts:
            assert "recover.restarts" in crash_names

    @settings(max_examples=6, deadline=None)
    @given(seed=seeds)
    def test_unrecoverable_names_the_dead_pe(self, seed):
        plan = FaultPlan(
            name="crash", seed=seed,
            crashes=(PECrashFault(pe=1, window_us=(10.0, 28.0)),),
            watchdog_budget_us=1_000_000.0,
            heartbeat_us=5.0,
            heartbeat_misses=2,
            expect="diagnostic",
        )
        try:
            run_with_recovery(VARIANTS["cpufree"],
                              _config(f"crash@{seed}"), plan=plan)
        except UnrecoverableCrashError as exc:
            assert "pe1" in str(exc)
        # a crash landing after the run's natural end simply never
        # fires (weak event) — that is the clean-exit contract
