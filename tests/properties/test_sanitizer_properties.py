"""Property-based tests for the happens-before sanitizer.

Two directions, matching the sweep gate's contract:

* the seeded missing-signal bug is flagged under *every* fault seed —
  jitter and retransmission must not be able to hide the race;
* shipped variants stay clean across grid sizes and fault profiles —
  the detector must not invent races out of legal reorderings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sanitize import attach_sanitizer, detect_races
from repro.sanitize.seeded import RacyUnsignaled
from repro.stencil.base import VARIANTS, StencilConfig


def sanitized_findings(cls, shape, fault_profile=None, iterations=3):
    config = StencilConfig(
        global_shape=shape,
        num_gpus=2,
        iterations=iterations,
        fault_profile=fault_profile,
    )
    variant = cls(config)
    sanitizer = attach_sanitizer(variant.ctx)
    variant.run()
    return detect_races(sanitizer)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_seeded_racy_variant_flagged_under_every_fault_seed(seed):
    findings = sanitized_findings(
        RacyUnsignaled, (18, 34), fault_profile=f"transient@{seed}"
    )
    assert findings, "detector went blind: seeded unsignaled-put race missed"
    assert all(len(f.pes) == 2 or f.first.by_pe == f.second.by_pe
               for f in findings)


@settings(max_examples=6, deadline=None)
@given(
    rows=st.integers(min_value=2, max_value=5),
    cols=st.integers(min_value=8, max_value=40),
    variant=st.sampled_from(["cpufree", "baseline_nvshmem"]),
    profile=st.sampled_from([None, "transient"]),
)
def test_shipped_variants_clean_across_sizes_and_profiles(
    rows, cols, variant, profile
):
    shape = (rows * 2 * 2, cols)  # even per-GPU slabs, any aspect ratio
    findings = sanitized_findings(VARIANTS[variant], shape, fault_profile=profile)
    assert findings == [], [f.summary() for f in findings]


def test_seeded_racy_variant_flagged_without_faults():
    assert sanitized_findings(RacyUnsignaled, (18, 34))
