"""Fuzzing the compiler: random restricted-Python programs must parse,
validate, serialize round-trip, and execute exactly like NumPy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg import Sym, program, validate
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.frontend import float64, int32  # noqa: F401 - used via namespace
from repro.sdfg.serialize import sdfg_from_json, sdfg_to_json
from repro.sim import Tracer

N = Sym("N")

TERMS = ["A[:-2]", "A[1:-1]", "A[2:]", "B[:-2]", "B[1:-1]", "B[2:]"]
OPS = [" + ", " - ", " * "]
CONSTANTS = ["0.5", "2.0", "1.0", "0.25"]

term = st.sampled_from(TERMS)
op = st.sampled_from(OPS)
const = st.sampled_from(CONSTANTS)

# an expression: term (op term){0..2} (op const)?
expression = st.tuples(
    term,
    st.lists(st.tuples(op, term), max_size=2),
    st.one_of(st.none(), st.tuples(op, const)),
).map(lambda t: "(" + t[0] + "".join(o + x for o, x in t[1])
      + (t[2][0] + t[2][1] if t[2] else "") + ")")

# a statement: <target>[1:-1] = expr  or augmented assignment
statement = st.tuples(
    st.sampled_from(["A", "B"]),
    st.sampled_from([" = ", " += ", " *= "]),
    expression,
).map(lambda t: f"{t[0]}[1:-1]{t[1]}{t[2]}")

programs = st.lists(statement, min_size=1, max_size=5)


def build_program(statements):
    import linecache

    body = "\n".join(f"        {s}" for s in statements)
    source = (
        "@program\n"
        "def fuzzed(A: float64[N], B: float64[N], TSTEPS: int32):\n"
        "    for t in range(1, TSTEPS):\n"
        f"{body}\n"
    )
    # register the synthetic source so inspect.getsource works
    filename = f"<fuzz-{abs(hash(source))}>"
    linecache.cache[filename] = (
        len(source), None, source.splitlines(True), filename
    )
    namespace = {"program": program, "float64": float64, "int32": int32, "N": N}
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102 - test oracle
    return namespace["fuzzed"]


def numpy_oracle(statements, a0, b0, tsteps):
    A, B = np.array(a0), np.array(b0)
    for _ in range(1, tsteps):
        for s in statements:
            exec(s, {}, {"A": A, "B": B})  # noqa: S102 - test oracle
    return A, B


@given(programs, st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_fuzzed_program_matches_numpy(statements, tsteps, seed):
    prog = build_program(statements)
    sdfg = prog.to_sdfg()
    validate(sdfg)

    rng = np.random.default_rng(seed)
    n = 10
    a0, b0 = rng.random(n), rng.random(n)

    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(1), tracer=Tracer())
    report = SDFGExecutor(sdfg, ctx).run(
        [{"A": np.array(a0), "B": np.array(b0), "N": n, "TSTEPS": tsteps}]
    )
    expected_a, expected_b = numpy_oracle(statements, a0, b0, tsteps)
    np.testing.assert_array_equal(report.arrays[0]["A"], expected_a)
    np.testing.assert_array_equal(report.arrays[0]["B"], expected_b)


@given(programs)
@settings(max_examples=40, deadline=None)
def test_fuzzed_program_serialization_roundtrip(statements):
    sdfg = build_program(statements).to_sdfg()
    restored = sdfg_from_json(sdfg_to_json(sdfg))
    validate(restored)
    assert sdfg_to_json(restored) == sdfg_to_json(sdfg)


@given(programs, st.integers(min_value=2, max_value=3))
@settings(max_examples=15, deadline=None)
def test_fuzzed_program_runs_after_roundtrip(statements, tsteps):
    sdfg = build_program(statements).to_sdfg()
    restored = sdfg_from_json(sdfg_to_json(sdfg))
    n = 8
    a0 = np.arange(float(n))
    b0 = np.ones(n)
    results = []
    for candidate in (sdfg, restored):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(1), tracer=Tracer())
        report = SDFGExecutor(candidate, ctx).run(
            [{"A": np.array(a0), "B": np.array(b0), "N": n, "TSTEPS": tsteps}]
        )
        results.append((report.arrays[0]["A"], report.arrays[0]["B"]))
    np.testing.assert_array_equal(results[0][0], results[1][0])
    np.testing.assert_array_equal(results[0][1], results[1][1])
