"""Property-based tests for the MPI model and NVSHMEM protocols."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime, WaitCond
from repro.runtime import Communicator, MultiGPUContext


class TestMPIProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_message_payloads_arrive_intact(self, payload):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
        comm = Communicator(ctx)
        data = np.array(payload)
        out = np.zeros_like(data)

        def sender():
            yield from comm.send(0, data, dest=1)

        def receiver():
            yield from comm.recv(1, out, source=0)

        ctx.sim.spawn(sender(), name="s")
        ctx.sim.spawn(receiver(), name="r")
        ctx.run()
        np.testing.assert_array_equal(out, data)

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_per_tag_fifo_ordering(self, tags):
        """Messages with the same tag arrive in posted order, whatever
        the tag interleaving."""
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
        comm = Communicator(ctx)
        received: dict[int, list[float]] = {t: [] for t in set(tags)}

        def sender():
            reqs = []
            for i, tag in enumerate(tags):
                req = yield from comm.isend(0, np.array([float(i)]), 1, tag)
                reqs.append(req)
            yield from comm.waitall(0, reqs)

        def receiver():
            reqs = []
            outs = []
            for tag in tags:
                out = np.zeros(1)
                req = yield from comm.irecv(1, out, 0, tag)
                outs.append((tag, out))
                reqs.append(req)
            yield from comm.waitall(1, reqs)
            for tag, out in outs:
                received[tag].append(out[0])

        ctx.sim.spawn(sender(), name="s")
        ctx.sim.spawn(receiver(), name="r")
        ctx.run()
        for tag, values in received.items():
            expected = [float(i) for i, t in enumerate(tags) if t == tag]
            assert values == expected

    @given(st.integers(min_value=2, max_value=8),
           st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=2, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_allreduce_equals_rank_ordered_sum(self, ranks, values):
        ranks = min(ranks, len(values))
        values = values[:ranks]
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks))
        comm = Communicator(ctx)
        results = {}

        def proc(rank):
            total = yield from comm.allreduce(rank, values[rank])
            results[rank] = total

        for rank in range(ranks):
            ctx.sim.spawn(proc(rank), name=f"r{rank}")
        ctx.run()
        expected = 0.0
        for v in values:
            expected += v
        assert all(results[r] == expected for r in range(ranks))


class TestNVSHMEMProperties:
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=2, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_ring_signal_chain_no_stale_reads(self, iterations, pes):
        """A ring of PEs forwarding a counter via putmem_signal never
        observes a value from the wrong iteration."""
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(pes))
        rt = NVSHMEMRuntime(ctx)
        cell = rt.malloc("cell", (1,), fill=0.0)
        sig = rt.malloc_signals("sig", 1)
        violations = []

        def pe(me):
            dev = rt.device(me)
            nxt = (me + 1) % pes
            for it in range(1, iterations + 1):
                if me == 0:
                    value = float(it * 1000)
                    yield from dev.putmem_signal_nbi(
                        cell, 0, value, sig, 0, it, dest_pe=nxt)
                    if it < iterations:
                        yield from dev.signal_wait_until(sig, 0, WaitCond.GE, it)
                else:
                    yield from dev.signal_wait_until(sig, 0, WaitCond.GE, it)
                    got = cell.local(me)[0]
                    if got != it * 1000:
                        violations.append((me, it, got))
                    yield from dev.putmem_signal_nbi(
                        cell, 0, got, sig, 0, it, dest_pe=nxt)

        for me in range(pes):
            ctx.sim.spawn(pe(me), name=f"pe{me}")
        ctx.run()
        assert violations == []
