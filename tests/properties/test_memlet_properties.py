"""Property-based tests for memlets, symbols, and the cost model."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hw import DEFAULT_COST_MODEL
from repro.sdfg import AccessKind, Memlet, Sym, evaluate_expr
from repro.sdfg.symbols import expr_to_str


# -- symbolic expressions -------------------------------------------------------

exprs = st.deferred(lambda: st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.just(Sym("N")),
    st.tuples(exprs, exprs).map(lambda p: p[0] + p[1]),
    st.tuples(exprs, exprs).map(lambda p: p[0] - p[1]),
    st.tuples(exprs, exprs).map(lambda p: p[0] * p[1]),
))


class TestSymbolProperties:
    @given(exprs, st.integers(min_value=-50, max_value=50))
    @settings(max_examples=200)
    def test_evaluation_matches_python_eval_of_rendering(self, expr, n):
        rendered = expr_to_str(expr)
        expected = eval(rendered, {"N": n})  # noqa: S307 - test oracle
        assert evaluate_expr(expr, {"N": n}) == expected


# -- memlets -----------------------------------------------------------------------

def subset_strategy(shape):
    dims = []
    for size in shape:
        dims.append(st.one_of(
            st.integers(min_value=0, max_value=size - 1),  # point
            st.tuples(
                st.integers(min_value=0, max_value=size - 1),
                st.integers(min_value=1, max_value=size),
            ).map(lambda p, s=size: slice(min(p[0], p[1] - 1), max(p[0] + 1, p[1]))),
        ))
    return st.tuples(*dims)


shapes = st.lists(st.integers(min_value=2, max_value=12),
                  min_size=1, max_size=3).map(tuple)


class TestMemletProperties:
    @given(shapes.flatmap(lambda s: st.tuples(st.just(s), subset_strategy(s))))
    @settings(max_examples=200)
    def test_volume_matches_numpy_selection(self, case):
        shape, subset = case
        memlet = Memlet.from_slices("A", subset)
        arr = np.zeros(shape)
        selected = np.asarray(arr[memlet.resolve(shape, {})])
        assert memlet.volume(shape, {}) == selected.size

    @given(shapes.flatmap(lambda s: st.tuples(st.just(s), subset_strategy(s))))
    @settings(max_examples=200)
    def test_access_kind_consistent_with_volume_and_contiguity(self, case):
        shape, subset = case
        memlet = Memlet.from_slices("A", subset)
        kind = memlet.access_kind(shape, {})
        volume = memlet.volume(shape, {})
        if volume == 1:
            assert kind is AccessKind.SCALAR
        else:
            assert kind in (AccessKind.CONTIGUOUS, AccessKind.STRIDED)
            # oracle: a selection is contiguous iff the strided view of a
            # C-ordered array covers one contiguous byte range
            arr = np.arange(int(np.prod(shape))).reshape(shape)
            view = np.asarray(arr[memlet.resolve(shape, {})])
            flat = view.reshape(-1)
            is_contig = bool(np.all(np.diff(arr.flatten()[
                np.searchsorted(arr.flatten(), flat)]) == 1)) and (
                flat.max() - flat.min() + 1 == flat.size)
            assert (kind is AccessKind.CONTIGUOUS) == is_contig


# -- cost model -------------------------------------------------------------------------

class TestCostModelProperties:
    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**9))
    def test_transfer_monotone_in_bytes(self, a, b):
        small, large = sorted((a, b))
        cm = DEFAULT_COST_MODEL
        assert cm.transfer_us(small, 300.0) <= cm.transfer_us(large, 300.0)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_tiling_factor_bounded_and_monotone(self, elements, threads):
        cm = DEFAULT_COST_MODEL
        factor = cm.tiling_factor(elements, threads)
        assert 1.0 <= factor <= 1.0 + cm.tiling_penalty
        bigger = cm.tiling_factor(elements * 2, threads)
        assert bigger >= factor

    @given(st.integers(min_value=1, max_value=64))
    def test_barrier_monotone_in_ranks(self, p):
        cm = DEFAULT_COST_MODEL
        assert cm.mpi_barrier_us(p + 1) > cm.mpi_barrier_us(p) or p == 0

    @given(st.integers(min_value=0, max_value=10**8),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_perks_residency_never_slows_down(self, elements, residency):
        cm = DEFAULT_COST_MODEL
        base = cm.compute_time_us(elements, 2039.0)
        cached = cm.compute_time_us(elements, 2039.0, perks_residency=residency)
        assert cached <= base + 1e-9
