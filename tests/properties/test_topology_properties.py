"""Property suites for the hierarchical topology and sharded dispatch.

Two families:

- **topology sanity** — for any hierarchical node shape and payload,
  intra-domain transfers are never slower than inter-domain ones, and
  a host-staged reroute never beats the direct rail path (it adds the
  PCIe bounce on top of the same rail crossing);
- **sharded-calendar determinism** — a two-domain stencil run must
  produce byte-identical metrics and trace dumps whether the engine
  dispatches from per-domain calendar lanes or the flat heap.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import HGX_A100_8GPU, build_topology
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.stencil import StencilConfig, run_variant

domain_sizes = st.sampled_from((2, 4, 8))
domain_counts = st.integers(min_value=2, max_value=6)
payloads = st.integers(min_value=1, max_value=4 << 20)


def _node(domain, domains):
    from dataclasses import replace

    return replace(HGX_A100_8GPU, num_gpus=domain,
                   nvswitch_domain_gpus=domain).scaled_to(domain * domains)


class TestTopologySanity:
    @given(domain_sizes, domain_counts, payloads)
    @settings(max_examples=60, deadline=None)
    def test_intra_domain_never_slower_than_inter(self, domain, domains, nbytes):
        topo = build_topology(_node(domain, domains))
        intra = topo.transfer_us(0, domain - 1, nbytes) if domain > 1 else 0.0
        inter = topo.transfer_us(0, domain, nbytes)
        assert intra <= inter

    @given(domain_sizes, domain_counts, payloads)
    @settings(max_examples=60, deadline=None)
    def test_staged_reroute_never_beats_the_direct_rail(self, domain, domains,
                                                        nbytes):
        topo = build_topology(_node(domain, domains))
        direct = topo.rail_transfer_us(0, domain, nbytes, occupy=False)
        staged = topo.staged_route_us(0, domain, nbytes)
        assert staged >= direct

    @given(domain_sizes, domain_counts, payloads)
    @settings(max_examples=60, deadline=None)
    def test_staged_reroute_bounded_by_bounce_plus_rail(self, domain, domains,
                                                        nbytes):
        """Staging = PCIe up + rail + PCIe down, nothing more: it stays
        under 2x the direct rail path plus the full host bounce."""
        topo = build_topology(_node(domain, domains))
        rail = topo.rail_transfer_us(0, domain, nbytes, occupy=False)
        host = (topo.link(0, -1).transfer_us(nbytes)
                + topo.link(-1, domain).transfer_us(nbytes))
        staged = topo.staged_route_us(0, domain, nbytes)
        assert staged <= 2.0 * rail + host

    @given(domain_sizes, domain_counts)
    @settings(max_examples=30, deadline=None)
    def test_domains_partition_the_devices(self, domain, domains):
        topo = build_topology(_node(domain, domains))
        seen = {}
        for dev in range(topo.num_gpus):
            seen.setdefault(topo.domain_of(dev), []).append(dev)
        assert sorted(seen) == list(range(domains))
        assert all(len(members) == domain for members in seen.values())


def _stencil_dump(shard, *, gpus, iters, variant):
    registry = MetricsRegistry()
    with use_metrics(registry):
        res = run_variant(variant, StencilConfig(
            global_shape=(gpus * 4 + 2, 34), num_gpus=gpus, iterations=iters,
            with_data=False, shard_scheduler=shard,
        ))
    spans = tuple((s.lane, s.name, s.category, s.start, s.end)
                  for s in res.tracer.spans)
    return res.total_time_us, registry.to_json(), spans


class TestShardedCalendarDeterminism:
    @given(st.sampled_from(("cpufree", "baseline_nvshmem", "cpufree_perks")),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_two_domain_runs_byte_identical(self, variant, iters):
        sharded = _stencil_dump(True, gpus=16, iters=iters, variant=variant)
        flat = _stencil_dump(False, gpus=16, iters=iters, variant=variant)
        assert sharded == flat
