"""Property-based A/B equivalence of transport coalescing.

Coalescing merges same-route same-arrival NVSHMEM delivery legs into
one batched engine event.  It is pure event bookkeeping — not a cost
model change — so a coalesced run and a per-leg run must agree on
*everything* observable: simulated time, grids, metrics, traces.
These properties drive both modes over randomized stencil
configurations and randomized raw put bursts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime, SignalOp, WaitCond
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.runtime import MultiGPUContext
from repro.sim import Tracer
from repro.stencil import StencilConfig, run_variant

stencil_cases = st.tuples(
    st.integers(min_value=6, max_value=14),   # rows
    st.integers(min_value=6, max_value=12),   # cols
    st.integers(min_value=2, max_value=4),    # gpus
    st.integers(min_value=1, max_value=4),    # iterations
    st.sampled_from(["cpufree", "baseline_nvshmem", "cpufree_coresident"]),
)

put_bursts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),   # src pe
        st.integers(min_value=0, max_value=2),   # dst pe
        st.integers(min_value=1, max_value=64),  # elements
    ).filter(lambda t: t[0] != t[1]),
    min_size=1, max_size=10)


def _run_stencil(rows, cols, gpus, iterations, variant, coalesce):
    config = StencilConfig(global_shape=(rows * gpus, cols), num_gpus=gpus,
                           iterations=iterations, coalesce_comm=coalesce)
    registry = MetricsRegistry()
    with use_metrics(registry):
        result = run_variant(variant, config)
    grid = result.result
    return (result.total_time_us, result.comm_time_us, result.sync_time_us,
            grid.tobytes() if grid is not None else None,
            result.tracer.to_chrome_trace(), registry.to_json())


class TestStencilEquivalence:
    @given(stencil_cases)
    @settings(max_examples=20, deadline=None)
    def test_identical_grids_metrics_and_traces(self, case):
        rows, cols, gpus, iterations, variant = case
        on = _run_stencil(rows, cols, gpus, iterations, variant, True)
        off = _run_stencil(rows, cols, gpus, iterations, variant, False)
        assert on == off


class TestRawPutEquivalence:
    def _burst(self, puts, coalesce):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(3), tracer=Tracer(),
                              coalesce_comm=coalesce)
        rt = NVSHMEMRuntime(ctx)
        arr = rt.malloc("a", (64,), fill=0.0)
        sig = rt.malloc_signals("sig", 3)

        def sender(pe):
            dev = rt.device(pe)
            for src, dst, n in puts:
                if src != pe:
                    continue
                yield from dev.putmem_signal_nbi(
                    arr, slice(0, n), np.full(n, float(pe + 1)), sig, src, 1,
                    dest_pe=dst, sig_op=SignalOp.ADD)
            yield from dev.quiet()

        for pe in range(3):
            ctx.sim.spawn(sender(pe), name=f"pe{pe}")
        total = ctx.run()
        state = tuple(arr.local(pe).tobytes() for pe in range(3))
        signals = tuple(sig.flag(pe, s).value
                        for pe in range(3) for s in range(3))
        return total, state, signals, ctx.tracer.to_chrome_trace()

    @given(put_bursts)
    @settings(max_examples=30, deadline=None)
    def test_burst_identical_on_and_off(self, puts):
        on = self._burst(puts, True)
        off = self._burst(puts, False)
        assert on == off

    @given(put_bursts)
    @settings(max_examples=15, deadline=None)
    def test_coalescing_never_increases_engine_events(self, puts):
        """Batching may only reduce (never add) dispatched generator
        steps for the same workload — the point of the optimization.
        Published counters stay equal by the virtual-accounting rule,
        so compare the engine's real callback tally instead."""
        ctx_on = MultiGPUContext(HGX_A100_8GPU.scaled_to(3), coalesce_comm=True)
        rt_on = NVSHMEMRuntime(ctx_on)
        ctx_off = MultiGPUContext(HGX_A100_8GPU.scaled_to(3), coalesce_comm=False)
        rt_off = NVSHMEMRuntime(ctx_off)

        for rt, ctx in ((rt_on, ctx_on), (rt_off, ctx_off)):
            arr = rt.malloc("a", (64,), fill=0.0)
            sig = rt.malloc_signals("sig", 3)

            def sender(pe, rt=rt, arr=arr, sig=sig):
                dev = rt.device(pe)
                for src, dst, n in puts:
                    if src != pe:
                        continue
                    yield from dev.putmem_signal_nbi(
                        arr, slice(0, n), np.full(n, 1.0), sig, src, 1,
                        dest_pe=dst, sig_op=SignalOp.ADD)
                yield from dev.quiet()

            for pe in range(3):
                ctx.sim.spawn(sender(pe), name=f"pe{pe}")
            ctx.run()

        assert ctx_on.sim.now == ctx_off.sim.now
        # published (virtual) counters agree exactly...
        assert ctx_on.sim.n_events == ctx_off.sim.n_events
        assert ctx_on.sim.n_spawned == ctx_off.sim.n_spawned
        # ...while the engine dispatches at most as many real batch
        # callbacks as there were legs (merging strictly saves when
        # legs share a (src, dst, arrival) slot)
        assert rt_off.n_batches == 0 and rt_off.n_coalesced_legs == 0
        assert rt_on.n_coalesced_legs == len(puts)
        assert 0 < rt_on.n_batches <= rt_on.n_coalesced_legs
