"""Property-based tests for link cost monotonicity and fault-plan
replay determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import DeliveryFault, FaultPlan, LinkFault
from repro.hw import HGX_A100_8GPU
from repro.hw.interconnect import Link
from repro.runtime.context import MultiGPUContext
from repro.sim import Tracer

links = st.builds(
    Link,
    bandwidth_gbps=st.floats(min_value=1e-3, max_value=1e4,
                             allow_nan=False, allow_infinity=False),
    latency_us=st.floats(min_value=0.0, max_value=1e3,
                         allow_nan=False, allow_infinity=False),
)
sizes = st.integers(min_value=0, max_value=1 << 32)
sharer_counts = st.integers(min_value=1, max_value=64)


class TestLinkMonotonicity:
    @given(links, sizes, sizes, sharer_counts)
    def test_monotone_in_nbytes(self, link, a, b, sharers):
        lo, hi = sorted((a, b))
        assert (link.transfer_us(lo, sharers=sharers)
                <= link.transfer_us(hi, sharers=sharers))

    @given(links, sizes.filter(lambda n: n > 0), sharer_counts, sharer_counts)
    def test_monotone_in_sharers(self, link, nbytes, a, b):
        lo, hi = sorted((a, b))
        assert (link.transfer_us(nbytes, sharers=lo)
                <= link.transfer_us(nbytes, sharers=hi))

    @given(links, sizes)
    def test_latency_is_floor(self, link, nbytes):
        got = link.transfer_us(nbytes)
        assert got == 0.0 if nbytes == 0 else got >= link.latency_us


plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    links=st.tuples(st.builds(
        LinkFault,
        jitter_us=st.floats(min_value=0.0, max_value=5.0,
                            allow_nan=False, allow_infinity=False),
    )),
    deliveries=st.tuples(st.builds(
        DeliveryFault,
        drop_prob=st.floats(min_value=0.0, max_value=0.5),
        delay_prob=st.floats(min_value=0.0, max_value=0.5),
        delay_us=st.floats(min_value=0.0, max_value=10.0,
                           allow_nan=False, allow_infinity=False),
    )),
)


def _replay(plan):
    """Drive a fresh context through a fixed schedule of transfers and
    delivery draws; return the injected-event keys."""
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(4), tracer=Tracer(),
                          faults=plan.injector())
    for i in range(40):
        src, dst = i % 4, (i + 1) % 4
        ctx.topology.transfer_us(src, dst, 128 + i)
        ctx.faults.delivery_outcome(src, dst, "put", None, i % 3)
    return [e.key() for e in ctx.faults.events]


class TestReplayDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(plans)
    def test_same_plan_same_event_stream(self, plan):
        assert _replay(plan) == _replay(plan)

    @settings(max_examples=40, deadline=None)
    @given(plans)
    def test_summary_digest_replays(self, plan):
        """The JSON-ready summary (including the event-stream SHA) is a
        pure function of the plan: two fresh replays agree exactly."""
        a = MultiGPUContext(HGX_A100_8GPU.scaled_to(4), tracer=Tracer(),
                            faults=plan.injector())
        b = MultiGPUContext(HGX_A100_8GPU.scaled_to(4), tracer=Tracer(),
                            faults=plan.injector())
        for ctx in (a, b):
            for i in range(25):
                ctx.topology.transfer_us(i % 4, (i + 2) % 4, 64 * (i + 1))
                ctx.faults.delivery_outcome(i % 4, (i + 1) % 4, "put",
                                            f"sig[pe{(i + 1) % 4}][0]", 0)
        assert a.faults.summary() == b.faults.summary()
