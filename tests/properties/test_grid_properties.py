"""Property-based tests for decomposition and the TB-split formula."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import plan_blocks
from repro.stencil import (
    SlabDecomposition,
    gather_slabs,
    scatter_slabs,
    slab_partition,
)
from repro.stencil.grid import best_process_grid, wide_process_grid


class TestPartitionProperties:
    @given(st.integers(min_value=1, max_value=10_000),
           st.integers(min_value=1, max_value=64))
    def test_partition_covers_exactly(self, n, parts):
        if n < parts:
            with pytest.raises(ValueError):
                slab_partition(n, parts)
            return
        ranges = slab_partition(n, parts)
        assert len(ranges) == parts
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1  # balanced

    @given(st.integers(min_value=1, max_value=256))
    def test_process_grids_factorize(self, p):
        for fn in (best_process_grid, wide_process_grid):
            py, px = fn(p)
            assert py * px == p
        by, bx = best_process_grid(p)
        wy, wx = wide_process_grid(p)
        assert by >= bx and wy <= wx


class TestScatterGatherRoundtrip:
    @given(
        rows=st.integers(min_value=3, max_value=40),
        cols=st.integers(min_value=3, max_value=20),
        ranks=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_identity_2d(self, rows, cols, ranks, seed):
        shape = (rows + 2, cols)
        if rows < 3 * ranks:
            return  # decomposition rejects this; covered by unit tests
        rng = np.random.default_rng(seed)
        grid = rng.random(shape)
        decomp = SlabDecomposition(shape, ranks)
        out = gather_slabs(scatter_slabs(grid, decomp), decomp, grid)
        assert np.array_equal(out, grid)

    @given(
        rows=st.integers(min_value=6, max_value=30),
        ranks=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_interior_accounting_consistent(self, rows, ranks):
        shape = (rows + 2, 10)
        if rows < 3 * ranks:
            return
        decomp = SlabDecomposition(shape, ranks)
        total = sum(decomp.interior_elements(r) for r in range(ranks))
        assert total == rows * 8
        for r in range(ranks):
            assert decomp.inner_elements(r) == (
                decomp.interior_elements(r) - 2 * decomp.row_elements
            )


class TestSpecializationProperties:
    @given(
        tb_total=st.integers(min_value=3, max_value=1024),
        inner=st.integers(min_value=0, max_value=10**8),
        boundary=st.integers(min_value=0, max_value=10**6),
        sides=st.sampled_from([0, 2, 4]),
    )
    @settings(max_examples=200)
    def test_plan_invariants(self, tb_total, inner, boundary, sides):
        try:
            plan = plan_blocks(tb_total, inner, boundary, sides=sides)
        except ValueError:
            return  # infeasible configurations must raise, not mis-plan
        # block conservation
        assert plan.inner_tb + plan.boundary_tb_total == tb_total
        assert plan.inner_tb >= 1
        # fractions form a partition of the device
        total_fraction = plan.inner_fraction + plan.sides * plan.boundary_fraction_per_side
        assert total_fraction == pytest.approx(1.0)
        # communication capability whenever there is a boundary
        if sides and boundary:
            assert plan.boundary_tb_per_side >= 1

    @given(
        tb_total=st.integers(min_value=16, max_value=512),
        inner=st.integers(min_value=1000, max_value=10**7),
    )
    @settings(max_examples=100)
    def test_boundary_blocks_monotone_in_boundary_size(self, tb_total, inner):
        small = plan_blocks(tb_total, inner, max(1, inner // 100))
        large = plan_blocks(tb_total, inner, inner // 2)
        assert large.boundary_tb_per_side >= small.boundary_tb_per_side
