"""Property tests for memory accounting and the symmetric heap."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import MemoryManager, Storage
from repro.nvshmem import NVSHMEMRuntime
from repro.runtime import MultiGPUContext
from repro.hw import HGX_A100_8GPU


actions = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "free"]),
        st.integers(min_value=1, max_value=1000),  # elements
    ),
    max_size=40,
)


class TestMemoryAccounting:
    @given(actions)
    @settings(max_examples=60, deadline=None)
    def test_used_bytes_always_consistent(self, ops):
        mm = MemoryManager(num_gpus=1)
        live = []
        expected = 0
        for kind, n in ops:
            if kind == "alloc":
                buf = mm.alloc(0, f"b{len(live)}", (n,), dtype=np.float64)
                live.append(buf)
                expected += n * 8
            elif live:
                buf = live.pop()
                mm.free(buf)
                expected -= buf.nbytes
            assert mm.used_bytes(0) == expected
        assert mm.used_bytes(0) == sum(b.nbytes for b in live)

    @given(st.integers(min_value=1, max_value=100),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_exceeded(self, elements, count):
        capacity = 2000  # bytes
        mm = MemoryManager(num_gpus=1, capacity_bytes=capacity)
        allocated = 0
        for i in range(count):
            try:
                buf = mm.alloc(0, f"b{i}", (elements,))
            except MemoryError:
                break
            allocated += buf.nbytes
        assert allocated <= capacity
        assert mm.used_bytes(0) == allocated


class TestSymmetricHeapProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=64),
                              st.integers(min_value=1, max_value=32)),
                    min_size=1, max_size=10, unique_by=lambda t: t))
    @settings(max_examples=30, deadline=None)
    def test_collective_allocation_balances_all_pes(self, shapes):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(4))
        rt = NVSHMEMRuntime(ctx)
        for i, shape in enumerate(shapes):
            rt.malloc(f"arr{i}", shape)
        used = [ctx.memory.used_bytes(pe) for pe in range(4)]
        assert len(set(used)) == 1  # symmetric: identical on every PE
        assert used[0] == sum(a * b * 8 for a, b in shapes)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_free_restores_balance(self, n_arrays):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(3))
        rt = NVSHMEMRuntime(ctx)
        arrays = [rt.malloc(f"a{i}", (16,)) for i in range(n_arrays)]
        for arr in arrays:
            rt.heap.free(arr)
        assert all(ctx.memory.used_bytes(pe) == 0 for pe in range(3))

    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_symmetric_buffers_remotely_accessible(self, accessor):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(4))
        rt = NVSHMEMRuntime(ctx)
        arr = rt.malloc("a", (4,))
        for pe in range(4):
            ctx.memory.check_peer_access(accessor, arr.on(pe))  # no raise
