"""Property-based tests for the DES engine and interval math."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Delay,
    Semaphore,
    Simulator,
    WaitFlag,
    interval_union_length,
    merge_intervals,
    overlap_length,
)

finite_times = st.floats(min_value=0.0, max_value=1e6,
                         allow_nan=False, allow_infinity=False)
intervals = st.lists(
    st.tuples(finite_times, finite_times).map(lambda p: (min(p), max(p))),
    max_size=30,
)


class TestIntervalProperties:
    @given(intervals)
    def test_merge_produces_sorted_disjoint(self, ivs):
        merged = merge_intervals(ivs)
        for (a0, a1), (b0, b1) in zip(merged, merged[1:]):
            assert a1 < b0
        assert merged == sorted(merged)

    @given(intervals)
    def test_merge_idempotent(self, ivs):
        once = merge_intervals(ivs)
        assert merge_intervals(once) == once

    @given(intervals)
    def test_union_length_bounded_by_sum(self, ivs):
        union = interval_union_length(ivs)
        total = sum(hi - lo for lo, hi in ivs)
        assert 0.0 <= union <= total + 1e-9

    @given(intervals, intervals)
    def test_overlap_bounded_by_each_union(self, a, b):
        ov = overlap_length(a, b)
        assert ov <= interval_union_length(a) + 1e-9
        assert ov <= interval_union_length(b) + 1e-9
        assert ov >= 0.0

    @given(intervals, intervals)
    def test_overlap_symmetric(self, a, b):
        assert abs(overlap_length(a, b) - overlap_length(b, a)) < 1e-9

    @given(intervals)
    def test_self_overlap_is_union(self, ivs):
        assert abs(overlap_length(ivs, ivs) - interval_union_length(ivs)) < 1e-9


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=20))
    def test_total_time_is_max_of_parallel_delays(self, delays):
        sim = Simulator()

        def worker(dt):
            yield Delay(dt)

        for dt in delays:
            sim.spawn(worker(dt))
        assert abs(sim.run() - max(delays)) < 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=20))
    def test_total_time_is_sum_of_serial_delays(self, delays):
        sim = Simulator()

        def worker():
            for dt in delays:
                yield Delay(dt)

        sim.spawn(worker())
        assert abs(sim.run() - sum(delays)) < 1e-6

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_semaphore_never_oversubscribed(self, limit, workers):
        sim = Simulator()
        sem = Semaphore(sim, value=limit)
        active = [0]
        peak = [0]

        def worker():
            yield from sem.acquire()
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield Delay(1.0)
            active[0] -= 1
            sem.release()

        for _ in range(workers):
            sim.spawn(worker())
        sim.run()
        assert peak[0] <= limit
        assert sem.value == limit

    @given(st.lists(st.integers(min_value=0, max_value=50),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_flag_waiters_wake_in_threshold_order(self, thresholds):
        sim = Simulator()
        flag = sim.flag(0)
        woke: list[int] = []

        def waiter(threshold):
            yield WaitFlag(flag, lambda v, t=threshold: v >= t)
            woke.append(threshold)

        for t in thresholds:
            sim.spawn(waiter(t))

        def incrementer():
            for _ in range(51):
                yield Delay(1.0)
                flag.add(1)

        sim.spawn(incrementer())
        sim.run()
        assert sorted(woke) == sorted(thresholds)
        # a waiter with a lower threshold never wakes after a higher one
        # finishing earlier wall-clock-wise; verify monotone wake times
        for a, b in zip(woke, woke[1:]):
            assert a <= b or thresholds.count(b) > 0  # ties allowed
