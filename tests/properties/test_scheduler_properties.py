"""Property-based equivalence of the calendar-queue scheduler.

The bucketed scheduler in :mod:`repro.sim.engine` must dispatch
events in exactly the order the old global binary heap did: primary
key simulated time, tie-break by push sequence (FIFO within a
timestamp).  These properties drive randomized workloads through the
real engine and compare against a trivial reference model — a sorted
list of ``(time, seq)`` — plus spot-check the structural invariants
the O(1) fast lane relies on.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Delay, Flag, Simulator, WaitFlag

# a coarse grid of times so duplicates (same-timestamp buckets) are
# common — the interesting regime for the calendar queue
grid_times = st.floats(min_value=0.0, max_value=50.0,
                       allow_nan=False, allow_infinity=False).map(
                           lambda t: round(t * 4) / 4)
time_lists = st.lists(grid_times, min_size=1, max_size=60)
delay_chains = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=8.0,
                       allow_nan=False, allow_infinity=False).map(
                           lambda t: round(t * 8) / 8),
             min_size=1, max_size=6),
    min_size=1, max_size=12)


class TestCallbackOrderEquivalence:
    @given(time_lists)
    @settings(max_examples=60, deadline=None)
    def test_call_at_fires_in_heap_order(self, times):
        """call_at callbacks fire exactly like a (time, seq) heap pops."""
        sim = Simulator()
        fired = []
        for i, t in enumerate(times):
            sim.call_at(t, lambda i=i: fired.append((sim.now, i)))
        sim.run()
        reference = [(t, i) for i, t in
                     sorted(enumerate(times), key=lambda p: (p[1], p[0]))]
        assert [(t, i) for t, i in fired] == reference

    @given(time_lists, time_lists)
    @settings(max_examples=40, deadline=None)
    def test_nested_pushes_interleave_like_a_heap(self, outer, inner):
        """Callbacks that schedule more work mid-run (including at the
        current timestamp — the O(1) ready lane) still fire in global
        (time, seq) order."""
        sim = Simulator()
        fired = []
        reference_heap = []
        seq = iter(range(10 ** 9))

        def push(t, label):
            heapq.heappush(reference_heap, (t, next(seq), label))
            sim.call_at(t, lambda: fire(label))

        def fire(label):
            fired.append(label)
            if label[0] == "outer" and label[1] < len(inner):
                # schedule follow-up work relative to *now*, sometimes
                # at now exactly (delta 0 -> the ready fast lane)
                delta = inner[label[1]] % 3.0
                push(sim.now + delta, ("inner", label[1]))

        for i, t in enumerate(outer):
            push(t, ("outer", i))
        sim.run()
        reference = []
        # replay the reference model with the same nested-push rule
        heap2, seq2 = [], iter(range(10 ** 9))

        def rpush(t, label):
            heapq.heappush(heap2, (t, next(seq2), label))

        for i, t in enumerate(outer):
            rpush(t, ("outer", i))
        while heap2:
            t, _, label = heapq.heappop(heap2)
            reference.append(label)
            if label[0] == "outer" and label[1] < len(inner):
                rpush(t + inner[label[1]] % 3.0, ("inner", label[1]))
        assert fired == reference


class TestProcessOrderEquivalence:
    @given(delay_chains)
    @settings(max_examples=50, deadline=None)
    def test_delay_processes_match_reference_heap(self, chains):
        """N processes sleeping through arbitrary Delay chains resume
        in the same global order a (wake_time, push_seq) heap gives."""
        sim = Simulator()
        log = []

        def proc(i, delays):
            for d in delays:
                yield Delay(d)
                log.append((i, sim.now))

        for i, delays in enumerate(chains):
            sim.spawn(proc(i, delays), name=f"p{i}")
        sim.run()

        # reference: simulate the same chains on a plain heap.  Spawned
        # processes run their first segment immediately at t=0 in spawn
        # order; every Delay(d) reschedules at (now + d, fresh seq).
        heap, seq = [], iter(range(10 ** 9))
        for i, delays in enumerate(chains):
            heapq.heappush(heap, (delays[0], next(seq), i, 0))
        expected = []
        while heap:
            t, _, i, step = heapq.heappop(heap)
            expected.append((i, t))
            if step + 1 < len(chains[i]):
                heapq.heappush(heap, (t + chains[i][step + 1],
                                      next(seq), i, step + 1))
        assert log == expected
        assert sim.now == (max(t for _, t in expected) if expected else 0.0)

    @given(st.lists(st.integers(min_value=1, max_value=6),
                    min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_flag_wakeups_in_registration_order(self, thresholds):
        """Indexed wakeup must preserve registration order among
        waiters released by one set() — the old linear scan's order."""
        sim = Simulator()
        flag = Flag(sim, 0, name="f")
        woken = []

        def waiter(i, threshold):
            yield WaitFlag(flag, ge=threshold)
            woken.append(i)

        for i, threshold in enumerate(thresholds):
            sim.spawn(waiter(i, threshold), name=f"w{i}")

        def setter():
            yield Delay(1.0)
            flag.set(max(thresholds))

        sim.spawn(setter(), name="set")
        sim.run()
        assert woken == list(range(len(thresholds)))

    @given(time_lists)
    @settings(max_examples=40, deadline=None)
    def test_idle_leaping_reaches_exact_times(self, times):
        """Time jumps directly to each distinct timestamp: the set of
        observed ``now`` values equals the set of scheduled times."""
        sim = Simulator()
        seen = []
        for t in times:
            sim.call_at(t, lambda: seen.append(sim.now))
        sim.run()
        assert sorted(set(seen)) == sorted(set(times))
        assert sim.now == max(times)
        # counters stay coherent (published metrics build on these)
        assert sim.n_callbacks == len(times)
