"""Property tests for the tutorial wave-equation solver (triple-buffer
protocol generalization)."""

import importlib.util
import pathlib
import sys

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

_spec = importlib.util.spec_from_file_location(
    "wave_equation",
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "wave_equation.py",
)
wave = importlib.util.module_from_spec(_spec)
sys.modules["wave_equation"] = wave
_spec.loader.exec_module(wave)


@given(
    ranks=st.integers(min_value=1, max_value=4),
    per_rank=st.integers(min_value=2, max_value=10),
    steps=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=20, deadline=None)
def test_wave_solver_bit_exact_on_random_configs(ranks, per_rank, steps, seed):
    n = ranks * per_rank
    rng = np.random.default_rng(seed)
    u_prev = rng.random(n + 2)
    u_curr = rng.random(n + 2)
    expected = wave.leapfrog_reference(u_prev, u_curr, steps)
    got, _ = wave.run_wave_cpufree(u_prev, u_curr, ranks, steps)
    np.testing.assert_array_equal(got, expected)


@given(steps=st.integers(min_value=1, max_value=30))
@settings(max_examples=10, deadline=None)
def test_wave_energy_bounded(steps):
    """Leapfrog at r <= 1 is stable: amplitudes stay bounded."""
    n = 32
    x = np.linspace(0.0, 1.0, n + 2)
    u0 = np.sin(2 * np.pi * x)
    got, _ = wave.run_wave_cpufree(u0, u0, 2, steps)
    assert float(np.max(np.abs(got))) < 2.0
