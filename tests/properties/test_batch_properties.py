"""Property-based A/B equivalence of the batched execution backend.

A batch group fuses sweep points that differ only in ``global_shape``
into one vector-clock simulation.  Batching is pure scheduling — never
a cost-model change — so for any group the demuxed per-point results,
metrics dumps, and Chrome traces must be byte-identical to the
per-point path, the sweep scheduler must produce identical rows with
``batch`` on and off, and any group batching cannot soundly fuse (a
fault profile's RNG substreams are per-point) must fall back rather
than diverge.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.figures import _stencil_point
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.perf.sweep import SweepRunner
from repro.sim.stacked import BatchDivergence
from repro.stencil import StencilConfig, run_variant
from repro.stencil.batch import run_batched_stencil

batch_groups = st.tuples(
    st.lists(st.integers(min_value=6, max_value=16), min_size=2, max_size=4,
             unique=True),                                  # per-member rows
    st.integers(min_value=7, max_value=12),                 # cols
    st.integers(min_value=2, max_value=4),                  # gpus
    st.integers(min_value=1, max_value=4),                  # iterations
    st.sampled_from(["cpufree", "baseline_nvshmem", "baseline_copy",
                     "cpufree_coresident"]),
)


def _group_configs(case, fault_profile=None):
    rows_list, cols, gpus, iterations, variant = case
    configs = [
        StencilConfig(global_shape=(rows * gpus, cols), num_gpus=gpus,
                      iterations=iterations, with_data=False,
                      fault_profile=fault_profile)
        for rows in rows_list
    ]
    return variant, configs


def _per_point(variant, configs):
    outs = []
    for config in configs:
        registry = MetricsRegistry()
        with use_metrics(registry):
            res = run_variant(variant, config)
        outs.append((
            res.total_time_us, res.comm_time_us, res.sync_time_us,
            res.api_time_us, res.overlap_ratio,
            json.dumps(res.tracer.to_chrome_trace(), sort_keys=True),
            registry.to_json(),
        ))
    return outs


class TestBatchedStencilEquivalence:
    @given(batch_groups)
    @settings(max_examples=15, deadline=None)
    def test_demuxed_results_metrics_traces_identical(self, case):
        variant, configs = _group_configs(case)
        want = _per_point(variant, configs)
        results, dumps = run_batched_stencil(variant, configs)
        got = [
            (r.total_time_us, r.comm_time_us, r.sync_time_us,
             r.api_time_us, r.overlap_ratio,
             json.dumps(r.tracer.to_chrome_trace(), sort_keys=True),
             json.dumps(d, sort_keys=True, indent=2) + "\n")
            for r, d in zip(results, dumps)
        ]
        assert got == want

    @given(batch_groups)
    @settings(max_examples=10, deadline=None)
    def test_sweep_runner_rows_identical_and_groups_fused(self, case):
        variant, configs = _group_configs(case)
        tasks = [(variant, config) for config in configs]
        on = SweepRunner(jobs=1, batch=True)
        off = SweepRunner(jobs=1, batch=False)
        rows_on = on.map(_stencil_point, tasks)
        rows_off = off.map(_stencil_point, tasks)
        assert rows_on == rows_off
        assert on.batch_fallbacks == 0
        assert on.batch_points == len(tasks)
        assert off.batch_points == 0

    @given(batch_groups)
    @settings(max_examples=5, deadline=None)
    def test_fault_profile_forces_per_point_fallback(self, case):
        variant, configs = _group_configs(case, fault_profile="transient")
        # the batched path must refuse: fault RNG substreams are
        # per-point and cannot be carried on a shared vector clock
        try:
            run_batched_stencil(variant, configs)
        except BatchDivergence:
            pass
        else:
            raise AssertionError("faulted group batched instead of diverging")
        # ... and the scheduler never even forms a group for faulted
        # points (the group key screens them out), so batch-on runs
        # them per-point with results identical to batch-off
        tasks = [(variant, config) for config in configs]
        on = SweepRunner(jobs=1, batch=True)
        rows_on = on.map(_stencil_point, tasks)
        rows_off = SweepRunner(jobs=1, batch=False).map(_stencil_point, tasks)
        assert rows_on == rows_off
        assert on.batch_points == 0
        assert on.batch_groups == 0
