"""Property-based tests for the tracer's overlap/union analysis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import Tracer, interval_union_length, merge_intervals

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


@st.composite
def intervals(draw, max_size=12):
    out = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_size))):
        a = draw(finite)
        b = draw(finite)
        out.append((min(a, b), max(a, b)))
    return out


@st.composite
def tracers(draw):
    tracer = Tracer()
    lanes = ("gpu0", "gpu1")
    for lo, hi in draw(intervals()):
        tracer.record(draw(st.sampled_from(lanes)), "c", "compute", lo, hi)
    for lo, hi in draw(intervals()):
        tracer.record(draw(st.sampled_from(lanes)), "x", "comm", lo, hi)
    return tracer


class TestOverlapRatio:
    @settings(max_examples=40, deadline=None)
    @given(tracers())
    def test_bounded_between_zero_and_one(self, tracer):
        ratio = tracer.overlap_ratio()
        assert 0.0 <= ratio <= 1.0 + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(intervals())
    def test_zero_without_communication(self, compute):
        tracer = Tracer()
        for lo, hi in compute:
            tracer.record("gpu0", "c", "compute", lo, hi)
        assert tracer.overlap_ratio() == 0.0

    @settings(max_examples=25, deadline=None)
    @given(intervals(max_size=8))
    def test_one_when_comm_inside_compute(self, comm):
        tracer = Tracer()
        for lo, hi in comm:
            tracer.record("gpu0", "x", "comm", lo, hi)
            tracer.record("gpu1", "c", "compute", lo, hi)
        ratio = tracer.overlap_ratio()
        if tracer.total("comm") > 0.0:
            assert ratio == 1.0 or abs(ratio - 1.0) < 1e-9

    @settings(max_examples=25, deadline=None)
    @given(tracers())
    def test_invariant_under_span_recording_order(self, tracer):
        reordered = Tracer()
        for span in reversed(tracer.spans):
            reordered.record(span.lane, span.name, span.category,
                             span.start, span.end)
        assert reordered.overlap_ratio() == tracer.overlap_ratio()


class TestUnion:
    @settings(max_examples=40, deadline=None)
    @given(intervals())
    def test_merge_produces_disjoint_sorted_intervals(self, ivs):
        merged = merge_intervals(ivs)
        for (lo1, hi1), (lo2, hi2) in zip(merged, merged[1:]):
            assert hi1 < lo2

    @settings(max_examples=40, deadline=None)
    @given(intervals(), intervals())
    def test_union_is_subadditive(self, a, b):
        joint = interval_union_length(a + b)
        assert joint <= interval_union_length(a) + interval_union_length(b) + 1e-6
        assert joint >= max(interval_union_length(a), interval_union_length(b)) - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(intervals())
    def test_union_invariant_under_duplication(self, ivs):
        assert interval_union_length(ivs + ivs) == interval_union_length(ivs)
