"""Property-based end-to-end checks of the communication protocols.

Every variant, on randomized domain shapes / rank counts / iteration
counts, must be bit-exact with the single-array reference — this is
the strongest statement that the signaling protocols (iteration-parity
semaphores, double buffering, halo writes) never read stale data or
race, regardless of configuration.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stencil import StencilConfig, jacobi_reference, run_variant, variant_names
from repro.stencil.base import default_initial

configs = st.tuples(
    st.integers(min_value=3, max_value=5),    # ranks
    st.integers(min_value=3, max_value=12),   # rows per rank (approx)
    st.integers(min_value=4, max_value=12),   # columns
    st.integers(min_value=1, max_value=9),    # iterations
    st.integers(min_value=0, max_value=99),   # seed
)


@given(configs, st.sampled_from(variant_names()))
@settings(max_examples=25, deadline=None)
def test_every_variant_bit_exact_on_random_configs(case, variant):
    ranks, rows_per_rank, cols, iterations, seed = case
    shape = (3 * ranks + rows_per_rank + 2, cols)
    config = StencilConfig(
        global_shape=shape, num_gpus=ranks, iterations=iterations, seed=seed,
    )
    result = run_variant(variant, config)
    expected = jacobi_reference(default_initial(shape, seed), iterations)
    np.testing.assert_array_equal(result.result, expected)


@given(configs)
@settings(max_examples=10, deadline=None)
def test_all_variants_agree_with_each_other(case):
    """Cross-check: every variant computes the same field."""
    ranks, rows_per_rank, cols, iterations, seed = case
    shape = (3 * ranks + rows_per_rank + 2, cols)
    config = StencilConfig(
        global_shape=shape, num_gpus=ranks, iterations=iterations, seed=seed,
    )
    results = {v: run_variant(v, config).result for v in variant_names()}
    reference = results.pop("cpufree")
    for name, value in results.items():
        np.testing.assert_array_equal(value, reference, err_msg=name)


@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=50),
)
@settings(max_examples=15, deadline=None)
def test_dace_pipelines_bit_exact_on_random_1d(ranks, tsteps, seed):
    """Generated baseline and CPU-Free code agree with a NumPy oracle."""
    from repro.hw import HGX_A100_8GPU
    from repro.runtime import MultiGPUContext
    from repro.sdfg.codegen import SDFGExecutor
    from repro.sdfg.distributed import SlabDecomposition1D
    from repro.sdfg.programs import (
        CONJUGATES_1D,
        baseline_pipeline,
        build_jacobi_1d_sdfg,
        cpufree_pipeline,
    )
    from repro.sim import Tracer

    rng = np.random.default_rng(seed)
    n_global = 6 * ranks
    u0 = rng.random(n_global + 2)

    A, B = np.array(u0), np.array(u0)
    for _ in range(1, tsteps):
        B[1:-1] = (A[:-2] + A[1:-1] + A[2:]) / 3.0
        A[1:-1] = (B[:-2] + B[1:-1] + B[2:]) / 3.0

    decomp = SlabDecomposition1D(n_global, ranks)
    for pipeline in ("baseline", "cpufree"):
        sdfg = build_jacobi_1d_sdfg()
        if pipeline == "baseline":
            sdfg = baseline_pipeline(sdfg)
        else:
            sdfg = cpufree_pipeline(sdfg, CONJUGATES_1D)
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
        report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, tsteps))
        got = decomp.gather(report.arrays, u0)
        np.testing.assert_array_equal(got, A, err_msg=pipeline)
