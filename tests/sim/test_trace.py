"""Tests for timeline tracing and interval arithmetic."""

import pytest

from repro.sim import (
    Span,
    Tracer,
    interval_union_length,
    merge_intervals,
    overlap_length,
)


class TestIntervalMath:
    def test_merge_empty(self):
        assert merge_intervals([]) == []

    def test_merge_disjoint(self):
        assert merge_intervals([(3, 4), (0, 1)]) == [(0, 1), (3, 4)]

    def test_merge_overlapping(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_merge_touching(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_merge_nested(self):
        assert merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]

    def test_union_length_counts_overlap_once(self):
        assert interval_union_length([(0, 2), (1, 3)]) == 3.0

    def test_overlap_length_basic(self):
        assert overlap_length([(0, 5)], [(3, 8)]) == 2.0

    def test_overlap_length_disjoint(self):
        assert overlap_length([(0, 1)], [(2, 3)]) == 0.0

    def test_overlap_length_multiple_pieces(self):
        a = [(0, 2), (4, 6)]
        b = [(1, 5)]
        assert overlap_length(a, b) == pytest.approx(2.0)  # [1,2) + [4,5)

    def test_overlap_symmetric(self):
        a = [(0, 3), (5, 9)]
        b = [(2, 6), (8, 12)]
        assert overlap_length(a, b) == overlap_length(b, a)


class TestTracer:
    def test_record_and_query(self):
        tr = Tracer()
        tr.record("gpu0.comp", "stencil", "compute", 0.0, 10.0)
        tr.record("gpu0.comm", "halo", "comm", 8.0, 12.0)
        assert tr.total("compute") == 10.0
        assert tr.total("comm") == 4.0
        assert tr.lanes() == ["gpu0.comm", "gpu0.comp"]

    def test_record_rejects_negative_span(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            tr.record("l", "x", "compute", 5.0, 4.0)

    def test_begin_end_pairs(self):
        tr = Tracer()
        tr.begin("lane", "op", "comm", 1.0)
        tr.end("lane", "op", 4.0)
        assert tr.spans == [Span("lane", "op", "comm", 1.0, 4.0)]
        assert tr.spans[0].duration == 3.0

    def test_overlap_ratio_full(self):
        tr = Tracer()
        tr.record("a", "comp", "compute", 0.0, 10.0)
        tr.record("b", "comm", "comm", 2.0, 6.0)
        assert tr.overlap_ratio() == pytest.approx(1.0)

    def test_overlap_ratio_partial(self):
        tr = Tracer()
        tr.record("a", "comp", "compute", 0.0, 4.0)
        tr.record("b", "comm", "comm", 2.0, 10.0)
        # comm = 8 units, overlapped = 2 units
        assert tr.overlap_ratio() == pytest.approx(0.25)

    def test_overlap_ratio_no_comm_is_zero(self):
        tr = Tracer()
        tr.record("a", "comp", "compute", 0.0, 4.0)
        assert tr.overlap_ratio() == 0.0

    def test_lane_prefix_filtering(self):
        tr = Tracer()
        tr.record("gpu0.s", "k", "compute", 0.0, 5.0)
        tr.record("gpu1.s", "k", "compute", 0.0, 3.0)
        assert tr.total("compute", lane_prefix="gpu1") == 3.0

    def test_busy_per_lane(self):
        tr = Tracer()
        tr.record("l1", "a", "compute", 0.0, 2.0)
        tr.record("l1", "b", "comm", 1.0, 4.0)
        tr.record("l2", "c", "compute", 0.0, 1.0)
        busy = tr.busy_per_lane()
        assert busy["l1"] == 4.0
        assert busy["l2"] == 1.0

    def test_render_ascii_nonempty(self):
        tr = Tracer()
        tr.record("gpu0", "k", "compute", 0.0, 5.0)
        tr.record("gpu0", "h", "comm", 5.0, 6.0)
        art = tr.render_ascii(width=40)
        assert "gpu0" in art
        assert "#" in art and "~" in art

    def test_render_ascii_empty(self):
        assert Tracer().render_ascii() == "(empty timeline)"
