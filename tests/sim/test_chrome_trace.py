"""Tests for the Chrome Tracing export."""

import json
import pathlib

from repro.sim import Tracer

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_chrome_trace.json"


def make_tracer():
    tr = Tracer()
    tr.record("gpu0.stream", "jacobi", "compute", 0.0, 10.0)
    tr.record("gpu0.stream", "halo", "comm", 10.0, 12.0)
    tr.record("host0", "launch", "api", 0.0, 3.2)
    return tr


def test_events_cover_all_spans():
    tr = make_tracer()
    events = tr.to_chrome_trace()
    duration_events = [e for e in events if e["ph"] == "X"]
    assert len(duration_events) == 3


def test_metadata_names_lanes():
    tr = make_tracer()
    events = tr.to_chrome_trace()
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in meta} == {"gpu0.stream", "host0"}


def test_lane_maps_to_consistent_tid():
    tr = make_tracer()
    events = tr.to_chrome_trace()
    by_name = {}
    for e in events:
        if e["ph"] == "X":
            by_name.setdefault(e["name"], set()).add(e["tid"])
    # both gpu0.stream spans share a tid, distinct from host0's
    assert by_name["jacobi"] == by_name["halo"]
    launch_tid = by_name["launch"].pop()
    assert launch_tid not in by_name["jacobi"]


def test_durations_and_timestamps_in_microseconds():
    tr = make_tracer()
    events = {e["name"]: e for e in tr.to_chrome_trace() if e["ph"] == "X"}
    assert events["jacobi"]["ts"] == 0.0
    assert events["jacobi"]["dur"] == 10.0
    assert events["halo"]["ts"] == 10.0
    assert events["halo"]["cat"] == "comm"


def test_output_is_json_serializable():
    tr = make_tracer()
    text = json.dumps(tr.to_chrome_trace())
    parsed = json.loads(text)
    assert isinstance(parsed, list)


def test_events_sorted_by_start_time():
    tr = Tracer()
    tr.record("l", "late", "compute", 5.0, 6.0)
    tr.record("l", "early", "compute", 1.0, 2.0)
    names = [e["name"] for e in tr.to_chrome_trace() if e["ph"] == "X"]
    assert names == ["early", "late"]


def test_empty_tracer_gives_empty_trace():
    assert Tracer().to_chrome_trace() == []


def make_golden_tracer():
    """Fixed scenario exercising every event type the export emits:
    lane metadata (M), durations (X), flow start/finish (s/f), and
    counter samples (C)."""
    tr = Tracer()
    tr.record("gpu0.stream", "jacobi", "compute", 0.0, 10.0)
    tr.record("gpu0.stream", "putmem_signal", "comm", 10.0, 12.5,
              meta={"flow_s": 1})
    tr.record("gpu1.stream", "signal_wait_until", "sync", 9.0, 12.5,
              meta={"flow_f": 1})
    tr.record("gpu1.stream", "jacobi", "compute", 12.5, 22.5)
    tr.record("host0", "launch", "api", 0.0, 0.0)
    tr.add_counter("nvshmem.pending.pe1", 10.0, 1)
    tr.add_counter("nvshmem.pending.pe1", 12.5, 0)
    return tr


def test_golden_trace_matches_committed_file():
    """Any change to the export format must update the golden file
    (regenerate with ``make_golden_tracer().to_chrome_trace()``) —
    a deliberate speed bump on silently breaking Perfetto consumers."""
    events = make_golden_tracer().to_chrome_trace()
    golden = json.loads(GOLDEN_PATH.read_text())
    assert events == golden


def test_golden_trace_covers_every_event_type():
    phases = {e["ph"] for e in make_golden_tracer().to_chrome_trace()}
    assert phases == {"M", "X", "s", "f", "C"}
