"""Edge cases of the tracer left unpinned by the mainline trace tests:
zero-duration-only timelines, ``close_all`` hygiene semantics, counter
samples interleaved with flow links in the Chrome export, and the lane
naming helpers the per-PE accounting is built on."""

import pytest

from repro.sim.trace import Tracer, pe_of_lane, wire_route


class TestLaneHelpers:
    def test_gpu_lane_maps_to_device(self):
        assert pe_of_lane("gpu0.compute") == 0
        assert pe_of_lane("gpu13.stream2") == 13

    def test_host_lane_maps_to_rank(self):
        assert pe_of_lane("host0") == 0
        assert pe_of_lane("host7") == 7

    def test_wire_lane_charges_the_source_pe(self):
        assert pe_of_lane("wire.pe2->pe3") == 2

    def test_non_pe_lanes_are_none(self):
        for lane in ("engine", "gpu.compute", "hostx", "host1.extra",
                     "wire.pe1->gpu2", ""):
            assert pe_of_lane(lane) is None

    def test_wire_route_extracts_both_endpoints(self):
        assert wire_route("wire.pe0->pe5") == (0, 5)

    def test_wire_route_rejects_non_wire_lanes(self):
        assert wire_route("gpu0.compute") is None
        assert wire_route("host0") is None
        assert wire_route("wire.pe1->pe") is None


class TestZeroDurationRendering:
    def test_all_zero_duration_spans_render_as_markers(self):
        # extent is 0 -> the renderer must not divide by zero, and every
        # span collapses to the '*' glyph rather than a stretched bar
        tracer = Tracer()
        tracer.record("gpu0.compute", "mark_a", "compute", 5.0, 5.0)
        tracer.record("gpu1.compute", "mark_b", "comm", 5.0, 5.0)
        text = tracer.render_ascii(width=40)
        lanes = [line for line in text.splitlines() if "gpu" in line]
        assert len(lanes) == 2
        for line in lanes:
            assert line.count("*") == 1
            assert "#" not in line and "~" not in line

    def test_zero_duration_marker_lands_at_its_timestamp(self):
        tracer = Tracer()
        tracer.record("gpu0.compute", "work", "compute", 0.0, 10.0)
        tracer.record("gpu0.compute", "mark", "compute", 10.0, 10.0)
        text = tracer.render_ascii(width=40)
        [row] = [line for line in text.splitlines() if "gpu0" in line]
        bar = row.split("|")[1]
        assert bar.rstrip().endswith("*")  # marker sits at t1, after the bar

    def test_empty_timeline(self):
        assert Tracer().render_ascii() == "(empty timeline)"


class TestCloseAll:
    def test_closes_dangling_spans_sorted_and_clears(self):
        tracer = Tracer()
        tracer.begin("gpu1.s", "late", "compute", 3.0)
        tracer.begin("gpu0.s", "early", "comm", 1.0)
        closed = tracer.close_all(9.0)
        assert closed == [("gpu0.s", "early"), ("gpu1.s", "late")]
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["early"].end == 9.0 and by_name["early"].category == "comm"
        assert by_name["late"].end == 9.0

    def test_second_call_is_a_noop(self):
        tracer = Tracer()
        tracer.begin("gpu0.s", "work", "compute", 1.0)
        tracer.close_all(5.0)
        n_spans = len(tracer.spans)
        assert tracer.close_all(99.0) == []
        assert len(tracer.spans) == n_spans

    def test_now_before_start_clamps_to_zero_duration(self):
        # crash hygiene must never manufacture a negative-duration span
        tracer = Tracer()
        tracer.begin("gpu0.s", "work", "compute", 10.0)
        tracer.close_all(4.0)
        [span] = tracer.spans
        assert (span.start, span.end) == (10.0, 10.0)

    def test_end_after_close_all_raises(self):
        tracer = Tracer()
        tracer.begin("gpu0.s", "work", "compute", 1.0)
        tracer.close_all(5.0)
        with pytest.raises(ValueError, match="without a matching begin"):
            tracer.end("gpu0.s", "work", 6.0)

    def test_negative_duration_record_raises(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            Tracer().record("gpu0.s", "bad", "compute", 5.0, 4.0)


class TestCountersInterleavedWithFlows:
    """Counter ("C") events and flow ("s"/"f") events share the export
    path; neither may perturb the other."""

    def _tracer(self):
        tracer = Tracer()
        tracer.record("gpu0.c", "produce", "compute", 0.0, 4.0,
                      meta={"flow_s": 71})
        tracer.add_counter("inflight", 2.0, 1.0)
        tracer.record("gpu1.c", "wait", "sync", 0.0, 4.0,
                      meta={"flow_f": 71})
        tracer.add_counter("inflight", 4.0, 0.0)
        tracer.add_instant("fault", 3.0, "fault", {"pe": 1})
        return tracer

    def test_all_phases_coexist(self):
        events = self._tracer().to_chrome_trace()
        phases = {e["ph"] for e in events}
        assert {"M", "X", "s", "f", "C", "i"} <= phases

    def test_counters_keep_their_samples(self):
        events = self._tracer().to_chrome_trace()
        counters = [e for e in events if e["ph"] == "C"]
        assert [(e["ts"], e["args"]["value"]) for e in counters] == \
            [(2.0, 1.0), (4.0, 0.0)]
        assert all(e["name"] == "inflight" for e in counters)

    def test_flow_pair_survives_and_is_renumbered(self):
        events = self._tracer().to_chrome_trace()
        start = [e for e in events if e["ph"] == "s"]
        finish = [e for e in events if e["ph"] == "f"]
        assert len(start) == 1 and len(finish) == 1
        # raw id 71 is canonicalized to first-appearance numbering
        assert start[0]["id"] == finish[0]["id"] == 1
        assert finish[0]["bp"] == "e"

    def test_orphan_flow_finish_is_dropped(self):
        tracer = Tracer()
        tracer.record("gpu0.c", "wait", "sync", 0.0, 1.0,
                      meta={"flow_f": 99})
        tracer.add_counter("inflight", 0.5, 1.0)
        events = tracer.to_chrome_trace()
        assert not [e for e in events if e["ph"] == "f"]
        assert len([e for e in events if e["ph"] == "C"]) == 1

    def test_export_is_deterministic(self):
        assert self._tracer().to_chrome_trace() == \
            self._tracer().to_chrome_trace()
