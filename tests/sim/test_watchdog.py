"""Watchdog, wait timeouts, and the enriched deadlock report."""

import math

import pytest

from repro.sim import (
    TIMEOUT,
    DeadlockError,
    Delay,
    Flag,
    Simulator,
    WaitFlag,
    WaitProcess,
    Watchdog,
    WatchdogError,
)


class TestDelayValidation:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Delay(-1.0)

    def test_nan_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Delay(math.nan)

    def test_zero_and_positive_ok(self):
        Delay(0.0)
        Delay(2.5)


class TestWaitFlagTimeout:
    def test_timeout_resumes_with_sentinel(self):
        sim = Simulator()
        flag = Flag(sim, 0, name="never")
        seen = []

        def waiter():
            result = yield WaitFlag(flag, lambda v: v >= 1, timeout=5.0)
            seen.append((result, sim.now))

        sim.spawn(waiter())
        sim.run()
        assert seen == [(TIMEOUT, 5.0)]

    def test_satisfied_wait_cancels_timeout(self):
        """A resolved wait must discard its timeout token — the dead
        token must not inflate final simulated time past the resolution."""
        sim = Simulator()
        flag = Flag(sim, 0, name="soon")
        seen = []

        def setter():
            yield Delay(2.0)
            flag.set(1)

        def waiter():
            result = yield WaitFlag(flag, lambda v: v >= 1, timeout=100.0)
            seen.append(result)

        sim.spawn(setter())
        sim.spawn(waiter())
        total = sim.run()
        assert seen == [1]
        assert total == 2.0  # not 100.0

    def test_timeout_then_rewait_succeeds(self):
        sim = Simulator()
        flag = Flag(sim, 0, name="late")
        seen = []

        def setter():
            yield Delay(10.0)
            flag.set(7)

        def waiter():
            result = yield WaitFlag(flag, lambda v: v >= 1, timeout=3.0)
            assert result is TIMEOUT
            result = yield WaitFlag(flag, lambda v: v >= 1)
            seen.append((result, sim.now))

        sim.spawn(setter())
        sim.spawn(waiter())
        sim.run()
        assert seen == [(7, 10.0)]

    def test_nonpositive_timeout_rejected(self):
        sim = Simulator()
        flag = Flag(sim, 0)
        with pytest.raises(ValueError, match="timeout"):
            WaitFlag(flag, lambda v: v > 0, timeout=0.0)


class TestWatchdog:
    def _hang(self, budget=10.0, keep_alive_until=100.0):
        """One proc stuck on a watched flag, one keeping the heap busy."""
        sim = Simulator()
        wd = Watchdog(budget, name="test")
        sim.attach_watchdog(wd)
        flag = Flag(sim, 0, name="halo_sig")
        wd.watch(flag)

        def stuck():
            yield WaitFlag(flag, lambda v: v >= 1)

        def busy():
            while sim.now < keep_alive_until:
                yield Delay(7.0)

        sim.spawn(stuck(), name="stuck_pe1")
        sim.spawn(busy(), name="busy_pe0")
        return sim, wd

    def test_fires_at_deadline_while_heap_alive(self):
        sim, wd = self._hang(budget=10.0)
        with pytest.raises(WatchdogError) as err:
            sim.run()
        assert wd.fired
        assert sim.now == 10.0  # blocked-since 0 + budget
        message = str(err.value)
        assert "stuck_pe1" in message
        assert "halo_sig" in message
        assert "budget" in message

    def test_fires_on_drain_before_deadline(self):
        """Quiescence-without-progress: the heap empties while a proc
        still waits on a watched flag — diagnose instead of deadlock."""
        sim = Simulator()
        wd = Watchdog(1000.0, name="test")
        sim.attach_watchdog(wd)
        flag = Flag(sim, 0, name="halo_sig")
        wd.watch(flag)

        def stuck():
            yield WaitFlag(flag, lambda v: v >= 1)

        sim.spawn(stuck(), name="stuck_pe1")
        with pytest.raises(WatchdogError, match="halo_sig"):
            sim.run()

    def test_watchdog_error_is_deadlock_error(self):
        assert issubclass(WatchdogError, DeadlockError)

    def test_no_fire_when_signal_arrives_in_time(self):
        sim = Simulator()
        wd = Watchdog(50.0, name="test")
        sim.attach_watchdog(wd)
        flag = Flag(sim, 0, name="halo_sig")
        wd.watch(flag)
        seen = []

        def setter():
            yield Delay(5.0)
            flag.set(1)

        def waiter():
            value = yield WaitFlag(flag, lambda v: v >= 1)
            seen.append(value)

        sim.spawn(setter())
        sim.spawn(waiter())
        sim.run()
        assert not wd.fired
        assert seen == [1]

    def test_rearmed_wait_gets_fresh_budget(self):
        """Each successful wait restarts the clock: repeated short waits
        on a watched flag never trip a budget larger than each gap."""
        sim = Simulator()
        wd = Watchdog(10.0, name="test")
        sim.attach_watchdog(wd)
        flag = Flag(sim, 0, name="halo_sig")
        wd.watch(flag)

        def setter():
            for it in range(1, 6):
                yield Delay(8.0)  # each gap under budget, total far over
                flag.set(it)

        def waiter():
            for it in range(1, 6):
                yield WaitFlag(flag, lambda v, it=it: v >= it)

        sim.spawn(setter())
        sim.spawn(waiter())
        sim.run()
        assert not wd.fired

    def test_context_provider_lines_in_message(self):
        sim = Simulator()
        wd = Watchdog(10.0, name="test")
        wd.add_context(lambda flag: f"last attempt for {flag.name}: lost")
        sim.attach_watchdog(wd)
        flag = Flag(sim, 0, name="halo_sig")
        wd.watch(flag)

        def stuck():
            yield WaitFlag(flag, lambda v: v >= 1)

        def busy():
            while sim.now < 100.0:
                yield Delay(7.0)

        sim.spawn(stuck(), name="stuck_pe1")
        sim.spawn(busy(), name="busy_pe0")
        with pytest.raises(WatchdogError, match="last attempt for halo_sig: lost"):
            sim.run()

    def test_per_flag_budget_override(self):
        sim = Simulator()
        wd = Watchdog(1000.0, name="test")
        sim.attach_watchdog(wd)
        flag = Flag(sim, 0, name="halo_sig")
        wd.watch(flag, budget_us=5.0)

        def stuck():
            yield WaitFlag(flag, lambda v: v >= 1)

        def busy():
            while sim.now < 100.0:
                yield Delay(7.0)

        sim.spawn(stuck(), name="stuck")
        sim.spawn(busy(), name="busy")
        with pytest.raises(WatchdogError):
            sim.run()
        assert sim.now == 5.0


class TestDeadlockReport:
    def test_report_names_flag_and_block_time(self):
        sim = Simulator()
        flag = Flag(sim, 0, name="stuck_flag")

        def stuck():
            yield Delay(3.0)
            yield WaitFlag(flag, lambda v: v >= 1)

        sim.spawn(stuck(), name="stuck_proc")
        with pytest.raises(DeadlockError) as err:
            sim.run()
        message = str(err.value)
        assert "stuck_proc" in message
        assert "stuck_flag" in message
        assert "t=3.000" in message
        assert "spawned at" in message

    def test_join_chain_names_root_blocker(self):
        """A -> joins B -> joins C (stuck on a flag): the report chases
        the chain and names C as the root blocker."""
        sim = Simulator()
        flag = Flag(sim, 0, name="root_flag")

        def leaf():
            yield WaitFlag(flag, lambda v: v >= 1)

        def middle(proc):
            yield WaitProcess(proc)

        c = sim.spawn(leaf(), name="c_leaf")
        b = sim.spawn(middle(c), name="b_middle")
        sim.spawn(middle(b), name="a_top")
        with pytest.raises(DeadlockError) as err:
            sim.run()
        message = str(err.value)
        assert "root blocker" in message
        assert "c_leaf" in message
        assert "root_flag" in message
        assert "join chain" in message
