"""Tests for the tracer's observability enrichments: descriptive
``end()`` errors, ``close_all``, counter samples, flow events, and the
upgraded ASCII renderer."""

import pytest

from repro.sim.trace import Tracer


class TestEndErrors:
    def test_end_without_begin_names_lane_and_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError) as err:
            tracer.end("gpu0", "halo", now=1.0)
        message = str(err.value)
        assert "'halo'" in message and "'gpu0'" in message
        assert "without a matching begin()" in message

    def test_end_twice_raises_on_second(self):
        tracer = Tracer()
        tracer.begin("gpu0", "halo", "comm", now=0.0)
        tracer.end("gpu0", "halo", now=1.0)
        with pytest.raises(ValueError, match="matching begin"):
            tracer.end("gpu0", "halo", now=2.0)


class TestCloseAll:
    def test_closes_dangling_spans_at_now(self):
        tracer = Tracer()
        tracer.begin("gpu0", "a", "compute", now=0.0)
        tracer.begin("gpu1", "b", "sync", now=2.0)
        closed = tracer.close_all(now=5.0)
        assert closed == [("gpu0", "a"), ("gpu1", "b")]
        assert {(s.lane, s.name, s.end) for s in tracer.spans} == {
            ("gpu0", "a", 5.0), ("gpu1", "b", 5.0),
        }

    def test_never_creates_negative_spans(self):
        tracer = Tracer()
        tracer.begin("gpu0", "late", "api", now=10.0)
        tracer.close_all(now=3.0)
        (span,) = tracer.spans
        assert span.start == span.end == 10.0

    def test_idempotent(self):
        tracer = Tracer()
        tracer.begin("gpu0", "a", "compute", now=0.0)
        tracer.close_all(now=1.0)
        assert tracer.close_all(now=2.0) == []
        assert len(tracer.spans) == 1


class TestCounterSamples:
    def test_samples_become_counter_events(self):
        tracer = Tracer()
        tracer.record("gpu0", "work", "compute", 0.0, 1.0)
        tracer.add_counter("pending", 0.5, 2)
        tracer.add_counter("pending", 0.8, 1)
        counters = [e for e in tracer.to_chrome_trace() if e["ph"] == "C"]
        assert [(e["ts"], e["args"]["value"]) for e in counters] == [(0.5, 2), (0.8, 1)]
        assert all(e["name"] == "pending" for e in counters)


class TestFlowEvents:
    def test_matched_flow_emits_start_and_finish(self):
        tracer = Tracer()
        tracer.record("gpu0", "put", "comm", 0.0, 2.0, meta={"flow_s": 11})
        tracer.record("gpu1", "wait", "sync", 0.0, 3.0, meta={"flow_f": 11})
        events = tracer.to_chrome_trace()
        (start,) = [e for e in events if e["ph"] == "s"]
        (finish,) = [e for e in events if e["ph"] == "f"]
        # ids are canonicalized by first appearance in span order,
        # so the raw allocation id (11) does not leak into the export
        assert start["id"] == finish["id"] == 1
        assert start["ts"] == 2.0  # arrow leaves when the producer ends
        assert finish["ts"] == 3.0
        assert finish["bp"] == "e"

    def test_orphan_finish_is_dropped(self):
        tracer = Tracer()
        tracer.record("gpu1", "wait", "sync", 0.0, 3.0, meta={"flow_f": 42})
        events = tracer.to_chrome_trace()
        assert not [e for e in events if e["ph"] in ("s", "f")]


class TestRenderAscii:
    def _tracer(self):
        tracer = Tracer()
        tracer.record("gpu0", "work", "compute", 0.0, 6.0)
        tracer.record("gpu0", "put", "comm", 6.0, 8.0)
        tracer.record("gpu1", "wait", "sync", 0.0, 8.0)
        tracer.record("gpu1", "flagset", "api", 8.0, 8.0)
        return tracer

    def test_ruler_row_with_us_labels(self):
        text = self._tracer().render_ascii(width=40)
        lines = text.splitlines()
        assert "t (us)" in lines[1]
        assert lines[1].count("+") == 5  # ends + quartile ticks
        assert "0.0" in lines[0] and "8.0" in lines[0]

    def test_legend_line(self):
        text = self._tracer().render_ascii()
        assert "# compute" in text and "~ comm" in text
        assert "| sync" in text and ". api" in text
        assert "* zero-duration" in text

    def test_zero_duration_span_renders_star(self):
        text = self._tracer().render_ascii(width=40)
        gpu1_row = next(l for l in text.splitlines() if l.lstrip().startswith("gpu1"))
        assert "*" in gpu1_row

    def test_empty_timeline(self):
        assert Tracer().render_ascii() == "(empty timeline)"

    def test_category_glyphs_present(self):
        text = self._tracer().render_ascii(width=60)
        gpu0_row = next(l for l in text.splitlines() if l.lstrip().startswith("gpu0"))
        assert "#" in gpu0_row and "~" in gpu0_row
