"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    DeadlockError,
    Delay,
    Flag,
    ProcessFailed,
    SimulationError,
    Simulator,
    WaitFlag,
    WaitProcess,
)


def test_empty_run_finishes_at_zero():
    sim = Simulator()
    assert sim.run() == 0.0


def test_single_delay_advances_time():
    sim = Simulator()

    def proc():
        yield Delay(5.0)
        return 42

    p = sim.spawn(proc())
    assert sim.run() == 5.0
    assert p.result == 42
    assert not p.alive


def test_sequential_delays_accumulate():
    sim = Simulator()

    def proc():
        yield Delay(1.0)
        yield Delay(2.5)
        yield Delay(0.5)

    sim.spawn(proc())
    assert sim.run() == pytest.approx(4.0)


def test_zero_delay_is_legal():
    sim = Simulator()

    def proc():
        yield Delay(0.0)

    sim.spawn(proc())
    assert sim.run() == 0.0


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1.0)


def test_parallel_processes_run_to_max_time():
    sim = Simulator()
    order = []

    def worker(name, dt):
        yield Delay(dt)
        order.append(name)

    sim.spawn(worker("slow", 10.0))
    sim.spawn(worker("fast", 1.0))
    assert sim.run() == 10.0
    assert order == ["fast", "slow"]


def test_same_time_events_fifo_by_spawn_order():
    sim = Simulator()
    order = []

    def worker(name):
        yield Delay(1.0)
        order.append(name)

    for name in "abc":
        sim.spawn(worker(name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_wait_flag_blocks_until_set():
    sim = Simulator()
    flag = sim.flag(0, name="f")
    log = []

    def waiter():
        value = yield WaitFlag(flag, lambda v: v >= 3)
        log.append(("woke", sim.now, value))

    def setter():
        yield Delay(2.0)
        flag.set(1)
        yield Delay(2.0)
        flag.set(3)

    sim.spawn(waiter())
    sim.spawn(setter())
    sim.run()
    assert log == [("woke", 4.0, 3)]


def test_wait_flag_already_satisfied_resumes_immediately():
    sim = Simulator()
    flag = sim.flag(7)

    def waiter():
        v = yield WaitFlag(flag, lambda v: v == 7)
        assert v == 7
        yield Delay(1.0)

    sim.spawn(waiter())
    assert sim.run() == 1.0


def test_flag_add_wakes_waiters():
    sim = Simulator()
    flag = sim.flag(0)
    woke = []

    def waiter():
        yield WaitFlag(flag, lambda v: v >= 2)
        woke.append(sim.now)

    def adder():
        for _ in range(3):
            yield Delay(1.0)
            flag.add(1)

    sim.spawn(waiter())
    sim.spawn(adder())
    sim.run()
    assert woke == [2.0]
    assert flag.value == 3


def test_multiple_waiters_on_one_flag():
    sim = Simulator()
    flag = sim.flag(0)
    woke = []

    def waiter(threshold):
        yield WaitFlag(flag, lambda v, t=threshold: v >= t)
        woke.append(threshold)

    for t in (3, 1, 2):
        sim.spawn(waiter(t))

    def setter():
        yield Delay(1.0)
        flag.set(2)
        yield Delay(1.0)
        flag.set(3)

    sim.spawn(setter())
    sim.run()
    assert woke == [1, 2, 3]


def test_join_process_gets_result():
    sim = Simulator()

    def child():
        yield Delay(3.0)
        return "payload"

    def parent():
        c = sim.spawn(child(), name="child")
        result = yield WaitProcess(c)
        assert result == "payload"
        assert sim.now == 3.0

    sim.spawn(parent(), name="parent")
    sim.run()


def test_join_finished_process_returns_instantly():
    sim = Simulator()

    def child():
        return "early"
        yield  # pragma: no cover

    def parent():
        c = sim.spawn(child())
        yield Delay(5.0)
        result = yield WaitProcess(c)
        assert result == "early"

    sim.spawn(parent())
    sim.run()


def test_yield_process_directly_is_join_shorthand():
    sim = Simulator()

    def child():
        yield Delay(1.0)
        return 99

    def parent():
        result = yield sim.spawn(child())
        assert result == 99

    sim.spawn(parent())
    sim.run()


def test_deadlock_detection_names_blocked_process():
    sim = Simulator()
    flag = sim.flag(0, name="never_set")

    def stuck():
        yield WaitFlag(flag, lambda v: v == 1)

    sim.spawn(stuck(), name="stuck_proc")
    with pytest.raises(DeadlockError, match="stuck_proc"):
        sim.run()


def test_exception_in_process_propagates():
    sim = Simulator()

    def bad():
        yield Delay(1.0)
        raise ValueError("boom")

    sim.spawn(bad())
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_join_failed_process_raises_processfailed():
    sim = Simulator()

    def bad():
        return None
        yield  # pragma: no cover

    def parent(target):
        yield WaitProcess(target)

    p = sim.spawn(bad())
    p.alive = False
    p.error = RuntimeError("died")
    sim.spawn(parent(p))
    with pytest.raises(ProcessFailed):
        sim.run()


def test_unsupported_yield_value_raises():
    sim = Simulator()

    def weird():
        yield "not a command"

    sim.spawn(weird())
    with pytest.raises(SimulationError, match="unsupported command"):
        sim.run()


def test_spawn_rejects_non_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_run_until_pauses_and_resumes():
    sim = Simulator()
    log = []

    def proc():
        yield Delay(10.0)
        log.append(sim.now)

    sim.spawn(proc())
    assert sim.run(until=4.0) == 4.0
    assert log == []
    assert sim.run() == 10.0
    assert log == [10.0]


def test_determinism_identical_runs():
    def build():
        sim = Simulator()
        flag = sim.flag(0)
        trace = []

        def ping():
            for i in range(5):
                yield Delay(1.5)
                flag.add(1)
                trace.append(("ping", sim.now))

        def pong():
            for i in range(1, 6):
                yield WaitFlag(flag, lambda v, i=i: v >= i)
                trace.append(("pong", sim.now))

        sim.spawn(ping())
        sim.spawn(pong())
        sim.run()
        return trace

    assert build() == build()
