"""Fail-stop process kill and weak calendar events."""

import pytest

from repro.sim import (
    Delay,
    Flag,
    ProcessFailed,
    ProcessKilled,
    Simulator,
    WaitFlag,
    WaitProcess,
)


def _sleeper(total, step=1.0):
    t = 0.0
    while t < total:
        yield Delay(step)
        t += step


class TestKill:
    def test_kill_stops_process_mid_flight(self):
        sim = Simulator()
        victim = sim.spawn(_sleeper(100.0), name="victim")
        sim.call_at(3.0, lambda: sim.kill(victim))
        assert sim.run() == 3.0
        assert not victim.alive
        assert isinstance(victim.error, ProcessKilled)

    def test_kill_finished_process_is_noop(self):
        sim = Simulator()
        victim = sim.spawn(_sleeper(1.0), name="victim")
        sim.run()
        assert sim.kill(victim) is False

    def test_killed_process_pending_events_discarded(self):
        """The victim's queued Delay resume must not execute (its
        generator is closed), and must not advance the clock past the
        last live event."""
        sim = Simulator()
        steps = []

        def victim_proc():
            while True:
                yield Delay(10.0)
                steps.append(sim.now)

        victim = sim.spawn(victim_proc(), name="victim")
        sim.spawn(_sleeper(4.0, step=2.0), name="survivor")
        sim.call_at(5.0, lambda: sim.kill(victim))
        assert sim.run() == 5.0
        assert steps == []

    def test_kill_matching_by_name_in_spawn_order(self):
        sim = Simulator()
        a = sim.spawn(_sleeper(50.0), name="gpu1.a")
        b = sim.spawn(_sleeper(50.0), name="gpu0.b")
        c = sim.spawn(_sleeper(50.0), name="gpu1.c")

        def cut():
            killed = sim.kill_matching(lambda p: p.name.startswith("gpu1."))
            assert killed == [a, c]

        sim.call_at(2.0, cut)
        sim.run()
        assert b.alive is False  # b finished normally afterwards
        assert b.error is None
        assert isinstance(a.error, ProcessKilled)

    def test_join_after_kill_raises_process_failed(self):
        sim = Simulator()
        victim = sim.spawn(_sleeper(100.0), name="victim")
        sim.call_at(1.0, lambda: sim.kill(victim))

        def joiner():
            yield Delay(5.0)  # join strictly after the kill
            yield WaitProcess(victim)

        sim.spawn(joiner(), name="joiner")
        with pytest.raises(ProcessFailed) as excinfo:
            sim.run()
        assert isinstance(excinfo.value.__cause__, ProcessKilled)

    def test_killed_flag_waiter_never_wakes(self):
        sim = Simulator()
        flag = Flag(sim)
        woke = []

        def waiter():
            yield WaitFlag(flag, ge=1)
            woke.append(sim.now)

        victim = sim.spawn(waiter(), name="victim")

        def driver():
            yield Delay(1.0)
            sim.kill(victim)
            yield Delay(1.0)
            flag.set(1)

        sim.spawn(driver(), name="driver")
        sim.run()
        assert woke == []
        assert not victim.alive


class TestWeakCallbacks:
    def test_weak_callback_never_extends_the_run(self):
        sim = Simulator()
        fired = []
        sim.spawn(_sleeper(3.0), name="work")
        sim.call_at(1000.0, lambda: fired.append(sim.now), weak=True)
        assert sim.run() == 3.0
        assert fired == []

    def test_weak_callback_fires_when_strong_work_remains(self):
        sim = Simulator()
        fired = []
        sim.spawn(_sleeper(10.0), name="work")
        sim.call_at(4.0, lambda: fired.append(sim.now), weak=True)
        assert sim.run() == 10.0
        assert fired == [4.0]

    def test_strong_callback_does_extend_the_run(self):
        sim = Simulator()
        fired = []
        sim.call_at(7.0, lambda: fired.append(sim.now))
        assert sim.run() == 7.0
        assert fired == [7.0]

    def test_weak_only_run_ends_at_zero(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: None, weak=True)
        assert sim.run() == 0.0

    def test_past_callback_rejected(self):
        sim = Simulator()
        sim.spawn(_sleeper(2.0), name="work")
        sim.run()
        with pytest.raises(Exception, match="past"):
            sim.call_at(1.0, lambda: None)
