"""Tests for semaphores, mutexes, and channels."""

import pytest

from repro.sim import Channel, Delay, Mutex, Semaphore, Simulator


def test_semaphore_limits_concurrency():
    sim = Simulator()
    sem = Semaphore(sim, value=2)
    active = []
    peak = []

    def worker(i):
        yield from sem.acquire()
        active.append(i)
        peak.append(len(active))
        yield Delay(1.0)
        active.remove(i)
        sem.release()

    for i in range(5):
        sim.spawn(worker(i))
    sim.run()
    assert max(peak) == 2
    assert sem.value == 2


def test_semaphore_initial_zero_blocks_until_release():
    sim = Simulator()
    sem = Semaphore(sim, value=0)
    got = []

    def waiter():
        yield from sem.acquire()
        got.append(sim.now)

    def releaser():
        yield Delay(3.0)
        sem.release()

    sim.spawn(waiter())
    sim.spawn(releaser())
    sim.run()
    assert got == [3.0]


def test_semaphore_negative_value_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Semaphore(sim, value=-1)


def test_mutex_serializes_critical_section():
    sim = Simulator()
    mutex = Mutex(sim)
    events = []

    def worker(name):
        yield from mutex.acquire()
        events.append((name, "enter", sim.now))
        yield Delay(2.0)
        events.append((name, "exit", sim.now))
        mutex.release()

    sim.spawn(worker("a"))
    sim.spawn(worker("b"))
    sim.run()
    # b cannot enter before a exits
    enters = {name: t for name, kind, t in events if kind == "enter"}
    exits = {name: t for name, kind, t in events if kind == "exit"}
    assert enters["b"] >= exits["a"]


def test_channel_fifo_order():
    sim = Simulator()
    chan = Channel(sim)
    received = []

    def producer():
        for i in range(4):
            yield Delay(1.0)
            chan.put(i)

    def consumer():
        for _ in range(4):
            item = yield from chan.get()
            received.append(item)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert received == [0, 1, 2, 3]


def test_channel_get_blocks_until_put():
    sim = Simulator()
    chan = Channel(sim)
    got = []

    def consumer():
        item = yield from chan.get()
        got.append((item, sim.now))

    def producer():
        yield Delay(7.0)
        chan.put("x")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [("x", 7.0)]


def test_channel_len_and_buffering():
    sim = Simulator()
    chan = Channel(sim)
    chan.put(1)
    chan.put(2)
    assert len(chan) == 2

    def consumer():
        a = yield from chan.get()
        b = yield from chan.get()
        assert (a, b) == (1, 2)

    sim.spawn(consumer())
    sim.run()
    assert len(chan) == 0


def test_two_consumers_split_items_deterministically():
    sim = Simulator()
    chan = Channel(sim)
    received = {"a": [], "b": []}

    def consumer(name):
        for _ in range(2):
            item = yield from chan.get()
            received[name].append(item)

    def producer():
        for i in range(4):
            yield Delay(1.0)
            chan.put(i)

    sim.spawn(consumer("a"))
    sim.spawn(consumer("b"))
    sim.spawn(producer())
    sim.run()
    assert sorted(received["a"] + received["b"]) == [0, 1, 2, 3]
