"""Edge-case tests for the DES engine."""

import pytest

from repro.sim import (
    DeadlockError,
    Delay,
    Flag,
    Simulator,
    WaitFlag,
    WaitProcess,
)


def test_spawn_during_run():
    """A process can spawn others mid-flight; they are scheduled at
    the current time."""
    sim = Simulator()
    log = []

    def child(name):
        yield Delay(1.0)
        log.append((name, sim.now))

    def parent():
        yield Delay(5.0)
        c = sim.spawn(child("dynamic"))
        yield WaitProcess(c)

    sim.spawn(parent())
    sim.run()
    assert log == [("dynamic", 6.0)]


def test_deeply_nested_joins():
    sim = Simulator()

    def leaf():
        yield Delay(1.0)
        return 1

    def node(depth):
        if depth == 0:
            result = yield WaitProcess(sim.spawn(leaf()))
        else:
            result = yield WaitProcess(sim.spawn(node(depth - 1)))
        return result + 1

    root = sim.spawn(node(20))
    sim.run()
    assert root.result == 22
    assert sim.now == 1.0


def test_many_processes_scale():
    sim = Simulator()
    done = []

    def worker(i):
        yield Delay(float(i % 7))
        done.append(i)

    for i in range(2000):
        sim.spawn(worker(i))
    sim.run()
    assert len(done) == 2000


def test_flag_set_to_same_value_skips_waiter_scan():
    """A no-op write is not a wake event: predicates are functions of
    the flag value, so re-checking them on an unchanged value is pure
    scheduler churn (and is skipped)."""
    sim = Simulator()
    flag = Flag(sim, 0)
    woke = []

    def waiter():
        yield WaitFlag(flag, lambda v: v >= 1)
        woke.append(sim.now)

    def setter():
        yield Delay(1.0)
        flag.set(0)  # no-op write: nobody wakes
        yield Delay(1.0)
        flag.set(1)

    sim.spawn(waiter())
    sim.spawn(setter())
    sim.run()
    assert woke == [2.0]
    assert flag.value == 1


def test_process_returning_none():
    sim = Simulator()

    def proc():
        yield Delay(1.0)

    p = sim.spawn(proc())
    sim.run()
    assert p.result is None


def test_generator_that_never_yields():
    sim = Simulator()

    def instant():
        return 42
        yield  # pragma: no cover

    p = sim.spawn(instant())
    sim.run()
    assert p.result == 42


def test_multiple_joiners_on_one_process():
    sim = Simulator()
    got = []

    def producer():
        yield Delay(3.0)
        return "value"

    target = sim.spawn(producer())

    def consumer(i):
        result = yield WaitProcess(target)
        got.append((i, result))

    for i in range(3):
        sim.spawn(consumer(i))
    sim.run()
    assert sorted(got) == [(0, "value"), (1, "value"), (2, "value")]


def test_deadlock_reports_all_blocked_processes():
    sim = Simulator()
    f1, f2 = sim.flag(0, "f1"), sim.flag(0, "f2")

    def stuck(flag):
        yield WaitFlag(flag, lambda v: v == 1)

    sim.spawn(stuck(f1), name="alpha")
    sim.spawn(stuck(f2), name="beta")
    with pytest.raises(DeadlockError) as err:
        sim.run()
    assert "alpha" in str(err.value) and "beta" in str(err.value)


def test_run_until_zero_on_pending_events():
    sim = Simulator()

    def proc():
        yield Delay(5.0)

    sim.spawn(proc())
    assert sim.run(until=0.0) == 0.0
    # events still pending; finishing the run completes them
    assert sim.run() == 5.0


def test_time_never_goes_backwards():
    sim = Simulator()
    stamps = []

    def worker(dt):
        for _ in range(5):
            yield Delay(dt)
            stamps.append(sim.now)

    sim.spawn(worker(1.0))
    sim.spawn(worker(0.3))
    sim.run()
    assert stamps == sorted(stamps)
