"""Sharded calendar dispatch: byte-identical to the flat scheduler."""

import random

import pytest

from repro.sim import Delay, Flag, SimulationError, Simulator, WaitFlag


def _workload(sim, order, n_chains=12, steps=8, seed=7):
    """A messy mix of delays, flag waits, and cross-chain signals."""
    rng = random.Random(seed)
    flags = [Flag(sim, 0, name=f"f{i}") for i in range(n_chains)]
    delays = [[rng.choice((0.0, 0.5, 1.0, 1.0, 2.5)) for _ in range(steps)]
              for _ in range(n_chains)]

    def chain(i):
        for step in range(steps):
            yield Delay(delays[i][step])
            order.append((sim.now, i, step))
            flags[i].add(1)
            if i % 3 == 0 and step == steps // 2:
                # wait on a neighbour chain's progress
                yield WaitFlag(flags[(i + 1) % n_chains], ge=step)
    return chain


def _run(n_shards, **kw):
    sim = Simulator()
    order = []
    chain = _workload(sim, order, **kw)
    if n_shards:
        sim.enable_sharding(n_shards)
    n = kw.get("n_chains", 12)
    for i in range(n):
        shard = (i * n_shards) // n if n_shards else None
        sim.spawn(chain(i), name=f"c{i}", shard=shard)
    total = sim.run()
    return total, order, (sim.n_events, sim.n_heap_pops, sim.n_ready_pops)


class TestShardedDeterminism:
    @pytest.mark.parametrize("n_shards", [2, 3, 4, 7])
    def test_event_order_identical_to_flat(self, n_shards):
        flat = _run(0)
        sharded = _run(n_shards)
        assert sharded == flat

    def test_identical_across_seeds(self):
        for seed in (1, 2, 3, 11):
            assert _run(0, seed=seed) == _run(4, seed=seed)

    def test_run_until_then_completion(self):
        sim_a, sim_b = Simulator(), Simulator()
        order_a, order_b = [], []
        chain_a = _workload(sim_a, order_a)
        chain_b = _workload(sim_b, order_b)
        sim_b.enable_sharding(3)
        for i in range(12):
            sim_a.spawn(chain_a(i), name=f"c{i}")
            sim_b.spawn(chain_b(i), name=f"c{i}", shard=i % 3)
        assert sim_a.run(until=4.0) == sim_b.run(until=4.0)
        assert order_a == order_b
        assert sim_a.run() == sim_b.run()
        assert order_a == order_b


class TestShardAssignment:
    def test_children_inherit_the_spawning_lane(self):
        sim = Simulator()
        sim.enable_sharding(2)
        seen = {}

        def child():
            yield Delay(1.0)

        def parent():
            proc = sim.spawn(child(), name="kid")
            seen["kid"] = proc.shard
            yield Delay(1.0)

        sim.spawn(parent(), name="parent", shard=1)
        sim.run()
        assert seen["kid"] == 1

    def test_explicit_shard_out_of_range_rejected(self):
        sim = Simulator()
        sim.enable_sharding(2)

        def proc():
            yield Delay(1.0)

        with pytest.raises(ValueError):
            sim.spawn(proc(), name="p", shard=2)

    def test_flat_sim_ignores_shard_hints(self):
        sim = Simulator()

        def proc():
            yield Delay(1.0)

        p = sim.spawn(proc(), name="p", shard=5)
        assert p.shard == 0
        assert sim.run() == 1.0

    def test_enable_sharding_validates(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.enable_sharding(1)
        sim.enable_sharding(2)
        with pytest.raises(SimulationError):
            sim.enable_sharding(2)

    def test_events_scheduled_before_enable_still_fire(self):
        sim = Simulator()
        fired = []
        sim.call_at(3.0, lambda: fired.append(sim.now))

        def proc():
            yield Delay(5.0)

        sim.enable_sharding(2)
        sim.spawn(proc(), name="p", shard=1)
        assert sim.run() == 5.0
        assert fired == [3.0]


class TestProcessTableCompaction:
    def test_dead_processes_are_compacted(self):
        sim = Simulator()

        def worker():
            yield Delay(0.5)

        def spawner():
            for _ in range(15000):
                sim.spawn(worker(), name="w")
                yield Delay(0.1)

        sim.spawn(spawner(), name="spawner")
        sim.run()
        assert len(sim._processes) < 10000

    def test_batched_runs_keep_every_process(self):
        """stencil/batch.py folds finish times over sim._processes
        post-run; batched sims must never compact."""
        sim = Simulator()
        sim.batch_members = 2

        def worker():
            yield Delay(0.5)

        def spawner():
            for _ in range(15000):
                sim.spawn(worker(), name="w")
                yield Delay(0.1)

        sim.spawn(spawner(), name="spawner")
        sim.run()
        assert len(sim._processes) == 15001
