"""System-level determinism: identical inputs → identical simulated
timelines and identical numerics, across every layer."""

import numpy as np
import pytest

from repro.apps import CGConfig, run_cg
from repro.bench import fig61_weak_2d
from repro.stencil import StencilConfig, run_variant


def test_stencil_run_fully_deterministic():
    config = StencilConfig(global_shape=(34, 20), num_gpus=4, iterations=6)
    a = run_variant("cpufree", config)
    b = run_variant("cpufree", config)
    assert a.total_time_us == b.total_time_us
    assert a.comm_time_us == b.comm_time_us
    np.testing.assert_array_equal(a.result, b.result)
    # even the full span timeline is identical
    assert [(s.lane, s.name, s.start, s.end) for s in a.tracer.spans] == \
           [(s.lane, s.name, s.start, s.end) for s in b.tracer.spans]


@pytest.mark.parametrize("variant", ["baseline_nvshmem", "cpufree_coresident"])
def test_other_variants_deterministic(variant):
    config = StencilConfig(global_shape=(34, 20), num_gpus=3,
                           iterations=5, with_data=False)
    assert (run_variant(variant, config).total_time_us
            == run_variant(variant, config).total_time_us)


def test_figure_sweep_deterministic():
    a = fig61_weak_2d("small", gpu_counts=(2, 4), iterations=5)
    b = fig61_weak_2d("small", gpu_counts=(2, 4), iterations=5)
    assert [(r.series, r.x, r.per_iteration_us) for r in a.rows] == \
           [(r.series, r.x, r.per_iteration_us) for r in b.rows]


def test_cg_deterministic():
    cfg = CGConfig(global_shape=(20, 14), num_gpus=2, iterations=6)
    a = run_cg("cg_cpufree", cfg)
    b = run_cg("cg_cpufree", cfg)
    assert a.total_time_us == b.total_time_us
    np.testing.assert_array_equal(a.solution, b.solution)
    assert a.final_residual_norm2 == b.final_residual_norm2


def test_different_seeds_change_data_not_timing():
    base = StencilConfig(global_shape=(34, 20), num_gpus=3, iterations=5, seed=1)
    other = StencilConfig(global_shape=(34, 20), num_gpus=3, iterations=5, seed=2)
    a = run_variant("cpufree", base)
    b = run_variant("cpufree", other)
    assert a.total_time_us == b.total_time_us  # timing is data-independent
    assert not np.array_equal(a.result, b.result)
