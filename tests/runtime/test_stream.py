"""Tests for streams and events."""

import pytest

from repro.sim import Delay, Simulator
from repro.runtime.stream import Event, Stream


def make_stream():
    sim = Simulator()
    return sim, Stream(sim, device=0, name="s")


def test_new_stream_is_idle():
    _, stream = make_stream()
    assert stream.idle


def test_items_run_in_fifo_order():
    sim, stream = make_stream()
    order = []

    def item(name, dt):
        def work():
            yield Delay(dt)
            order.append((name, sim.now))
        return work

    stream.enqueue(item("a", 5.0))
    stream.enqueue(item("b", 1.0))  # shorter, but must run after a
    sim.run()
    assert order == [("a", 5.0), ("b", 6.0)]


def test_distinct_streams_run_concurrently():
    sim = Simulator()
    s1 = Stream(sim, 0, "s1")
    s2 = Stream(sim, 0, "s2")
    done = []

    def work(name, dt):
        def body():
            yield Delay(dt)
            done.append((name, sim.now))
        return body

    s1.enqueue(work("a", 5.0))
    s2.enqueue(work("b", 5.0))
    sim.run()
    # both finish at t=5: true concurrency, not serialization
    assert done == [("a", 5.0), ("b", 5.0)]


def test_enqueue_delay():
    sim, stream = make_stream()
    stream.enqueue_delay(3.0)
    stream.enqueue_delay(4.0)
    assert sim.run() == 7.0
    assert stream.idle


def test_event_completes_with_work():
    sim, stream = make_stream()
    ev = stream.enqueue_delay(5.0)
    assert not ev.complete
    sim.run()
    assert ev.complete


def test_record_event_marks_prior_work():
    sim, stream = make_stream()
    stream.enqueue_delay(5.0)
    ev = stream.record_event("marker")
    woke = []

    def waiter():
        yield from ev.wait()
        woke.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert woke == [5.0]


def test_record_event_on_idle_stream_already_complete():
    _, stream = make_stream()
    ev = stream.record_event()
    assert ev.complete


def test_wait_event_cross_stream_dependency():
    sim = Simulator()
    producer = Stream(sim, 0, "prod")
    consumer = Stream(sim, 1, "cons")
    log = []

    producer.enqueue_delay(10.0, name="produce")
    ev = producer.record_event("produced")
    consumer.wait_event(ev)

    def consume():
        yield Delay(1.0)
        log.append(sim.now)

    consumer.enqueue(consume, name="consume")
    sim.run()
    assert log == [11.0]


def test_drained_waits_for_all_items():
    sim, stream = make_stream()
    stream.enqueue_delay(2.0)
    stream.enqueue_delay(3.0)
    t = []

    def host():
        yield from stream.drained()
        t.append(sim.now)

    sim.spawn(host())
    sim.run()
    assert t == [5.0]


def test_drained_captures_tail_at_call_time():
    """Work enqueued *after* drained() starts should not extend the wait."""
    sim, stream = make_stream()
    stream.enqueue_delay(2.0)
    t = []

    def host():
        yield from stream.drained()
        t.append(sim.now)
        stream.enqueue_delay(10.0)

    sim.spawn(host())
    sim.run()
    assert t == [2.0]
