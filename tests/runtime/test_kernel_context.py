"""Tests for KernelSpec and DeviceKernelContext details."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.runtime.kernel import DeviceKernelContext, KernelSpec
from repro.sim import Tracer


@pytest.fixture
def ctx():
    return MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())


def run_kernel(ctx, body, blocks=4):
    host = ctx.host(0)
    stream = ctx.stream(0)

    def host_proc():
        ev = yield from host.launch(stream, KernelSpec("k", blocks=blocks), body)
        yield from host.event_sync(ev)

    ctx.sim.spawn(host_proc(), name="host")
    return ctx.run()


class TestKernelSpec:
    def test_threads_property(self):
        spec = KernelSpec("k", blocks=4, threads_per_block=256)
        assert spec.threads == 1024

    def test_defaults(self):
        spec = KernelSpec("k", blocks=1)
        assert spec.threads_per_block == 1024
        assert not spec.cooperative


class TestDeviceContext:
    def test_busy_traces_category(self, ctx):
        def body(dev):
            yield from dev.busy(7.0, "warmup", "compute")
            yield from dev.busy(2.0, "exchange", "comm")

        run_kernel(ctx, body)
        assert ctx.tracer.total("compute") == pytest.approx(7.0)
        assert ctx.tracer.total("comm") == pytest.approx(2.0)

    def test_compute_charges_roofline_time(self, ctx):
        elements = 1_000_000
        expected = ctx.cost.compute_time_us(
            elements, ctx.node.gpu.hbm_bandwidth_gbps
        )

        def body(dev):
            yield from dev.compute(elements)

        total = run_kernel(ctx, body)
        launch = ctx.cost.kernel_launch_us
        assert total >= launch + expected

    def test_compute_with_fraction(self, ctx):
        def body_full(dev):
            yield from dev.compute(10**6, fraction_of_device=1.0)

        t_full = run_kernel(ctx, body_full)

        ctx2 = MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())

        def body_half(dev):
            yield from dev.compute(10**6, fraction_of_device=0.5)

        t_half = run_kernel(ctx2, body_half)
        assert t_half > t_full

    def test_zero_elements_compute_free(self, ctx):
        def body(dev):
            yield from dev.compute(0)

        total = run_kernel(ctx, body)
        # only launch + event overheads
        assert total < ctx.cost.kernel_launch_us + ctx.cost.event_sync_us + 1.0

    def test_lane_matches_stream(self, ctx):
        def body(dev):
            yield from dev.busy(1.0, "w", "compute")

        run_kernel(ctx, body)
        spans = ctx.tracer.spans_in("compute")
        assert spans[0].lane == "gpu0.default"
