"""Tests for the host MPI_Allreduce model."""

import numpy as np
import pytest

from repro.hw import DEFAULT_COST_MODEL, HGX_A100_8GPU
from repro.runtime import Communicator, MultiGPUContext
from repro.sim import Delay, Tracer


@pytest.fixture
def ctx():
    return MultiGPUContext(HGX_A100_8GPU.scaled_to(4), tracer=Tracer())


def run_allreduce(ctx, values_per_rank):
    comm = Communicator(ctx)
    results = {}

    def rank_proc(rank, values):
        for value in values:
            total = yield from comm.allreduce(rank, value)
            results.setdefault(rank, []).append(total)

    for rank, values in enumerate(values_per_rank):
        ctx.sim.spawn(rank_proc(rank, values), name=f"r{rank}")
    ctx.run()
    return results


def test_allreduce_sums_across_ranks(ctx):
    results = run_allreduce(ctx, [[1.0], [2.0], [3.0], [4.0]])
    for rank in range(4):
        assert results[rank] == [10.0]


def test_allreduce_multiple_rounds_kept_separate(ctx):
    results = run_allreduce(ctx, [[1.0, 10.0], [2.0, 20.0], [3.0, 30.0], [4.0, 40.0]])
    for rank in range(4):
        assert results[rank] == [10.0, 100.0]


def test_allreduce_deterministic_sum_order(ctx):
    """Floating-point summation happens in rank order on every rank —
    all ranks get the *same* bits."""
    values = [0.1, 1e16, -1e16, 0.2]  # order-sensitive sum
    results = run_allreduce(ctx, [[v] for v in values])
    unique = {results[r][0] for r in range(4)}
    assert len(unique) == 1
    expected = ((0.1 + 1e16) + -1e16) + 0.2
    assert results[0][0] == expected


def test_allreduce_charges_latency(ctx):
    run_allreduce(ctx, [[1.0]] * 4)
    assert ctx.sim.now >= DEFAULT_COST_MODEL.mpi_allreduce_us(4)


def test_allreduce_waits_for_slowest_rank(ctx):
    comm = Communicator(ctx)
    times = {}

    def rank_proc(rank, delay):
        yield Delay(delay)
        yield from comm.allreduce(rank, 1.0)
        times[rank] = ctx.sim.now

    for rank in range(4):
        ctx.sim.spawn(rank_proc(rank, float(rank * 10)), name=f"r{rank}")
    ctx.run()
    assert len(set(times.values())) == 1
    assert times[0] >= 30.0


def test_allreduce_cost_model():
    cm = DEFAULT_COST_MODEL
    assert cm.mpi_allreduce_us(1) == 0.0
    assert cm.mpi_allreduce_us(2) == pytest.approx(2 * cm.mpi_message_latency_us)
    assert cm.mpi_allreduce_us(8) == pytest.approx(6 * cm.mpi_message_latency_us)
    assert cm.mpi_allreduce_us(8) > cm.mpi_allreduce_us(4)


def test_allreduce_invalid_rank(ctx):
    comm = Communicator(ctx)

    def bad():
        yield from comm.allreduce(9, 1.0)

    ctx.sim.spawn(bad(), name="bad")
    with pytest.raises(ValueError):
        ctx.run()
