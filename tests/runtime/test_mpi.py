"""Tests for the host-side MPI model."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import Communicator, HostBarrier, MultiGPUContext, VectorType
from repro.sim import Delay, Simulator, Tracer


@pytest.fixture
def ctx():
    return MultiGPUContext(HGX_A100_8GPU.scaled_to(4), tracer=Tracer())


@pytest.fixture
def comm(ctx):
    return Communicator(ctx)


class TestPointToPoint:
    def test_blocking_send_recv(self, ctx, comm):
        out = np.zeros(4)

        def sender():
            yield from comm.send(0, np.arange(4.0), dest=1, tag=7)

        def receiver():
            yield from comm.recv(1, out, source=0, tag=7)

        ctx.sim.spawn(sender(), name="s")
        ctx.sim.spawn(receiver(), name="r")
        ctx.run()
        assert np.all(out == np.arange(4.0))

    def test_isend_snapshot_semantics(self, ctx, comm):
        """The send buffer is captured at Isend time, as with a
        completed MPI send — later mutation must not leak through."""
        data = np.ones(4)
        out = np.zeros(4)

        def sender():
            req = yield from comm.isend(0, data, dest=1)
            data[:] = 99.0
            yield from comm.wait(0, req)

        def receiver():
            yield from comm.recv(1, out, source=0)

        ctx.sim.spawn(sender(), name="s")
        ctx.sim.spawn(receiver(), name="r")
        ctx.run()
        assert np.all(out == 1.0)

    def test_tag_matching(self, ctx, comm):
        out_a, out_b = np.zeros(1), np.zeros(1)

        def sender():
            r1 = yield from comm.isend(0, np.array([1.0]), dest=1, tag=1)
            r2 = yield from comm.isend(0, np.array([2.0]), dest=1, tag=2)
            yield from comm.waitall(0, [r1, r2])

        def receiver():
            # Receive in the opposite tag order.
            yield from comm.recv(1, out_b, source=0, tag=2)
            yield from comm.recv(1, out_a, source=0, tag=1)

        ctx.sim.spawn(sender(), name="s")
        ctx.sim.spawn(receiver(), name="r")
        ctx.run()
        assert out_a[0] == 1.0 and out_b[0] == 2.0

    def test_message_order_preserved_same_tag(self, ctx, comm):
        outs = [np.zeros(1) for _ in range(3)]

        def sender():
            for i in range(3):
                yield from comm.send(0, np.array([float(i)]), dest=1, tag=0)

        def receiver():
            for out in outs:
                yield from comm.recv(1, out, source=0, tag=0)

        ctx.sim.spawn(sender(), name="s")
        ctx.sim.spawn(receiver(), name="r")
        ctx.run()
        assert [o[0] for o in outs] == [0.0, 1.0, 2.0]

    def test_waitall(self, ctx, comm):
        out1, out2 = np.zeros(2), np.zeros(2)

        def rank0():
            r1 = yield from comm.isend(0, np.full(2, 5.0), dest=1, tag=1)
            r2 = yield from comm.isend(0, np.full(2, 6.0), dest=1, tag=2)
            yield from comm.waitall(0, [r1, r2])

        def rank1():
            r1 = yield from comm.irecv(1, out1, source=0, tag=1)
            r2 = yield from comm.irecv(1, out2, source=0, tag=2)
            yield from comm.waitall(1, [r1, r2])

        ctx.sim.spawn(rank0(), name="r0")
        ctx.sim.spawn(rank1(), name="r1")
        ctx.run()
        assert np.all(out1 == 5.0) and np.all(out2 == 6.0)

    def test_timing_only_recv(self, ctx, comm):
        def sender():
            yield from comm.send(0, np.zeros(1000), dest=1)

        def receiver():
            yield from comm.recv(1, None, source=0, nbytes=8000)

        ctx.sim.spawn(sender(), name="s")
        ctx.sim.spawn(receiver(), name="r")
        total = ctx.run()
        assert total >= ctx.cost.mpi_message_latency_us

    def test_invalid_rank_rejected(self, ctx, comm):
        def bad():
            yield from comm.send(0, np.zeros(1), dest=9)

        ctx.sim.spawn(bad(), name="bad")
        with pytest.raises(ValueError):
            ctx.run()

    def test_message_charges_latency(self, ctx, comm):
        def sender():
            yield from comm.send(0, np.zeros(1), dest=1)

        def receiver():
            yield from comm.recv(1, np.zeros(1), source=0)

        ctx.sim.spawn(sender(), name="s")
        ctx.sim.spawn(receiver(), name="r")
        total = ctx.run()
        assert total >= ctx.cost.mpi_message_latency_us


class TestVectorDatatype:
    def test_vector_type_validation(self):
        with pytest.raises(ValueError):
            VectorType(count=0, blocklength=1, stride=1)
        with pytest.raises(ValueError):
            VectorType(count=2, blocklength=4, stride=2)

    def test_vector_elements(self):
        vt = VectorType(count=10, blocklength=2, stride=100)
        assert vt.elements == 20

    def test_strided_message_slower_than_contiguous(self, ctx):
        def run(datatype):
            local = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
            c = Communicator(local)
            payload = np.zeros(10_000)

            def sender():
                yield from c.send(0, payload, dest=1, datatype=datatype)

            def receiver():
                yield from c.recv(1, np.zeros(10_000), source=0, datatype=datatype)

            local.sim.spawn(sender(), name="s")
            local.sim.spawn(receiver(), name="r")
            return local.run()

        contiguous = run(None)
        strided = run(VectorType(count=100, blocklength=100, stride=10_000))
        assert strided > contiguous


class TestBarrier:
    def test_host_barrier_releases_all_at_once(self):
        sim = Simulator()
        barrier = HostBarrier(sim, parties=3, cost_us=0.0)
        times = []

        def worker(delay):
            yield Delay(delay)
            yield from barrier.wait()
            times.append(sim.now)

        for d in (1.0, 5.0, 9.0):
            sim.spawn(worker(d))
        sim.run()
        assert times == [9.0, 9.0, 9.0]

    def test_host_barrier_reusable_across_rounds(self):
        sim = Simulator()
        barrier = HostBarrier(sim, parties=2, cost_us=0.0)
        log = []

        def worker(name, d1, d2):
            yield Delay(d1)
            yield from barrier.wait()
            log.append((name, 1, sim.now))
            yield Delay(d2)
            yield from barrier.wait()
            log.append((name, 2, sim.now))

        sim.spawn(worker("a", 1.0, 10.0))
        sim.spawn(worker("b", 3.0, 1.0))
        sim.run()
        rounds = {}
        for name, r, t in log:
            rounds.setdefault(r, []).append(t)
        assert rounds[1] == [3.0, 3.0]
        assert rounds[2] == [13.0, 13.0]

    def test_barrier_cost_charged(self):
        sim = Simulator()
        barrier = HostBarrier(sim, parties=2, cost_us=5.0)

        def worker():
            yield from barrier.wait()

        sim.spawn(worker())
        sim.spawn(worker())
        assert sim.run() == 5.0

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            HostBarrier(Simulator(), parties=0, cost_us=0.0)

    def test_mpi_barrier_across_ranks(self, ctx, comm):
        times = []

        def rank(r, delay):
            yield Delay(delay)
            yield from comm.barrier(r)
            times.append(ctx.sim.now)

        for r in range(4):
            ctx.sim.spawn(rank(r, float(r)), name=f"rank{r}")
        ctx.run()
        assert len(set(times)) == 1  # all released together
        assert times[0] >= 3.0 + ctx.cost.mpi_barrier_us(4)
