"""Tests for MultiGPUContext and the host-thread API."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import CooperativeLaunchError, MultiGPUContext
from repro.runtime.kernel import KernelSpec
from repro.sim import Tracer


@pytest.fixture
def ctx():
    return MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())


class TestContextBasics:
    def test_stream_get_or_create(self, ctx):
        s1 = ctx.stream(0, "comp")
        s2 = ctx.stream(0, "comp")
        assert s1 is s2
        assert ctx.stream(0, "comm") is not s1

    def test_stream_invalid_device(self, ctx):
        with pytest.raises(ValueError):
            ctx.stream(5)

    def test_alloc_delegates_to_memory(self, ctx):
        buf = ctx.alloc(1, "grid", (4, 4))
        assert buf.device == 1
        assert ctx.memory.used_bytes(1) == buf.nbytes


class TestKernelLaunch:
    def test_launch_charges_host_time_and_runs_body(self, ctx):
        host = ctx.host(0)
        stream = ctx.stream(0)
        ran = []

        def body(dev):
            yield from dev.busy(10.0, "work", "compute")
            ran.append(dev.device)

        def host_proc():
            ev = yield from host.launch(stream, KernelSpec("k", blocks=8), body)
            yield from host.event_sync(ev)

        ctx.sim.spawn(host_proc(), name="host")
        total = ctx.run()
        # launch overhead + kernel body + event sync overhead
        assert total >= ctx.cost.kernel_launch_us + 10.0
        assert ran == [0]

    def test_cooperative_launch_within_budget(self, ctx):
        host = ctx.host(0)
        stream = ctx.stream(0)
        limit = ctx.node.gpu.max_coresident_blocks(1024)

        def body(dev):
            yield from dev.busy(1.0, "w", "compute")

        def host_proc():
            yield from host.launch(
                stream, KernelSpec("coop", blocks=limit, cooperative=True), body
            )

        ctx.sim.spawn(host_proc(), name="host")
        ctx.run()

    def test_cooperative_launch_oversubscribed_raises(self, ctx):
        host = ctx.host(0)
        stream = ctx.stream(0)
        limit = ctx.node.gpu.max_coresident_blocks(1024)

        def body(dev):
            yield from dev.busy(1.0, "w", "compute")

        def host_proc():
            yield from host.launch(
                stream, KernelSpec("coop", blocks=limit + 1, cooperative=True), body
            )

        ctx.sim.spawn(host_proc(), name="host")
        with pytest.raises(CooperativeLaunchError):
            ctx.run()

    def test_discrete_launch_may_oversubscribe(self, ctx):
        host = ctx.host(0)
        stream = ctx.stream(0)

        def body(dev):
            yield from dev.busy(1.0, "w", "compute")

        def host_proc():
            yield from host.launch(stream, KernelSpec("big", blocks=10**6), body)

        ctx.sim.spawn(host_proc(), name="host")
        ctx.run()  # no exception

    def test_kernel_spec_validation(self):
        with pytest.raises(ValueError):
            KernelSpec("k", blocks=0)
        with pytest.raises(ValueError):
            KernelSpec("k", blocks=1, threads_per_block=0)


class TestMemcpy:
    def test_memcpy_moves_data(self, ctx):
        src = ctx.alloc(0, "src", (8,), fill=7.0)
        dst = ctx.alloc(1, "dst", (8,), fill=0.0)
        host = ctx.host(0)
        stream = ctx.stream(0)

        def host_proc():
            yield from host.memcpy_async(stream, dst, slice(None), src, slice(None))
            yield from host.stream_sync(stream)

        ctx.sim.spawn(host_proc(), name="host")
        ctx.run()
        assert np.all(dst.data == 7.0)

    def test_memcpy_snapshot_at_execution_time(self, ctx):
        """In-order streams: a copy sees writes from earlier items."""
        src = ctx.alloc(0, "src", (4,), fill=1.0)
        dst = ctx.alloc(1, "dst", (4,), fill=0.0)
        host = ctx.host(0)
        stream = ctx.stream(0)

        def mutate(dev):
            yield from dev.busy(5.0, "mutate", "compute")
            src.data[:] = 2.0

        def host_proc():
            yield from host.launch(stream, KernelSpec("mutate", blocks=1), mutate)
            yield from host.memcpy_async(stream, dst, slice(None), src, slice(None))
            yield from host.stream_sync(stream)

        ctx.sim.spawn(host_proc(), name="host")
        ctx.run()
        assert np.all(dst.data == 2.0)

    def test_modeled_memcpy_charges_time_only(self, ctx):
        host = ctx.host(0)
        stream = ctx.stream(0)

        def host_proc():
            yield from host.memcpy_async_modeled(stream, 0, 1, nbytes=300_000)
            yield from host.stream_sync(stream)

        ctx.sim.spawn(host_proc(), name="host")
        total = ctx.run()
        # transfer alone: 1.3 us latency + 1.0 us wire time
        assert total > 2.3


class TestSynchronization:
    def test_stream_sync_blocks_until_drain(self, ctx):
        host = ctx.host(0)
        stream = ctx.stream(0)
        stream.enqueue_delay(50.0)
        t = []

        def host_proc():
            yield from host.stream_sync(stream)
            t.append(ctx.sim.now)

        ctx.sim.spawn(host_proc(), name="host")
        ctx.run()
        assert t[0] >= 50.0

    def test_device_sync_drains_all_streams(self, ctx):
        host = ctx.host(0)
        ctx.stream(0, "a").enqueue_delay(10.0)
        ctx.stream(0, "b").enqueue_delay(20.0)
        ctx.stream(1, "other").enqueue_delay(100.0)
        t = []

        def host_proc():
            yield from host.device_sync(0)
            t.append(ctx.sim.now)

        ctx.sim.spawn(host_proc(), name="host")
        ctx.run()
        assert 20.0 <= t[0] < 100.0

    def test_tracing_records_api_spans(self, ctx):
        host = ctx.host(0)
        stream = ctx.stream(0)

        def body(dev):
            yield from dev.busy(5.0, "w", "compute")

        def host_proc():
            yield from host.launch(stream, KernelSpec("k", blocks=1), body)
            yield from host.stream_sync(stream)

        ctx.sim.spawn(host_proc(), name="host")
        ctx.run()
        api_spans = ctx.tracer.spans_in("api", lane_prefix="host0")
        assert any("launch:k" == s.name for s in api_spans)
        compute_spans = ctx.tracer.spans_in("compute")
        assert len(compute_spans) == 1


class TestPeerOps:
    def test_peer_store_moves_values(self, ctx):
        ctx.memory.enable_all_peer_access()
        dst = ctx.alloc(1, "halo", (4,), fill=0.0)
        host = ctx.host(0)
        stream = ctx.stream(0)

        def body(dev):
            yield from dev.peer_store(dst, slice(None), np.full(4, 9.0))

        def host_proc():
            ev = yield from host.launch(stream, KernelSpec("p2p", blocks=1), body)
            yield from host.event_sync(ev)

        ctx.sim.spawn(host_proc(), name="host")
        ctx.run()
        assert np.all(dst.data == 9.0)

    def test_peer_store_without_access_raises(self, ctx):
        dst = ctx.alloc(1, "halo", (4,))
        host = ctx.host(0)
        stream = ctx.stream(0)

        def body(dev):
            yield from dev.peer_store(dst, slice(None), np.zeros(4))

        def host_proc():
            yield from host.launch(stream, KernelSpec("p2p", blocks=1), body)

        ctx.sim.spawn(host_proc(), name="host")
        from repro.hw.memory import PeerAccessError

        with pytest.raises(PeerAccessError):
            ctx.run()

    def test_peer_load_returns_copy(self, ctx):
        ctx.memory.enable_all_peer_access()
        src = ctx.alloc(1, "data", (4,), fill=3.0)
        host = ctx.host(0)
        stream = ctx.stream(0)
        got = []

        def body(dev):
            values = yield from dev.peer_load(src, slice(None))
            got.append(values)

        def host_proc():
            ev = yield from host.launch(stream, KernelSpec("load", blocks=1), body)
            yield from host.event_sync(ev)

        ctx.sim.spawn(host_proc(), name="host")
        ctx.run()
        assert np.all(got[0] == 3.0)
        src.data[:] = 0.0
        assert np.all(got[0] == 3.0)  # a copy, not a view
