"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300,
    )


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "stencil_scaling.py", "dace_cpufree_compile.py",
            "timeline_trace.py", "failure_modes.py",
            "conjugate_gradient.py"} <= names


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "bit-exact" in proc.stdout
    assert "speedup" in proc.stdout


def test_stencil_scaling_small():
    proc = run_example("stencil_scaling.py", "small")
    assert proc.returncode == 0, proc.stderr
    assert "weak scaling" in proc.stdout
    assert "cpufree" in proc.stdout


def test_stencil_scaling_rejects_bad_size():
    proc = run_example("stencil_scaling.py", "gigantic")
    assert proc.returncode != 0
    assert "unknown size" in proc.stderr


def test_dace_cpufree_compile():
    proc = run_example("dace_cpufree_compile.py")
    assert proc.returncode == 0, proc.stderr
    assert "bit-identical" in proc.stdout
    assert "nvshmemx_putmem_signal_nbi_block" in proc.stdout


def test_timeline_trace():
    proc = run_example("timeline_trace.py")
    assert proc.returncode == 0, proc.stderr
    assert "legend" in proc.stdout
    assert "#" in proc.stdout  # compute glyphs present


def test_wave_equation():
    proc = run_example("wave_equation.py")
    assert proc.returncode == 0, proc.stderr
    assert "bit-exact" in proc.stdout


def test_conjugate_gradient():
    proc = run_example("conjugate_gradient.py")
    assert proc.returncode == 0, proc.stderr
    assert "bit-exact" in proc.stdout
    assert "CPU-Free speedup" in proc.stdout


def test_timeline_trace_writes_chrome_trace(tmp_path):
    proc = run_example("timeline_trace.py")
    assert proc.returncode == 0, proc.stderr
    assert "chrome trace written" in proc.stdout


def test_failure_modes():
    proc = run_example("failure_modes.py")
    assert proc.returncode == 0, proc.stderr
    assert "rejected as expected" in proc.stdout
    assert "fresh data: False" in proc.stdout
    assert "detected as expected" in proc.stdout
