"""Fail-stop recovery tests."""
