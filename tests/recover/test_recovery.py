"""Checkpoint/restart recovery: byte-identity, time accounting,
heap snapshots, and the unrecoverable diagnostic."""

import json

import numpy as np
import pytest

import repro.stencil.variants  # noqa: F401 - populate the registry
from repro.faults import FaultPlan, PECrashFault, get_plan
from repro.recover import (
    CheckpointStore,
    UnrecoverableCrashError,
    run_with_recovery,
)
from repro.stencil import StencilConfig, jacobi_reference
from repro.stencil.base import VARIANTS, default_initial

SHAPE = (34, 66)
ITERATIONS = 6


def _config(profile, **kw):
    kw.setdefault("global_shape", SHAPE)
    kw.setdefault("num_gpus", 2)
    kw.setdefault("iterations", ITERATIONS)
    return StencilConfig(fault_profile=profile, **kw)


def _reference(config):
    return jacobi_reference(default_initial(config.global_shape, config.seed),
                            config.iterations)


class TestSegmentedCleanRun:
    """Segmenting alone (no crash) must be a pure refactoring of the
    timeline: same field, same total time as the sum of its parts."""

    @pytest.mark.parametrize("every", [1, 2, 3, 4, 6])
    def test_segmented_run_matches_reference(self, every):
        config = _config(None)
        outcome = run_with_recovery(VARIANTS["cpufree"], config,
                                    checkpoint_every=every)
        np.testing.assert_array_equal(outcome.result, _reference(config))
        assert outcome.restarts == 0
        assert not outcome.recovered

    def test_checkpoint_chain_epochs_and_iterations(self):
        outcome = run_with_recovery(VARIANTS["cpufree"], _config(None),
                                    checkpoint_every=2)
        assert outcome.store.epochs() == [0, 1, 2, 3]
        iters = [c.iteration for c in outcome.store._checkpoints]
        assert iters == [0, 2, 4, 6]
        assert outcome.store.total_bytes() > 0


class TestCrashRecovery:
    def test_recovered_field_byte_identical(self):
        config = _config("crash_recover")
        outcome = run_with_recovery(VARIANTS["cpufree"], config)
        assert outcome.recovered and outcome.restarts == 1
        assert 1 in outcome.crashed_pes
        np.testing.assert_array_equal(outcome.result, _reference(config))

    def test_only_simulated_time_grows(self):
        plan = get_plan("crash_recover")
        clean = run_with_recovery(VARIANTS["cpufree"], _config(None),
                                  checkpoint_every=plan.checkpoint_every)
        crashed = run_with_recovery(VARIANTS["cpufree"],
                                    _config("crash_recover"))
        np.testing.assert_array_equal(crashed.result, clean.result)
        assert crashed.total_time_us > clean.total_time_us
        # the growth is exactly the accounted lost time
        assert crashed.total_time_us == pytest.approx(
            clean.total_time_us + crashed.lost_time_us)

    def test_lost_time_is_detection_plus_restart_cost(self):
        plan = get_plan("crash_recover")
        outcome = run_with_recovery(VARIANTS["cpufree"],
                                    _config("crash_recover"))
        attempt = next(a for a in outcome.attempts
                       if a["status"] == "crashed")
        detect_t_local = attempt["detect_t_us"] - attempt["base_us"]
        assert outcome.lost_time_us == pytest.approx(
            detect_t_local + plan.restart_cost_us)
        assert outcome.detect_latency_us > 0.0

    def test_detection_is_quantised_to_heartbeats(self):
        plan = get_plan("crash_recover")
        outcome = run_with_recovery(VARIANTS["cpufree"],
                                    _config("crash_recover"))
        attempt = next(a for a in outcome.attempts
                       if a["status"] == "crashed")
        detect_local = attempt["detect_t_us"] - attempt["base_us"]
        periods = detect_local / plan.heartbeat_us
        assert periods == pytest.approx(round(periods))

    def test_recovery_works_across_seeds(self):
        for seed in (7, 2024):
            config = _config(f"crash_recover@{seed}")
            outcome = run_with_recovery(VARIANTS["cpufree"], config)
            np.testing.assert_array_equal(outcome.result, _reference(config))
            assert outcome.recovered

    @pytest.mark.parametrize("variant",
                             ["cpufree", "baseline_p2p", "baseline_copy"])
    def test_all_variants_recover(self, variant):
        config = _config("crash_recover")
        outcome = run_with_recovery(VARIANTS[variant], config)
        np.testing.assert_array_equal(outcome.result, _reference(config))
        assert outcome.recovered

    def test_report_is_json_safe(self):
        outcome = run_with_recovery(VARIANTS["cpufree"],
                                    _config("crash_recover"))
        report = outcome.report()
        text = json.dumps(report)  # must not raise
        assert json.loads(text)["recovered"] is True

    def test_recover_metrics_published(self):
        from repro.obs.metrics import MetricsRegistry, use_metrics

        registry = MetricsRegistry()
        with use_metrics(registry):
            run_with_recovery(VARIANTS["cpufree"], _config("crash_recover"))
        names = {series["name"] for series in registry.to_dict()["counters"]}
        assert "recover.checkpoints" in names
        assert "recover.restarts" in names
        assert "recover.lost_time_us" in names


class TestUnrecoverable:
    def test_no_checkpoints_raises_naming_dead_pe(self):
        # the `crash` profile has no checkpoint cadence: detection
        # works, recovery cannot — the error must name the dead PE
        plan = get_plan("crash")
        with pytest.raises(UnrecoverableCrashError, match="pe1"):
            run_with_recovery(VARIANTS["cpufree"], _config("crash"),
                              plan=plan)


class TestHeapSnapshot:
    @staticmethod
    def _heap(n_pes):
        from repro.hw.memory import MemoryManager
        from repro.nvshmem.heap import SymmetricHeap
        from repro.sim import Simulator

        sim = Simulator()
        return SymmetricHeap(MemoryManager(num_gpus=n_pes), sim, n_pes)

    def test_snapshot_restore_round_trip(self):
        heap = self._heap(2)
        arr = heap.malloc("field", (4,), dtype=np.float64)
        sig = heap.malloc_signals("sync", 2)
        arr.local(0)[:] = [1.0, 2.0, 3.0, 4.0]
        arr.local(1)[:] = [5.0, 6.0, 7.0, 8.0]
        sig.flag(0, 0).set(3)
        snap = heap.snapshot(epoch=0)
        arr.local(0)[:] = 0.0
        sig.flag(0, 0).set(99)
        heap.restore(snap)
        np.testing.assert_array_equal(arr.local(0), [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(arr.local(1), [5.0, 6.0, 7.0, 8.0])
        assert sig.flag(0, 0).value == 3

    def test_snapshot_is_deep(self):
        heap = self._heap(1)
        arr = heap.malloc("field", (2,), dtype=np.float64)
        arr.local(0)[:] = [1.0, 2.0]
        snap = heap.snapshot(epoch=0)
        arr.local(0)[:] = [9.0, 9.0]
        np.testing.assert_array_equal(snap.arrays["field"][0], [1.0, 2.0])

    def test_restore_rejects_shape_mismatch(self):
        heap = self._heap(1)
        heap.malloc("field", (2,), dtype=np.float64)
        snap = heap.snapshot(epoch=0)
        other = self._heap(1)
        other.malloc("field", (3,), dtype=np.float64)
        with pytest.raises(ValueError):
            other.restore(snap)

    def test_nvshmem_variant_checkpoints_capture_heap(self):
        outcome = run_with_recovery(VARIANTS["cpufree"], _config(None),
                                    checkpoint_every=3)
        # epoch 0 is the pre-run scatter (no heap yet); later epochs
        # snapshot the symmetric heap
        later = outcome.store._checkpoints[1:]
        assert later and all(c.heap is not None for c in later)
        assert all(c.heap.nbytes > 0 for c in later)


class TestStoreUnit:
    def test_store_deep_copies_state(self):
        store = CheckpointStore()
        state = np.ones((2, 2))
        store.save(0, state, 0.0)
        state[:] = 5.0
        np.testing.assert_array_equal(store.latest.state, np.ones((2, 2)))

    def test_empty_store(self):
        store = CheckpointStore()
        assert len(store) == 0
        assert store.latest is None
        assert store.total_bytes() == 0


class TestCli:
    def test_cli_reports_byte_identity(self, tmp_path, capsys):
        from repro.recover.__main__ import main

        out = tmp_path / "recovery.json"
        rc = main(["--report-out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["byte_identical"] is True
        assert report["restarts"] >= 1

    def test_cli_unknown_variant_is_cli_error(self):
        from repro.cliutil import CliError
        from repro.recover.__main__ import main

        with pytest.raises(CliError, match="unknown variant"):
            main(["--variant", "bogus"])

    def test_cli_unknown_profile_is_cli_error(self):
        from repro.cliutil import CliError
        from repro.recover.__main__ import main

        with pytest.raises(CliError, match="available"):
            main(["--profile", "bogus"])
