"""PE crash faults: validation, deterministic timing, kill scope, and
the diagnostic/recovery judging in the resilience harness."""

import numpy as np
import pytest

import repro.stencil.variants  # noqa: F401 - populate the registry
from repro.faults import FaultPlan, PECrashFault, get_plan
from repro.faults.inject import use_crash_context
from repro.faults.profiles import PROFILES, UnknownProfileError
from repro.stencil import StencilConfig
from repro.stencil.base import VARIANTS

SHAPE = (34, 66)


def _config(profile, **kw):
    kw.setdefault("global_shape", SHAPE)
    kw.setdefault("num_gpus", 2)
    kw.setdefault("iterations", 6)
    return StencilConfig(fault_profile=profile, **kw)


class TestPECrashFaultValidation:
    def test_negative_pe_rejected(self):
        with pytest.raises(ValueError, match="pe"):
            PECrashFault(pe=-1)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window_us"):
            PECrashFault(pe=0, window_us=(10.0, 5.0))

    def test_negative_pinned_time_rejected(self):
        with pytest.raises(ValueError, match="at_us"):
            PECrashFault(pe=0, at_us=-1.0)

    def test_plan_recovery_knobs_validated(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            FaultPlan(checkpoint_every=0)
        with pytest.raises(ValueError, match="restart_cost_us"):
            FaultPlan(restart_cost_us=-1.0)
        with pytest.raises(ValueError, match="heartbeat_us"):
            FaultPlan(heartbeat_us=0.0)
        with pytest.raises(ValueError, match="heartbeat_misses"):
            FaultPlan(heartbeat_misses=0)

    def test_plan_with_crashes_is_not_inert(self):
        plan = FaultPlan(crashes=(PECrashFault(pe=0, at_us=5.0),))
        assert not plan.inert


class TestProfiles:
    def test_crash_profiles_registered(self):
        assert "crash" in PROFILES
        assert "crash_recover" in PROFILES

    def test_unknown_profile_is_cli_error_naming_choices(self):
        with pytest.raises(UnknownProfileError, match="available"):
            get_plan("bogus")
        # backward compatible with callers that caught ValueError
        with pytest.raises(ValueError):
            get_plan("bogus")

    def test_crash_recover_plan_has_recovery_knobs(self):
        plan = get_plan("crash_recover")
        assert plan.expect == "recover"
        assert plan.checkpoint_every is not None
        assert plan.crashes and plan.crashes[0].pe == 1


class TestCrashExecution:
    def test_crash_time_deterministic_per_seed(self):
        times = set()
        for _ in range(3):
            instance = VARIANTS["cpufree"](_config("crash"))
            times.add(instance.faults.crash_time(1))
        assert len(times) == 1

    def test_crash_time_moves_with_seed(self):
        a = VARIANTS["cpufree"](_config("crash")).faults.crash_time(1)
        b = VARIANTS["cpufree"](_config("crash@7")).faults.crash_time(1)
        assert a != b

    def test_crash_kills_only_the_dead_pes_processes(self):
        from repro.sim import DeadlockError, ProcessKilled, WatchdogError

        instance = VARIANTS["cpufree"](_config("crash"))
        with pytest.raises((DeadlockError, WatchdogError)):
            instance.run()
        assert 1 in instance.faults.crashed
        sim = instance.ctx.sim
        for proc in sim._processes:
            if isinstance(proc.error, ProcessKilled):
                assert proc.name.startswith("gpu1.") \
                    or proc.name.endswith(".host1"), proc.name

    def test_crash_closes_dead_pe_spans_tagged(self):
        """The crash sweep closes exactly the dead PE's open spans —
        wire lanes survive (their delivery processes end them later)."""
        from repro.sim import Simulator, Tracer

        sim = Simulator()
        tracer = Tracer()
        tracer.begin("gpu1.stream.comm_top", "halo_put", "comm", 2.0)
        tracer.begin("host1", "iteration", "host", 1.0)
        tracer.begin("gpu0.stream.comm_top", "halo_put", "comm", 2.0)
        tracer.begin("nvshmem.0to1", "wire", "comm", 2.5)
        closed = tracer.close_all(
            5.0,
            lanes=lambda lane: lane.startswith("gpu1.") or lane == "host1",
            tag="pe_crash:1")
        assert [lane for lane, _ in closed] == ["gpu1.stream.comm_top", "host1"]
        tagged = [s for s in tracer.spans
                  if s.meta and s.meta.get("closed_by") == "pe_crash:1"]
        assert {s.lane for s in tagged} == {"gpu1.stream.comm_top", "host1"}
        assert all(s.end == 5.0 for s in tagged)
        # survivors' lanes stay open
        assert ("gpu0.stream.comm_top", "halo_put") in tracer._open
        assert ("nvshmem.0to1", "wire") in tracer._open

    def test_crash_instant_lands_in_trace(self):
        from repro.sim import DeadlockError, WatchdogError

        instance = VARIANTS["cpufree"](_config("crash"))
        with pytest.raises((DeadlockError, WatchdogError)):
            instance.run()
        crash_t = instance.faults.crashed[1]
        instants = [(t, name) for t, name, _, _ in
                    instance.tracer.instant_events if "pe_crash" in name]
        assert instants and instants[0][0] == crash_t

    def test_crash_recorded_in_summary_and_events(self):
        from repro.sim import DeadlockError, WatchdogError

        instance = VARIANTS["cpufree"](_config("crash"))
        with pytest.raises((DeadlockError, WatchdogError)):
            instance.run()
        summary = instance.faults.summary()
        assert "1" in summary["crashed_pes"]
        assert any(e.kind == "pe_crash" for e in instance.faults.events)

    def test_watchdog_diagnostic_names_dead_pe(self):
        from repro.sim import DeadlockError, WatchdogError

        instance = VARIANTS["cpufree"](_config("crash"))
        with pytest.raises((DeadlockError, WatchdogError)) as excinfo:
            instance.run()
        if isinstance(excinfo.value, WatchdogError):
            assert "dead PEs" in str(excinfo.value)

    def test_consumed_crash_does_not_fire(self):
        with use_crash_context(0.0, frozenset({1})):
            instance = VARIANTS["cpufree"](_config("crash"))
        result = instance.run()
        assert instance.faults.crashed == {}
        clean = VARIANTS["cpufree"](_config(None)).run()
        np.testing.assert_array_equal(result.result, clean.result)

    def test_base_shift_moves_crash_out_of_segment(self):
        # the run lasts ~30us; shifting the base past the crash window
        # leaves this segment crash-free
        with use_crash_context(10_000.0, frozenset()):
            instance = VARIANTS["cpufree"](_config("crash"))
        instance.run()
        assert instance.faults.crashed == {}


class TestHarnessJudging:
    def test_crash_cell_is_diagnostic(self):
        from repro.faults.harness import run_cell

        cell = run_cell("cpufree", "crash", shape=SHAPE, num_gpus=2,
                        iterations=6)
        assert cell["status"] == "diagnostic"
        assert cell["ok"]

    def test_crash_recover_cell_recovers_byte_identical(self):
        from repro.faults.harness import run_cell

        cell = run_cell("cpufree", "crash_recover", shape=SHAPE, num_gpus=2,
                        iterations=6)
        assert cell["status"] == "recovered"
        assert cell["ok"]
        assert cell["recover"]["restarts"] >= 1
