"""FaultInjector unit behavior: link math, stragglers, deliveries,
determinism of the injected-event stream."""

import pytest

from repro.faults import DeliveryFault, FaultPlan, LinkFault, StragglerFault
from repro.hw import HGX_A100_8GPU
from repro.hw.interconnect import HOST
from repro.runtime.context import MultiGPUContext
from repro.sim import Tracer


def _ctx(plan, num_gpus=2):
    return MultiGPUContext(HGX_A100_8GPU.scaled_to(num_gpus), tracer=Tracer(),
                           faults=plan.injector())


class TestLinkFaults:
    def test_bandwidth_scale_slows_transfers(self):
        clean = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
        ctx = _ctx(FaultPlan(links=(LinkFault(bandwidth_scale=0.5),)))
        nbytes = 1 << 20
        assert (ctx.topology.transfer_us(0, 1, nbytes)
                > clean.topology.transfer_us(0, 1, nbytes))

    def test_extra_latency_added(self):
        clean = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
        ctx = _ctx(FaultPlan(links=(LinkFault(extra_latency_us=3.0),)))
        got = ctx.topology.transfer_us(0, 1, 8)
        want = clean.topology.transfer_us(0, 1, 8) + 3.0
        assert got == pytest.approx(want)

    def test_degradation_recorded_once(self):
        ctx = _ctx(FaultPlan(links=(LinkFault(bandwidth_scale=0.5),)))
        ctx.topology.transfer_us(0, 1, 8)
        ctx.topology.transfer_us(0, 1, 8)
        events = [e for e in ctx.faults.events if e.kind == "link_degraded"]
        assert len(events) == 1

    def test_loopback_untouched(self):
        clean = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
        ctx = _ctx(FaultPlan(links=(LinkFault(bandwidth_scale=0.01,
                                              extra_latency_us=9.0),)))
        assert (ctx.topology.transfer_us(1, 1, 4096)
                == clean.topology.transfer_us(1, 1, 4096))

    def test_link_down_routes_through_host(self):
        ctx = _ctx(FaultPlan(links=(LinkFault(src=0, dst=1, down=True),)))
        topo = ctx.topology
        nbytes = 1 << 16
        staged = (topo.link(0, HOST).transfer_us(nbytes)
                  + topo.link(HOST, 1).transfer_us(nbytes))
        assert topo.transfer_us(0, 1, nbytes) == pytest.approx(staged)
        assert ctx.link_down(0, 1) and ctx.link_down(1, 0)
        assert not ctx.link_down(0, 0)
        assert [e.kind for e in ctx.faults.events] == ["staged_copy"]

    def test_cross_domain_link_down_charges_the_source_rail(self):
        """Regression: an inter-node staged reroute used to bounce off a
        single shared ``_host`` link, as if both NVSwitch domains hung
        off one PCIe switch.  It must price PCIe up on the source node,
        the source domain's rail, and PCIe down on the destination."""
        ctx = _ctx(FaultPlan(links=(LinkFault(src=0, dst=8, down=True),)),
                   num_gpus=16)
        topo = ctx.topology
        assert topo.num_domains == 2
        nbytes = 1 << 16
        host_bounce = (topo.link(0, HOST).transfer_us(nbytes)
                       + topo.link(HOST, 8).transfer_us(nbytes))
        rail_leg = topo.rail_transfer_us(0, 8, nbytes, occupy=False)
        got = topo.transfer_us(0, 8, nbytes)
        assert got == pytest.approx(host_bounce + rail_leg)
        assert got > host_bounce  # the old single-host-link price
        assert [e.kind for e in ctx.faults.events] == ["staged_copy"]

    def test_intra_domain_link_down_stays_on_node(self):
        """A staged reroute inside one domain must NOT touch any rail."""
        ctx = _ctx(FaultPlan(links=(LinkFault(src=0, dst=1, down=True),)),
                   num_gpus=16)
        topo = ctx.topology
        nbytes = 1 << 16
        host_bounce = (topo.link(0, HOST).transfer_us(nbytes)
                       + topo.link(HOST, 1).transfer_us(nbytes))
        assert topo.transfer_us(0, 1, nbytes) == pytest.approx(host_bounce)
        assert all(rail.inflight() == 0
                   for rail in (topo.rail(0), topo.rail(1)))

    def test_jitter_bounded_and_recorded(self):
        jitter = 2.0
        ctx = _ctx(FaultPlan(links=(LinkFault(jitter_us=jitter),)))
        clean = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
        base = clean.topology.transfer_us(0, 1, 8)
        for _ in range(50):
            got = ctx.topology.transfer_us(0, 1, 8)
            assert base <= got < base + jitter
        assert len([e for e in ctx.faults.events if e.kind == "jitter"]) == 50


class TestStragglers:
    def test_compute_scale(self):
        plan = FaultPlan(stragglers=(StragglerFault(pe=1, compute_scale=2.5),))
        inj = plan.injector()
        assert inj.compute_scale(1) == 2.5
        assert inj.compute_scale(0) == 1.0


class TestDeliveryOutcomes:
    def test_max_drops_caps_rule(self):
        plan = FaultPlan(deliveries=(
            DeliveryFault(drop_prob=1.0, silent=True, max_drops=2),))
        inj = plan.injector()
        outcomes = [inj.delivery_outcome(0, 1, "put", None, 0)[0] for _ in range(5)]
        assert outcomes == ["lost", "lost", "ok", "ok", "ok"]

    def test_drop_vs_lost(self):
        loud = FaultPlan(deliveries=(DeliveryFault(drop_prob=1.0),)).injector()
        silent = FaultPlan(deliveries=(
            DeliveryFault(drop_prob=1.0, silent=True),)).injector()
        assert loud.delivery_outcome(0, 1, "put", None, 0)[0] == "drop"
        assert silent.delivery_outcome(0, 1, "put", None, 0)[0] == "lost"

    def test_delay_carries_magnitude(self):
        plan = FaultPlan(deliveries=(DeliveryFault(delay_prob=1.0, delay_us=4.0),))
        assert plan.injector().delivery_outcome(0, 1, "put", None, 0) == ("delay", 4.0)

    def test_route_filtering(self):
        plan = FaultPlan(deliveries=(DeliveryFault(src=0, dst=1, drop_prob=1.0),))
        inj = plan.injector()
        assert inj.delivery_faults_apply(0, 1)
        assert not inj.delivery_faults_apply(1, 0)
        assert inj.delivery_outcome(1, 0, "put", None, 0) == ("ok", 0.0)

    def test_last_attempt_tracked_for_flag(self):
        plan = FaultPlan(deliveries=(DeliveryFault(drop_prob=1.0, silent=True),))
        inj = plan.injector()
        inj.delivery_outcome(0, 1, "put", "sig[pe1][0]", 0)
        t, src, outcome, attempt = inj.last_attempt["sig[pe1][0]"]
        assert (src, outcome, attempt) == (0, "lost", 0)

    def test_backoff_grows_exponentially(self):
        plan = FaultPlan(retry_backoff_us=2.0, retry_backoff_factor=3.0)
        inj = plan.injector()
        assert [inj.retry_backoff_us(n) for n in (1, 2, 3)] == [2.0, 6.0, 18.0]


class TestDeterminism:
    def _events(self, seed, n=200):
        plan = FaultPlan(
            seed=seed,
            links=(LinkFault(jitter_us=2.0),),
            deliveries=(DeliveryFault(drop_prob=0.2, delay_prob=0.2, delay_us=1.0),),
        )
        ctx = _ctx(plan)
        for i in range(n):
            ctx.topology.transfer_us(0, 1, 64 + i)
            ctx.faults.delivery_outcome(0, 1, "put", None, 0)
        return [e.key() for e in ctx.faults.events]

    def test_same_seed_same_stream(self):
        assert self._events(7) == self._events(7)

    def test_different_seed_different_stream(self):
        assert self._events(7) != self._events(8)

    def test_sites_have_independent_substreams(self):
        """Draws on one route must not perturb another route's stream."""
        plan = FaultPlan(seed=5, deliveries=(DeliveryFault(drop_prob=0.5),))
        lone = plan.injector()
        mixed = plan.injector()
        lone_stream = [lone.delivery_outcome(0, 1, "put", None, 0)[0]
                       for _ in range(50)]
        mixed_stream = []
        for _ in range(50):
            mixed.delivery_outcome(2, 3, "put", None, 0)  # interleaved other-site draws
            mixed_stream.append(mixed.delivery_outcome(0, 1, "put", None, 0)[0])
        assert lone_stream == mixed_stream

    def test_summary_digest_stable(self):
        plan = FaultPlan(seed=3, deliveries=(DeliveryFault(drop_prob=0.5),))
        a, b = plan.injector(), plan.injector()
        for inj in (a, b):
            for _ in range(20):
                inj.delivery_outcome(0, 1, "put", None, 0)
        assert a.summary() == b.summary()
        assert a.summary()["events_sha256"] == b.summary()["events_sha256"]
