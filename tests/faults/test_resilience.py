"""End-to-end resilience: every stencil variant under every recoverable
profile converges bit-exactly; unrecoverable hangs become diagnostics."""

import numpy as np
import pytest

import repro.stencil.variants  # noqa: F401 - populate the registry
from repro.faults import SignalWaitTimeout, get_injector
from repro.sim import WatchdogError
from repro.stencil import StencilConfig, jacobi_reference, variant_names
from repro.stencil.base import VARIANTS, default_initial

SHAPE = (34, 66)
ITERATIONS = 6

NVSHMEM_VARIANTS = [n for n in variant_names() if VARIANTS[n].uses_nvshmem]


def _config(profile, **kw):
    kw.setdefault("global_shape", SHAPE)
    kw.setdefault("num_gpus", 2)
    kw.setdefault("iterations", ITERATIONS)
    return StencilConfig(fault_profile=profile, **kw)


def _reference(config):
    return jacobi_reference(default_initial(config.global_shape, config.seed),
                            config.iterations)


class TestConvergenceUnderFaults:
    @pytest.mark.parametrize("variant", variant_names())
    @pytest.mark.parametrize("profile", ["transient", "transient@7", "degraded",
                                         "link_down"])
    def test_variant_converges(self, variant, profile):
        config = _config(profile)
        instance = VARIANTS[variant](config)
        result = instance.run()
        np.testing.assert_array_equal(result.result, _reference(config))

    @pytest.mark.parametrize("variant", ["cpufree", "baseline_nvshmem"])
    def test_transient_retries_visible_in_metrics(self, variant):
        from repro.obs.metrics import MetricsRegistry, use_metrics

        registry = MetricsRegistry()
        with use_metrics(registry):
            config = _config("transient")
            instance = VARIANTS[variant](config)
            instance.run()
        dump = registry.to_dict()
        names = {series["name"] for series in dump["counters"]}
        assert "faults.injected" in names
        assert instance.faults.events, "transient profile injected nothing"
        if instance.faults.total_retries:
            assert "nvshmem.retry.count" in names

    def test_transient_numerics_match_fault_free(self):
        """Faults may cost time, never numerics: the faulted result is
        bit-identical to the fault-free run, but slower."""
        clean = VARIANTS["cpufree"](_config(None)).run()
        faulted = VARIANTS["cpufree"](_config("transient")).run()
        np.testing.assert_array_equal(faulted.result, clean.result)
        assert faulted.total_time_us > clean.total_time_us


class TestDegradedPath:
    def test_p2p_link_down_takes_staged_path(self):
        config = _config("link_down")
        instance = VARIANTS["baseline_p2p"](config)
        result = instance.run()
        np.testing.assert_array_equal(result.result, _reference(config))
        names = {s.name for s in result.tracer.spans}
        assert any(n.endswith("_staged") for n in names), sorted(names)
        assert any(e.kind == "staged_copy" for e in instance.faults.events)

    def test_cpufree_link_down_stages_puts(self):
        config = _config("link_down")
        instance = VARIANTS["cpufree"](config)
        result = instance.run()
        np.testing.assert_array_equal(result.result, _reference(config))
        assert instance.faults.total_degraded_puts > 0

    def test_link_down_slower_than_clean(self):
        clean = VARIANTS["baseline_p2p"](_config(None)).run()
        degraded = VARIANTS["baseline_p2p"](_config("link_down")).run()
        assert degraded.total_time_us > clean.total_time_us


class TestLostSignalDiagnostic:
    @pytest.mark.parametrize("variant", NVSHMEM_VARIANTS)
    def test_hang_becomes_watchdog_diagnostic(self, variant):
        instance = VARIANTS[variant](_config("lost_signal"))
        with pytest.raises(WatchdogError) as err:
            instance.run()
        message = str(err.value)
        # the diagnostic names a stuck process, the signal it waits on,
        # and the last delivery attempt for that signal
        assert "waiting on" in message
        assert "halo_flags" in message
        assert "last delivery attempt" in message
        assert "lost" in message

    def test_non_nvshmem_variant_unaffected(self):
        config = _config("lost_signal")
        result = VARIANTS["baseline_p2p"](config).run()
        np.testing.assert_array_equal(result.result, _reference(config))


class TestWaitTimeout:
    def test_signal_wait_timeout_raises_with_context(self):
        """An explicit wait timeout (no watchdog) gives up with a
        SignalWaitTimeout naming the flag and the lost delivery."""
        from repro.faults import DeliveryFault, FaultPlan
        from repro.hw import HGX_A100_8GPU
        from repro.nvshmem import NVSHMEMRuntime, WaitCond
        from repro.runtime import MultiGPUContext
        from repro.sim import Tracer

        plan = FaultPlan(
            deliveries=(DeliveryFault(src=0, dst=1, drop_prob=1.0, silent=True),),
            wait_timeout_us=10.0,
            retry_limit=2,
        )
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer(),
                              faults=plan.injector())
        nv = NVSHMEMRuntime(ctx)
        signals = nv.malloc_signals("sig", 1)
        captured = {}

        def sender(dev):
            yield from dev.putmem_signal_nbi(
                None, None, 0.0, signals, 0, 1, dest_pe=1, nbytes=8)

        def waiter(dev):
            try:
                yield from dev.signal_wait_until(signals, 0, WaitCond.GE, 1)
            except SignalWaitTimeout as exc:
                captured["message"] = str(exc)

        ctx.sim.spawn(sender(nv.device(0)))
        ctx.sim.spawn(waiter(nv.device(1)))
        ctx.run()
        assert "sig[pe1][0]" in captured["message"]
        assert "lost" in captured["message"]


class TestSDFGFastpathWatchdog:
    """The watchdog contract holds through the SDFG executor too, under
    both the vectorized map fastpath and the scalar fallback."""

    @pytest.mark.parametrize("fastpath", ["vector", "scalar"])
    def test_lost_signal_diagnostic(self, fastpath):
        from repro.hw import HGX_A100_8GPU
        from repro.runtime import MultiGPUContext
        from repro.sdfg.codegen import SDFGExecutor
        from repro.sdfg.distributed import SlabDecomposition1D
        from repro.sdfg.programs import (
            CONJUGATES_1D,
            build_jacobi_1d_sdfg,
            cpufree_pipeline,
        )
        from repro.sim import Tracer

        rng = np.random.default_rng(12)
        u0 = rng.random(14)
        args = SlabDecomposition1D(12, 2).rank_args(u0, 4)
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer(),
                              faults=get_injector("lost_signal"))
        with pytest.raises(WatchdogError) as err:
            SDFGExecutor(sdfg, ctx, fastpath=fastpath).run(args)
        message = str(err.value)
        assert "sdfg_flags" in message
        assert "last delivery attempt" in message
