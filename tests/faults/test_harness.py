"""Chaos-matrix harness: expected statuses, byte-identical reports,
jobs-count independence, and zero-fault inertness."""

import json

import numpy as np

from repro.faults.harness import (
    DEFAULT_MATRIX_PROFILES,
    render_report,
    run_matrix,
)
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.stencil import StencilConfig
from repro.stencil.base import VARIANTS

SMALL = dict(shape=(18, 34), num_gpus=2, iterations=3)


class TestMatrix:
    def test_small_matrix_all_ok(self):
        report = run_matrix(["baseline_p2p", "cpufree"],
                            ["none", "transient", "lost_signal"], **SMALL)
        assert report["ok"]
        assert report["failures"] == []
        by_cell = {(c["variant"], c["profile"]): c for c in report["cells"]}
        assert by_cell[("cpufree", "lost_signal")]["status"] == "diagnostic"
        assert by_cell[("cpufree", "transient")]["status"] == "converged"
        # non-NVSHMEM variant has no signals to lose: expect downgraded
        assert by_cell[("baseline_p2p", "lost_signal")]["expect"] == "converge"
        assert by_cell[("baseline_p2p", "lost_signal")]["status"] == "converged"

    def test_fault_summary_attached_to_faulted_cells(self):
        report = run_matrix(["cpufree"], ["none", "transient"], **SMALL)
        by_profile = {c["profile"]: c for c in report["cells"]}
        assert by_profile["none"]["faults"] is None
        summary = by_profile["transient"]["faults"]
        assert summary["injected_events"] > 0
        assert "events_sha256" in summary

    def test_unknown_profile_rejected_eagerly(self):
        import pytest
        with pytest.raises(ValueError, match="unknown fault profile"):
            run_matrix(["cpufree"], ["chaos_monkey"], **SMALL)

    def test_default_profiles_cover_all_expectations(self):
        assert "none" in DEFAULT_MATRIX_PROFILES
        assert "lost_signal" in DEFAULT_MATRIX_PROFILES


class TestReportDeterminism:
    def test_report_bytes_stable_across_runs(self):
        args = (["baseline_p2p", "cpufree"], ["none", "transient", "lost_signal"])
        first = render_report(run_matrix(*args, **SMALL))
        second = render_report(run_matrix(*args, **SMALL))
        assert first == second
        json.loads(first)  # well-formed

    def test_report_bytes_stable_across_jobs(self):
        args = (["baseline_p2p", "cpufree"], ["none", "transient"])
        serial = render_report(run_matrix(*args, jobs=1, **SMALL))
        parallel = render_report(run_matrix(*args, jobs=2, **SMALL))
        assert serial == parallel


class TestZeroFaultInertness:
    def test_none_profile_keeps_faults_hook_unset(self):
        for profile in (None, "none"):
            instance = VARIANTS["cpufree"](StencilConfig(
                global_shape=(18, 34), num_gpus=2, iterations=3,
                fault_profile=profile))
            assert instance.faults is None
            assert instance.ctx.faults is None

    def test_none_profile_byte_identical_to_unfaulted(self):
        """fault_profile="none" must not perturb metrics, traces, or
        results relative to not mentioning faults at all."""
        def run(profile):
            registry = MetricsRegistry()
            with use_metrics(registry):
                result = VARIANTS["cpufree"](StencilConfig(
                    global_shape=(18, 34), num_gpus=2, iterations=3,
                    fault_profile=profile)).run()
            metrics = json.dumps(registry.to_dict(), sort_keys=True)
            trace = json.dumps(result.tracer.to_chrome_trace(), sort_keys=True)
            return result.result, result.total_time_us, metrics, trace

        base_result, base_time, base_metrics, base_trace = run(None)
        none_result, none_time, none_metrics, none_trace = run("none")
        np.testing.assert_array_equal(none_result, base_result)
        assert none_time == base_time
        assert none_metrics == base_metrics
        assert none_trace == base_trace
