"""Fault-plan and profile validation."""

import pytest

from repro.faults import (
    DEFAULT_SEED,
    DeliveryFault,
    FaultInjector,
    FaultPlan,
    LinkFault,
    PROFILES,
    StragglerFault,
    get_injector,
    get_plan,
    parse_profile,
    use_fault_profile,
)
from repro.faults.profiles import active_fault_profile


class TestRuleValidation:
    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            DeliveryFault(drop_prob=1.5)
        with pytest.raises(ValueError, match="probability"):
            DeliveryFault(delay_prob=-0.1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_us"):
            DeliveryFault(delay_us=-1.0)

    def test_bad_link_knobs_rejected(self):
        with pytest.raises(ValueError, match="bandwidth_scale"):
            LinkFault(bandwidth_scale=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            LinkFault(extra_latency_us=-1.0)
        with pytest.raises(ValueError, match="non-negative"):
            LinkFault(jitter_us=-1.0)

    def test_bad_straggler_rejected(self):
        with pytest.raises(ValueError, match="pe"):
            StragglerFault(pe=-1, compute_scale=2.0)
        with pytest.raises(ValueError, match="compute_scale"):
            StragglerFault(pe=0, compute_scale=0.0)

    def test_bad_plan_knobs_rejected(self):
        with pytest.raises(ValueError, match="retry_limit"):
            FaultPlan(retry_limit=-1)
        with pytest.raises(ValueError, match="retry_backoff_us"):
            FaultPlan(retry_backoff_us=0.0)
        with pytest.raises(ValueError, match="retry_backoff_factor"):
            FaultPlan(retry_backoff_factor=0.5)
        with pytest.raises(ValueError, match="wait_timeout_us"):
            FaultPlan(wait_timeout_us=0.0)
        with pytest.raises(ValueError, match="watchdog_budget_us"):
            FaultPlan(watchdog_budget_us=-5.0)
        with pytest.raises(ValueError, match="expect"):
            FaultPlan(expect="explode")


class TestRuleMatching:
    def test_link_fault_symmetric_by_default(self):
        rule = LinkFault(src=0, dst=1)
        assert rule.matches(0, 1)
        assert rule.matches(1, 0)
        assert not rule.matches(0, 2)

    def test_link_fault_directional(self):
        rule = LinkFault(src=0, dst=1, symmetric=False)
        assert rule.matches(0, 1)
        assert not rule.matches(1, 0)

    def test_link_fault_never_matches_loopback_or_host(self):
        rule = LinkFault()  # full wildcard
        assert not rule.matches(2, 2)
        assert not rule.matches(-1, 3)  # HOST is negative
        assert not rule.matches(3, -1)
        assert rule.matches(2, 3)

    def test_delivery_fault_directional(self):
        rule = DeliveryFault(src=0, dst=1, drop_prob=1.0)
        assert rule.matches(0, 1)
        assert not rule.matches(1, 0)
        assert DeliveryFault(drop_prob=1.0).matches(5, 6)


class TestProfiles:
    def test_parse_profile_default_seed(self):
        assert parse_profile("transient") == ("transient", DEFAULT_SEED)

    def test_parse_profile_explicit_seed(self):
        assert parse_profile("lost_signal@7") == ("lost_signal", 7)

    def test_parse_profile_bad_seed(self):
        with pytest.raises(ValueError, match="seed"):
            parse_profile("transient@abc")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            get_plan("chaos_monkey")

    def test_every_profile_resolves(self):
        for name in PROFILES:
            plan = get_plan(name)
            assert plan.name == name
            assert plan.seed == DEFAULT_SEED

    def test_none_profile_is_inert(self):
        assert get_plan("none").inert
        assert get_injector("none") is None
        assert get_injector(None) is None

    def test_active_profiles_not_inert(self):
        for name in PROFILES:
            if name == "none":
                continue
            assert not get_plan(name).inert
            assert isinstance(get_injector(name), FaultInjector)

    def test_seed_threaded_into_plan(self):
        assert get_plan("transient@99").seed == 99

    def test_lost_signal_expects_diagnostic(self):
        assert get_plan("lost_signal").expect == "diagnostic"
        for name in ("none", "transient", "degraded", "link_down"):
            assert get_plan(name).expect == "converge"


class TestAmbientProfile:
    def test_ambient_default_is_none(self):
        assert active_fault_profile() is None

    def test_use_fault_profile_scopes_and_restores(self):
        with use_fault_profile("transient@3"):
            assert active_fault_profile() == "transient@3"
            with use_fault_profile("degraded"):
                assert active_fault_profile() == "degraded"
            assert active_fault_profile() == "transient@3"
        assert active_fault_profile() is None

    def test_use_fault_profile_validates_eagerly(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            with use_fault_profile("nope"):
                pass  # pragma: no cover
