"""Grand tour: one test that walks the entire user journey.

frontend → baseline + CPU-Free pipelines → validation → JSON
round-trip → DOT render → pseudo-CUDA → execution on the simulated
node → numerics vs oracle → speedup → timeline exports.  If this
passes, the README's pitch is true end to end.
"""

import json

import numpy as np

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg import sdfg_from_json, sdfg_to_json, validate
from repro.sdfg.codegen import SDFGExecutor, generate_cuda
from repro.sdfg.distributed import GridDecomposition2D
from repro.sdfg.dot import sdfg_to_dot
from repro.sdfg.programs import (
    CONJUGATES_2D,
    baseline_pipeline,
    build_jacobi_2d_sdfg,
    cpufree_pipeline,
)
from repro.sim import Tracer


def test_grand_tour(tmp_path):
    ranks, gy, gx, tsteps = 4, 16, 16, 5
    rng = np.random.default_rng(99)
    u0 = rng.random((gy + 2, gx + 2))
    decomp = GridDecomposition2D(gy, gx, ranks)

    # --- oracle -------------------------------------------------------------
    A, B = np.array(u0), np.array(u0)
    for _ in range(1, tsteps):
        B[1:-1, 1:-1] = 0.25 * (A[:-2, 1:-1] + A[2:, 1:-1]
                                + A[1:-1, :-2] + A[1:-1, 2:])
        A[1:-1, 1:-1] = 0.25 * (B[:-2, 1:-1] + B[2:, 1:-1]
                                + B[1:-1, :-2] + B[1:-1, 2:])

    # --- compile both pipelines ----------------------------------------------
    baseline = baseline_pipeline(build_jacobi_2d_sdfg())
    cpufree = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D)
    validate(baseline)
    validate(cpufree)

    # --- artifacts round-trip -------------------------------------------------
    json_path = tmp_path / "cpufree.sdfg"
    json_path.write_text(sdfg_to_json(cpufree, indent=2))
    cpufree = sdfg_from_json(json_path.read_text())
    validate(cpufree)

    dot = sdfg_to_dot(cpufree)
    assert "PutmemSignal" in dot

    cuda = generate_cuda(cpufree)
    assert "cudaLaunchCooperativeKernel" in cuda
    assert "nvshmem_double_iput" in cuda  # strided east/west halos

    # --- execute both on the simulated HGX node --------------------------------
    reports = {}
    for name, sdfg in (("baseline", baseline), ("cpufree", cpufree)):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
        report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, tsteps))
        got = decomp.gather(report.arrays, u0)
        np.testing.assert_array_equal(got, A, err_msg=name)
        reports[name] = report

    # --- the paper's conclusion, in one assertion -------------------------------
    speedup = (reports["baseline"].total_time_us - reports["cpufree"].total_time_us) \
        / reports["baseline"].total_time_us * 100
    # Fig 6.3b reaches 96% on device-saturating domains; even this tiny
    # 16x16 test domain shows the decisive win
    assert speedup > 60.0

    # --- timeline export ----------------------------------------------------------
    trace = reports["cpufree"].tracer.to_chrome_trace()
    trace_path = tmp_path / "trace.json"
    trace_path.write_text(json.dumps(trace))
    assert json.loads(trace_path.read_text())

    # the CPU-Free host went quiet after one launch per rank
    launches = [s for s in reports["cpufree"].tracer.spans_in("api")
                if s.name.startswith("launch")]
    assert len(launches) == ranks
