"""Vector clocks and the happens-before monitor (repro.sanitize.hb)."""

from repro.sanitize.hb import MAIN_TID, HBMonitor, VectorClock, happens_before
from repro.sim import Delay, Flag, Simulator, TIMEOUT, WaitFlag


# -- VectorClock -------------------------------------------------------------


def test_join_is_componentwise_max():
    a = VectorClock({1: 3, 2: 1})
    a.join({1: 2, 2: 5, 3: 7})
    assert a == {1: 3, 2: 5, 3: 7}


def test_copy_is_independent():
    a = VectorClock({1: 1})
    b = a.copy()
    b[1] = 9
    assert a[1] == 1


def test_happens_before_semantics():
    # b saw a's component at or beyond a's count -> ordered
    assert happens_before(1, {1: 2}, {1: 2})
    assert happens_before(1, {1: 2}, {1: 5})
    assert not happens_before(1, {1: 2}, {1: 1})
    assert not happens_before(1, {1: 2}, {2: 9})


# -- monitor + engine integration -------------------------------------------


def install(sim: Simulator) -> HBMonitor:
    monitor = HBMonitor()
    sim.monitor = monitor
    return monitor


def test_flag_release_acquire_creates_edge():
    sim = Simulator()
    monitor = install(sim)
    flag = Flag(sim, 0)
    stamps = {}

    def producer():
        yield Delay(1.0)
        stamps["a"] = (monitor.tid_of(sim.current), dict(monitor.clock_of(sim.current)))
        flag.set(1)

    def consumer():
        yield WaitFlag(flag, lambda v: v >= 1)
        stamps["b"] = dict(monitor.clock_of(sim.current))

    sim.spawn(producer(), name="producer")
    sim.spawn(consumer(), name="consumer")
    sim.run()
    a_tid, a_clock = stamps["a"]
    assert happens_before(a_tid, a_clock, stamps["b"])


def test_unsynchronized_processes_have_no_edge():
    sim = Simulator()
    monitor = install(sim)
    stamps = {}

    def worker(key, delay):
        yield Delay(delay)
        stamps[key] = (monitor.tid_of(sim.current), dict(monitor.clock_of(sim.current)))

    sim.spawn(worker("a", 1.0), name="a")
    sim.spawn(worker("b", 2.0), name="b")
    sim.run()
    a_tid, a_clock = stamps["a"]
    b_tid, b_clock = stamps["b"]
    assert not happens_before(a_tid, a_clock, b_clock)
    assert not happens_before(b_tid, b_clock, a_clock)


def test_events_after_release_not_ordered_before_acquire():
    # the producer's post-release work must NOT appear ordered before
    # the consumer's acquire (release must tick the producer's clock)
    sim = Simulator()
    monitor = install(sim)
    flag = Flag(sim, 0)
    stamps = {}

    def producer():
        yield Delay(1.0)
        flag.set(1)
        yield Delay(5.0)  # runs concurrently with the consumer
        stamps["late"] = (monitor.tid_of(sim.current), dict(monitor.clock_of(sim.current)))

    def consumer():
        yield WaitFlag(flag, lambda v: v >= 1)
        stamps["b"] = dict(monitor.clock_of(sim.current))

    sim.spawn(producer(), name="producer")
    sim.spawn(consumer(), name="consumer")
    sim.run()
    late_tid, late_clock = stamps["late"]
    assert not happens_before(late_tid, late_clock, stamps["b"])


def test_spawn_orders_parent_prefix_before_child():
    sim = Simulator()
    monitor = install(sim)
    stamps = {}

    def child():
        stamps["child"] = dict(monitor.clock_of(sim.current))
        yield Delay(0.5)

    def parent():
        yield Delay(1.0)
        stamps["parent"] = (monitor.tid_of(sim.current), dict(monitor.clock_of(sim.current)))
        sim.spawn(child(), name="child")
        yield Delay(1.0)

    sim.spawn(parent(), name="parent")
    sim.run()
    p_tid, p_clock = stamps["parent"]
    assert happens_before(p_tid, p_clock, stamps["child"])


def test_same_value_set_creates_no_edge():
    # Flag.set to the current value is a no-op in the engine; the
    # monitor must not fabricate a release edge for it
    sim = Simulator()
    monitor = install(sim)
    flag = Flag(sim, 1)
    stamps = {}

    def producer():
        yield Delay(1.0)
        stamps["a"] = (monitor.tid_of(sim.current), dict(monitor.clock_of(sim.current)))
        flag.set(1)  # same value: nobody wakes, no release

    def reader():
        yield Delay(2.0)
        stamps["b"] = dict(monitor.clock_of(sim.current))

    sim.spawn(producer(), name="producer")
    sim.spawn(reader(), name="reader")
    sim.run()
    a_tid, a_clock = stamps["a"]
    assert not happens_before(a_tid, a_clock, stamps["b"])


def test_timeout_resume_creates_no_edge():
    # a waiter that times out never observed the flag -> no acquire
    sim = Simulator()
    monitor = install(sim)
    flag = Flag(sim, 0)
    stamps = {}

    def producer():
        yield Delay(10.0)
        stamps["a"] = (monitor.tid_of(sim.current), dict(monitor.clock_of(sim.current)))
        flag.set(1)

    def impatient():
        result = yield WaitFlag(flag, lambda v: v >= 1, timeout=1.0)
        assert result is TIMEOUT
        yield Delay(20.0)  # outlive the producer's set
        stamps["b"] = dict(monitor.clock_of(sim.current))

    sim.spawn(producer(), name="producer")
    sim.spawn(impatient(), name="impatient")
    sim.run()
    a_tid, a_clock = stamps["a"]
    assert not happens_before(a_tid, a_clock, stamps["b"])


def test_main_code_uses_main_tid():
    sim = Simulator()
    monitor = install(sim)
    assert monitor.tid_of(None) == MAIN_TID
    assert monitor.clock_of(None).get(MAIN_TID, 0) >= 1
