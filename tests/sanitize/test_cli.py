"""End-to-end tests for ``python -m repro.sanitize`` (in-process)."""

import json

import pytest

from repro.cliutil import CliError, cli_entry
from repro.sanitize.__main__ import main

SMALL = ["--shape", "18x34", "--gpus", "2", "--iterations", "3"]


def test_run_clean_variant_exits_zero(capsys):
    assert main(["run", "--variant", "cpufree", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "0 race finding(s)" in out


def test_run_seeded_variant_exits_one_and_names_both_pes(capsys, tmp_path):
    report_path = tmp_path / "report.json"
    rc = main(["run", "--variant", "racy_unsignaled", *SMALL,
               "--report-out", str(report_path)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "race on" in out
    report = json.loads(report_path.read_text())
    assert report["ok"] is False and report["n_active"] > 0
    finding = report["findings"][0]
    # both PEs and the heap offsets are named
    assert sorted(finding["pes"]) == [0, 1]
    lo, hi = finding["offsets"]
    assert hi > lo >= 0
    assert finding["first"]["site"] and finding["second"]["site"]


def test_run_suppression_keeps_findings_but_exits_zero(tmp_path):
    report_path = tmp_path / "report.json"
    rc = main(["run", "--variant", "racy_unsignaled", *SMALL,
               "--suppress", "race:*", "--report-out", str(report_path)])
    assert rc == 0
    report = json.loads(report_path.read_text())
    assert report["n_active"] == 0
    assert report["findings"]  # still reported, just marked
    assert all(f["suppressed"] for f in report["findings"])


def test_run_unknown_variant_rejected(capsys):
    with pytest.raises(CliError):
        main(["run", "--variant", "nope", *SMALL])
    assert cli_entry(main, ["run", "--variant", "nope", *SMALL]) == 2
    assert capsys.readouterr().err.startswith("error: unknown variant")


def test_run_report_bytes_stable_across_reruns(tmp_path):
    paths = [tmp_path / "a.json", tmp_path / "b.json"]
    for path in paths:
        main(["run", "--variant", "racy_unsignaled", *SMALL,
              "--report-out", str(path)])
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_run_trace_out_contains_race_instants(tmp_path):
    trace_path = tmp_path / "trace.json"
    main(["run", "--variant", "racy_unsignaled", *SMALL,
          "--trace-out", str(trace_path)])
    events = json.loads(trace_path.read_text())
    instants = [e for e in events
                if e.get("ph") == "i" and e.get("cat") == "race"]
    assert instants
    assert all(e["name"].startswith("race:") for e in instants)


def test_lint_shipped_samples_clean(capsys, tmp_path):
    report_path = tmp_path / "lint.json"
    assert main(["lint", "--report-out", str(report_path)]) == 0
    report = json.loads(report_path.read_text())
    assert report["ok"] is True
    assert set(report["sdfgs"]) == {
        f"jacobi_{d}/{p}" for d in ("1d", "2d", "3d")
        for p in ("baseline", "cpufree")
    }
    assert all(s["n_active"] == 0 for s in report["sdfgs"].values())


def test_lint_demo_bad_flags_every_seeded_sdfg(tmp_path):
    report_path = tmp_path / "lint.json"
    assert main(["lint", "--demo-bad", "--report-out", str(report_path)]) == 0
    report = json.loads(report_path.read_text())
    demos = {k: v for k, v in report["sdfgs"].items() if k.startswith("demo/")}
    assert len(demos) == 3
    assert all(s["n_active"] > 0 for s in demos.values())
    rules = {f["rule"] for s in demos.values() for f in s["findings"]}
    assert rules == {"unsignaled-put-racy-read", "unmatched-wait",
                     "src-reuse-before-quiet", "mismatched-signal-pair"}


def test_obs_sanitize_flag_clean_run():
    from repro.obs.__main__ import main as obs_main

    rc = obs_main(["summary", "--variant", "cpufree", "--shape", "18x34",
                   "--gpus", "2", "--iterations", "3", "--sanitize"])
    assert rc == 0
