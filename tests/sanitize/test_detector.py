"""Offline race detection over recorded accesses (repro.sanitize.detect)."""

from types import SimpleNamespace

import pytest

from repro.sanitize.detect import detect_races
from repro.sanitize.hb import HBMonitor
from repro.sanitize.recorder import Sanitizer
from repro.sim import Delay, Flag, Simulator, WaitFlag


@pytest.fixture
def setup():
    sim = Simulator()
    monitor = HBMonitor()
    sim.monitor = monitor
    sanitizer = Sanitizer(sim, monitor)
    sanitizer.register_array(SimpleNamespace(name="A"))
    return sim, sanitizer


def test_unsynchronized_write_write_found(setup):
    sim, san = setup

    def writer(pe, delay):
        yield Delay(delay)
        san.record("A", 0, 0, 8, "write", site=f"w{pe}", by_pe=pe)

    sim.spawn(writer(0, 1.0), name="w0")
    sim.spawn(writer(1, 2.0), name="w1")
    sim.run()
    findings = detect_races(san)
    assert len(findings) == 1
    f = findings[0]
    assert f.kind == "write-write"
    assert f.pes == (0, 1)
    assert f.offsets == (0, 8)
    assert f.array == "A" and f.owner_pe == 0


def test_flag_synchronized_accesses_clean(setup):
    sim, san = setup
    flag = Flag(sim, 0)

    def producer():
        yield Delay(1.0)
        san.record("A", 0, 0, 8, "write", site="w", by_pe=0)
        flag.set(1)

    def consumer():
        yield WaitFlag(flag, lambda v: v >= 1)
        san.record("A", 0, 0, 8, "read", site="r", by_pe=1)

    sim.spawn(producer(), name="producer")
    sim.spawn(consumer(), name="consumer")
    sim.run()
    assert detect_races(san) == []


def test_disjoint_offsets_clean(setup):
    sim, san = setup

    def writer(pe, lo, hi):
        yield Delay(1.0)
        san.record("A", 0, lo, hi, "write", site=f"w{pe}", by_pe=pe)

    sim.spawn(writer(0, 0, 8), name="w0")
    sim.spawn(writer(1, 8, 16), name="w1")
    sim.run()
    assert detect_races(san) == []


def test_read_read_clean(setup):
    sim, san = setup

    def reader(pe):
        yield Delay(1.0)
        san.record("A", 0, 0, 8, "read", site=f"r{pe}", by_pe=pe)

    sim.spawn(reader(0), name="r0")
    sim.spawn(reader(1), name="r1")
    sim.run()
    assert detect_races(san) == []


def test_same_process_program_order_clean(setup):
    sim, san = setup

    def worker():
        yield Delay(1.0)
        san.record("A", 0, 0, 8, "write", site="w1", by_pe=0)
        yield Delay(1.0)
        san.record("A", 0, 0, 8, "write", site="w2", by_pe=0)

    sim.spawn(worker(), name="w")
    sim.run()
    assert detect_races(san) == []


def test_different_owner_pe_copies_clean(setup):
    # same symmetric name, different PE's copy: no conflict
    sim, san = setup

    def writer(pe):
        yield Delay(1.0)
        san.record("A", pe, 0, 8, "write", site=f"w{pe}", by_pe=pe)

    sim.spawn(writer(0), name="w0")
    sim.spawn(writer(1), name="w1")
    sim.run()
    assert detect_races(san) == []


def test_untracked_array_ignored(setup):
    sim, san = setup

    def writer(pe):
        yield Delay(1.0)
        san.record("GHOST", 0, 0, 8, "write", site=f"w{pe}", by_pe=pe)

    sim.spawn(writer(0), name="w0")
    sim.spawn(writer(1), name="w1")
    sim.run()
    assert san.accesses == [] and detect_races(san) == []


def test_repeated_site_pair_deduplicated_with_count(setup):
    sim, san = setup

    def writer(pe, delay):
        for it in range(3):
            yield Delay(delay)
            san.record("A", 0, 0, 8, "write", site=f"w{pe}", by_pe=pe,
                       label=f"it={it}")

    sim.spawn(writer(0, 1.0), name="w0")
    sim.spawn(writer(1, 1.5), name="w1")
    sim.run()
    findings = detect_races(san)
    # one finding per ordered site pair, counting every recurrence
    keys = {f.dedup_key for f in findings}
    assert len(findings) == len(keys)
    assert sum(f.count for f in findings) == 9  # 3x3 overlapping pairs
    assert all(f.first.seq < f.second.seq for f in findings)


def test_finding_id_and_describe(setup):
    sim, san = setup

    def writer(pe):
        yield Delay(1.0)
        san.record("A", 0, 0, 8, "write", site=f"w{pe}", by_pe=pe)

    sim.spawn(writer(0), name="w0")
    sim.spawn(writer(1), name="w1")
    sim.run()
    f = detect_races(san)[0]
    assert f.finding_id == "race:A@pe0:w0<->w1"
    d = f.describe()
    assert d["pes"] == [0, 1]
    assert d["offsets"] == [0, 8]
    assert d["first"]["site"] == "w0" and d["second"]["site"] == "w1"
    assert "race" in f.summary()
