"""Tests for the cost-model calibration."""

import pytest

from repro.hw import CostModel, DEFAULT_COST_MODEL


class TestTransfer:
    def test_zero_bytes_is_free(self):
        assert DEFAULT_COST_MODEL.transfer_us(0, 300.0, latency_us=5.0) == 0.0

    def test_bandwidth_math(self):
        # 300 GB/s == 300_000 bytes/us -> 3 MB takes 10 us + latency
        t = DEFAULT_COST_MODEL.transfer_us(3_000_000, 300.0, latency_us=1.0)
        assert t == pytest.approx(11.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.transfer_us(-1, 300.0)


class TestBarrier:
    def test_single_rank_free(self):
        assert DEFAULT_COST_MODEL.mpi_barrier_us(1) == 0.0

    def test_grows_linearly_with_ranks(self):
        cm = DEFAULT_COST_MODEL
        assert cm.mpi_barrier_us(2) == pytest.approx(cm.mpi_barrier_base_us)
        assert cm.mpi_barrier_us(8) == pytest.approx(7 * cm.mpi_barrier_base_us)
        assert cm.mpi_barrier_us(8) > cm.mpi_barrier_us(4) > cm.mpi_barrier_us(2)


class TestComputeTime:
    def test_zero_elements_free(self):
        assert DEFAULT_COST_MODEL.compute_time_us(0, 2039.0) == 0.0

    def test_scales_linearly_with_elements(self):
        cm = DEFAULT_COST_MODEL
        t1 = cm.compute_time_us(1_000_000, 2039.0)
        t2 = cm.compute_time_us(2_000_000, 2039.0)
        assert t2 == pytest.approx(2 * t1)

    def test_partial_device_is_slower(self):
        cm = DEFAULT_COST_MODEL
        full = cm.compute_time_us(10**6, 2039.0, fraction_of_device=1.0)
        half = cm.compute_time_us(10**6, 2039.0, fraction_of_device=0.5)
        assert half == pytest.approx(2 * full)

    def test_tiling_factor_multiplies_compute(self):
        cm = DEFAULT_COST_MODEL
        base = cm.compute_time_us(10**6, 2039.0)
        tiled = cm.compute_time_us(10**6, 2039.0, tiling_factor=1 + cm.tiling_penalty)
        assert tiled == pytest.approx(base * (1 + cm.tiling_penalty))

    def test_tiling_factor_ramp(self):
        cm = DEFAULT_COST_MODEL
        threads = 1000
        assert cm.tiling_factor(4 * threads, threads) == 1.0
        assert cm.tiling_factor(int(cm.tiling_free_ratio) * threads, threads) == 1.0
        full = cm.tiling_factor(int(cm.tiling_full_ratio) * threads, threads)
        assert full == pytest.approx(1 + cm.tiling_penalty)
        mid_ratio = (cm.tiling_free_ratio + cm.tiling_full_ratio) / 2
        mid = cm.tiling_factor(int(mid_ratio * threads), threads)
        assert 1.0 < mid < full
        beyond = cm.tiling_factor(100 * int(cm.tiling_full_ratio) * threads, threads)
        assert beyond == pytest.approx(full)

    def test_tiling_factor_invalid(self):
        cm = DEFAULT_COST_MODEL
        with pytest.raises(ValueError):
            cm.tiling_factor(100, 0)
        with pytest.raises(ValueError):
            cm.tiling_factor(-1, 10)
        with pytest.raises(ValueError):
            cm.compute_time_us(1, 2039.0, tiling_factor=0.5)

    def test_perks_residency_speeds_up(self):
        cm = DEFAULT_COST_MODEL
        base = cm.compute_time_us(10**6, 2039.0)
        cached = cm.compute_time_us(10**6, 2039.0, perks_residency=1.0)
        assert cached == pytest.approx(base * (1 - cm.perks_cache_benefit))
        partial = cm.compute_time_us(10**6, 2039.0, perks_residency=0.5)
        assert base > partial > cached

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.compute_time_us(1, 2039.0, fraction_of_device=0.0)
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.compute_time_us(1, 2039.0, fraction_of_device=1.5)

    def test_invalid_residency_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.compute_time_us(1, 2039.0, perks_residency=-0.1)

    def test_medium_domain_per_iteration_in_tens_of_us(self):
        """Sanity: a 2048^2 fp64 Jacobi iteration on one A100 should be
        O(10) microseconds — the scale the paper's Figure 6.1 reports."""
        t = DEFAULT_COST_MODEL.compute_time_us(2048 * 2048, 2039.0)
        assert 10.0 < t < 100.0


class TestLatencyHierarchy:
    """The paper's core premise: host-side control costs dominate
    device-side signaling costs."""

    def test_kernel_launch_exceeds_grid_sync(self):
        cm = DEFAULT_COST_MODEL
        assert cm.kernel_launch_us > cm.grid_sync_us

    def test_mpi_message_dwarfs_nvshmem_put(self):
        cm = DEFAULT_COST_MODEL
        assert cm.mpi_message_latency_us > 5 * cm.nvshmem_put_latency_us

    def test_stream_sync_dwarfs_signal(self):
        cm = DEFAULT_COST_MODEL
        assert cm.stream_sync_us > 3 * cm.nvshmem_signal_us

    def test_host_rendezvous_dominates_at_scale(self):
        """At 8 ranks the per-step host barrier alone exceeds the whole
        device-side control path — the core Fig 2.2 observation."""
        cm = DEFAULT_COST_MODEL
        device_path = cm.grid_sync_us + cm.nvshmem_put_latency_us + cm.nvshmem_signal_us
        assert cm.mpi_barrier_us(8) > 10 * device_path

    def test_with_override_returns_new_instance(self):
        tweaked = DEFAULT_COST_MODEL.with_(kernel_launch_us=100.0)
        assert tweaked.kernel_launch_us == 100.0
        assert DEFAULT_COST_MODEL.kernel_launch_us == 3.2
        assert isinstance(tweaked, CostModel)


class TestWithValidation:
    def test_typo_raises_clear_error(self):
        with pytest.raises(ValueError, match="unknown CostModel knob"):
            DEFAULT_COST_MODEL.with_(kernel_lauch_us=1.0)

    def test_error_lists_valid_knobs(self):
        with pytest.raises(ValueError, match="kernel_launch_us"):
            DEFAULT_COST_MODEL.with_(grid_sync=9.0)

    def test_multiple_typos_all_named(self):
        with pytest.raises(ValueError, match="bad_a, bad_b"):
            DEFAULT_COST_MODEL.with_(bad_b=1.0, bad_a=2.0)

    def test_valid_knobs_still_work(self):
        tweaked = DEFAULT_COST_MODEL.with_(grid_sync_us=9.0, tiling_penalty=0.5)
        assert tweaked.grid_sync_us == 9.0
        assert tweaked.tiling_penalty == 0.5
