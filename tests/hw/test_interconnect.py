"""Tests for link topology and transfer times."""

import pytest

from repro.hw import HGX_A100_8GPU, Link, NodeTopology
from repro.hw.interconnect import HOST


class TestLink:
    def test_transfer_time(self):
        link = Link(bandwidth_gbps=300.0, latency_us=1.3)
        assert link.transfer_us(300_000) == pytest.approx(1.3 + 1.0)

    def test_zero_bytes_free(self):
        assert Link(300.0, 1.3).transfer_us(0) == 0.0

    def test_sharers_split_bandwidth(self):
        link = Link(100.0, 0.0)
        assert link.transfer_us(100_000, sharers=2) == pytest.approx(2.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Link(0.0, 1.0)
        with pytest.raises(ValueError):
            Link(100.0, -1.0)
        with pytest.raises(ValueError):
            Link(100.0, 0.0).transfer_us(-5)
        with pytest.raises(ValueError):
            Link(100.0, 0.0).transfer_us(5, sharers=0)


class TestNodeTopology:
    @pytest.fixture
    def topo(self):
        return NodeTopology(HGX_A100_8GPU)

    def test_peer_link_is_nvlink(self, topo):
        link = topo.link(0, 7)
        assert link.bandwidth_gbps == 300.0

    def test_all_pairs_symmetric(self, topo):
        for a in range(8):
            for b in range(8):
                if a != b:
                    assert topo.link(a, b) == topo.link(b, a)

    def test_host_link_is_pcie(self, topo):
        assert topo.link(HOST, 3).bandwidth_gbps == HGX_A100_8GPU.host_link_bandwidth_gbps
        assert topo.link(3, HOST).bandwidth_gbps == HGX_A100_8GPU.host_link_bandwidth_gbps

    def test_local_copy_uses_hbm(self, topo):
        assert topo.link(2, 2).bandwidth_gbps == HGX_A100_8GPU.gpu.hbm_bandwidth_gbps

    def test_peers_excludes_self(self, topo):
        assert topo.peers(3) == [0, 1, 2, 4, 5, 6, 7]

    def test_host_peers_all_gpus(self, topo):
        assert topo.peers(HOST) == list(range(8))

    def test_out_of_range_device_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.link(0, 8)
        with pytest.raises(ValueError):
            topo.peers(-2)

    def test_transfer_us_shortcut(self, topo):
        assert topo.transfer_us(0, 1, 300_000) == pytest.approx(
            topo.link(0, 1).transfer_us(300_000)
        )

    def test_nvlink_faster_than_pcie(self, topo):
        n = 10_000_000
        assert topo.transfer_us(0, 1, n) < topo.transfer_us(HOST, 1, n)
