"""Tests for GPU/node capability specs."""

import pytest

from repro.hw import A100_SXM4_80GB, GPUSpec, HGX_A100_8GPU


class TestGPUSpec:
    def test_a100_constants(self):
        assert A100_SXM4_80GB.sm_count == 108
        assert A100_SXM4_80GB.max_threads_per_block == 1024
        assert A100_SXM4_80GB.hbm_bandwidth_gbps == pytest.approx(2039.0)

    def test_coresident_blocks_1024_threads(self):
        # 2048 threads/SM / 1024 threads/block = 2 blocks/SM * 108 SMs
        assert A100_SXM4_80GB.max_coresident_blocks(1024) == 216

    def test_coresident_blocks_256_threads_capped_by_slots(self):
        # 2048/256 = 8 blocks by threads, under the 32-slot cap
        assert A100_SXM4_80GB.max_coresident_blocks(256) == 108 * 8

    def test_coresident_blocks_small_block_hits_slot_cap(self):
        # 2048/32 = 64 > 32 slots -> capped at 32/SM
        assert A100_SXM4_80GB.max_coresident_blocks(32) == 108 * 32

    def test_coresident_rejects_oversized_block(self):
        with pytest.raises(ValueError):
            A100_SXM4_80GB.max_coresident_blocks(2048)

    def test_coresident_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            A100_SXM4_80GB.max_coresident_blocks(0)

    def test_saturation_elements_matches_paper_domain_classes(self):
        """Paper §6.1.1: 256^2 is 'small' (under-saturates), 2048^2
        'medium' (saturates), 8192^2 'large' (over-saturates)."""
        sat = A100_SXM4_80GB.saturation_elements(1024)
        assert 256**2 < sat          # small domain under-saturates
        assert 2048**2 > sat         # medium fills the device
        assert 8192**2 > 10 * sat    # large heavily oversubscribes

    def test_invalid_sm_count_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(
                name="bad", sm_count=0, max_threads_per_sm=2048,
                max_threads_per_block=1024, max_blocks_per_sm=32,
                hbm_bandwidth_gbps=1000.0, hbm_capacity_bytes=1,
                shared_mem_per_sm_bytes=1, registers_per_sm=1,
            )

    def test_with_override(self):
        half = A100_SXM4_80GB.with_(sm_count=54)
        assert half.sm_count == 54
        assert half.hbm_bandwidth_gbps == A100_SXM4_80GB.hbm_bandwidth_gbps


class TestNodeSpec:
    def test_hgx_defaults(self):
        assert HGX_A100_8GPU.num_gpus == 8
        assert HGX_A100_8GPU.nvlink_bandwidth_gbps == 300.0

    def test_scaled_to(self):
        node4 = HGX_A100_8GPU.scaled_to(4)
        assert node4.num_gpus == 4
        assert node4.gpu is HGX_A100_8GPU.gpu

    def test_zero_gpus_rejected(self):
        with pytest.raises(ValueError):
            HGX_A100_8GPU.scaled_to(0)


class TestHierarchicalScaling:
    """Regression: ``scaled_to`` above the NVSwitch domain size used to
    silently model full all-to-all NVLink at arbitrary GPU counts — a
    256-"GPU" node pretended every pair had a direct NVLink.  It must
    now construct the hierarchical (domains + rails) topology spec."""

    def test_scaling_past_the_domain_is_not_flat(self):
        node = HGX_A100_8GPU.scaled_to(256)
        assert node.num_gpus == 256
        # the old behavior — nvswitch_domain_gpus None at 256 GPUs,
        # i.e. one flat 256-way NVSwitch — is pinned here as wrong
        assert node.nvswitch_domain_gpus is not None
        assert node.is_hierarchical
        assert node.domain_gpus == 8
        assert node.num_domains == 32

    def test_scaling_within_the_domain_stays_flat(self):
        for n in (1, 2, 4, 8):
            node = HGX_A100_8GPU.scaled_to(n)
            assert not node.is_hierarchical
            assert node.num_domains == 1
            assert node.domain_gpus == n

    def test_non_divisible_count_raises(self):
        with pytest.raises(ValueError, match="whole number of 8-GPU domains"):
            HGX_A100_8GPU.scaled_to(12)

    def test_explicit_domain_size_survives_scaling(self):
        from dataclasses import replace

        node = replace(HGX_A100_8GPU, num_gpus=4, nvswitch_domain_gpus=4)
        scaled = node.scaled_to(16)
        assert scaled.domain_gpus == 4
        assert scaled.num_domains == 4

    def test_domain_of(self):
        node = HGX_A100_8GPU.scaled_to(16)
        assert node.domain_of(0) == 0
        assert node.domain_of(7) == 0
        assert node.domain_of(8) == 1
        assert node.domain_of(15) == 1
        with pytest.raises(ValueError):
            node.domain_of(16)

    def test_rescaling_hierarchical_back_down_goes_flat(self):
        node = HGX_A100_8GPU.scaled_to(256).scaled_to(4)
        assert node.num_gpus == 4
        assert not node.is_hierarchical
