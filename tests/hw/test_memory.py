"""Tests for device buffers, storage classes, and peer access."""

import numpy as np
import pytest

from repro.hw import DeviceBuffer, MemoryManager, Storage
from repro.hw.memory import PeerAccessError


@pytest.fixture
def mm():
    return MemoryManager(num_gpus=4)


class TestAllocation:
    def test_alloc_zero_filled_by_default(self, mm):
        buf = mm.alloc(0, "a", (4, 4))
        assert buf.shape == (4, 4)
        assert buf.dtype == np.float64
        assert np.all(buf.data == 0.0)
        assert buf.storage is Storage.GLOBAL

    def test_alloc_with_fill(self, mm):
        buf = mm.alloc(1, "b", 8, fill=3.5)
        assert np.all(buf.data == 3.5)

    def test_alloc_uninitialized(self, mm):
        buf = mm.alloc(1, "c", 8, fill=None)
        assert buf.shape == (8,)

    def test_used_bytes_tracks_allocs(self, mm):
        assert mm.used_bytes(2) == 0
        buf = mm.alloc(2, "x", (10,), dtype=np.float64)
        assert mm.used_bytes(2) == 80
        mm.free(buf)
        assert mm.used_bytes(2) == 0

    def test_capacity_enforced(self):
        mm = MemoryManager(num_gpus=1, capacity_bytes=100)
        mm.alloc(0, "small", (10,), dtype=np.float64)  # 80 bytes
        with pytest.raises(MemoryError):
            mm.alloc(0, "big", (10,), dtype=np.float64)

    def test_double_free_raises(self, mm):
        buf = mm.alloc(0, "a", (2,))
        mm.free(buf)
        with pytest.raises(RuntimeError, match="double free"):
            mm.free(buf)

    def test_invalid_device_rejected(self, mm):
        with pytest.raises(ValueError):
            mm.alloc(4, "x", (1,))
        with pytest.raises(ValueError):
            mm.used_bytes(-1)

    def test_buffers_on_device(self, mm):
        a = mm.alloc(0, "a", (1,))
        b = mm.alloc(1, "b", (1,))
        c = mm.alloc(0, "c", (1,))
        assert list(mm.buffers_on(0)) == [a, c]
        assert list(mm.buffers_on(1)) == [b]

    def test_buffer_identity_not_value_equality(self, mm):
        a = mm.alloc(0, "same", (2,))
        b = mm.alloc(0, "same", (2,))
        assert a != b

    def test_nbytes(self, mm):
        buf = mm.alloc(0, "n", (3, 3), dtype=np.float32)
        assert buf.nbytes == 36


class TestPeerAccess:
    def test_local_access_always_ok(self, mm):
        buf = mm.alloc(0, "a", (1,))
        mm.check_peer_access(0, buf)  # no raise

    def test_remote_global_requires_enable(self, mm):
        buf = mm.alloc(1, "a", (1,))
        with pytest.raises(PeerAccessError):
            mm.check_peer_access(0, buf)
        mm.enable_peer_access(0, 1)
        mm.check_peer_access(0, buf)  # now fine

    def test_peer_access_is_directional(self, mm):
        buf0 = mm.alloc(0, "a", (1,))
        mm.enable_peer_access(0, 1)
        with pytest.raises(PeerAccessError):
            mm.check_peer_access(1, buf0)

    def test_symmetric_storage_always_remotely_accessible(self, mm):
        buf = mm.alloc(2, "sym", (4,), storage=Storage.SYMMETRIC)
        mm.check_peer_access(0, buf)  # PGAS contract: no enable needed

    def test_enable_all_peer_access(self, mm):
        mm.enable_all_peer_access()
        for a in range(4):
            for b in range(4):
                if a != b:
                    buf = mm.alloc(b, f"x{a}{b}", (1,))
                    mm.check_peer_access(a, buf)
