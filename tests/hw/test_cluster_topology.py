"""Hierarchical topology: domains, rails, proxy/staged routes."""

import pytest

from repro.hw import HGX_A100_8GPU, ClusterTopology, NodeTopology, RailLink, build_topology
from repro.hw.interconnect import HOST

KB = 1000


def _cluster(num_gpus=16):
    return build_topology(HGX_A100_8GPU.scaled_to(num_gpus))


class TestBuildTopology:
    def test_flat_node_builds_flat_topology(self):
        topo = build_topology(HGX_A100_8GPU.scaled_to(4))
        assert type(topo) is NodeTopology
        assert topo.num_domains == 1

    def test_hierarchical_node_builds_cluster(self):
        topo = _cluster(16)
        assert isinstance(topo, ClusterTopology)
        assert topo.num_domains == 2
        assert topo.domain_gpus == 8


class TestDomains:
    def test_domain_of(self):
        topo = _cluster(16)
        assert [topo.domain_of(d) for d in (0, 7, 8, 15)] == [0, 0, 1, 1]

    def test_cross_domain(self):
        topo = _cluster(16)
        assert not topo.cross_domain(0, 7)
        assert topo.cross_domain(0, 8)
        assert topo.cross_domain(15, 3)
        assert not topo.cross_domain(3, 3)
        assert not topo.cross_domain(0, HOST)

    def test_rail_accessor_bounds(self):
        topo = _cluster(16)
        assert topo.rail(0) is not topo.rail(1)
        with pytest.raises(ValueError):
            topo.rail(2)


class TestCosts:
    def test_intra_domain_keeps_nvlink(self):
        topo = _cluster(16)
        flat = NodeTopology(HGX_A100_8GPU)
        assert topo.transfer_us(0, 7, 300 * KB) == flat.transfer_us(0, 7, 300 * KB)

    def test_inter_slower_than_intra(self):
        topo = _cluster(16)
        nbytes = 300 * KB
        assert topo.transfer_us(0, 8, nbytes) > topo.transfer_us(0, 7, nbytes)

    def test_cross_domain_link_is_rail_composite(self):
        topo = _cluster(16)
        node = topo.node
        link = topo.link(0, 8)
        assert link.bandwidth_gbps == node.rail_bandwidth_gbps
        assert link.latency_us == node.nvlink_latency_us + node.rail_latency_us

    def test_zero_bytes_cost_nothing(self):
        topo = _cluster(16)
        assert topo.rail_transfer_us(0, 8, 0) == 0.0

    def test_rail_transfer_rejects_same_domain(self):
        topo = _cluster(16)
        with pytest.raises(ValueError):
            topo.rail_transfer_us(0, 1, KB)

    def test_staged_route_crosses_the_rail(self):
        """An inter-node staged reroute must charge the source rail, not
        pretend one shared host link spans the machine (the old bug)."""
        topo = _cluster(16)
        nbytes = 300 * KB
        host_only = (topo.link(0, HOST).transfer_us(nbytes)
                     + topo.link(HOST, 8).transfer_us(nbytes))
        # estimate the rail leg BEFORE the staged call: staging is a
        # real transfer, so staged_route_us occupies the rail itself
        rail_leg = topo.rail_transfer_us(0, 8, nbytes, occupy=False)
        staged = topo.staged_route_us(0, 8, nbytes)
        assert staged == pytest.approx(host_only + rail_leg)

    def test_flat_staged_route_unchanged(self):
        """Single-domain staging must stay the pre-PR host bounce."""
        topo = NodeTopology(HGX_A100_8GPU)
        nbytes = 300 * KB
        expected = (topo.link(0, HOST).transfer_us(nbytes)
                    + topo.link(HOST, 1).transfer_us(nbytes))
        assert topo.staged_route_us(0, 1, nbytes) == expected


class TestRailOccupancy:
    """The `sharers` bugfix: rails account concurrent occupancy
    themselves instead of relying on callers to pass ``sharers``."""

    def test_concurrent_transfers_contend(self):
        clock = [0.0]
        rail = RailLink(25.0, 5.0, lambda: clock[0])
        first = rail.occupy(1000 * KB)
        second = rail.occupy(1000 * KB)  # issued while the first flies
        assert second > first  # halved effective bandwidth

    def test_occupancy_drains_with_the_clock(self):
        clock = [0.0]
        rail = RailLink(25.0, 5.0, lambda: clock[0])
        cost = rail.occupy(1000 * KB)
        assert rail.inflight() == 1
        clock[0] = cost + 1.0
        assert rail.inflight() == 0
        assert rail.occupy(1000 * KB) == pytest.approx(cost)

    def test_transfer_us_is_a_pure_estimate(self):
        clock = [0.0]
        rail = RailLink(25.0, 5.0, lambda: clock[0])
        a = rail.transfer_us(1000 * KB)
        b = rail.transfer_us(1000 * KB)
        assert a == b
        assert rail.inflight() == 0

    def test_explicit_sharers_stack_with_occupancy(self):
        clock = [0.0]
        rail = RailLink(25.0, 5.0, lambda: clock[0])
        rail.occupy(1000 * KB)
        with_both = rail.transfer_us(1000 * KB, sharers=2)
        # 2 declared sharers + 1 in flight = bandwidth / 3
        assert with_both == pytest.approx(5.0 + 1000 * KB / (25.0 / 3 * 1000.0))

    def test_clockless_rail_never_contends(self):
        rail = RailLink(25.0, 5.0)
        a = rail.occupy(1000 * KB)
        b = rail.occupy(1000 * KB)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RailLink(0.0, 5.0)
        rail = RailLink(25.0, 5.0)
        with pytest.raises(ValueError):
            rail.transfer_us(-1)
        with pytest.raises(ValueError):
            rail.transfer_us(KB, sharers=0)


class TestRailMetrics:
    def test_rail_counters_flow_to_registry(self):
        from repro.obs.metrics import MetricsRegistry

        topo = _cluster(16)
        topo.metrics = MetricsRegistry()
        topo.transfer_us(0, 8, 10 * KB)
        topo.transfer_us(9, 2, 4 * KB)
        topo.flush_metrics()
        assert topo.metrics.value("hw.rail.bytes", src_node="0", dst_node="1") == 10 * KB
        assert topo.metrics.value("hw.rail.transfers", src_node="1", dst_node="0") == 1
