"""Cache-key safety audit.

A stale sweep-cache replay silently corrupts BENCH tables, so every
knob that changes a sweep point's *behavior* must perturb its cache
key.  The key is ``sha256(identity | source digest)`` where identity
is ``worker qualname | repr(args) | variant`` — so the audit reduces
to: (a) each behavioral knob is captured into the worker's explicit
argument tuple in the main process (never smuggled through module
state), and (b) anything baked into sources (e.g. a profile's watchdog
budget) flips the source digest when edited.
"""

import pytest

from repro.bench.figures import _dace_1d_point, _stencil_point
from repro.faults.profiles import PROFILES, get_plan, use_fault_profile
from repro.perf import ResultCache, SweepRunner, use_runner
from repro.perf.cache import point_identity, source_digest
from repro.sdfg.codegen import active_fastpath_mode, use_fastpath_mode
from repro.stencil import StencilConfig


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _dace_key(cache, fault_profile=None, fastpath="vector"):
    return cache.key(_dace_1d_point, (8, "cpufree", 1000, 3, fault_profile, fastpath))


class TestKeyPerturbation:
    def test_fastpath_mode_perturbs_key(self, cache):
        keys = {_dace_key(cache, fastpath=mode)
                for mode in ("vector", "scalar", "validate")}
        assert len(keys) == 3

    def test_fault_profile_perturbs_key(self, cache):
        keys = {_dace_key(cache, fault_profile=spec)
                for spec in (None, "transient", "transient@7", "degraded")}
        assert len(keys) == 4

    def test_fault_profile_perturbs_stencil_key(self, cache):
        """StencilConfig resolves the ambient profile at construction,
        so it rides inside the worker's pickled config repr."""
        def key_for(spec):
            with use_fault_profile(spec):
                config = StencilConfig(global_shape=(8, 8), num_gpus=2,
                                       iterations=2, with_data=False)
            assert f"fault_profile={spec!r}" in repr(config)
            return cache.key(_stencil_point, ("cpufree", config))

        assert key_for(None) != key_for("transient@3")

    def test_watchdog_settings_ride_on_the_profile(self, cache):
        """Watchdog budgets are properties of the named fault plan: the
        profile spec (in the key) selects them, and editing a budget in
        profiles.py flips the source digest (every key).  Pin both
        halves of that argument."""
        budgets = {name: get_plan(name).watchdog_budget_us for name in PROFILES}
        assert len(set(budgets.values())) > 1, \
            "profiles no longer differ in watchdog budget; the audit " \
            "below would be vacuous"
        lost, transient = get_plan("lost_signal"), get_plan("transient")
        assert lost.watchdog_budget_us != transient.watchdog_budget_us
        assert _dace_key(cache, fault_profile="lost_signal") \
            != _dace_key(cache, fault_profile="transient")

    def test_source_digest_perturbs_key(self, cache, monkeypatch):
        before = _dace_key(cache)
        monkeypatch.setattr("repro.perf.cache.source_digest",
                            lambda: "deadbeef" * 8)
        assert _dace_key(cache) != before

    def test_metrics_variant_perturbs_key(self, cache):
        plain = cache.key(_dace_1d_point, (2, "cpufree", 1000, 3))
        metered = cache.key(_dace_1d_point, (2, "cpufree", 1000, 3),
                            variant="+metrics")
        assert plain != metered

    def test_source_digest_is_stable_within_process(self):
        assert source_digest() == source_digest()
        assert len(source_digest()) == 64


class TestAmbientCapture:
    """The sweeps must capture ambient modes into task tuples in the
    main process — worker processes never see the ambient state."""

    def _captured_tasks(self, figure):
        captured = {}

        class Capture(SweepRunner):
            def map(self, fn, argtuples):
                captured["fn"], captured["tasks"] = fn, list(argtuples)
                raise _Stop

        class _Stop(Exception):
            pass

        with use_runner(Capture()):
            try:
                figure()
            except _Stop:
                pass
        return captured["fn"], captured["tasks"]

    def test_fig63a_captures_fastpath_and_profile(self):
        from repro.bench.figures import fig63a_dace_1d

        with use_fault_profile("transient@5"), use_fastpath_mode("scalar"):
            fn, tasks = self._captured_tasks(fig63a_dace_1d)
        assert all(t[-2:] == ("transient@5", "scalar") for t in tasks)
        identities = {point_identity(fn, t) for t in tasks}
        assert len(identities) == len(tasks)

    def test_fig63b_captures_fastpath_and_profile(self):
        from repro.bench.figures import fig63b_dace_2d

        with use_fault_profile("degraded@2"), use_fastpath_mode("validate"):
            _, tasks = self._captured_tasks(fig63b_dace_2d)
        assert all(t[-2:] == ("degraded@2", "validate") for t in tasks)

    def test_ambient_fastpath_mode_restores(self):
        assert active_fastpath_mode() == "vector"
        with use_fastpath_mode("scalar"):
            assert active_fastpath_mode() == "scalar"
        assert active_fastpath_mode() == "vector"

    def test_unknown_fastpath_mode_rejected(self):
        with pytest.raises(ValueError):
            with use_fastpath_mode("turbo"):
                pass
