"""Determinism and caching contracts of the perf sweep runner.

The load-bearing guarantee: fanning sweep points over worker processes
(or replaying them from the cache) must not change a single byte of
the figure report.
"""

import numpy as np

from repro.bench.figures import _dace_1d_point, _stencil_point
from repro.perf import ResultCache, SweepRunner, active_runner, use_runner
from repro.perf.cache import source_digest
from repro.stencil import StencilConfig


def _small_tasks():
    configs = [
        StencilConfig(global_shape=(8, 10), num_gpus=2, iterations=3, with_data=False),
        StencilConfig(global_shape=(10, 10), num_gpus=2, iterations=3, with_data=False),
    ]
    return [("cpufree", c) for c in configs] + [("baseline_copy", c) for c in configs]


class TestRunnerDeterminism:
    def test_serial_matches_plain_calls(self):
        tasks = _small_tasks()
        expected = [_stencil_point(*t) for t in tasks]
        assert SweepRunner(jobs=1).map(_stencil_point, tasks) == expected

    def test_parallel_matches_serial(self):
        """--jobs N must be indistinguishable from --jobs 1."""
        tasks = _small_tasks()
        serial = SweepRunner(jobs=1).map(_stencil_point, tasks)
        parallel = SweepRunner(jobs=4).map(_stencil_point, tasks)
        assert parallel == serial

    def test_parallel_dace_matches_serial(self):
        tasks = [(g, kind, 1000, 3) for g in (1, 2) for kind in ("baseline", "cpufree")]
        serial = SweepRunner(jobs=1).map(_dace_1d_point, tasks)
        parallel = SweepRunner(jobs=2).map(_dace_1d_point, tasks)
        assert parallel == serial

    def test_results_keep_submission_order(self):
        tasks = _small_tasks()
        rows = SweepRunner(jobs=4).map(_stencil_point, tasks)
        assert [(r.series, r.x) for r in rows] == \
            [(variant, config.num_gpus) for variant, config in tasks]


class TestReportByteIdentity:
    def test_jobs4_report_byte_identical_to_jobs1(self, tmp_path):
        """Acceptance criterion: parallel sweep produces a byte-identical
        report file to the serial sweep."""
        from repro.bench.__main__ import main

        serial, parallel = tmp_path / "j1.txt", tmp_path / "j4.txt"
        assert main(["2.2", "--jobs", "1", "--no-cache", "--out", str(serial)]) == 0
        assert main(["2.2", "--jobs", "4", "--no-cache", "--out", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_cached_report_byte_identical_to_fresh(self, tmp_path):
        from repro.bench.__main__ import main

        cache = tmp_path / "cache"
        fresh, replay = tmp_path / "fresh.txt", tmp_path / "replay.txt"
        assert main(["2.2", "--cache-dir", str(cache), "--out", str(fresh)]) == 0
        assert main(["2.2", "--cache-dir", str(cache), "--out", str(replay)]) == 0
        assert fresh.read_bytes() == replay.read_bytes()


class TestResultCache:
    def test_replay_hits_and_matches(self, tmp_path):
        tasks = _small_tasks()
        cache = ResultCache(tmp_path / "cache")
        first = SweepRunner(jobs=1, cache=cache)
        fresh = first.map(_stencil_point, tasks)
        assert (first.hits, first.misses) == (0, len(tasks))

        second = SweepRunner(jobs=1, cache=cache)
        replayed = second.map(_stencil_point, tasks)
        assert (second.hits, second.misses) == (len(tasks), 0)
        assert replayed == fresh

    def test_key_depends_on_args(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = cache.key(_stencil_point, _small_tasks()[0])
        b = cache.key(_stencil_point, _small_tasks()[1])
        assert a != b

    def test_key_includes_source_digest(self, tmp_path):
        """Keys embed a hash of the repro sources, so stale entries can
        never survive a source change."""
        cache = ResultCache(tmp_path)
        key = cache.key(_stencil_point, _small_tasks()[0])
        payload = (f"{_stencil_point.__module__}.{_stencil_point.__qualname__}"
                   f"|{_small_tasks()[0]!r}||{source_digest()}")
        import hashlib

        assert key == hashlib.sha256(payload.encode()).hexdigest()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key(_stencil_point, ("x",))
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        hit, value = cache.get(key)
        assert not hit and value is None

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = {"rows": [1, 2, 3], "array": np.arange(3)}
        cache.put("k" * 64, value)
        hit, loaded = cache.get("k" * 64)
        assert hit
        assert loaded["rows"] == value["rows"]
        np.testing.assert_array_equal(loaded["array"], value["array"])


class TestActiveRunner:
    def test_default_runner_is_serial_uncached(self):
        runner = active_runner()
        assert runner.jobs == 1 and runner.cache is None

    def test_use_runner_scopes_and_restores(self):
        special = SweepRunner(jobs=2)
        with use_runner(special):
            assert active_runner() is special
        assert active_runner() is not special
