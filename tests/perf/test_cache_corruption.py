"""Crash-safe persistence: cache integrity footers, quarantine,
manifest checksums, and journal tolerance to torn writes."""

import json
import os
import pickle

import pytest

from repro.perf.cache import ResultCache
from repro.perf.manifest import SweepJournal, SweepManifest
from repro.perf.sweep import SweepRunner


def _work(x):
    return x * 10


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _entry_path(cache, key):
    return cache.root / f"{key}.pkl"


class TestCacheCorruption:
    def _seed(self, cache):
        key = cache.key(_work, (3,))
        cache.put(key, 30)
        return key

    def test_round_trip(self, cache):
        key = self._seed(cache)
        assert cache.get(key) == (True, 30)
        assert cache.quarantined == []

    def test_truncated_entry_quarantined(self, cache):
        key = self._seed(cache)
        path = _entry_path(cache, key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        hit, value = cache.get(key)
        assert not hit and value is None
        assert cache.quarantined and cache.quarantined[0][0] == key
        assert (cache.root / "quarantine" / f"{key}.pkl").exists()
        assert not path.exists()

    def test_zero_byte_entry_quarantined(self, cache):
        key = self._seed(cache)
        _entry_path(cache, key).write_bytes(b"")
        hit, _ = cache.get(key)
        assert not hit
        assert "truncated" in cache.quarantined[0][1]

    def test_flipped_byte_quarantined(self, cache):
        key = self._seed(cache)
        path = _entry_path(cache, key)
        blob = bytearray(path.read_bytes())
        blob[3] ^= 0xFF
        path.write_bytes(bytes(blob))
        hit, _ = cache.get(key)
        assert not hit
        assert "sha256 mismatch" in cache.quarantined[0][1]

    def test_missing_footer_quarantined(self, cache):
        key = self._seed(cache)
        _entry_path(cache, key).write_bytes(pickle.dumps(30) + b"x" * 100)
        hit, _ = cache.get(key)
        assert not hit
        assert "footer" in cache.quarantined[0][1]

    def test_corrupt_entry_recomputed_by_sweep(self, cache):
        runner = SweepRunner(cache=cache)
        assert runner.map(_work, [(3,)]) == [30]
        key = cache.key(_work, (3,))
        path = _entry_path(cache, key)
        path.write_bytes(path.read_bytes()[:10])
        runner2 = SweepRunner(cache=cache)
        assert runner2.map(_work, [(3,)]) == [30]
        assert runner2.misses == 1  # quarantined -> miss -> recompute
        # the recompute repaired the entry in place
        runner3 = SweepRunner(cache=cache)
        assert runner3.map(_work, [(3,)]) == [30]
        assert runner3.hits == 1

    def test_quarantine_preserves_evidence(self, cache):
        key = self._seed(cache)
        path = _entry_path(cache, key)
        garbage = b"\x00" * 200
        path.write_bytes(garbage)
        cache.get(key)
        assert (cache.root / "quarantine" / f"{key}.pkl").read_bytes() == garbage


class TestManifestChecksum:
    def test_save_embeds_checksum(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = SweepManifest({"id1": "key1"})
        manifest.save(path)
        data = json.loads(path.read_text())
        assert "sha256" in data
        assert SweepManifest.load(path).entries == {"id1": "key1"}

    def test_tampered_points_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        SweepManifest({"id1": "key1"}).save(path)
        data = json.loads(path.read_text())
        data["points"]["id1"] = "key2"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="checksum mismatch"):
            SweepManifest.load(path)

    def test_legacy_manifest_without_checksum_loads(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({
            "format": "repro-sweep-manifest-v1",
            "points": {"id1": "key1"},
        }))
        assert SweepManifest.load(path).entries == {"id1": "key1"}

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        path = tmp_path / "m.json"
        SweepManifest({"a": "b"}).save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["m.json"]


class TestJournalTolerance:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.append("id1", "key1")
        journal.append("id2", "key2")
        journal.close()
        manifest, corrupt = SweepJournal.load(path)
        assert manifest.entries == {"id1": "key1", "id2": "key2"}
        assert corrupt == []

    def test_torn_tail_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.append("id1", "key1")
        journal.append("id2", "key2")
        journal.close()
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0] + lines[1][: len(lines[1]) // 2])
        manifest, corrupt = SweepJournal.load(path)
        assert manifest.entries == {"id1": "key1"}
        assert corrupt == [(2, "unparseable JSON (torn line?)")]

    def test_flipped_byte_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.append("id1", "key1")
        journal.close()
        path.write_text(path.read_text().replace("key1", "keyX"))
        manifest, corrupt = SweepJournal.load(path)
        assert manifest.entries == {}
        assert corrupt == [(1, "checksum mismatch")]

    def test_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.append("id1", "key1")
        journal.close()
        with open(path, "a") as fh:
            fh.write(json.dumps({"format": "something-else"}) + "\n")
            fh.write("[1, 2, 3]\n")
        manifest, corrupt = SweepJournal.load(path)
        assert manifest.entries == {"id1": "key1"}
        assert [r for _, r in corrupt] == ["not a journal record",
                                           "not a journal record"]

    def test_later_lines_win(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.append("id1", "old")
        journal.append("id1", "new")
        journal.close()
        manifest, _ = SweepJournal.load(path)
        assert manifest.entries == {"id1": "new"}

    def test_runner_journals_as_points_complete(self, tmp_path, cache):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        runner = SweepRunner(cache=cache, journal=journal)
        runner.map(_work, [(1,), (2,)])
        journal.close()
        manifest, corrupt = SweepJournal.load(path)
        assert len(manifest) == 2 and not corrupt
        # cache hits are journaled too (a resumed run re-journals)
        journal2 = SweepJournal(path)
        runner2 = SweepRunner(cache=cache, baseline=manifest,
                              journal=journal2)
        runner2.map(_work, [(1,), (2,)])
        journal2.close()
        assert runner2.replayed == 2

    def test_journal_requires_cache(self, tmp_path):
        with pytest.raises(ValueError, match="ResultCache"):
            SweepRunner(journal=SweepJournal(tmp_path / "j.jsonl"))
