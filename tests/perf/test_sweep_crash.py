"""Sweep survival when worker processes die (SIGKILL -> quarantine)."""

import os
import signal

import pytest

import repro.perf.sweep as sweep_mod
from repro.perf.cache import ResultCache
from repro.perf.manifest import SweepJournal
from repro.perf.sweep import QuarantinedPoint, SweepRunner


def _work(x):
    return x * 10


def _poison(x):
    """Top-level worker that SIGKILLs its own process on the marker
    point — the harshest failure a pool worker can produce (no
    exception, no cleanup, the pool just breaks)."""
    if x == 3:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 10


@pytest.fixture
def pool_path(monkeypatch):
    """Force the process-pool path even on single-core CI hosts."""
    monkeypatch.setattr(sweep_mod.os, "cpu_count", lambda: 4)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestWorkerDeath:
    def test_poison_point_quarantined_others_survive(self, pool_path):
        runner = SweepRunner(jobs=2, retries=1)
        results = runner.map(_poison, [(1,), (2,), (3,), (4,), (5,)])
        assert results[0] == 10 and results[1] == 20
        assert results[3] == 40 and results[4] == 50
        point = results[2]
        assert isinstance(point, QuarantinedPoint)
        assert point.index == 2
        assert point.attempts == 2  # 1 + retries
        assert "(3,)" in point.identity
        assert runner.quarantined == [point]

    def test_retries_zero_single_attempt(self, pool_path):
        runner = SweepRunner(jobs=2, retries=0)
        results = runner.map(_poison, [(1,), (2,), (3,), (4,)])
        assert isinstance(results[2], QuarantinedPoint)
        assert results[2].attempts == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            SweepRunner(retries=-1)

    def test_healthy_sweep_untouched(self, pool_path):
        runner = SweepRunner(jobs=2)
        assert runner.map(_work, [(1,), (2,), (3,)]) == [10, 20, 30]
        assert runner.quarantined == []

    def test_completed_points_cached_before_the_crash(self, pool_path, cache,
                                                      tmp_path):
        """Worker death must not lose the points that already finished:
        they were stored as they completed, so a rerun replays them."""
        journal = SweepJournal(tmp_path / "j.jsonl")
        runner = SweepRunner(jobs=2, cache=cache, journal=journal, retries=0)
        results = runner.map(_poison, [(1,), (2,), (3,), (4,), (5,)])
        journal.close()
        assert isinstance(results[2], QuarantinedPoint)
        manifest, corrupt = SweepJournal.load(tmp_path / "j.jsonl")
        assert not corrupt
        assert len(manifest) == 4  # everything but the poison point
        rerun = SweepRunner(jobs=2, cache=cache, baseline=manifest, retries=0)
        rerun_results = rerun.map(_poison, [(1,), (2,), (4,), (5,)])
        assert rerun_results == [10, 20, 40, 50]
        assert rerun.hits == 4 and rerun.misses == 0

    def test_worker_exception_still_propagates(self, pool_path):
        """Quarantine is for dead workers only: a worker that *raises*
        keeps the old fail-fast contract."""

        runner = SweepRunner(jobs=2, retries=1)
        with pytest.raises(ZeroDivisionError):
            runner.map(_divzero, [(1,), (0,), (2,), (3,)])


def _divzero(x):
    return 10 // x
