"""Warm-start template store: reuse without cross-point leakage."""

import copy

import pytest

from repro.perf import warm


@pytest.fixture(autouse=True)
def fresh_store():
    warm.clear()
    yield
    warm.clear()


class TestWarmStore:
    def test_build_runs_once_per_key(self):
        calls = []
        for _ in range(3):
            warm.warm("k", lambda: calls.append(1) or {"a": 1})
        assert calls == [1]
        assert warm.stats() == (2, 1, 1)

    def test_distinct_keys_build_separately(self):
        warm.warm(("f", "baseline"), dict)
        warm.warm(("f", "cpufree"), dict)
        assert warm.stats() == (0, 2, 2)

    def test_copy_hands_out_fresh_instances(self):
        first = warm.warm("k", lambda: {"plan": None}, copy=copy.deepcopy)
        first["plan"] = "attached by point 1"
        second = warm.warm("k", lambda: {"plan": None}, copy=copy.deepcopy)
        assert second == {"plan": None}
        assert second is not first

    def test_no_copy_returns_the_template(self):
        template = warm.warm("k", dict)
        assert warm.warm("k", dict) is template

    def test_clear_resets_everything(self):
        warm.warm("k", dict)
        warm.clear()
        assert warm.stats() == (0, 0, 0)


class TestDaceWarmStart:
    def test_repeated_points_share_one_template_but_not_plans(self):
        """Two sweep points of the same pipeline build the SDFG once;
        each point still attaches executor plans to its own copy, so
        per-point metrics (plan_cache hit/miss) are identical whether
        the template was warm or cold."""
        from repro.bench.figures import _dace_1d_point
        from repro.obs.metrics import MetricsRegistry, use_metrics

        def point_metrics():
            registry = MetricsRegistry()
            with use_metrics(registry):
                row = _dace_1d_point(2, "cpufree", 1000, 3)
            return row, registry.to_dict()

        cold_row, cold_metrics = point_metrics()
        assert warm.stats()[1] >= 1
        warm_row, warm_metrics = point_metrics()
        assert warm.stats()[0] >= 1
        assert warm_row == cold_row
        assert warm_metrics == cold_metrics
