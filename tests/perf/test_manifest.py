"""Sweep manifests and the --changed-only replay contract."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.perf import ResultCache, SweepManifest, SweepRunner, point_identity


def _square(x):
    return x * x


def _cube(x):
    return x * x * x


class TestManifestIO:
    def test_save_load_round_trip(self, tmp_path):
        manifest = SweepManifest({"a|(1,)|": "k1", "b|(2,)|": "k2"})
        path = manifest.save(tmp_path / "m.json")
        loaded = SweepManifest.load(path)
        assert loaded.entries == manifest.entries
        assert loaded.key_for("a|(1,)|") == "k1"
        assert loaded.key_for("missing") is None

    def test_save_is_sorted_and_stable(self, tmp_path):
        a = SweepManifest({"z": "1", "a": "2"})
        b = SweepManifest({"a": "2", "z": "1"})
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        a.save(pa)
        b.save(pb)
        assert pa.read_bytes() == pb.read_bytes()

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a manifest"}))
        with pytest.raises(ValueError):
            SweepManifest.load(path)

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            SweepManifest({"a": "k"}).save()

    def test_diff(self):
        old = SweepManifest({"a": "1", "b": "2", "c": "3"})
        new = SweepManifest({"a": "1", "b": "9", "d": "4"})
        diff = new.diff(old)
        assert diff.added == ["d"]
        assert diff.changed == ["b"]
        assert diff.removed == ["c"]
        assert bool(diff)
        assert not new.diff(new)


class TestRunnerManifest:
    def test_manifest_requires_cache(self):
        with pytest.raises(ValueError):
            SweepRunner(manifest=SweepManifest())
        with pytest.raises(ValueError):
            SweepRunner(baseline=SweepManifest())

    def test_map_records_every_point(self, tmp_path):
        manifest = SweepManifest()
        runner = SweepRunner(cache=ResultCache(tmp_path / "c"), manifest=manifest)
        runner.map(_square, [(1,), (2,), (3,)])
        assert len(manifest) == 3
        assert manifest.key_for(point_identity(_square, (2,))) is not None

    def test_changed_only_replays_unchanged_points(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        baseline = SweepManifest()
        first = SweepRunner(cache=cache, manifest=baseline)
        first.map(_square, [(1,), (2,)])

        second = SweepRunner(cache=cache, baseline=baseline)
        assert second.map(_square, [(1,), (2,)]) == [1, 4]
        assert (second.replayed, second.changed, second.added, second.stale) \
            == (2, 0, 0, 0)

    def test_changed_only_counts_new_points(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        baseline = SweepManifest()
        SweepRunner(cache=cache, manifest=baseline).map(_square, [(1,)])

        runner = SweepRunner(cache=cache, baseline=baseline)
        runner.map(_square, [(1,), (5,)])
        assert (runner.replayed, runner.added) == (1, 1)

    def test_changed_only_counts_changed_keys(self, tmp_path):
        """A key mismatch (here: a different worker under the same
        recorded identity) must re-run, not replay."""
        cache = ResultCache(tmp_path / "c")
        baseline = SweepManifest(
            {point_identity(_cube, (3,)): "stale-key-from-older-sources"})
        runner = SweepRunner(cache=cache, baseline=baseline)
        assert runner.map(_cube, [(3,)]) == [27]
        assert (runner.replayed, runner.changed, runner.added) == (0, 1, 0)

    def test_changed_only_evicted_entry_counts_stale_and_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        baseline = SweepManifest()
        SweepRunner(cache=cache, manifest=baseline).map(_square, [(4,)])
        for entry in (tmp_path / "c").glob("*.pkl"):
            entry.unlink()

        runner = SweepRunner(cache=cache, baseline=baseline)
        assert runner.map(_square, [(4,)]) == [16]
        assert (runner.replayed, runner.stale) == (0, 1)

    def test_metrics_variant_keys_manifest_rows(self, tmp_path):
        """Metrics-collecting sweeps store a different cached format, so
        their manifest rows must be distinct identities too."""
        cache = ResultCache(tmp_path / "c")
        bare, metered = SweepManifest(), SweepManifest()
        SweepRunner(cache=cache, manifest=bare).map(_square, [(2,)])
        with use_metrics(MetricsRegistry()):
            SweepRunner(cache=cache, manifest=metered).map(_square, [(2,)])
        assert set(bare.entries) != set(metered.entries)


class TestProfileSink:
    def test_computed_points_are_profiled(self, tmp_path):
        sink = []
        runner = SweepRunner(profile_sink=sink)
        assert runner.map(_square, [(2,), (3,)]) == [4, 9]
        assert [identity for identity, _ in sink] == \
            [point_identity(_square, (2,)), point_identity(_square, (3,))]
        assert "cumulative" in sink[0][1]

    def test_cache_hits_are_not_profiled(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        SweepRunner(cache=cache).map(_square, [(2,)])
        sink = []
        SweepRunner(cache=cache, profile_sink=sink).map(_square, [(2,), (3,)])
        assert [identity for identity, _ in sink] == [point_identity(_square, (3,))]

    def test_profiling_forces_in_process_execution(self):
        """jobs > 1 with a sink must still profile (profiles cannot
        cross a process pool), so execution stays in-process."""
        sink = []
        runner = SweepRunner(jobs=4, profile_sink=sink)
        assert runner.map(_square, [(1,), (2,), (3,)]) == [1, 4, 9]
        assert len(sink) == 3


class TestEvictAndPruneStale:
    def test_evict_removes_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = SweepRunner(jobs=1, cache=cache)
        runner.map(_square, [(3,)])
        key = cache.key(_square, (3,))
        assert cache.get(key)[0] is True
        assert cache.evict(key) is True
        assert cache.get(key)[0] is False
        # evicting a missing key is a no-op, not an error
        assert cache.evict(key) is False

    def test_prune_stale_flow(self, tmp_path):
        """The CLI's --prune-stale logic: entries whose identity changed
        key (or left the sweep) are evicted; live entries survive."""
        cache = ResultCache(tmp_path / "cache")
        old = SweepManifest()
        runner = SweepRunner(jobs=1, cache=cache, manifest=old)
        runner.map(_square, [(3,), (4,)])
        runner.map(_cube, [(5,)])

        # new sweep: drop _cube(5), keep _square(3)/(4)
        new = SweepManifest()
        runner2 = SweepRunner(jobs=1, cache=cache, manifest=new)
        runner2.map(_square, [(3,), (4,)])

        diff = new.diff(old)
        live = set(new.entries.values())
        stale = sorted({old.entries[i] for i in diff.changed + diff.removed}
                       - live)
        evicted = sum(cache.evict(k) for k in stale)
        assert evicted == 1  # the _cube entry
        assert cache.get(cache.key(_cube, (5,)))[0] is False
        assert cache.get(cache.key(_square, (3,)))[0] is True
