"""Progress sinks are pure observers of the sweep runner.

Two contracts: (1) attaching any sink changes nothing about results,
cache contents, or report bytes; (2) every map call narrates each point
exactly once, through the documented event vocabulary, in submission
order where the path is sequential.
"""

from repro.bench.figures import _stencil_point
from repro.obs.progress import ProgressSink
from repro.perf import ResultCache, SweepRunner
from repro.stencil import StencilConfig


def _small_tasks():
    configs = [
        StencilConfig(global_shape=(8, 10), num_gpus=2, iterations=3,
                      with_data=False),
        StencilConfig(global_shape=(10, 10), num_gpus=2, iterations=3,
                      with_data=False),
    ]
    return ([("cpufree", c) for c in configs]
            + [("baseline_copy", c) for c in configs])


class RecordingSink(ProgressSink):
    """Captures the event stream for assertions."""

    def __init__(self):
        self.events = []

    def sweep_begin(self, fn_name, identities):
        self.events.append(("begin", fn_name, len(identities)))

    def point_cached(self, index, identity, duplicate_of=None):
        self.events.append(("cached", index, duplicate_of))

    def point_batched(self, index, identity, group_size, result=None):
        self.events.append(("batched", index, group_size))

    def point_started(self, index, identity):
        self.events.append(("started", index))

    def point_finished(self, index, identity, wall_s, result=None):
        self.events.append(("finished", index))
        assert wall_s >= 0.0

    def sweep_end(self, fn_name, n_points):
        self.events.append(("end", fn_name, n_points))

    def resolutions(self):
        """index -> how the point resolved (started+finished collapse)."""
        out = {}
        for event in self.events:
            if event[0] in ("cached", "batched", "finished"):
                out[event[1]] = event[0]
        return out


class TestObserverPurity:
    def test_results_identical_with_and_without_sink(self):
        tasks = _small_tasks()
        bare = SweepRunner(jobs=1, batch=False).map(_stencil_point, tasks)
        observed = SweepRunner(jobs=1, batch=False,
                               progress=RecordingSink()).map(
            _stencil_point, tasks)
        assert observed == bare

    def test_parallel_results_identical_with_sink(self):
        tasks = _small_tasks()
        bare = SweepRunner(jobs=1, batch=False).map(_stencil_point, tasks)
        observed = SweepRunner(jobs=4, batch=False,
                               progress=RecordingSink()).map(
            _stencil_point, tasks)
        assert observed == bare

    def test_cache_contents_identical_with_sink(self, tmp_path):
        tasks = _small_tasks()
        a, b = tmp_path / "a", tmp_path / "b"
        SweepRunner(jobs=1, cache=ResultCache(a), batch=False).map(
            _stencil_point, tasks)
        SweepRunner(jobs=1, cache=ResultCache(b), batch=False,
                    progress=RecordingSink()).map(_stencil_point, tasks)
        names_a = sorted(p.name for p in a.rglob("*") if p.is_file())
        names_b = sorted(p.name for p in b.rglob("*") if p.is_file())
        assert names_a == names_b and names_a


class TestEventContract:
    def test_every_point_resolves_exactly_once(self):
        sink = RecordingSink()
        tasks = _small_tasks()
        SweepRunner(jobs=1, batch=False, progress=sink).map(
            _stencil_point, tasks)
        fn_name = f"{_stencil_point.__module__}.{_stencil_point.__qualname__}"
        assert sink.events[0] == ("begin", fn_name, len(tasks))
        assert sink.events[-1][0] == "end"
        assert sorted(sink.resolutions()) == list(range(len(tasks)))
        starts = [e[1] for e in sink.events if e[0] == "started"]
        assert starts == sorted(starts)  # inline path runs in order

    def test_cache_hits_resolve_as_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        tasks = _small_tasks()
        SweepRunner(jobs=1, cache=cache, batch=False).map(
            _stencil_point, tasks)
        sink = RecordingSink()
        SweepRunner(jobs=1, cache=cache, batch=False, progress=sink).map(
            _stencil_point, tasks)
        assert set(sink.resolutions().values()) == {"cached"}

    def test_duplicate_argtuples_point_at_their_original(self):
        # duplicates are deduped on the batch path: the copy resolves as
        # cached with a pointer to the index that actually computed
        tasks = _small_tasks()
        tasks.append(tasks[0])  # exact duplicate
        sink = RecordingSink()
        SweepRunner(jobs=1, batch=True, progress=sink).map(
            _stencil_point, tasks)
        dups = [e for e in sink.events if e[0] == "cached"
                and e[2] is not None]
        assert dups == [("cached", len(tasks) - 1, 0)]

    def test_batched_points_report_group_size(self):
        sink = RecordingSink()
        tasks = _small_tasks()
        SweepRunner(jobs=1, batch=True, progress=sink).map(
            _stencil_point, tasks)
        batched = [e for e in sink.events if e[0] == "batched"]
        if batched:  # batching groups compatible shapes when it can
            assert all(size >= 1 for _, _, size in batched)
            covered = {i for _, i, _ in batched}
            resolved = sink.resolutions()
            assert covered <= set(resolved)

    def test_pool_path_narrates_all_points(self):
        sink = RecordingSink()
        tasks = _small_tasks()
        SweepRunner(jobs=4, batch=False, progress=sink).map(
            _stencil_point, tasks)
        assert sorted(sink.resolutions()) == list(range(len(tasks)))
        assert set(sink.resolutions().values()) == {"finished"}
