"""NVSHMEM teams: split semantics, domain teams, hierarchical barrier."""

import pytest

from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime
from repro.runtime.context import MultiGPUContext
from repro.sim import Tracer


def _runtime(num_gpus=16):
    return NVSHMEMRuntime(
        MultiGPUContext(HGX_A100_8GPU.scaled_to(num_gpus), tracer=Tracer())
    )


class TestTeamWorld:
    def test_world_covers_every_pe_in_order(self):
        rt = _runtime(16)
        world = rt.team_world
        assert world.pes == tuple(range(16))
        assert world.n_pes == 16
        assert world.my_pe(11) == 11
        assert world.translate(3) == 3

    def test_world_is_cached(self):
        rt = _runtime(4)
        assert rt.team_world is rt.team_world


class TestSplitStrided:
    def test_contiguous_split(self):
        rt = _runtime(16)
        team = rt.team_split_strided(rt.team_world, 8, 1, 8)
        assert team.pes == tuple(range(8, 16))
        assert team.my_pe(9) == 1
        assert team.translate(0) == 8

    def test_strided_split(self):
        rt = _runtime(16)
        team = rt.team_split_strided(rt.team_world, 3, 8, 2)
        assert team.pes == (3, 11)

    def test_split_indices_are_parent_ranks_not_global_pes(self):
        """nvshmemx_team_split_strided semantics: (start, stride, size)
        index the PARENT's ranks."""
        rt = _runtime(16)
        upper = rt.team_split_strided(rt.team_world, 8, 1, 8)
        child = upper.split_strided(0, 2, 4)
        assert child.pes == (8, 10, 12, 14)

    def test_membership(self):
        rt = _runtime(16)
        team = rt.team_split_strided(rt.team_world, 0, 8, 2)
        assert 0 in team and 8 in team and 1 not in team
        with pytest.raises(ValueError):
            team.my_pe(1)

    def test_out_of_range_split_rejected(self):
        rt = _runtime(8)
        with pytest.raises(ValueError):
            rt.team_split_strided(rt.team_world, 4, 2, 4)
        with pytest.raises(ValueError):
            rt.team_split_strided(rt.team_world, 0, 1, 0)

    def test_translate_bounds(self):
        rt = _runtime(8)
        with pytest.raises(ValueError):
            rt.team_world.translate(8)


class TestDomainTeams:
    def test_one_team_per_domain(self):
        rt = _runtime(16)
        teams = rt.domain_teams()
        assert len(teams) == 2
        assert teams[0].pes == tuple(range(8))
        assert teams[1].pes == tuple(range(8, 16))

    def test_domain_team_lookup(self):
        rt = _runtime(16)
        assert rt.domain_team(3) is rt.domain_teams()[0]
        assert rt.domain_team(12) is rt.domain_teams()[1]

    def test_leader_team_is_rank0_of_each_domain(self):
        rt = _runtime(32)
        assert rt.leader_team().pes == (0, 8, 16, 24)

    def test_flat_node_has_one_domain_team(self):
        rt = _runtime(4)
        assert not rt.hierarchical
        teams = rt.domain_teams()
        assert len(teams) == 1
        assert teams[0].pes == tuple(range(4))


class TestTeamSync:
    def test_team_sync_joins_all_members(self):
        rt = _runtime(16)
        team = rt.domain_team(0)
        done = []

        def member(pe):
            yield from team.sync()
            done.append(pe)

        for pe in team.pes:
            rt.ctx.sim.spawn(member(pe), name=f"m{pe}")
        rt.ctx.run()
        assert sorted(done) == list(team.pes)

    def test_hierarchical_barrier_releases_everyone(self):
        rt = _runtime(16)
        released = []

        def pe_prog(pe):
            yield from rt.hierarchical_barrier(pe)
            released.append(pe)

        for pe in range(16):
            rt.ctx.sim.spawn(pe_prog(pe), name=f"pe{pe}")
        total = rt.ctx.run()
        assert sorted(released) == list(range(16))
        # the leader rendezvous crosses rails, so the whole thing costs
        # at least one rail round trip on top of the domain syncs
        assert total >= 2.0 * rt.ctx.node.rail_latency_us

    def test_hierarchical_barrier_is_reusable(self):
        rt = _runtime(16)
        rounds = {pe: 0 for pe in range(16)}

        def pe_prog(pe):
            for _ in range(3):
                yield from rt.hierarchical_barrier(pe)
                rounds[pe] += 1

        for pe in range(16):
            rt.ctx.sim.spawn(pe_prog(pe), name=f"pe{pe}")
        rt.ctx.run()
        assert all(n == 3 for n in rounds.values())

    def test_device_barrier_all_uses_domain_teams(self):
        """On a hierarchical node, barrier_all must not price one flat
        n_pes-way rendezvous — it decomposes into domain syncs plus a
        leader rendezvous."""
        rt = _runtime(16)
        done = []

        def pe_prog(pe):
            dev = rt.device(pe)
            yield from dev.barrier_all()
            done.append(pe)

        for pe in range(16):
            rt.ctx.sim.spawn(pe_prog(pe), name=f"pe{pe}")
        rt.ctx.run()
        assert sorted(done) == list(range(16))
        # the lazy team barriers were actually built
        assert rt._domain_teams is not None
        assert rt._leader_team is not None


class TestValidation:
    def test_empty_team_rejected(self):
        rt = _runtime(4)
        from repro.nvshmem import Team

        with pytest.raises(ValueError):
            Team(rt, "empty", ())

    def test_duplicate_pes_rejected(self):
        rt = _runtime(4)
        from repro.nvshmem import Team

        with pytest.raises(ValueError):
            Team(rt, "dup", (0, 0))

    def test_out_of_range_pe_rejected(self):
        rt = _runtime(4)
        from repro.nvshmem import Team

        with pytest.raises(ValueError):
            Team(rt, "oob", (0, 4))
