"""Tests for issuing-scope bandwidth and misc NVSHMEM edge cases."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime
from repro.nvshmem.device import Scope
from repro.runtime import MultiGPUContext
from repro.sim import Tracer


def timed_put(scope, nbytes=4 * 1024 * 1024, nbi=False):
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
    rt = NVSHMEMRuntime(ctx)

    def pe0():
        dev = rt.device(0)
        if nbi:
            yield from dev.putmem_nbi(None, None, 0.0, dest_pe=1,
                                      nbytes=nbytes, scope=scope)
            yield from dev.quiet()
        else:
            yield from dev.putmem(None, None, 0.0, dest_pe=1,
                                  nbytes=nbytes, scope=scope)

    ctx.sim.spawn(pe0(), name="pe0")
    return ctx.run()


class TestScopeBandwidth:
    def test_warp_between_thread_and_block(self):
        assert timed_put(Scope.THREAD) > timed_put(Scope.WARP) > timed_put(Scope.BLOCK)

    def test_scope_ratio_matches_cost_model(self):
        from repro.hw import DEFAULT_COST_MODEL as cm

        # wire time dominates for 4 MB: times scale ~1/bw_fraction
        thread, block = timed_put(Scope.THREAD), timed_put(Scope.BLOCK)
        ratio = (thread - cm.nvshmem_put_latency_us) / (block - cm.nvshmem_put_latency_us)
        assert ratio == pytest.approx(1 / cm.put_thread_bw_fraction, rel=0.1)

    def test_nbi_same_delivery_time_as_blocking_for_one_put(self):
        # a single put followed by quiet completes when delivery completes
        assert timed_put(Scope.BLOCK, nbi=True) == pytest.approx(
            timed_put(Scope.BLOCK, nbi=False) + 1.4, rel=0.2  # + quiet cost
        )


class TestEdgeCases:
    def test_put_to_self_uses_local_bandwidth(self):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
        rt = NVSHMEMRuntime(ctx)
        arr = rt.malloc("a", (8,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem(arr, slice(None), np.ones(8), dest_pe=0)

        ctx.sim.spawn(pe0(), name="pe0")
        total = ctx.run()
        assert np.all(arr.local(0) == 1.0)
        # HBM loopback is much faster than NVLink for the same bytes
        assert total < timed_put(Scope.BLOCK, nbytes=64)

    def test_zero_byte_put_is_cheap(self):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
        rt = NVSHMEMRuntime(ctx)

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem(None, None, 0.0, dest_pe=1, nbytes=0)

        ctx.sim.spawn(pe0(), name="pe0")
        total = ctx.run()
        assert total < 5.0

    def test_signal_values_monotone_under_adds(self):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())
        rt = NVSHMEMRuntime(ctx)
        sig = rt.malloc_signals("s", 1)
        from repro.nvshmem import SignalOp

        def pe0():
            dev = rt.device(0)
            for _ in range(5):
                yield from dev.signal_op(sig, 0, 1, dest_pe=1, op=SignalOp.ADD)
            yield from dev.quiet()

        ctx.sim.spawn(pe0(), name="pe0")
        ctx.run()
        assert sig.value(1, 0) == 5
