"""Tests for device-side NVSHMEM operations, including the
delivery-ordering guarantees and the missing-quiet race."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime, SignalOp, WaitCond
from repro.nvshmem.device import Scope
from repro.runtime import MultiGPUContext
from repro.sim import Delay, Tracer


@pytest.fixture
def rt():
    return NVSHMEMRuntime(MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer()))


class TestPutmem:
    def test_blocking_put_delivers_before_return(self, rt):
        arr = rt.malloc("a", (4,), fill=0.0)
        checked = []

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem(arr, slice(None), np.full(4, 7.0), dest_pe=1)
            # Blocking: destination memory is updated once we return.
            checked.append(np.all(arr.local(1) == 7.0))

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert checked == [True]

    def test_nbi_put_returns_before_delivery(self, rt):
        arr = rt.malloc("a", (1024,), fill=0.0)
        observed = []

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem_nbi(arr, slice(None), np.full(1024, 3.0), dest_pe=1)
            observed.append(bool(np.all(arr.local(1) == 3.0)))  # not yet delivered
            yield from dev.quiet()
            observed.append(bool(np.all(arr.local(1) == 3.0)))  # delivered after quiet

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert observed == [False, True]

    def test_nbi_snapshot_at_issue(self, rt):
        arr = rt.malloc("a", (4,), fill=0.0)
        src = np.full(4, 1.0)

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem_nbi(arr, slice(None), src, dest_pe=1)
            src[:] = 99.0  # mutate after issue
            yield from dev.quiet()

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert np.all(arr.local(1) == 1.0)

    def test_block_scope_faster_than_thread_scope(self, rt):
        nbytes = 4 * 1024 * 1024

        def timed(scope):
            local = NVSHMEMRuntime(MultiGPUContext(HGX_A100_8GPU.scaled_to(2)))

            def pe0():
                dev = local.device(0)
                yield from dev.putmem(None, None, 0.0, dest_pe=1, nbytes=nbytes, scope=scope)

            local.ctx.sim.spawn(pe0(), name="pe0")
            return local.ctx.run()

        assert timed(Scope.THREAD) > timed(Scope.WARP) > timed(Scope.BLOCK)

    def test_timing_only_put(self, rt):
        def pe0():
            dev = rt.device(0)
            yield from dev.putmem(None, None, 0.0, dest_pe=1, nbytes=300_000)

        rt.ctx.sim.spawn(pe0(), name="pe0")
        total = rt.ctx.run()
        assert total > 1.0  # wire time for 300 KB at 300 GB/s


class TestPutmemSignal:
    def test_signal_delivered_after_data(self, rt):
        """The semaphore protocol of §4.1.1: when the destination PE
        observes the signal, the halo data must already be there."""
        arr = rt.malloc("halo", (256,), fill=0.0)
        sig = rt.malloc_signals("flags", 1)
        result = []

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem_signal_nbi(
                arr, slice(None), np.full(256, 4.0), sig, 0, 1, dest_pe=1
            )
            # keep running: no quiet needed for the *destination's* view

        def pe1():
            dev = rt.device(1)
            yield from dev.signal_wait_until(sig, 0, WaitCond.GE, 1)
            result.append(bool(np.all(arr.local(1) == 4.0)))

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.sim.spawn(pe1(), name="pe1")
        rt.ctx.run()
        assert result == [True]

    def test_blocking_putmem_signal(self, rt):
        arr = rt.malloc("x", (8,), fill=0.0)
        sig = rt.malloc_signals("f", 1)

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem_signal(arr, slice(None), np.ones(8), sig, 0, 5, dest_pe=1)

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert sig.value(1, 0) == 5
        assert np.all(arr.local(1) == 1.0)

    def test_signal_add_accumulates(self, rt):
        sig = rt.malloc_signals("f", 1)
        arr = rt.malloc("x", (1,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            for _ in range(3):
                yield from dev.putmem_signal(
                    arr, 0, 1.0, sig, 0, 1, dest_pe=1, sig_op=SignalOp.ADD
                )

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert sig.value(1, 0) == 3

    def test_iteration_parity_semaphore(self, rt):
        """Flags carry the iteration number: waiting compares to the
        current iteration, signaling writes iteration+1 (§4.1.1)."""
        sig = rt.malloc_signals("iter_flags", 2)
        arr = rt.malloc("halo", (4,), fill=0.0)
        iterations = 5
        seen = []

        def pe(me, other):
            dev = rt.device(me)
            for it in range(1, iterations + 1):
                yield from dev.putmem_signal_nbi(
                    arr, slice(None), np.full(4, float(it)), sig, me, it, dest_pe=other
                )
                yield from dev.signal_wait_until(sig, other, WaitCond.GE, it)
                seen.append((me, it, int(sig.value(me if False else me, other))))

        rt.ctx.sim.spawn(pe(0, 1), name="pe0")
        rt.ctx.sim.spawn(pe(1, 0), name="pe1")
        rt.ctx.run()
        assert len(seen) == 2 * iterations


class TestStridedAndScalar:
    def test_iput_then_quiet_then_signal_is_safe(self, rt):
        """The generated-code pattern of §5.3.1: iput + quiet +
        signal_op keeps the destination's view consistent."""
        arr = rt.malloc("col", (64,), fill=0.0)
        sig = rt.malloc_signals("f", 1)
        ok = []

        def pe0():
            dev = rt.device(0)
            yield from dev.iput(arr, slice(None), np.full(64, 2.0), dest_pe=1)
            yield from dev.quiet()
            yield from dev.signal_op(sig, 0, 1, dest_pe=1)

        def pe1():
            dev = rt.device(1)
            yield from dev.signal_wait_until(sig, 0, WaitCond.GE, 1)
            ok.append(bool(np.all(arr.local(1) == 2.0)))

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.sim.spawn(pe1(), name="pe1")
        rt.ctx.run()
        assert ok == [True]

    def test_iput_without_quiet_races_signal(self, rt):
        """FAILURE INJECTION: dropping the quiet lets the signal
        overtake the strided data — the destination reads stale halos."""
        arr = rt.malloc("col", (4096,), fill=0.0)
        sig = rt.malloc_signals("f", 1)
        ok = []

        def pe0():
            dev = rt.device(0)
            yield from dev.iput(arr, slice(None), np.full(4096, 2.0), dest_pe=1)
            # BUG: no quiet here
            yield from dev.signal_op(sig, 0, 1, dest_pe=1)

        def pe1():
            dev = rt.device(1)
            yield from dev.signal_wait_until(sig, 0, WaitCond.GE, 1)
            ok.append(bool(np.all(arr.local(1) == 2.0)))

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.sim.spawn(pe1(), name="pe1")
        rt.ctx.run()
        assert ok == [False]  # stale read observed

    def test_iput_cost_scales_with_elements(self, rt):
        def timed(n):
            local = NVSHMEMRuntime(MultiGPUContext(HGX_A100_8GPU.scaled_to(2)))

            def pe0():
                dev = local.device(0)
                yield from dev.iput(None, None, np.zeros(n), dest_pe=1)
                yield from dev.quiet()

            local.ctx.sim.spawn(pe0(), name="pe0")
            return local.ctx.run()

        assert timed(10_000) > timed(100)

    def test_p_single_element(self, rt):
        arr = rt.malloc("x", (8,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            yield from dev.p(arr, 3, 42.0, dest_pe=1)
            yield from dev.quiet()

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert arr.local(1)[3] == 42.0


class TestWaitAndOrdering:
    def test_wait_conditions(self):
        assert WaitCond.EQ.check(3, 3)
        assert not WaitCond.EQ.check(2, 3)
        assert WaitCond.NE.check(2, 3)
        assert WaitCond.GT.check(4, 3)
        assert WaitCond.GE.check(3, 3)
        assert WaitCond.LT.check(2, 3)
        assert WaitCond.LE.check(3, 3)

    def test_quiet_with_nothing_pending_is_cheap(self, rt):
        def pe0():
            dev = rt.device(0)
            yield from dev.quiet()

        rt.ctx.sim.spawn(pe0(), name="pe0")
        assert rt.ctx.run() == pytest.approx(rt.ctx.cost.nvshmem_quiet_us)

    def test_quiet_waits_for_all_pending(self, rt):
        arr = rt.malloc("a", (1024,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            for i in range(4):
                yield from dev.putmem_nbi(arr, slice(None), np.full(1024, float(i)), dest_pe=1)
            yield from dev.quiet()
            assert rt.pending(0).value == 0

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()

    def test_fence_does_not_block(self, rt):
        """fence is weaker than quiet: it returns immediately, before
        in-flight deliveries land (the old model collapsed it to quiet)."""
        arr = rt.malloc("a", (1 << 16,), fill=0.0)
        observed = []

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem_nbi(arr, slice(None), np.ones(1 << 16), dest_pe=1)
            yield from dev.fence()
            observed.append(bool(np.all(arr.local(1) == 1.0)))  # still in flight
            yield from dev.quiet()
            observed.append(bool(np.all(arr.local(1) == 1.0)))

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert observed == [False, True]

    def test_fence_cheaper_than_quiet(self, rt):
        def run(op_name):
            local = NVSHMEMRuntime(MultiGPUContext(HGX_A100_8GPU.scaled_to(2)))
            arr = local.malloc("a", (1 << 18,), fill=0.0)

            def pe0():
                dev = local.device(0)
                yield from dev.putmem_nbi(arr, slice(None), np.ones(1 << 18), dest_pe=1)
                fence_done = None
                if op_name == "fence":
                    yield from dev.fence()
                else:
                    yield from dev.quiet()
                fence_done = local.ctx.sim.now
                times[op_name] = fence_done

            times = {}
            local.ctx.sim.spawn(pe0(), name="pe0")
            local.ctx.run()
            return times[op_name]

        assert run("fence") < run("quiet")

    def test_fence_orders_same_route_deliveries(self, rt):
        """A small post-fence put must not overtake a large pre-fence
        one on the same route; without the fence it does."""
        def last_writer(with_fence: bool) -> float:
            local = NVSHMEMRuntime(MultiGPUContext(HGX_A100_8GPU.scaled_to(2)))
            arr = local.malloc("a", (1 << 16,), fill=0.0)

            def pe0():
                dev = local.device(0)
                # large put: long wire time
                yield from dev.putmem_nbi(arr, slice(None),
                                          np.full(1 << 16, 1.0), dest_pe=1)
                if with_fence:
                    yield from dev.fence()
                # small overlapping put: would land first unordered
                yield from dev.putmem_nbi(arr, slice(0, 8),
                                          np.full(8, 2.0), dest_pe=1)
                yield from dev.quiet()

            local.ctx.sim.spawn(pe0(), name="pe0")
            local.ctx.run()
            return float(arr.local(1)[0])

        # unordered: the large put lands last and overwrites the small one
        assert last_writer(with_fence=False) == 1.0
        # fenced: the small put applies after the large one completes
        assert last_writer(with_fence=True) == 2.0

    def test_fence_with_nothing_in_flight_is_free_of_ordering_state(self, rt):
        def pe0():
            dev = rt.device(0)
            yield from dev.fence()

        rt.ctx.sim.spawn(pe0(), name="pe0")
        total = rt.ctx.run()
        assert total == pytest.approx(rt.ctx.cost.nvshmem_fence_us)
        assert rt._fence_bar == {}
        assert rt._route_done_flag == {}

    def test_device_barrier_all(self, rt):
        times = []

        def pe(me, delay):
            dev = rt.device(me)
            yield Delay(delay)
            yield from dev.barrier_all()
            times.append(rt.ctx.sim.now)

        rt.ctx.sim.spawn(pe(0, 1.0), name="pe0")
        rt.ctx.sim.spawn(pe(1, 6.0), name="pe1")
        rt.ctx.run()
        assert times[0] == times[1]
        assert times[0] >= 6.0

    def test_comm_spans_traced(self, rt):
        arr = rt.malloc("a", (64,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem(arr, slice(None), np.ones(64), dest_pe=1)

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert rt.ctx.tracer.total("comm") > 0.0


class TestSignalAttribution:
    def test_two_producer_wait_attributes_satisfying_delivery(self):
        """Two producers land signals in the same timestep: the wait
        must attribute its flow link to the delivery that drove the
        word to the value it resumed with, not the last one to land
        (the old ``last_signal_flow`` bookkeeping named the latter)."""
        rt = NVSHMEMRuntime(
            MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())
        )
        sig = rt.malloc_signals("f", 1)
        resumed = []

        def producer(value):
            # two concurrent device processes of pe0 (think: two thread
            # blocks), identical issue cost and link latency — their
            # deliveries land in the same timestep, in spawn order
            dev = rt.device(0)
            yield from dev.signal_op(sig, 0, value, dest_pe=1, op=SignalOp.SET)

        def waiter():
            dev = rt.device(1)
            value = yield from dev.signal_wait_until(sig, 0, WaitCond.GE, 1)
            resumed.append(value)

        rt.ctx.sim.spawn(waiter(), name="pe1")
        rt.ctx.sim.spawn(producer(1), name="pe0.block0")
        rt.ctx.sim.spawn(producer(2), name="pe0.block1")
        rt.ctx.run()
        # the word was driven 0 -> 1 -> 2 within one timestep; the wait
        # was satisfied by the first update (though by the time the API
        # returns, the word already reads 2) and must link to its flow
        assert resumed == [2]
        first_flow = rt.signal_flow_at(1, 0, 1)
        later_flow = rt.signal_flow_at(1, 0, 2)
        assert first_flow is not None and later_flow is not None
        assert first_flow[0] != later_flow[0]
        wait_spans = [s for s in rt.ctx.tracer.spans
                      if s.name == "signal_wait_until"]
        assert len(wait_spans) == 1
        assert wait_spans[0].meta == {"flow_f": first_flow[0]}

    def test_same_value_set_does_not_claim_attribution(self):
        """A second delivery re-setting the word to the same value is a
        no-op (wakes nobody) and must not steal the attribution."""
        rt = NVSHMEMRuntime(
            MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())
        )
        sig = rt.malloc_signals("f", 1)
        flows = {}

        def producer(tag):
            dev = rt.device(0)
            flows[tag] = rt._flow_seq + 1  # flow id the op will draw
            yield from dev.signal_op(sig, 0, 1, dest_pe=1, op=SignalOp.SET)

        def first():
            yield from producer("first")

        def second():
            yield from producer("second")

        rt.ctx.sim.spawn(first(), name="pe0.block0")
        rt.ctx.sim.spawn(second(), name="pe0.block1")
        rt.ctx.run()
        # the first delivery applied 0 -> 1; the second's same-value
        # set changed nothing and kept no attribution record
        assert rt.signal_flow_at(1, 0, 1)[0] == flows["first"]
