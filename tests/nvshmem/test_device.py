"""Tests for device-side NVSHMEM operations, including the
delivery-ordering guarantees and the missing-quiet race."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime, SignalOp, WaitCond
from repro.nvshmem.device import Scope
from repro.runtime import MultiGPUContext
from repro.sim import Delay, Tracer


@pytest.fixture
def rt():
    return NVSHMEMRuntime(MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer()))


class TestPutmem:
    def test_blocking_put_delivers_before_return(self, rt):
        arr = rt.malloc("a", (4,), fill=0.0)
        checked = []

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem(arr, slice(None), np.full(4, 7.0), dest_pe=1)
            # Blocking: destination memory is updated once we return.
            checked.append(np.all(arr.local(1) == 7.0))

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert checked == [True]

    def test_nbi_put_returns_before_delivery(self, rt):
        arr = rt.malloc("a", (1024,), fill=0.0)
        observed = []

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem_nbi(arr, slice(None), np.full(1024, 3.0), dest_pe=1)
            observed.append(bool(np.all(arr.local(1) == 3.0)))  # not yet delivered
            yield from dev.quiet()
            observed.append(bool(np.all(arr.local(1) == 3.0)))  # delivered after quiet

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert observed == [False, True]

    def test_nbi_snapshot_at_issue(self, rt):
        arr = rt.malloc("a", (4,), fill=0.0)
        src = np.full(4, 1.0)

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem_nbi(arr, slice(None), src, dest_pe=1)
            src[:] = 99.0  # mutate after issue
            yield from dev.quiet()

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert np.all(arr.local(1) == 1.0)

    def test_block_scope_faster_than_thread_scope(self, rt):
        nbytes = 4 * 1024 * 1024

        def timed(scope):
            local = NVSHMEMRuntime(MultiGPUContext(HGX_A100_8GPU.scaled_to(2)))

            def pe0():
                dev = local.device(0)
                yield from dev.putmem(None, None, 0.0, dest_pe=1, nbytes=nbytes, scope=scope)

            local.ctx.sim.spawn(pe0(), name="pe0")
            return local.ctx.run()

        assert timed(Scope.THREAD) > timed(Scope.WARP) > timed(Scope.BLOCK)

    def test_timing_only_put(self, rt):
        def pe0():
            dev = rt.device(0)
            yield from dev.putmem(None, None, 0.0, dest_pe=1, nbytes=300_000)

        rt.ctx.sim.spawn(pe0(), name="pe0")
        total = rt.ctx.run()
        assert total > 1.0  # wire time for 300 KB at 300 GB/s


class TestPutmemSignal:
    def test_signal_delivered_after_data(self, rt):
        """The semaphore protocol of §4.1.1: when the destination PE
        observes the signal, the halo data must already be there."""
        arr = rt.malloc("halo", (256,), fill=0.0)
        sig = rt.malloc_signals("flags", 1)
        result = []

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem_signal_nbi(
                arr, slice(None), np.full(256, 4.0), sig, 0, 1, dest_pe=1
            )
            # keep running: no quiet needed for the *destination's* view

        def pe1():
            dev = rt.device(1)
            yield from dev.signal_wait_until(sig, 0, WaitCond.GE, 1)
            result.append(bool(np.all(arr.local(1) == 4.0)))

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.sim.spawn(pe1(), name="pe1")
        rt.ctx.run()
        assert result == [True]

    def test_blocking_putmem_signal(self, rt):
        arr = rt.malloc("x", (8,), fill=0.0)
        sig = rt.malloc_signals("f", 1)

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem_signal(arr, slice(None), np.ones(8), sig, 0, 5, dest_pe=1)

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert sig.value(1, 0) == 5
        assert np.all(arr.local(1) == 1.0)

    def test_signal_add_accumulates(self, rt):
        sig = rt.malloc_signals("f", 1)
        arr = rt.malloc("x", (1,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            for _ in range(3):
                yield from dev.putmem_signal(
                    arr, 0, 1.0, sig, 0, 1, dest_pe=1, sig_op=SignalOp.ADD
                )

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert sig.value(1, 0) == 3

    def test_iteration_parity_semaphore(self, rt):
        """Flags carry the iteration number: waiting compares to the
        current iteration, signaling writes iteration+1 (§4.1.1)."""
        sig = rt.malloc_signals("iter_flags", 2)
        arr = rt.malloc("halo", (4,), fill=0.0)
        iterations = 5
        seen = []

        def pe(me, other):
            dev = rt.device(me)
            for it in range(1, iterations + 1):
                yield from dev.putmem_signal_nbi(
                    arr, slice(None), np.full(4, float(it)), sig, me, it, dest_pe=other
                )
                yield from dev.signal_wait_until(sig, other, WaitCond.GE, it)
                seen.append((me, it, int(sig.value(me if False else me, other))))

        rt.ctx.sim.spawn(pe(0, 1), name="pe0")
        rt.ctx.sim.spawn(pe(1, 0), name="pe1")
        rt.ctx.run()
        assert len(seen) == 2 * iterations


class TestStridedAndScalar:
    def test_iput_then_quiet_then_signal_is_safe(self, rt):
        """The generated-code pattern of §5.3.1: iput + quiet +
        signal_op keeps the destination's view consistent."""
        arr = rt.malloc("col", (64,), fill=0.0)
        sig = rt.malloc_signals("f", 1)
        ok = []

        def pe0():
            dev = rt.device(0)
            yield from dev.iput(arr, slice(None), np.full(64, 2.0), dest_pe=1)
            yield from dev.quiet()
            yield from dev.signal_op(sig, 0, 1, dest_pe=1)

        def pe1():
            dev = rt.device(1)
            yield from dev.signal_wait_until(sig, 0, WaitCond.GE, 1)
            ok.append(bool(np.all(arr.local(1) == 2.0)))

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.sim.spawn(pe1(), name="pe1")
        rt.ctx.run()
        assert ok == [True]

    def test_iput_without_quiet_races_signal(self, rt):
        """FAILURE INJECTION: dropping the quiet lets the signal
        overtake the strided data — the destination reads stale halos."""
        arr = rt.malloc("col", (4096,), fill=0.0)
        sig = rt.malloc_signals("f", 1)
        ok = []

        def pe0():
            dev = rt.device(0)
            yield from dev.iput(arr, slice(None), np.full(4096, 2.0), dest_pe=1)
            # BUG: no quiet here
            yield from dev.signal_op(sig, 0, 1, dest_pe=1)

        def pe1():
            dev = rt.device(1)
            yield from dev.signal_wait_until(sig, 0, WaitCond.GE, 1)
            ok.append(bool(np.all(arr.local(1) == 2.0)))

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.sim.spawn(pe1(), name="pe1")
        rt.ctx.run()
        assert ok == [False]  # stale read observed

    def test_iput_cost_scales_with_elements(self, rt):
        def timed(n):
            local = NVSHMEMRuntime(MultiGPUContext(HGX_A100_8GPU.scaled_to(2)))

            def pe0():
                dev = local.device(0)
                yield from dev.iput(None, None, np.zeros(n), dest_pe=1)
                yield from dev.quiet()

            local.ctx.sim.spawn(pe0(), name="pe0")
            return local.ctx.run()

        assert timed(10_000) > timed(100)

    def test_p_single_element(self, rt):
        arr = rt.malloc("x", (8,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            yield from dev.p(arr, 3, 42.0, dest_pe=1)
            yield from dev.quiet()

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert arr.local(1)[3] == 42.0


class TestWaitAndOrdering:
    def test_wait_conditions(self):
        assert WaitCond.EQ.check(3, 3)
        assert not WaitCond.EQ.check(2, 3)
        assert WaitCond.NE.check(2, 3)
        assert WaitCond.GT.check(4, 3)
        assert WaitCond.GE.check(3, 3)
        assert WaitCond.LT.check(2, 3)
        assert WaitCond.LE.check(3, 3)

    def test_quiet_with_nothing_pending_is_cheap(self, rt):
        def pe0():
            dev = rt.device(0)
            yield from dev.quiet()

        rt.ctx.sim.spawn(pe0(), name="pe0")
        assert rt.ctx.run() == pytest.approx(rt.ctx.cost.nvshmem_quiet_us)

    def test_quiet_waits_for_all_pending(self, rt):
        arr = rt.malloc("a", (1024,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            for i in range(4):
                yield from dev.putmem_nbi(arr, slice(None), np.full(1024, float(i)), dest_pe=1)
            yield from dev.quiet()
            assert rt.pending(0).value == 0

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()

    def test_fence_behaves_like_quiet(self, rt):
        arr = rt.malloc("a", (64,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem_nbi(arr, slice(None), np.ones(64), dest_pe=1)
            yield from dev.fence()
            assert np.all(arr.local(1) == 1.0)

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()

    def test_device_barrier_all(self, rt):
        times = []

        def pe(me, delay):
            dev = rt.device(me)
            yield Delay(delay)
            yield from dev.barrier_all()
            times.append(rt.ctx.sim.now)

        rt.ctx.sim.spawn(pe(0, 1.0), name="pe0")
        rt.ctx.sim.spawn(pe(1, 6.0), name="pe1")
        rt.ctx.run()
        assert times[0] == times[1]
        assert times[0] >= 6.0

    def test_comm_spans_traced(self, rt):
        arr = rt.malloc("a", (64,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem(arr, slice(None), np.ones(64), dest_pe=1)

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert rt.ctx.tracer.total("comm") > 0.0
