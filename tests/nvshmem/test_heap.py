"""Tests for the symmetric heap and signal arrays."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU, Storage
from repro.nvshmem import NVSHMEMRuntime
from repro.nvshmem.heap import element_range
from repro.runtime import MultiGPUContext


@pytest.fixture
def rt():
    return NVSHMEMRuntime(MultiGPUContext(HGX_A100_8GPU.scaled_to(4)))


class TestSymmetricArray:
    def test_malloc_allocates_on_every_pe(self, rt):
        arr = rt.malloc("grid", (8, 8))
        assert arr.n_pes == 4
        for pe in range(4):
            buf = arr.on(pe)
            assert buf.device == pe
            assert buf.shape == (8, 8)
            assert buf.storage is Storage.SYMMETRIC

    def test_malloc_duplicate_name_rejected(self, rt):
        rt.malloc("a", (2,))
        with pytest.raises(ValueError):
            rt.malloc("a", (2,))

    def test_local_returns_backing_array(self, rt):
        arr = rt.malloc("grid", (4,), fill=2.0)
        assert np.all(arr.local(1) == 2.0)
        arr.local(1)[0] = 9.0
        assert arr.on(1).data[0] == 9.0

    def test_pe_out_of_range(self, rt):
        arr = rt.malloc("grid", (4,))
        with pytest.raises(ValueError):
            arr.on(4)

    def test_free_releases_all_pes(self, rt):
        before = [rt.ctx.memory.used_bytes(pe) for pe in range(4)]
        arr = rt.malloc("tmp", (1000,))
        rt.heap.free(arr)
        after = [rt.ctx.memory.used_bytes(pe) for pe in range(4)]
        assert before == after

    def test_free_foreign_array_rejected(self, rt):
        arr = rt.malloc("tmp", (4,))
        rt.heap.free(arr)
        with pytest.raises(RuntimeError):
            rt.heap.free(arr)

    def test_get_by_name(self, rt):
        arr = rt.malloc("named", (2,))
        assert rt.heap.get("named") is arr


class TestSignalArray:
    def test_four_signals_per_pe_like_the_paper(self, rt):
        """Paper §4.1.1: pairs of flags for top and bottom neighbors —
        four in total for each PE."""
        sig = rt.malloc_signals("halo_flags", 4)
        for pe in range(4):
            for i in range(4):
                assert sig.value(pe, i) == 0

    def test_signals_are_per_pe_independent(self, rt):
        sig = rt.malloc_signals("s", 2)
        sig.flag(1, 0).set(5)
        assert sig.value(1, 0) == 5
        assert sig.value(0, 0) == 0
        assert sig.value(1, 1) == 0

    def test_out_of_range(self, rt):
        sig = rt.malloc_signals("s", 2)
        with pytest.raises(ValueError):
            sig.flag(4, 0)
        with pytest.raises(ValueError):
            sig.flag(0, 2)

    def test_duplicate_signal_name_rejected(self, rt):
        rt.malloc_signals("s", 1)
        with pytest.raises(ValueError):
            rt.malloc_signals("s", 1)


class TestRuntime:
    def test_more_pes_than_gpus_rejected(self):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
        with pytest.raises(ValueError):
            NVSHMEMRuntime(ctx, n_pes=3)

    def test_device_handle_range(self, rt):
        rt.device(0)
        rt.device(3)
        with pytest.raises(ValueError):
            rt.device(4)

    def test_host_barrier_all(self, rt):
        times = []

        def host(rank, delay):
            from repro.sim import Delay
            yield Delay(delay)
            yield from rt.host_barrier_all(rank)
            times.append(rt.ctx.sim.now)

        for r in range(4):
            rt.ctx.sim.spawn(host(r, float(r)), name=f"h{r}")
        rt.ctx.run()
        assert len(set(times)) == 1
        assert times[0] >= 3.0 + rt.ctx.cost.nvshmem_host_barrier_us


class TestElementRange:
    """Edge cases of the flat covering-interval computation the
    sanitizer uses to express heap accesses."""

    def test_zero_length_slice_is_empty_interval(self):
        assert element_range((8,), slice(3, 3)) == (0, 0)
        assert element_range((8,), slice(5, 2)) == (0, 0)
        assert element_range((4, 4), (slice(0, 0), slice(None))) == (0, 0)

    def test_end_of_heap_slices(self):
        assert element_range((8,), slice(6, None)) == (6, 8)
        assert element_range((8,), slice(None)) == (0, 8)
        assert element_range((8,), 7) == (7, 8)
        assert element_range((2, 3), (1, 2)) == (5, 6)
        assert element_range((4, 6), (slice(2, 4), slice(None))) == (12, 24)

    def test_negative_index_resolves_to_heap_end(self):
        assert element_range((8,), -1) == (7, 8)
        assert element_range((8,), slice(-2, None)) == (6, 8)

    def test_strided_selection_is_conservative_covering(self):
        lo, hi = element_range((4, 6), (slice(None), 2))
        assert (lo, hi) == (2, 21)  # covers skipped elements
        assert hi - lo >= 4

    def test_ranges_are_element_based_for_any_itemsize(self, rt):
        """Offsets count elements, not bytes: the same index on arrays
        of 4-, 8-, and 16-byte dtypes yields one identical interval,
        and hi never exceeds the element count."""
        import numpy as np

        shape, index = (4, 6), (slice(1, 3), slice(None))
        want = element_range(shape, index)
        for dtype in (np.float32, np.float64, np.complex128):
            arr = rt.malloc(f"er_{np.dtype(dtype).name}", shape, dtype=dtype)
            assert element_range(arr.shape, index) == want
            assert want[1] <= int(np.prod(arr.shape))

    def test_cache_returns_consistent_results(self):
        first = element_range((16,), slice(4, 9))
        second = element_range((16,), slice(4, 9))
        assert first == second == (4, 9)
