"""Channel sequencing under fault-mode retries.

Fault mode turns each delivery into an independent retry loop, so two
puts on the same ``(src, dst)`` route can *finish their wire legs* out
of order (an early put stuck in backoff while a later one sails
through).  The channel sequence numbers allocated by
``NVSHMEMRuntime.channel_seq`` must still force effects to apply in
issue order — FIFO per route, exactly like the fault-free path.
"""

import numpy as np
import pytest

from repro.faults import DeliveryFault, FaultPlan
from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime, SignalOp, WaitCond
from repro.runtime import MultiGPUContext
from repro.sim import Tracer


def _faulty_rt(plan: FaultPlan, num_gpus: int = 2) -> NVSHMEMRuntime:
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(num_gpus), tracer=Tracer(),
                          faults=plan.injector())
    return NVSHMEMRuntime(ctx)


def _retry_heavy_plan(seed: int = 11) -> FaultPlan:
    """Every delivery flips a coin per attempt: drops interleave with
    clean sails, so wire completions reorder across a burst of puts."""
    return FaultPlan(name="retry_heavy", seed=seed, retry_limit=8,
                     deliveries=(DeliveryFault(drop_prob=0.5),))


class TestChannelSeqAllocation:
    def test_seqs_are_per_route_and_monotonic(self):
        rt = _faulty_rt(_retry_heavy_plan(), num_gpus=4)
        s1, done01 = rt.channel_seq(0, 1)
        s2, again01 = rt.channel_seq(0, 1)
        s3, done02 = rt.channel_seq(0, 2)
        assert (s1, s2) == (1, 2)
        assert s3 == 1
        assert done01 is again01
        assert done01 is not done02

    def test_reverse_direction_is_a_distinct_channel(self):
        rt = _faulty_rt(_retry_heavy_plan())
        _, fwd = rt.channel_seq(0, 1)
        _, rev = rt.channel_seq(1, 0)
        assert fwd is not rev


class TestInterleavedRetryOrdering:
    def _burst(self, plan, n_puts=6):
        """PE0 issues ``n_puts`` same-slot puts to PE1 back to back;
        the destination observes the value each time the signal
        advances.  Returns (observed values, final value, runtime)."""
        rt = _faulty_rt(plan)
        arr = rt.malloc("slot", (4,), fill=0.0)
        sig = rt.malloc_signals("sig", 1)
        observed = []

        def pe0():
            dev = rt.device(0)
            for i in range(1, n_puts + 1):
                yield from dev.putmem_signal_nbi(
                    arr, slice(None), np.full(4, float(i)), sig, 0, 1,
                    dest_pe=1, sig_op=SignalOp.ADD)
            yield from dev.quiet()

        def pe1():
            dev = rt.device(1)
            for i in range(1, n_puts + 1):
                yield from dev.signal_wait_until(sig, 0, WaitCond.GE, i)
                observed.append(arr.local(1)[0])

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.sim.spawn(pe1(), name="pe1")
        rt.ctx.run()
        return observed, arr.local(1)[0], rt

    def test_effects_apply_in_issue_order(self):
        n = 6
        observed, final, rt = self._burst(_retry_heavy_plan(seed=11), n_puts=n)
        # FIFO channel: by the time the k-th signal lands, writes
        # 1..k have all applied, so the slot holds write >= k (later
        # writes may land between the observer's polls) and never an
        # earlier one (no rollback, no overtaking).
        assert observed == sorted(observed)
        assert all(value >= float(k) for k, value in enumerate(observed, start=1))
        assert all(value <= float(n) for value in observed)
        assert final == float(n)
        assert rt.ctx.faults.total_retries > 0, \
            "plan produced no retries; ordering was never stressed"

    def test_ordering_holds_across_seeds(self):
        """Different retry interleavings (seeds) must all serialize."""
        for seed in (1, 2, 3, 7, 23):
            observed, _, _ = self._burst(_retry_heavy_plan(seed=seed))
            assert observed == sorted(observed), f"overtaking at seed {seed}"

    def test_chan_done_flag_counts_every_delivery(self):
        n = 5
        _, _, rt = self._burst(_retry_heavy_plan(seed=4), n_puts=n)
        # channel maps are sharded by source domain; flat node -> shard 0
        done = rt._chan_done[rt._dom[0]][(0, 1)]
        assert done.value == n
        assert rt._chan_issue[rt._dom[0]][(0, 1)] == n

    def test_fault_free_runs_allocate_no_channel_state(self):
        rt = NVSHMEMRuntime(MultiGPUContext(HGX_A100_8GPU.scaled_to(2),
                                            tracer=Tracer()))
        arr = rt.malloc("slot", (2,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            yield from dev.putmem_nbi(arr, slice(None), np.full(2, 1.0), dest_pe=1)
            yield from dev.quiet()

        rt.ctx.sim.spawn(pe0(), name="pe0")
        rt.ctx.run()
        assert all(shard == {} for shard in rt._chan_issue)
        assert all(shard == {} for shard in rt._chan_done)

    def test_deterministic_across_reruns(self):
        runs = []
        for _ in range(2):
            observed, final, rt = self._burst(_retry_heavy_plan(seed=9))
            runs.append((tuple(observed), final, rt.ctx.sim.now,
                         rt.ctx.faults.total_retries))
        assert runs[0] == runs[1]
