"""Dedicated tests for SDFG structural validation."""

import pytest

from repro.hw.memory import Storage
from repro.sdfg import (
    LoopRegion,
    Memlet,
    SDFG,
    SDFGValidationError,
    Schedule,
    State,
    Sym,
    validate,
)
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Tasklet


def sdfg_with_state():
    sdfg = SDFG("v")
    sdfg.add_array("A", (Sym("N"),))
    state = State("s")
    sdfg.body.add(state)
    return sdfg, state


def test_valid_empty_sdfg():
    validate(SDFG("empty"))


def test_undeclared_access_node_rejected():
    sdfg, state = sdfg_with_state()
    state.add_node(AccessNode("GHOST"))
    with pytest.raises(SDFGValidationError, match="undeclared array 'GHOST'"):
        validate(sdfg)


def test_memlet_over_undeclared_array_rejected():
    sdfg, state = sdfg_with_state()
    a = state.add_node(AccessNode("A"))
    t = state.add_node(Tasklet("t", "A", ["A"], "A"))
    state.add_edge(a, t, Memlet.from_slices("GHOST", 0))
    with pytest.raises(SDFGValidationError, match="undeclared array 'GHOST'"):
        validate(sdfg)


def test_memlet_dimension_mismatch_rejected():
    sdfg, state = sdfg_with_state()
    a = state.add_node(AccessNode("A"))
    t = state.add_node(Tasklet("t", "A", ["A"], "A"))
    state.add_edge(a, t, Memlet.from_slices("A", (0, 1)))  # A is 1-D
    with pytest.raises(SDFGValidationError, match="dims"):
        validate(sdfg)


def test_orphan_map_exit_rejected():
    sdfg, state = sdfg_with_state()
    foreign_entry = MapEntry("m", ["i"], [(0, 4)])
    state.add_node(MapExit(foreign_entry))
    with pytest.raises(SDFGValidationError, match="MapExit"):
        validate(sdfg)


def test_multiple_map_scopes_rejected():
    sdfg, state = sdfg_with_state()
    e1 = state.add_node(MapEntry("m1", ["i"], [(0, 4)]))
    e2 = state.add_node(MapEntry("m2", ["i"], [(0, 4)]))
    state.add_node(MapExit(e1))
    state.add_node(MapExit(e2))
    with pytest.raises(SDFGValidationError, match="multiple map scopes"):
        validate(sdfg)


def test_nvshmem_node_on_global_storage_rejected():
    sdfg = SDFG("v")
    sdfg.add_array("A", (Sym("N"),), storage=Storage.GLOBAL)
    state = State("s")
    sdfg.body.add(state)
    state.add_node(PutmemSignal(
        Memlet.from_slices("A", 0), Memlet.from_slices("A", 1),
        0, Sym("t"), "nw",
    ))
    with pytest.raises(SDFGValidationError, match="NVSHMEMArray"):
        validate(sdfg)


def test_nvshmem_put_dst_on_global_storage_names_the_side():
    sdfg = SDFG("v")
    sdfg.add_array("A", (Sym("N"),), storage=Storage.GLOBAL)
    state = State("s")
    sdfg.body.add(state)
    state.add_node(PutmemSignal(
        Memlet.from_slices("A", 0), Memlet.from_slices("A", 1),
        0, Sym("t"), "nw",
    ))
    with pytest.raises(SDFGValidationError, match="put dst 'A'"):
        validate(sdfg)


def _symmetric_sdfg():
    sdfg = SDFG("v")
    sdfg.add_array("A", (Sym("N"),), storage=Storage.SYMMETRIC)
    state = State("s")
    sdfg.body.add(state)
    return sdfg, state


def test_signal_wait_without_producer_rejected():
    sdfg, state = _symmetric_sdfg()
    state.add_node(SignalWait(3, Sym("t")))
    with pytest.raises(SDFGValidationError, match="flag 3 has no producer"):
        validate(sdfg)


def test_signal_wait_with_producer_ok():
    sdfg, state = _symmetric_sdfg()
    state.add_node(PutmemSignal(
        Memlet.from_slices("A", 0), Memlet.from_slices("A", 1),
        3, Sym("t"), "nw",
    ))
    state.add_node(SignalWait(3, Sym("t")))
    validate(sdfg)


def test_unsignaled_put_does_not_satisfy_a_wait():
    # flag_index=None is a bare data put; it signals nothing, so it
    # cannot serve as the producer side of a wait
    sdfg, state = _symmetric_sdfg()
    state.add_node(PutmemSignal(
        Memlet.from_slices("A", 0), Memlet.from_slices("A", 1),
        None, Sym("t"), "nw",
    ))
    state.add_node(SignalWait(0, Sym("t")))
    with pytest.raises(SDFGValidationError, match="no producer"):
        validate(sdfg)


def test_unsignaled_put_alone_is_valid():
    sdfg, state = _symmetric_sdfg()
    state.add_node(PutmemSignal(
        Memlet.from_slices("A", 0), Memlet.from_slices("A", 1),
        None, Sym("t"), "nw",
    ))
    validate(sdfg)


def test_nvshmem_node_on_symmetric_storage_ok():
    sdfg = SDFG("v")
    sdfg.add_array("A", (Sym("N"),), storage=Storage.SYMMETRIC)
    state = State("s")
    sdfg.body.add(state)
    state.add_node(PutmemSignal(
        Memlet.from_slices("A", 0), Memlet.from_slices("A", 1),
        0, Sym("t"), "nw",
    ))
    validate(sdfg)


def test_persistent_schedule_on_plain_region_rejected():
    sdfg = SDFG("v")
    sdfg.body.schedule = Schedule.GPU_PERSISTENT
    with pytest.raises(SDFGValidationError, match="loop regions"):
        validate(sdfg)


def test_persistent_loop_with_cpu_state_rejected():
    sdfg = SDFG("v")
    loop = LoopRegion("t", 0, 4, schedule=Schedule.GPU_PERSISTENT)
    loop.add(State("cpu_state", schedule=Schedule.CPU))
    sdfg.body.add(loop)
    with pytest.raises(SDFGValidationError, match="non-persistent state"):
        validate(sdfg)
