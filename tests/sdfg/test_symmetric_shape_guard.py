"""Tests for the executor's symmetric-shape guard (uneven slabs)."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.programs import (
    CONJUGATES_1D,
    baseline_pipeline,
    build_jacobi_1d_sdfg,
    cpufree_pipeline,
)
from repro.sim import Tracer


def uneven_args():
    """Two ranks with different local sizes (7 and 6 interior cells)."""
    return [
        {"A": np.zeros(9), "B": np.zeros(9), "N": 9, "TSTEPS": 3, "nw": -1, "ne": 1},
        {"A": np.zeros(8), "B": np.zeros(8), "N": 8, "TSTEPS": 3, "nw": 0, "ne": -1},
    ]


def test_uneven_slabs_rejected_for_symmetric_arrays():
    sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())
    with pytest.raises(ValueError, match="pad the decomposition"):
        SDFGExecutor(sdfg, ctx).run(uneven_args())


def test_uneven_slabs_fine_for_mpi_baseline():
    """The MPI baseline has no symmetric storage — uneven slabs are
    legal there (messages carry explicit sizes)."""
    sdfg = baseline_pipeline(build_jacobi_1d_sdfg())
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())
    report = SDFGExecutor(sdfg, ctx).run(uneven_args())
    assert report.total_time_us > 0


def test_equal_slabs_pass_the_guard():
    sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())
    args = [
        {"A": np.zeros(8), "B": np.zeros(8), "N": 8, "TSTEPS": 3, "nw": -1, "ne": 1},
        {"A": np.zeros(8), "B": np.zeros(8), "N": 8, "TSTEPS": 3, "nw": 0, "ne": -1},
    ]
    report = SDFGExecutor(sdfg, ctx).run(args)
    assert report.total_time_us > 0
