"""Tests for the pseudo-CUDA text backend (thesis listings fidelity)."""

import pytest

from repro.sdfg.codegen import generate_cuda
from repro.sdfg.programs import (
    CONJUGATES_1D,
    CONJUGATES_2D,
    baseline_pipeline,
    build_jacobi_1d_sdfg,
    build_jacobi_2d_sdfg,
    cpufree_pipeline,
)


@pytest.fixture(scope="module")
def baseline_1d_code():
    return generate_cuda(baseline_pipeline(build_jacobi_1d_sdfg()))


@pytest.fixture(scope="module")
def cpufree_1d_code():
    return generate_cuda(cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D))


@pytest.fixture(scope="module")
def cpufree_2d_code():
    return generate_cuda(cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D))


class TestBaselineCode:
    def test_host_controlled_structure(self, baseline_1d_code):
        assert "cudaMalloc" in baseline_1d_code
        assert "<<<" in baseline_1d_code  # discrete kernel launches
        assert "for (int t = 1; t < TSTEPS; t++)" in baseline_1d_code

    def test_mpi_calls_with_generated_syncs(self, baseline_1d_code):
        """Fig 5.1: stream syncs and staging copies around MPI calls."""
        assert "MPI_Isend" in baseline_1d_code
        assert "MPI_Irecv" in baseline_1d_code
        assert "MPI_Waitall" in baseline_1d_code
        assert "cudaStreamSynchronize" in baseline_1d_code
        assert "cudaMemcpy" in baseline_1d_code

    def test_no_nvshmem_in_baseline(self, baseline_1d_code):
        assert "nvshmem" not in baseline_1d_code

    def test_2d_baseline_uses_vector_datatype(self):
        code = generate_cuda(baseline_pipeline(build_jacobi_2d_sdfg()))
        assert "vector_t" in code  # MPI_Type_vector for strided columns


class TestCPUFreeCode:
    def test_persistent_kernel_structure(self, cpufree_1d_code):
        assert "__global__" in cpufree_1d_code
        assert "cg::grid_group" in cpufree_1d_code
        assert "cudaLaunchCooperativeKernel" in cpufree_1d_code
        assert "for (int t = 1; t < TSTEPS; t++)" in cpufree_1d_code

    def test_symmetric_allocation(self, cpufree_1d_code):
        assert "nvshmem_malloc" in cpufree_1d_code

    def test_no_host_mpi_left(self, cpufree_1d_code):
        assert "MPI_" not in cpufree_1d_code
        assert "cudaStreamSynchronize" not in cpufree_1d_code

    def test_scalar_lowering_1d(self, cpufree_1d_code):
        """Single-element halos lower to nvshmem_double_p + quiet +
        signal_op (§5.3.1)."""
        assert "nvshmem_double_p(" in cpufree_1d_code
        assert "nvshmem_quiet()" in cpufree_1d_code
        assert "nvshmemx_signal_op" in cpufree_1d_code

    def test_wait_lowering(self, cpufree_1d_code):
        assert "nvshmem_signal_wait_until" in cpufree_1d_code
        assert "NVSHMEM_CMP_GE" in cpufree_1d_code

    def test_single_thread_scheduling(self, cpufree_1d_code):
        """§5.3.2: generated comm runs in one thread + grid sync."""
        assert "threadIdx.x == 0 && blockIdx.x == 0" in cpufree_1d_code
        assert "grid.sync()" in cpufree_1d_code

    def test_2d_strided_lowering(self, cpufree_2d_code):
        """Listing 5.6: strided views lower to iput + quiet + signal."""
        assert "nvshmem_double_iput(" in cpufree_2d_code

    def test_2d_contiguous_rows_use_putmem_signal(self, cpufree_2d_code):
        assert "nvshmemx_putmem_signal_nbi_block(" in cpufree_2d_code

    def test_generated_header_names_sdfg(self, cpufree_1d_code):
        assert "jacobi_1d" in cpufree_1d_code
