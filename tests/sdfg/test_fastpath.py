"""Vectorized-map specialization vs the scalar fallback.

The tentpole contract: for every affine stencil tasklet the vectorized
(whole-map NumPy slice) execution must be bit-identical to the
codegen-faithful scalar loop, on the real 1D/2D/3D Jacobi SDFGs.
"""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg.codegen import MapMode, SDFGExecutor, specialize_maps
from repro.sdfg.codegen.fastpath import plan_state
from repro.sdfg.distributed import (
    GridDecomposition2D,
    SlabDecomposition1D,
    SlabDecomposition3D,
)
from repro.sdfg.frontend import float64, int32, program
from repro.sdfg.programs import (
    CONJUGATES_1D,
    CONJUGATES_2D,
    baseline_pipeline,
    build_jacobi_1d_sdfg,
    build_jacobi_2d_sdfg,
    build_jacobi_3d_sdfg,
    cpufree_pipeline,
)
from repro.sdfg.symbols import Sym
from repro.sim import Tracer


def _final_arrays(sdfg, rank_args, num_gpus, fastpath):
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(num_gpus), tracer=Tracer())
    report = SDFGExecutor(sdfg, ctx, fastpath=fastpath).run(rank_args)
    return report.arrays


def _assert_modes_identical(build, args, ranks):
    """Run the same program under all three modes; arrays must be
    bit-identical (validate mode additionally self-checks per map)."""
    results = {}
    for mode in ("vector", "scalar", "validate"):
        results[mode] = _final_arrays(build(), args, ranks, mode)
    for mode in ("scalar", "validate"):
        for rank, (got, want) in enumerate(zip(results[mode], results["vector"])):
            for name in want:
                np.testing.assert_array_equal(
                    got[name], want[name],
                    err_msg=f"{mode} diverged from vector: rank {rank}, array {name}",
                )


class TestJacobiBitIdentical:
    def test_jacobi_1d(self):
        rng = np.random.default_rng(11)
        u0 = rng.random(20)
        decomp = SlabDecomposition1D(18, 3)
        args = decomp.rank_args(u0, 5)
        _assert_modes_identical(
            lambda: baseline_pipeline(build_jacobi_1d_sdfg()), args, 3)

    def test_jacobi_1d_cpufree(self):
        rng = np.random.default_rng(12)
        u0 = rng.random(14)
        decomp = SlabDecomposition1D(12, 2)
        args = decomp.rank_args(u0, 4)
        _assert_modes_identical(
            lambda: cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D), args, 2)

    def test_jacobi_2d(self):
        rng = np.random.default_rng(13)
        u0 = rng.random((10, 10))
        decomp = GridDecomposition2D(8, 8, 4)
        args = decomp.rank_args(u0, 4)
        _assert_modes_identical(
            lambda: cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D), args, 4)

    def test_jacobi_3d(self):
        rng = np.random.default_rng(14)
        u0 = rng.random((8, 8, 8))
        decomp = SlabDecomposition3D(6, 6, 2)
        args = decomp.rank_args(u0, 3)
        _assert_modes_identical(
            lambda: cpufree_pipeline(build_jacobi_3d_sdfg(), CONJUGATES_1D), args, 2)


class TestSpecializationPass:
    @pytest.mark.parametrize("build", [
        build_jacobi_1d_sdfg, build_jacobi_2d_sdfg, build_jacobi_3d_sdfg,
    ])
    def test_all_jacobi_maps_vectorize(self, build):
        sdfg = baseline_pipeline(build())
        counts = specialize_maps(sdfg)
        assert counts[MapMode.VECTORIZED.value] >= 2
        assert counts[MapMode.GENERIC.value] == 0

    def test_plans_cached_on_state(self):
        sdfg = baseline_pipeline(build_jacobi_1d_sdfg())
        state = next(s for s in sdfg.walk_states() if s.tasklets)
        assert plan_state(state, sdfg) is plan_state(state, sdfg)

    def test_nonaffine_falls_back_to_generic(self):
        N = Sym("N")

        @program
        def expsum(A: float64[N], B: float64[N], TSTEPS: int32):
            for t in range(1, TSTEPS):
                B[1:-1] = np.exp(A[1:-1])  # noqa: F821

        sdfg = baseline_pipeline(expsum.to_sdfg())
        counts = specialize_maps(sdfg)
        assert counts[MapMode.GENERIC.value] == 1

    def test_generic_fallback_still_correct(self):
        N = Sym("N")

        @program
        def expstep(A: float64[N], B: float64[N], TSTEPS: int32):
            for t in range(1, TSTEPS):
                B[1:-1] = np.exp(A[1:-1])  # noqa: F821
                A[1:-1] = B[1:-1] / 2.0

        sdfg = baseline_pipeline(expstep.to_sdfg())
        u0 = np.linspace(0.0, 1.0, 9)
        args = [{"A": np.array(u0), "B": np.array(u0), "N": 9, "TSTEPS": 4}]
        (arrays,) = _final_arrays(sdfg, args, 1, "vector")
        A, B = np.array(u0), np.array(u0)
        for _ in range(1, 4):
            B[1:-1] = np.exp(A[1:-1])
            A[1:-1] = B[1:-1] / 2.0
        np.testing.assert_array_equal(arrays["A"], A)
        np.testing.assert_array_equal(arrays["B"], B)

    def test_unknown_mode_rejected(self):
        sdfg = baseline_pipeline(build_jacobi_1d_sdfg())
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(1), tracer=Tracer())
        with pytest.raises(ValueError, match="fastpath"):
            SDFGExecutor(sdfg, ctx, fastpath="turbo")
