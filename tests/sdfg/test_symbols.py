"""Tests for the symbolic expression language."""

import pytest

from repro.sdfg import Sym, evaluate_expr
from repro.sdfg.symbols import BinOp, expr_to_str


class TestEvaluate:
    def test_int_literal(self):
        assert evaluate_expr(5, {}) == 5

    def test_symbol_lookup(self):
        assert evaluate_expr(Sym("N"), {"N": 42}) == 42

    def test_unbound_symbol_raises(self):
        with pytest.raises(KeyError, match="N"):
            evaluate_expr(Sym("N"), {})

    def test_arithmetic(self):
        N = Sym("N")
        assert evaluate_expr(N + 1, {"N": 10}) == 11
        assert evaluate_expr(N - 2, {"N": 10}) == 8
        assert evaluate_expr(N * 3, {"N": 10}) == 30
        assert evaluate_expr(N // 4, {"N": 10}) == 2

    def test_reflected_operators(self):
        N = Sym("N")
        assert evaluate_expr(1 + N, {"N": 5}) == 6
        assert evaluate_expr(20 - N, {"N": 5}) == 15
        assert evaluate_expr(2 * N, {"N": 5}) == 10

    def test_nested_expression(self):
        N, M = Sym("N"), Sym("M")
        expr = (N - 1) * (M - 1)
        assert evaluate_expr(expr, {"N": 4, "M": 5}) == 12

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            evaluate_expr(True, {})

    def test_bad_operand_type(self):
        with pytest.raises(TypeError):
            Sym("N") + 1.5  # floats are not index expressions


class TestRendering:
    def test_symbol(self):
        assert expr_to_str(Sym("N")) == "N"

    def test_binop(self):
        assert expr_to_str(Sym("N") - 2) == "(N - 2)"

    def test_int(self):
        assert expr_to_str(7) == "7"

    def test_repr_roundtrip_shape(self):
        expr = Sym("N") * 2 + 1
        assert isinstance(expr, BinOp)
        assert evaluate_expr(expr, {"N": 3}) == 7


class TestCodeCacheLRU:
    def test_structurally_equal_exprs_share_code(self):
        from repro.sdfg import symbols

        a = Sym("N") * 2 + 1
        b = Sym("N") * 2 + 1
        before = symbols.code_cache_stats()
        assert evaluate_expr(a, {"N": 3}) == 7
        assert evaluate_expr(b, {"N": 4}) == 9
        after = symbols.code_cache_stats()
        # second tree hit the shared store instead of recompiling
        assert after["hits"] >= before["hits"] + 1
        assert a.__dict__["_eval_code"] is b.__dict__["_eval_code"]

    def test_cache_is_bounded(self):
        from repro.sdfg import symbols

        for i in range(symbols.CODE_CACHE_CAPACITY + 50):
            evaluate_expr(Sym("N") + i, {"N": 1})
        assert symbols.code_cache_stats()["size"] <= symbols.CODE_CACHE_CAPACITY

    def test_eviction_does_not_break_evaluation(self):
        from repro.sdfg import symbols

        expr = Sym("M") * 7
        assert evaluate_expr(expr, {"M": 2}) == 14
        for i in range(symbols.CODE_CACHE_CAPACITY + 10):
            evaluate_expr(Sym("N") - i, {"N": 0})
        # the node keeps its code reference even after index eviction
        assert evaluate_expr(expr, {"M": 3}) == 21

    def test_publish_gauges(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.sdfg.symbols import publish_code_cache_stats

        registry = MetricsRegistry()
        publish_code_cache_stats(registry)
        names = {g["name"] for g in registry.to_dict()["gauges"]}
        assert "sdfg.symbols.code_cache.size" in names
        assert "sdfg.symbols.code_cache.hit_rate" in names
