"""Tests for the symbolic expression language."""

import pytest

from repro.sdfg import Sym, evaluate_expr
from repro.sdfg.symbols import BinOp, expr_to_str


class TestEvaluate:
    def test_int_literal(self):
        assert evaluate_expr(5, {}) == 5

    def test_symbol_lookup(self):
        assert evaluate_expr(Sym("N"), {"N": 42}) == 42

    def test_unbound_symbol_raises(self):
        with pytest.raises(KeyError, match="N"):
            evaluate_expr(Sym("N"), {})

    def test_arithmetic(self):
        N = Sym("N")
        assert evaluate_expr(N + 1, {"N": 10}) == 11
        assert evaluate_expr(N - 2, {"N": 10}) == 8
        assert evaluate_expr(N * 3, {"N": 10}) == 30
        assert evaluate_expr(N // 4, {"N": 10}) == 2

    def test_reflected_operators(self):
        N = Sym("N")
        assert evaluate_expr(1 + N, {"N": 5}) == 6
        assert evaluate_expr(20 - N, {"N": 5}) == 15
        assert evaluate_expr(2 * N, {"N": 5}) == 10

    def test_nested_expression(self):
        N, M = Sym("N"), Sym("M")
        expr = (N - 1) * (M - 1)
        assert evaluate_expr(expr, {"N": 4, "M": 5}) == 12

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            evaluate_expr(True, {})

    def test_bad_operand_type(self):
        with pytest.raises(TypeError):
            Sym("N") + 1.5  # floats are not index expressions


class TestRendering:
    def test_symbol(self):
        assert expr_to_str(Sym("N")) == "N"

    def test_binop(self):
        assert expr_to_str(Sym("N") - 2) == "(N - 2)"

    def test_int(self):
        assert expr_to_str(7) == "7"

    def test_repr_roundtrip_shape(self):
        expr = Sym("N") * 2 + 1
        assert isinstance(expr, BinOp)
        assert evaluate_expr(expr, {"N": 3}) == 7
