"""Additional frontend coverage: nested loops, 2D maps, expressions."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg import LoopRegion, Sym, program, validate
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.frontend import FrontendError, float64, int32
from repro.sim import Tracer

N = Sym("N")
M = Sym("M")


def test_nested_loops_build_nested_regions():
    @program
    def nested(A: float64[N], TSTEPS: int32, INNER: int32):
        for t in range(1, TSTEPS):
            for k in range(0, INNER):
                A[1:-1] = A[1:-1] + 1

    sdfg = nested.to_sdfg()
    loops = sdfg.loop_regions()
    assert [l.var for l in loops] == ["t", "k"]
    assert isinstance(loops[0].elements[0], LoopRegion)
    validate(sdfg)


def test_nested_loops_execute_correctly():
    @program
    def nested(A: float64[N], TSTEPS: int32, INNER: int32):
        for t in range(1, TSTEPS):
            for k in range(0, INNER):
                A[1:-1] = A[1:-1] + 1.0

    sdfg = nested.to_sdfg()
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(1), tracer=Tracer())
    a0 = np.zeros(6)
    report = SDFGExecutor(sdfg, ctx).run(
        [{"A": a0, "N": 6, "TSTEPS": 4, "INNER": 2}]
    )
    # (4-1) outer x 2 inner increments of the interior
    np.testing.assert_array_equal(report.arrays[0]["A"], [0, 6, 6, 6, 6, 0])


def test_range_single_argument():
    @program
    def f(A: float64[N], TSTEPS: int32):
        for t in range(TSTEPS):
            A[1:-1] = A[1:-1]

    loop = f.to_sdfg().loop_regions()[0]
    assert loop.start == 0


def test_2d_map_ranges():
    @program
    def f(A: float64[N, M], B: float64[N, M]):
        B[1:-1, 2:-2] = A[1:-1, 2:-2] * 2

    state = next(f.to_sdfg().walk_states())
    entry = state.map_entries[0]
    assert entry.params == ["__i0", "__i1"]
    assert entry.ranges[0] == (1, -1)
    assert entry.ranges[1] == (2, -2)


def test_symbolic_index_arithmetic():
    @program
    def f(A: float64[N], TSTEPS: int32, ne: int32):
        for t in range(1, TSTEPS):
            comm.Isend(A[N - 2], ne, 1)     # noqa: F821
            comm.Irecv(A[N - 1], ne, 2)     # noqa: F821
            comm.Waitall()                  # noqa: F821
            A[1:-1] = A[1:-1]

    sdfg = f.to_sdfg()
    send = next(n for s in sdfg.walk_states() for n in s.library_nodes)
    assert "(N - 2)" in repr(send.buffer)


def test_module_level_int_constant_resolves():
    K = 3

    @program
    def f(A: float64[N]):
        A[K:-1] = A[K:-1]

    state = next(f.to_sdfg().walk_states())
    entry = state.map_entries[0]
    assert entry.ranges[0][0] == 3


def test_float_index_rejected():
    @program
    def f(A: float64[N]):
        A[1.5] = 0.0

    with pytest.raises(FrontendError, match="integers"):
        f.to_sdfg()


def test_pass_statement_ignored():
    @program
    def f(A: float64[N]):
        pass

    sdfg = f.to_sdfg()
    assert list(sdfg.walk_states()) == []


def test_whole_array_rhs_read():
    @program
    def f(A: float64[N], B: float64[N]):
        B[1:-1] = np.sum(A)  # noqa: F821 - np resolved at execution

    # 'np' is not an array; the read collector must pick up A via Name
    state = next(f.to_sdfg().walk_states())
    assert state.reads() == {"A"}
