"""Tests for the transformation passes."""

import pytest

from repro.hw.memory import Storage
from repro.sdfg import Schedule, Sym, program, validate
from repro.sdfg.frontend import float64, int32
from repro.sdfg.libnodes.mpi import MPIIsend, MPIWaitall
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.programs import (
    CONJUGATES_1D,
    CONJUGATES_2D,
    build_jacobi_1d_sdfg,
    build_jacobi_2d_sdfg,
    baseline_pipeline,
    cpufree_pipeline,
)
from repro.sdfg.transforms import (
    OverlapTransformError,
    auto_overlap,
    gpu_persistent_kernel,
    gpu_transform,
    map_fusion,
    mpi_to_nvshmem,
    nvshmem_array,
)
from repro.sdfg.transforms.mpi_to_nvshmem import FLAGS_ARRAY, MPIToNVSHMEMError
from repro.sdfg.transforms.persistent import PersistentTransformError
from repro.sdfg.validation import SDFGValidationError

N = Sym("N")


class TestGPUTransform:
    def test_states_and_storage_moved(self):
        sdfg = build_jacobi_1d_sdfg()
        gpu_transform(sdfg)
        assert all(s.schedule is Schedule.GPU_DEVICE for s in sdfg.walk_states())
        assert sdfg.arrays["A"].storage is Storage.GLOBAL

    def test_idempotent(self):
        sdfg = build_jacobi_1d_sdfg()
        gpu_transform(sdfg)
        gpu_transform(sdfg)
        assert sdfg.arrays["A"].storage is Storage.GLOBAL


class TestMapFusion:
    def test_fuses_identical_range_elementwise_states(self):
        @program
        def two_maps(A: float64[N], B: float64[N], C: float64[N]):
            B[1:-1] = A[1:-1] * 2
            C[1:-1] = A[1:-1] + 1

        sdfg = two_maps.to_sdfg()
        assert map_fusion(sdfg) == 1
        states = list(sdfg.walk_states())
        assert len(states) == 1
        assert len(states[0].tasklets) == 2
        validate(sdfg)

    def test_no_fusion_across_different_ranges(self):
        @program
        def two_maps(A: float64[N], B: float64[N], C: float64[N]):
            B[1:-1] = A[1:-1] * 2
            C[2:-2] = A[2:-2] + 1

        sdfg = two_maps.to_sdfg()
        assert map_fusion(sdfg) == 0
        assert len(list(sdfg.walk_states())) == 2

    def test_no_fusion_across_library_nodes(self):
        sdfg = build_jacobi_1d_sdfg()
        # compute states are separated by comm states -> nothing fuses
        assert map_fusion(sdfg) == 0

    def test_pointwise_chain_fuses(self):
        @program
        def chain(A: float64[N], B: float64[N], C: float64[N]):
            B[1:-1] = A[1:-1] * 2
            C[1:-1] = B[1:-1] + 1  # reads exactly what the first wrote

        sdfg = chain.to_sdfg()
        assert map_fusion(sdfg) == 1

    def test_offset_dependency_does_not_fuse(self):
        @program
        def stencil_chain(A: float64[N], B: float64[N], C: float64[N]):
            B[1:-1] = A[1:-1] * 2
            C[1:-1] = B[:-2] + B[2:]  # neighborhood read: fusing is illegal

        sdfg = stencil_chain.to_sdfg()
        assert map_fusion(sdfg) == 0


class TestMPIToNVSHMEM:
    def test_jacobi_1d_lowering(self):
        sdfg = build_jacobi_1d_sdfg()
        gpu_transform(sdfg)
        mpi_to_nvshmem(sdfg, CONJUGATES_1D)
        nodes = [n for s in sdfg.walk_states() for n in s.library_nodes]
        puts = [n for n in nodes if isinstance(n, PutmemSignal)]
        waits = [n for n in nodes if isinstance(n, SignalWait)]
        assert len(puts) == 4 and len(waits) == 4
        assert not any(isinstance(n, (MPIIsend, MPIWaitall)) for n in nodes)
        assert FLAGS_ARRAY in sdfg.arrays
        assert sdfg.arrays[FLAGS_ARRAY].shape == (4,)

    def test_flags_are_unique_per_pair(self):
        sdfg = build_jacobi_1d_sdfg()
        gpu_transform(sdfg)
        mpi_to_nvshmem(sdfg, CONJUGATES_1D)
        nodes = [n for s in sdfg.walk_states() for n in s.library_nodes]
        put_flags = sorted(n.flag_index for n in nodes if isinstance(n, PutmemSignal))
        wait_flags = sorted(n.flag_index for n in nodes if isinstance(n, SignalWait))
        assert put_flags == [0, 1, 2, 3]
        assert wait_flags == [0, 1, 2, 3]

    def test_put_destination_comes_from_conjugate_recv(self):
        """Isend(A[1], nw) must land at the peer's A[N-1] (their Irecv
        from ne)."""
        sdfg = build_jacobi_1d_sdfg()
        gpu_transform(sdfg)
        mpi_to_nvshmem(sdfg, CONJUGATES_1D)
        puts = [n for s in sdfg.walk_states() for n in s.library_nodes
                if isinstance(n, PutmemSignal)]
        first = puts[0]  # was Isend(A[1], nw, 2)
        assert first.pe == "nw"
        assert repr(first.dst).startswith("A[")
        assert "(N - 1)" in repr(first.dst)

    def test_signal_value_is_loop_variable(self):
        sdfg = build_jacobi_1d_sdfg()
        gpu_transform(sdfg)
        mpi_to_nvshmem(sdfg, CONJUGATES_1D)
        puts = [n for s in sdfg.walk_states() for n in s.library_nodes
                if isinstance(n, PutmemSignal)]
        assert all(p.signal_value == Sym("t") for p in puts)

    def test_waits_remember_peer_param(self):
        sdfg = build_jacobi_1d_sdfg()
        gpu_transform(sdfg)
        mpi_to_nvshmem(sdfg, CONJUGATES_1D)
        waits = [n for s in sdfg.walk_states() for n in s.library_nodes
                 if isinstance(n, SignalWait)]
        assert {w.peer_param for w in waits} == {"nw", "ne"}

    def test_unmatched_send_raises(self):
        @program
        def lonely(A: float64[N], TSTEPS: int32, nw: int32, ne: int32):
            for t in range(1, TSTEPS):
                comm.Isend(A[1], nw, 2)  # noqa: F821
                A[1:-1] = A[1:-1]

        sdfg = lonely.to_sdfg()
        gpu_transform(sdfg)
        with pytest.raises(MPIToNVSHMEMError, match="no conjugate"):
            mpi_to_nvshmem(sdfg, CONJUGATES_1D)

    def test_non_involution_conjugates_rejected(self):
        sdfg = build_jacobi_1d_sdfg()
        with pytest.raises(MPIToNVSHMEMError, match="involution"):
            mpi_to_nvshmem(sdfg, {"nw": "ne", "ne": "nw2", "nw2": "ne"})

    def test_no_comm_program_untouched(self):
        @program
        def pure(A: float64[N], TSTEPS: int32):
            for t in range(1, TSTEPS):
                A[1:-1] = A[1:-1] + 1

        sdfg = pure.to_sdfg()
        mpi_to_nvshmem(sdfg, {})
        assert FLAGS_ARRAY not in sdfg.arrays


class TestNVSHMEMArray:
    def test_touched_arrays_become_symmetric(self):
        sdfg = build_jacobi_1d_sdfg()
        gpu_transform(sdfg)
        mpi_to_nvshmem(sdfg, CONJUGATES_1D)
        nvshmem_array(sdfg)
        assert sdfg.arrays["A"].storage is Storage.SYMMETRIC
        assert sdfg.arrays["B"].storage is Storage.SYMMETRIC

    def test_untouched_arrays_stay_global(self):
        @program
        def partial(A: float64[N], C: float64[N], TSTEPS: int32, nw: int32, ne: int32):
            for t in range(1, TSTEPS):
                comm.Isend(A[1], nw, 2)      # noqa: F821
                comm.Irecv(A[N - 1], ne, 2)  # noqa: F821
                comm.Waitall()               # noqa: F821
                C[1:-1] = A[1:-1] + 1

        sdfg = partial.to_sdfg()
        gpu_transform(sdfg)
        mpi_to_nvshmem(sdfg, CONJUGATES_1D)
        nvshmem_array(sdfg)
        assert sdfg.arrays["A"].storage is Storage.SYMMETRIC
        assert sdfg.arrays["C"].storage is Storage.GLOBAL

    def test_validation_requires_symmetric(self):
        sdfg = build_jacobi_1d_sdfg()
        gpu_transform(sdfg)
        mpi_to_nvshmem(sdfg, CONJUGATES_1D)
        with pytest.raises(SDFGValidationError, match="NVSHMEMArray"):
            validate(sdfg)


class TestPersistent:
    def test_loop_scheduled_persistent(self):
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        loop = sdfg.loop_regions()[0]
        assert loop.schedule is Schedule.GPU_PERSISTENT
        assert all(s.schedule is Schedule.GPU_PERSISTENT for s in loop.walk_states())

    def test_requires_gpu_transform_first(self):
        sdfg = build_jacobi_1d_sdfg()
        with pytest.raises(PersistentTransformError, match="gpu_transform"):
            gpu_persistent_kernel(sdfg)

    def test_requires_loop(self):
        @program
        def flat(A: float64[N]):
            A[1:-1] = A[1:-1]

        sdfg = flat.to_sdfg()
        gpu_transform(sdfg)
        with pytest.raises(PersistentTransformError, match="no loop"):
            gpu_persistent_kernel(sdfg)

    def test_persistent_with_mpi_fails_validation(self):
        sdfg = build_jacobi_1d_sdfg()
        gpu_transform(sdfg)
        gpu_persistent_kernel(sdfg)
        with pytest.raises(SDFGValidationError, match="MPIToNVSHMEM"):
            validate(sdfg)

    def test_relaxed_barriers_fewer_than_conservative(self):
        relaxed = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        conservative = build_jacobi_1d_sdfg()
        gpu_transform(conservative)
        mpi_to_nvshmem(conservative, CONJUGATES_1D)
        nvshmem_array(conservative)
        gpu_persistent_kernel(conservative, relax_barriers=False)

        def count_syncs(sdfg):
            return sum(
                1 for s in sdfg.walk_states() if getattr(s, "sync_after", False)
            )

        assert count_syncs(relaxed) < count_syncs(conservative)

    def test_back_edge_always_synchronizes(self):
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        loop = sdfg.loop_regions()[0]
        from repro.sdfg.graph import State
        states = [el for el in loop.elements if isinstance(el, State)]
        assert states[-1].sync_after


class TestAutoOverlap:
    def test_rewrites_jacobi_1d_after_full_pipeline(self):
        """persistent -> overlap ordering: the pass applies on top of
        the fully lowered cpufree pipeline and re-relaxes barriers."""
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        before = len(list(sdfg.walk_states()))
        assert auto_overlap(sdfg, chunks=3) == 1
        validate(sdfg)
        loop = sdfg.loop_regions()[0]
        assert loop.schedule is Schedule.GPU_PERSISTENT
        assert all(s.schedule is Schedule.GPU_PERSISTENT
                   for s in loop.walk_states())
        # top + bottom + 3 interior chunks replace the one compute map;
        # the two eager puts are relocated, not duplicated
        assert len(list(sdfg.walk_states())) == before + 4
        from repro.sdfg.graph import State
        states = [el for el in loop.elements if isinstance(el, State)]
        assert states[-1].sync_after  # back edge still synchronizes
        groups = {getattr(s, "overlap_group", None) for s in states}
        assert len(groups - {None}) == 1

    def test_chunks_within_group_skip_barriers(self):
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        auto_overlap(sdfg, chunks=4)
        loop = sdfg.loop_regions()[0]
        from repro.sdfg.graph import State
        states = [el for el in loop.elements if isinstance(el, State)]
        grouped = [s for s in states
                   if getattr(s, "overlap_group", None) is not None]
        # every grouped state except the group's last runs barrier-free
        assert not any(s.sync_after for s in grouped[:-1])

    def test_map_fusion_then_overlap(self):
        """map_fusion -> overlap ordering: a fused multi-tasklet map
        with an eager boundary put still tiles."""

        @program
        def fused(A: float64[N], B: float64[N], C: float64[N],
                  TSTEPS: int32, nw: int32, ne: int32):
            for t in range(1, TSTEPS):
                B[1:-1] = A[1:-1] * 2
                C[1:-1] = A[1:-1] + 1
                comm.Isend(B[1], nw, 2)      # noqa: F821
                comm.Irecv(B[N - 1], ne, 2)  # noqa: F821
                comm.Waitall()               # noqa: F821

        sdfg = fused.to_sdfg()
        gpu_transform(sdfg)
        assert map_fusion(sdfg) == 1
        mpi_to_nvshmem(sdfg, CONJUGATES_1D)
        nvshmem_array(sdfg)
        assert auto_overlap(sdfg, chunks=2) == 1
        gpu_persistent_kernel(sdfg)
        validate(sdfg)

    def test_non_tileable_map_refused_with_named_error(self):
        """No-op guarantee: a map the fastpath cannot vectorize is
        refused loudly, never silently rewritten."""

        @program
        def clamped(A: float64[N], B: float64[N],
                    TSTEPS: int32, nw: int32, ne: int32):
            for t in range(1, TSTEPS):
                B[1:-1] = np.maximum(A[1:-1], A[2:])  # noqa: F821
                comm.Isend(B[1], nw, 2)      # noqa: F821
                comm.Irecv(B[N - 1], ne, 2)  # noqa: F821
                comm.Waitall()               # noqa: F821

        sdfg = clamped.to_sdfg()
        gpu_transform(sdfg)
        mpi_to_nvshmem(sdfg, CONJUGATES_1D)
        nvshmem_array(sdfg)
        described = sdfg.describe()
        with pytest.raises(OverlapTransformError, match="non-tileable"):
            auto_overlap(sdfg, chunks=2)
        assert sdfg.describe() == described  # graph untouched on refusal

    def test_requires_a_loop(self):
        @program
        def flat(A: float64[N]):
            A[1:-1] = A[1:-1]

        sdfg = flat.to_sdfg()
        with pytest.raises(OverlapTransformError, match="no loop"):
            auto_overlap(sdfg, chunks=2)

    def test_requires_an_overlappable_map(self):
        @program
        def pure(A: float64[N], TSTEPS: int32):
            for t in range(1, TSTEPS):
                A[1:-1] = A[1:-1] + 1

        sdfg = pure.to_sdfg()
        with pytest.raises(OverlapTransformError, match="no overlappable"):
            auto_overlap(sdfg, chunks=2)

    def test_rejects_bad_chunk_count(self):
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        with pytest.raises(OverlapTransformError, match="chunk"):
            auto_overlap(sdfg, chunks=0)

    def test_2d_pipeline_composes(self):
        sdfg = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D)
        assert auto_overlap(sdfg, chunks=2) == 1
        validate(sdfg)

    def test_executor_results_bit_identical(self):
        """The rewritten SDFG computes exactly what the original does."""
        import numpy as np
        from repro.hw import HGX_A100_8GPU
        from repro.runtime import MultiGPUContext
        from repro.sdfg.codegen import SDFGExecutor
        from repro.sdfg.distributed import SlabDecomposition1D
        from repro.sim import Tracer

        rng = np.random.default_rng(11)
        u0 = rng.random(26)
        decomp = SlabDecomposition1D(24, 3)

        def run(overlapped):
            sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
            if overlapped:
                auto_overlap(sdfg, chunks=3)
            ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(3), tracer=Tracer())
            report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, 6))
            return decomp.gather(report.arrays, u0)

        np.testing.assert_array_equal(run(False), run(True))


class TestFullPipelines:
    def test_baseline_pipeline_validates(self):
        validate(baseline_pipeline(build_jacobi_1d_sdfg()))
        validate(baseline_pipeline(build_jacobi_2d_sdfg()))

    def test_cpufree_pipeline_validates(self):
        validate(cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D))
        validate(cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D))

    def test_2d_lowering_has_8_flag_pairs(self):
        sdfg = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D)
        assert sdfg.arrays[FLAGS_ARRAY].shape == (8,)
