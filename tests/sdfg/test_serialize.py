"""Round-trip tests for SDFG JSON serialization."""

import json

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg import validate
from repro.sdfg.codegen import SDFGExecutor, generate_cuda
from repro.sdfg.distributed import SlabDecomposition1D
from repro.sdfg.programs import (
    CONJUGATES_1D,
    CONJUGATES_2D,
    baseline_pipeline,
    build_jacobi_1d_sdfg,
    build_jacobi_2d_sdfg,
    cpufree_pipeline,
)
from repro.sdfg.serialize import SerializationError, sdfg_from_json, sdfg_to_json
from repro.sim import Tracer


def roundtrip(sdfg):
    return sdfg_from_json(sdfg_to_json(sdfg))


class TestRoundTrip:
    @pytest.mark.parametrize("build,pipeline,conj", [
        (build_jacobi_1d_sdfg, None, None),
        (build_jacobi_1d_sdfg, baseline_pipeline, None),
        (build_jacobi_1d_sdfg, cpufree_pipeline, CONJUGATES_1D),
        (build_jacobi_2d_sdfg, cpufree_pipeline, CONJUGATES_2D),
    ])
    def test_structure_preserved(self, build, pipeline, conj):
        sdfg = build()
        if pipeline is not None:
            sdfg = pipeline(sdfg) if conj is None else pipeline(sdfg, conj)
        restored = roundtrip(sdfg)
        validate(restored)
        assert restored.name == sdfg.name
        assert set(restored.arrays) == set(sdfg.arrays)
        assert restored.params == sdfg.params
        assert len(list(restored.walk_states())) == len(list(sdfg.walk_states()))
        for a, b in zip(sdfg.walk_states(), restored.walk_states()):
            assert a.name == b.name
            assert a.schedule == b.schedule
            assert len(a.nodes) == len(b.nodes)
            assert len(a.edges) == len(b.edges)

    def test_generated_code_identical_after_roundtrip(self):
        sdfg = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D)
        assert generate_cuda(roundtrip(sdfg)) == generate_cuda(sdfg)

    def test_restored_sdfg_executes_bit_exactly(self):
        rng = np.random.default_rng(21)
        n_global, ranks, tsteps = 24, 3, 5
        u0 = rng.random(n_global + 2)
        decomp = SlabDecomposition1D(n_global, ranks)

        results = []
        original = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        for sdfg in (original, roundtrip(original)):
            ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
            report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, tsteps))
            results.append(decomp.gather(report.arrays, u0))
        np.testing.assert_array_equal(results[0], results[1])

    def test_transformation_attributes_survive(self):
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D,
                                specialize_comm=True)
        restored = roundtrip(sdfg)
        loop = restored.loop_regions()[0]
        assert loop.comm_specialized
        for a, b in zip(sdfg.loop_regions()[0].walk_states(), loop.walk_states()):
            assert getattr(a, "sync_after", None) == getattr(b, "sync_after", None)
            assert getattr(a, "tb_group", None) == getattr(b, "tb_group", None)

    def test_storage_classes_survive(self):
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        restored = roundtrip(sdfg)
        for name in sdfg.arrays:
            assert restored.arrays[name].storage == sdfg.arrays[name].storage
            assert restored.arrays[name].transient == sdfg.arrays[name].transient

    def test_output_is_stable(self):
        """Serializing twice gives identical text (diffable artifacts)."""
        sdfg = baseline_pipeline(build_jacobi_1d_sdfg())
        assert sdfg_to_json(sdfg) == sdfg_to_json(sdfg)

    def test_double_roundtrip_fixed_point(self):
        sdfg = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D)
        once = sdfg_to_json(roundtrip(sdfg))
        twice = sdfg_to_json(roundtrip(roundtrip(sdfg)))
        assert once == twice


class TestErrors:
    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError, match="not valid JSON"):
            sdfg_from_json("{nope")

    def test_unknown_format_rejected(self):
        with pytest.raises(SerializationError, match="unknown format"):
            sdfg_from_json(json.dumps({"format": "dace-v9"}))

    def test_unknown_node_kind_rejected(self):
        doc = json.loads(sdfg_to_json(baseline_pipeline(build_jacobi_1d_sdfg())))
        # corrupt the first state's first node
        def first_state(elements):
            for el in elements:
                if el["kind"] == "state":
                    return el
                if el["kind"] == "loop":
                    found = first_state(el["elements"])
                    if found:
                        return found
            return None

        state = first_state(doc["body"])
        state["nodes"][0] = {"kind": "quantum_teleport"}
        with pytest.raises(SerializationError, match="unknown node kind"):
            sdfg_from_json(json.dumps(doc))

    def test_unsupported_dtype_rejected(self):
        doc = json.loads(sdfg_to_json(build_jacobi_1d_sdfg()))
        doc["arrays"][0]["dtype"] = "complex128"
        with pytest.raises(SerializationError, match="dtype"):
            sdfg_from_json(json.dumps(doc))
