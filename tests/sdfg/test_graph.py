"""Unit tests for the SDFG graph container and node APIs."""

import numpy as np
import pytest

from repro.hw.memory import Storage
from repro.sdfg import (
    ArrayDesc,
    LoopRegion,
    SDFG,
    Schedule,
    State,
    Sym,
)
from repro.sdfg.graph import Region
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Tasklet


class TestSDFGDeclarations:
    def test_add_array(self):
        sdfg = SDFG("t")
        desc = sdfg.add_array("A", (Sym("N"),))
        assert desc.ndim == 1
        assert sdfg.arrays["A"] is desc

    def test_duplicate_array_rejected(self):
        sdfg = SDFG("t")
        sdfg.add_array("A", (4,))
        with pytest.raises(ValueError):
            sdfg.add_array("A", (4,))

    def test_add_symbol_idempotent(self):
        sdfg = SDFG("t")
        s1 = sdfg.add_symbol("N")
        s2 = sdfg.add_symbol("N")
        assert s1 == s2

    def test_add_param_deduplicates(self):
        sdfg = SDFG("t")
        sdfg.add_param("nw")
        sdfg.add_param("nw")
        assert sdfg.params == ["nw"]

    def test_array_desc_defaults(self):
        desc = ArrayDesc("A", (8,))
        assert desc.dtype is np.float64
        assert desc.storage is Storage.HOST
        assert not desc.transient


class TestStateGraph:
    def test_edge_requires_registered_nodes(self):
        state = State("s")
        a = AccessNode("A")
        b = AccessNode("B")
        state.add_node(a)
        with pytest.raises(ValueError):
            state.add_edge(a, b)

    def test_in_out_edges(self):
        state = State("s")
        a = state.add_node(AccessNode("A"))
        t = state.add_node(Tasklet("t", "A", ["A"], "B"))
        b = state.add_node(AccessNode("B"))
        state.add_edge(a, t, Memlet.from_slices("A", slice(0, 4)))
        state.add_edge(t, b, Memlet.from_slices("B", slice(0, 4)))
        assert len(state.out_edges(a)) == 1
        assert len(state.in_edges(b)) == 1
        assert state.reads() == {"A"}
        assert state.writes() == {"B"}

    def test_nodes_of(self):
        state = State("s")
        entry = state.add_node(MapEntry("m", ["i"], [(0, 4)]))
        state.add_node(MapExit(entry))
        assert state.map_entries == [entry]
        assert len(state.nodes_of(MapExit)) == 1

    def test_map_entry_validation(self):
        with pytest.raises(ValueError):
            MapEntry("m", ["i", "j"], [(0, 4)])

    def test_map_entry_range_str(self):
        entry = MapEntry("m", ["i"], [(1, Sym("N") - 1)])
        assert entry.range_str() == "i=[1:(N - 1)]"


class TestRegions:
    def test_walk_states_recurses_into_loops(self):
        sdfg = SDFG("t")
        loop = LoopRegion("t", 0, 4)
        inner = State("inner")
        loop.add(inner)
        outer = State("outer")
        sdfg.body.add(outer)
        sdfg.body.add(loop)
        assert list(sdfg.walk_states()) == [outer, inner]

    def test_loop_regions_collects_nested(self):
        sdfg = SDFG("t")
        outer_loop = LoopRegion("t", 0, 2)
        inner_loop = LoopRegion("k", 0, 3)
        outer_loop.add(inner_loop)
        sdfg.body.add(outer_loop)
        assert sdfg.loop_regions() == [outer_loop, inner_loop]

    def test_trip_count_str(self):
        loop = LoopRegion("t", 1, Sym("TSTEPS"))
        assert loop.trip_count_str() == "for t in [1, TSTEPS)"

    def test_region_default_schedule(self):
        assert Region().schedule is Schedule.CPU

    def test_describe_lists_arrays_and_states(self):
        sdfg = SDFG("demo")
        sdfg.add_array("A", (Sym("N"), 4), storage=Storage.SYMMETRIC)
        state = State("s0")
        sdfg.body.add(state)
        text = sdfg.describe()
        assert "array A[N x 4] gpu_nvshmem" in text
        assert "state s0 [cpu]" in text
