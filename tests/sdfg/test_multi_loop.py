"""Programs with multiple sequential time loops (phased algorithms)."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg import Sym, program, validate
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.frontend import float64, int32
from repro.sdfg.transforms import gpu_persistent_kernel, gpu_transform
from repro.sim import Tracer

N = Sym("N")


@program
def two_phase(A: float64[N], TSTEPS: int32):
    for t in range(1, TSTEPS):
        A[1:-1] = A[1:-1] + 1.0
    for s in range(0, TSTEPS):
        A[1:-1] = A[1:-1] * 2.0


def test_two_sequential_loops_parse():
    sdfg = two_phase.to_sdfg()
    loops = sdfg.loop_regions()
    assert [l.var for l in loops] == ["t", "s"]
    validate(sdfg)


def run(sdfg, tsteps=3, n=5):
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(1), tracer=Tracer())
    return SDFGExecutor(sdfg, ctx).run(
        [{"A": np.zeros(n), "N": n, "TSTEPS": tsteps}]
    )


def expected(tsteps, n=5):
    a = np.zeros(n)
    for _ in range(1, tsteps):
        a[1:-1] += 1.0
    for _ in range(tsteps):
        a[1:-1] *= 2.0
    return a


def test_two_loops_execute_host_path():
    report = run(two_phase.to_sdfg())
    np.testing.assert_array_equal(report.arrays[0]["A"], expected(3))


def test_two_loops_execute_persistent_path():
    sdfg = two_phase.to_sdfg()
    gpu_transform(sdfg)
    gpu_persistent_kernel(sdfg)  # both loops become persistent
    validate(sdfg)
    report = run(sdfg)
    np.testing.assert_array_equal(report.arrays[0]["A"], expected(3))


def test_iteration_count_reports_first_loop():
    report = run(two_phase.to_sdfg(), tsteps=5)
    assert report.iterations == 4  # range(1, 5)
