"""Tests for SPMD decomposition helpers."""

import numpy as np
import pytest

from repro.sdfg.distributed import GridDecomposition2D, SlabDecomposition1D
from repro.sdfg.libnodes.mpi import MPI_PROC_NULL


class TestSlab1D:
    def test_rank_args_shapes(self):
        d = SlabDecomposition1D(24, 3)
        args = d.rank_args(np.zeros(26), tsteps=5)
        assert len(args) == 3
        for a in args:
            assert a["A"].shape == (10,)  # 8 interior + 2 halos
            assert a["N"] == 10
            assert a["TSTEPS"] == 5

    def test_edge_ranks_get_proc_null(self):
        d = SlabDecomposition1D(24, 3)
        args = d.rank_args(np.zeros(26), 2)
        assert args[0]["nw"] == MPI_PROC_NULL and args[0]["ne"] == 1
        assert args[1]["nw"] == 0 and args[1]["ne"] == 2
        assert args[2]["nw"] == 1 and args[2]["ne"] == MPI_PROC_NULL

    def test_halos_initialized_from_neighbors(self):
        u0 = np.arange(26.0)
        d = SlabDecomposition1D(24, 3)
        args = d.rank_args(u0, 2)
        # rank 1's left halo == last interior cell of rank 0's slab
        assert args[1]["A"][0] == args[0]["A"][-2]

    def test_gather_roundtrip(self):
        u0 = np.arange(26.0)
        d = SlabDecomposition1D(24, 3)
        args = d.rank_args(u0, 2)
        out = d.gather([{"A": a["A"]} for a in args], u0)
        np.testing.assert_array_equal(out, u0)

    def test_wrong_shape_rejected(self):
        d = SlabDecomposition1D(24, 3)
        with pytest.raises(ValueError):
            d.rank_args(np.zeros(10), 2)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            SlabDecomposition1D(2, 3)


class TestGrid2D:
    def test_process_grids_wide_layout(self):
        assert GridDecomposition2D(16, 16, 1).grid == (1, 1)
        assert GridDecomposition2D(16, 16, 2).grid == (1, 2)
        assert GridDecomposition2D(16, 16, 4).grid == (2, 2)
        assert GridDecomposition2D(16, 16, 8).grid == (2, 4)

    def test_neighbors_interior_rank(self):
        d = GridDecomposition2D(16, 16, 4)  # 2x2
        assert d.neighbors(0) == {
            "nn": MPI_PROC_NULL, "ns": 2, "nw": MPI_PROC_NULL, "ne": 1
        }
        assert d.neighbors(3) == {
            "nn": 1, "ns": MPI_PROC_NULL, "nw": 2, "ne": MPI_PROC_NULL
        }

    def test_rectangular_split_at_8(self):
        d = GridDecomposition2D(16, 16, 8)  # 2x4 grid: tiles 8 rows x 4 cols
        assert d.tile == (8, 4)

    def test_indivisible_domain_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            GridDecomposition2D(15, 16, 4)

    def test_rank_args_tiles(self):
        d = GridDecomposition2D(16, 12, 4)
        args = d.rank_args(np.zeros((18, 14)), 3)
        for a in args:
            assert a["A"].shape == (10, 8)
            assert a["N"] == 10 and a["M"] == 8

    def test_gather_roundtrip(self):
        rng = np.random.default_rng(3)
        u0 = rng.random((18, 14))
        d = GridDecomposition2D(16, 12, 4)
        args = d.rank_args(u0, 2)
        out = d.gather([{"A": a["A"]} for a in args], u0)
        np.testing.assert_array_equal(out, u0)

    def test_tile_halos_from_diagonal_neighbors(self):
        u0 = np.arange(18.0 * 14).reshape(18, 14)
        d = GridDecomposition2D(16, 12, 4)
        args = d.rank_args(u0, 2)
        # rank 0 tile spans rows 0..9, cols 0..7 of u0 (with ring)
        np.testing.assert_array_equal(args[0]["A"], u0[0:10, 0:8])
