"""Leading-batch-axis lowering: fused-stack vs per-point bit-identity.

The codegen half of the batched execution backend: a VECTORIZED
tasklet plan with a leading batch axis must produce, for every member
of the stack, exactly the bytes the per-point plan produces — and
anything the affine analysis could not prove must refuse to lower.
"""

import numpy as np
import pytest

from repro.sdfg.codegen.batch import (
    BatchLoweringError,
    batch_state_plan,
    batch_tasklet_plan,
    execute_batched,
    stack_arrays,
    uniform_bindings,
    unstack_arrays,
)
from repro.sdfg.codegen.fastpath import plan_state
from repro.sdfg.frontend import float64, int32, program
from repro.sdfg.programs import (
    baseline_pipeline,
    build_jacobi_1d_sdfg,
    build_jacobi_2d_sdfg,
    build_jacobi_3d_sdfg,
)
from repro.sdfg.symbols import Sym


def _compute_states(sdfg):
    states = [s for s in sdfg.walk_states() if s.tasklets]
    assert states, "pipeline produced no compute states"
    return states


def _member_sets(sdfg, shape, B, seed):
    rng = np.random.default_rng(seed)
    return [
        {name: rng.random(shape) for name in sdfg.arrays}
        for _ in range(B)
    ]


@pytest.mark.parametrize("build,shape", [
    (build_jacobi_1d_sdfg, (17,)),
    (build_jacobi_2d_sdfg, (9, 11)),
    (build_jacobi_3d_sdfg, (6, 7, 8)),
])
def test_batched_state_bit_identical(build, shape):
    sdfg = baseline_pipeline(build())
    sets = _member_sets(sdfg, shape, B=4, seed=31)
    for state in _compute_states(sdfg):
        refs = [{k: v.copy() for k, v in s.items()} for s in sets]
        for arrays in refs:
            plan_state(state, sdfg).execute(arrays, {})
        outs = execute_batched(state, sdfg, sets, {})
        for m, (ref, out) in enumerate(zip(refs, outs)):
            for name in ref:
                assert ref[name].tobytes() == out[name].tobytes(), (
                    f"member {m}, array {name!r} diverged from per-point"
                )


def test_batched_runs_whole_stack_in_one_eval():
    sdfg = baseline_pipeline(build_jacobi_1d_sdfg())
    state = _compute_states(sdfg)[0]
    plan = batch_state_plan(state, sdfg)
    # every lowered source subscripts with a leading full slice
    for p in plan.plans:
        assert "[:, " in p.batch_source
    # and the plan is cached on the state, like its scalar/vector base
    assert batch_state_plan(state, sdfg) is plan


def test_generic_plan_refuses_to_lower():
    N = Sym("N")

    @program
    def expstep(A: float64[N], B: float64[N], TSTEPS: int32):
        for t in range(1, TSTEPS):
            B[1:-1] = np.exp(A[1:-1])  # noqa: F821

    sdfg = baseline_pipeline(expstep.to_sdfg())
    state = _compute_states(sdfg)[0]
    base = plan_state(state, sdfg)
    with pytest.raises(BatchLoweringError, match="generic"):
        batch_tasklet_plan(base.plans[0])


def test_stack_arrays_rejects_ragged_members():
    a = {"A": np.zeros(4)}
    with pytest.raises(BatchLoweringError, match="member 1"):
        stack_arrays([a, {"A": np.zeros(5)}])
    with pytest.raises(BatchLoweringError, match="names"):
        stack_arrays([a, {"B": np.zeros(4)}])
    with pytest.raises(BatchLoweringError, match="empty"):
        stack_arrays([])


def test_stack_unstack_roundtrip():
    sets = [{"A": np.arange(6.0) + m} for m in range(3)]
    stacked = stack_arrays(sets)
    assert stacked["A"].shape == (3, 6)
    out = unstack_arrays(stacked, 3)
    for m in range(3):
        assert out[m]["A"].tobytes() == sets[m]["A"].tobytes()


def test_uniform_bindings():
    assert uniform_bindings([{"N": 8}, {"N": 8}]) == {"N": 8}
    with pytest.raises(BatchLoweringError, match="bindings"):
        uniform_bindings([{"N": 8}, {"N": 9}])
