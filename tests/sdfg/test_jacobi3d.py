"""Tests for the 3D DaCe program through both pipelines (extension:
the paper's DaCe evaluation covers 1D/2D; 3D demonstrates the
compiler's generality)."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg import AccessKind
from repro.sdfg.codegen import SDFGExecutor, generate_cuda
from repro.sdfg.distributed import SlabDecomposition3D
from repro.sdfg.libnodes.nvshmem import PutmemSignal
from repro.sdfg.programs import (
    CONJUGATES_1D,
    baseline_pipeline,
    build_jacobi_3d_sdfg,
    cpufree_pipeline,
)
from repro.sim import Tracer


def ref_3d(u0, tsteps):
    A, B = np.array(u0), np.array(u0)
    for _ in range(1, tsteps):
        B[1:-1, 1:-1, 1:-1] = (
            A[:-2, 1:-1, 1:-1] + A[2:, 1:-1, 1:-1]
            + A[1:-1, :-2, 1:-1] + A[1:-1, 2:, 1:-1]
            + A[1:-1, 1:-1, :-2] + A[1:-1, 1:-1, 2:]
        ) / 6.0
        A[1:-1, 1:-1, 1:-1] = (
            B[:-2, 1:-1, 1:-1] + B[2:, 1:-1, 1:-1]
            + B[1:-1, :-2, 1:-1] + B[1:-1, 2:, 1:-1]
            + B[1:-1, 1:-1, :-2] + B[1:-1, 1:-1, 2:]
        ) / 6.0
    return A


def run(kind, nz=12, m=8, ranks=3, tsteps=4):
    rng = np.random.default_rng(12)
    u0 = rng.random((nz + 2, m + 2, m + 2))
    decomp = SlabDecomposition3D(nz, m, ranks)
    sdfg = build_jacobi_3d_sdfg()
    if kind == "baseline":
        sdfg = baseline_pipeline(sdfg)
    else:
        sdfg = cpufree_pipeline(sdfg, CONJUGATES_1D)
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
    report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, tsteps))
    return decomp.gather(report.arrays, u0), ref_3d(u0, tsteps), report


@pytest.mark.parametrize("kind", ["baseline", "cpufree"])
def test_3d_bit_exact(kind):
    got, expected, _ = run(kind)
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("kind", ["baseline", "cpufree"])
def test_3d_single_rank(kind):
    got, expected, _ = run(kind, nz=6, ranks=1)
    np.testing.assert_array_equal(got, expected)


def test_halo_planes_classified_contiguous():
    """z-halo planes span the trailing axes fully → putmem lowering."""
    sdfg = cpufree_pipeline(build_jacobi_3d_sdfg(), CONJUGATES_1D)
    puts = [n for s in sdfg.walk_states() for n in s.library_nodes
            if isinstance(n, PutmemSignal)]
    bindings = {"N": 8, "M": 8, "t": 1}
    assert all(
        p.expand(sdfg, bindings).access is AccessKind.CONTIGUOUS for p in puts
    )


def test_3d_generated_code_uses_block_put():
    code = generate_cuda(cpufree_pipeline(build_jacobi_3d_sdfg(), CONJUGATES_1D))
    assert "nvshmemx_putmem_signal_nbi_block" in code
    assert "nvshmem_double_iput" not in code  # nothing strided in 3D slabs


def test_3d_cpufree_faster():
    _, _, base = run("baseline", tsteps=8)
    _, _, free = run("cpufree", tsteps=8)
    assert free.total_time_us < base.total_time_us


def test_indivisible_planes_rejected():
    with pytest.raises(ValueError, match="divisible"):
        SlabDecomposition3D(10, 8, 3)
