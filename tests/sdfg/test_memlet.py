"""Tests for memlets: resolution, volume, and access-kind dispatch."""

import pytest

from repro.sdfg import AccessKind, Memlet, Sym
from repro.sdfg.memlet import Range, _FULL


class TestFromSlices:
    def test_single_index(self):
        m = Memlet.from_slices("A", 3)
        assert m.subset == (3,)

    def test_slice(self):
        m = Memlet.from_slices("A", slice(1, -1))
        assert m.subset == (Range(1, -1),)

    def test_full_slice(self):
        m = Memlet.from_slices("A", slice(None, None))
        assert isinstance(m.subset[0], Range)

    def test_tuple(self):
        m = Memlet.from_slices("A", (slice(1, -1), 0))
        assert len(m.subset) == 2

    def test_step_rejected(self):
        with pytest.raises(ValueError):
            Memlet.from_slices("A", slice(0, 10, 2))


class TestResolve:
    def test_negative_indices(self):
        m = Memlet.from_slices("A", (slice(1, -1), -2))
        assert m.resolve((10, 8), {}) == (slice(1, 9), 6)

    def test_full_goes_to_axis_end(self):
        m = Memlet.from_slices("A", slice(2, None))
        assert m.resolve((10,), {}) == (slice(2, 10),)

    def test_symbolic_bounds(self):
        N = Sym("N")
        m = Memlet("A", (Range(1, N - 1),))
        assert m.resolve((10,), {"N": 10}) == (slice(1, 9),)

    def test_dim_mismatch_rejected(self):
        m = Memlet.from_slices("A", 1)
        with pytest.raises(ValueError):
            m.resolve((4, 4), {})


class TestVolume:
    def test_scalar_volume(self):
        assert Memlet.from_slices("A", (1, 2)).volume((4, 4), {}) == 1

    def test_row_volume(self):
        m = Memlet.from_slices("A", (1, slice(1, -1)))
        assert m.volume((10, 8), {}) == 6

    def test_block_volume(self):
        m = Memlet.from_slices("A", (slice(1, -1), slice(1, -1)))
        assert m.volume((10, 8), {}) == 8 * 6

    def test_empty_range_rejected(self):
        m = Memlet.from_slices("A", slice(5, 2))
        with pytest.raises(ValueError):
            m.volume((10,), {})


class TestAccessKind:
    """The §5.3.1 dispatch rules."""

    def test_single_element_is_scalar(self):
        m = Memlet.from_slices("A", 1)
        assert m.access_kind((10,), {}) is AccessKind.SCALAR

    def test_2d_single_element_is_scalar(self):
        m = Memlet.from_slices("A", (3, 4))
        assert m.access_kind((10, 10), {}) is AccessKind.SCALAR

    def test_1d_slice_is_contiguous(self):
        m = Memlet.from_slices("A", slice(1, -1))
        assert m.access_kind((10,), {}) is AccessKind.CONTIGUOUS

    def test_row_is_contiguous(self):
        # A[1, 1:-1]: fixed row, sliced columns -> one memory block
        m = Memlet.from_slices("A", (1, slice(1, -1)))
        assert m.access_kind((10, 8), {}) is AccessKind.CONTIGUOUS

    def test_column_is_strided(self):
        # A[1:-1, 1]: sliced rows, fixed column -> stride = row pitch
        m = Memlet.from_slices("A", (slice(1, -1), 1))
        assert m.access_kind((10, 8), {}) is AccessKind.STRIDED

    def test_interior_block_is_strided(self):
        m = Memlet.from_slices("A", (slice(1, -1), slice(1, -1)))
        assert m.access_kind((10, 8), {}) is AccessKind.STRIDED

    def test_full_rows_block_is_contiguous(self):
        # A[2:5, :]: trailing axis fully spanned -> contiguous block
        m = Memlet.from_slices("A", (slice(2, 5), slice(None, None)))
        assert m.access_kind((10, 8), {}) is AccessKind.CONTIGUOUS

    def test_3d_plane_full_trailing_axes(self):
        m = Memlet.from_slices("A", (1, slice(None, None), slice(None, None)))
        assert m.access_kind((6, 5, 4), {}) is AccessKind.CONTIGUOUS

    def test_3d_partial_plane_is_strided(self):
        m = Memlet.from_slices("A", (1, slice(1, -1), slice(1, -1)))
        assert m.access_kind((6, 5, 4), {}) is AccessKind.STRIDED

    def test_length_one_range_is_scalar(self):
        m = Memlet.from_slices("A", slice(3, 4))
        assert m.access_kind((10,), {}) is AccessKind.SCALAR

    def test_repr_contains_subset(self):
        m = Memlet.from_slices("A", (slice(1, -1), 0))
        assert "A[" in repr(m)
