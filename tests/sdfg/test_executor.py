"""End-to-end executor tests: generated programs vs NumPy references."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.distributed import GridDecomposition2D, SlabDecomposition1D
from repro.sdfg.programs import (
    CONJUGATES_1D,
    CONJUGATES_2D,
    baseline_pipeline,
    build_jacobi_1d_sdfg,
    build_jacobi_2d_sdfg,
    cpufree_pipeline,
)
from repro.sim import Tracer


def ref_1d(u0, tsteps):
    A, B = np.array(u0), np.array(u0)
    for _ in range(1, tsteps):
        B[1:-1] = (A[:-2] + A[1:-1] + A[2:]) / 3.0
        A[1:-1] = (B[:-2] + B[1:-1] + B[2:]) / 3.0
    return A


def ref_2d(u0, tsteps):
    A, B = np.array(u0), np.array(u0)
    for _ in range(1, tsteps):
        B[1:-1, 1:-1] = 0.25 * (A[:-2, 1:-1] + A[2:, 1:-1] + A[1:-1, :-2] + A[1:-1, 2:])
        A[1:-1, 1:-1] = 0.25 * (B[:-2, 1:-1] + B[2:, 1:-1] + B[1:-1, :-2] + B[1:-1, 2:])
    return A


def run_1d(pipeline_kind, n_global=24, ranks=3, tsteps=6):
    rng = np.random.default_rng(7)
    u0 = rng.random(n_global + 2)
    if pipeline_kind == "baseline":
        sdfg = baseline_pipeline(build_jacobi_1d_sdfg())
    else:
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
    decomp = SlabDecomposition1D(n_global, ranks)
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(max(ranks, 1)), tracer=Tracer())
    report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, tsteps))
    return decomp.gather(report.arrays, u0), ref_1d(u0, tsteps), report


def run_2d(pipeline_kind, gy=16, gx=12, ranks=4, tsteps=5):
    rng = np.random.default_rng(8)
    u0 = rng.random((gy + 2, gx + 2))
    if pipeline_kind == "baseline":
        sdfg = baseline_pipeline(build_jacobi_2d_sdfg())
    else:
        sdfg = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D)
    decomp = GridDecomposition2D(gy, gx, ranks)
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
    report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, tsteps))
    return decomp.gather(report.arrays, u0), ref_2d(u0, tsteps), report


class TestJacobi1D:
    @pytest.mark.parametrize("kind", ["baseline", "cpufree"])
    def test_matches_reference(self, kind):
        got, expected, _ = run_1d(kind)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("kind", ["baseline", "cpufree"])
    def test_two_ranks(self, kind):
        got, expected, _ = run_1d(kind, n_global=10, ranks=2, tsteps=4)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("kind", ["baseline", "cpufree"])
    def test_single_rank_proc_null_everywhere(self, kind):
        got, expected, _ = run_1d(kind, n_global=8, ranks=1, tsteps=3)
        np.testing.assert_array_equal(got, expected)

    def test_cpufree_faster_than_baseline(self):
        _, _, base = run_1d("baseline", tsteps=20)
        _, _, free = run_1d("cpufree", tsteps=20)
        assert free.total_time_us < base.total_time_us

    def test_cpufree_single_launch(self):
        _, _, report = run_1d("cpufree", ranks=3, tsteps=10)
        launches = [s for s in report.tracer.spans_in("api") if s.name.startswith("launch")]
        assert len(launches) == 3  # one per rank

    def test_baseline_launches_per_state_per_iteration(self):
        _, _, report = run_1d("baseline", ranks=2, tsteps=4)
        launches = [s for s in report.tracer.spans_in("api") if s.name.startswith("launch")]
        # 2 compute states x 3 loop iterations x 2 ranks
        assert len(launches) == 2 * 3 * 2


class TestJacobi2D:
    @pytest.mark.parametrize("kind", ["baseline", "cpufree"])
    @pytest.mark.parametrize("ranks", [1, 2, 4, 8])
    def test_matches_reference_all_grid_shapes(self, kind, ranks):
        # 2 ranks -> 2x1 grid, 8 -> 4x2 (the rectangular splits of Fig 6.3b)
        got, expected, _ = run_2d(kind, gy=16, gx=12, ranks=ranks, tsteps=4)
        np.testing.assert_array_equal(got, expected)

    def test_cpufree_massively_faster_with_strided_comm(self):
        """Fig 6.3b: the baseline pays MPI_Type_vector + stream syncs on
        every strided halo; CPU-Free uses device-side iput."""
        _, _, base = run_2d("baseline", ranks=4, tsteps=10)
        _, _, free = run_2d("cpufree", ranks=4, tsteps=10)
        improvement = (base.total_time_us - free.total_time_us) / base.total_time_us
        assert improvement > 0.5

    def test_baseline_comm_dominates(self):
        """Fig 6.3b: baseline 'almost completely dominated by
        communication'."""
        _, _, base = run_2d("baseline", ranks=4, tsteps=10)
        assert base.comm_time_us + base.api_time_us + base.sync_time_us > 0.5 * base.total_time_us


class TestTimingOnlyMode:
    def test_same_time_without_data(self):
        rng = np.random.default_rng(9)
        u0 = rng.random(26)
        decomp = SlabDecomposition1D(24, 3)
        args = decomp.rank_args(u0, 6)

        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(3), tracer=Tracer())
        with_data = SDFGExecutor(sdfg, ctx).run(args)

        sdfg2 = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        ctx2 = MultiGPUContext(HGX_A100_8GPU.scaled_to(3), tracer=Tracer())
        timing = SDFGExecutor(sdfg2, ctx2, with_data=False).run(args)

        assert timing.arrays is None
        assert timing.total_time_us == pytest.approx(with_data.total_time_us)

    def test_report_iteration_count(self):
        _, _, report = run_1d("cpufree", tsteps=6)
        assert report.iterations == 5  # range(1, 6)
        assert report.per_iteration_us == pytest.approx(report.total_time_us / 5)
