"""Extra codegen coverage: copy specialization, executor error paths."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg import Sym, program
from repro.sdfg.codegen import SDFGExecutor, generate_cuda
from repro.sdfg.frontend import float64, int32
from repro.sdfg.transforms import gpu_persistent_kernel, gpu_transform
from repro.sim import Tracer

N = Sym("N")


def test_in_kernel_copy_specialization_rendered():
    """§5.1: array-to-array copies inside persistent kernels use the
    GPU-thread parallel copy routine."""

    @program
    def copier(A: float64[N], B: float64[N], TSTEPS: int32):
        for t in range(1, TSTEPS):
            B[1:-1] = A[1:-1]

    sdfg = copier.to_sdfg()
    gpu_transform(sdfg)
    gpu_persistent_kernel(sdfg)
    code = generate_cuda(sdfg)
    assert "device_parallel_copy" in code


def test_non_copy_rendered_as_expression():
    @program
    def scaler(A: float64[N], B: float64[N], TSTEPS: int32):
        for t in range(1, TSTEPS):
            B[1:-1] = A[1:-1] * 2

    sdfg = scaler.to_sdfg()
    gpu_transform(sdfg)
    gpu_persistent_kernel(sdfg)
    code = generate_cuda(sdfg)
    assert "device_parallel_copy" not in code
    assert "A[1:-1] * 2" in code


def test_executor_rejects_more_ranks_than_gpus():
    @program
    def f(A: float64[N]):
        A[1:-1] = A[1:-1]

    sdfg = f.to_sdfg()
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())
    executor = SDFGExecutor(sdfg, ctx)
    args = [{"A": np.zeros(4), "N": 4} for _ in range(3)]
    with pytest.raises(ValueError, match="more ranks"):
        executor.run(args)


def test_executor_loopless_program_single_iteration():
    @program
    def f(A: float64[N]):
        A[1:-1] = A[1:-1] + 1

    sdfg = f.to_sdfg()
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(1), tracer=Tracer())
    report = SDFGExecutor(sdfg, ctx).run([{"A": np.zeros(4), "N": 4}])
    assert report.iterations == 1
    np.testing.assert_array_equal(report.arrays[0]["A"], [0, 1, 1, 0])


def test_executor_unbound_symbol_raises():
    @program
    def f(A: float64[N]):
        A[1:-1] = A[1:-1]

    sdfg = f.to_sdfg()
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(1), tracer=Tracer())
    with pytest.raises(KeyError, match="N"):
        SDFGExecutor(sdfg, ctx, with_data=False).run([{}])


def test_cuda_text_storage_allocation_styles():
    @program
    def f(A: float64[N]):
        A[1:-1] = A[1:-1]

    host_code = generate_cuda(f.to_sdfg())
    assert "malloc(" in host_code and "cudaMalloc" not in host_code

    sdfg = f.to_sdfg()
    gpu_transform(sdfg)
    gpu_code = generate_cuda(sdfg)
    assert "cudaMalloc" in gpu_code
