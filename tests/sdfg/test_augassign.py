"""Tests for augmented-assignment desugaring in the frontend."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg import Sym, program, validate
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.frontend import FrontendError, float64, int32
from repro.sim import Tracer

N = Sym("N")


def run_single(sdfg, args):
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(1), tracer=Tracer())
    return SDFGExecutor(sdfg, ctx).run([args])


def test_plus_equals_desugars_and_executes():
    @program
    def f(A: float64[N], TSTEPS: int32):
        for t in range(1, TSTEPS):
            A[1:-1] += 2.0

    sdfg = f.to_sdfg()
    validate(sdfg)
    report = run_single(sdfg, {"A": np.zeros(5), "N": 5, "TSTEPS": 4})
    np.testing.assert_array_equal(report.arrays[0]["A"], [0, 6, 6, 6, 0])


def test_times_equals():
    @program
    def f(A: float64[N]):
        A[1:-1] *= 3.0

    report = run_single(f.to_sdfg(), {"A": np.ones(4), "N": 4})
    np.testing.assert_array_equal(report.arrays[0]["A"], [1, 3, 3, 1])


def test_minus_equals_with_array_rhs():
    @program
    def f(A: float64[N], B: float64[N]):
        A[1:-1] -= B[1:-1]

    report = run_single(
        f.to_sdfg(), {"A": np.full(4, 5.0), "B": np.full(4, 2.0), "N": 4}
    )
    np.testing.assert_array_equal(report.arrays[0]["A"], [5, 3, 3, 5])


def test_augassign_reads_include_target():
    @program
    def f(A: float64[N], B: float64[N]):
        A[1:-1] += B[1:-1]

    state = next(f.to_sdfg().walk_states())
    assert state.reads() == {"A", "B"}
    assert state.writes() == {"A"}


def test_augassign_to_name_rejected():
    @program
    def f(A: float64[N], TSTEPS: int32):
        TSTEPS += 1

    with pytest.raises(FrontendError, match="subscript"):
        f.to_sdfg()
