"""Tests for the restricted-Python frontend."""

import pytest

from repro.sdfg import LoopRegion, SDFG, Sym, program, validate
from repro.sdfg.frontend import FrontendError, float64, int32
from repro.sdfg.libnodes.mpi import MPIIrecv, MPIIsend, MPIWaitall
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.nodes import MapEntry, Tasklet

N = Sym("N")
M = Sym("M")


def test_simple_compute_program():
    @program
    def scale(A: float64[N], B: float64[N]):
        B[1:-1] = A[1:-1] * 2

    sdfg = scale.to_sdfg()
    validate(sdfg)
    assert set(sdfg.arrays) == {"A", "B"}
    states = list(sdfg.walk_states())
    assert len(states) == 1
    state = states[0]
    assert len(state.tasklets) == 1
    assert state.tasklets[0].expr_source == "A[1:-1] * 2"
    assert state.writes() == {"B"}
    assert state.reads() == {"A"}


def test_loop_region_built():
    @program
    def looped(A: float64[N], TSTEPS: int32):
        for t in range(1, TSTEPS):
            A[1:-1] = A[1:-1] + 1

    sdfg = looped.to_sdfg()
    loops = sdfg.loop_regions()
    assert len(loops) == 1
    assert loops[0].var == "t"
    assert len(list(loops[0].walk_states())) == 1


def test_symbols_registered_from_shapes():
    @program
    def f(A: float64[N, M]):
        A[1:-1, 1:-1] = A[1:-1, 1:-1] * 0.5

    sdfg = f.to_sdfg()
    assert "N" in sdfg.symbols and "M" in sdfg.symbols


def test_params_registered():
    @program
    def f(A: float64[N], nw: int32, ne: int32):
        A[1:-1] = A[1:-1]

    sdfg = f.to_sdfg()
    assert sdfg.params == ["nw", "ne"]


def test_mpi_calls_become_library_nodes():
    @program
    def f(A: float64[N], TSTEPS: int32, nw: int32):
        for t in range(1, TSTEPS):
            comm.Isend(A[1], nw, 7)     # noqa: F821
            comm.Irecv(A[0], nw, 8)     # noqa: F821
            comm.Waitall()              # noqa: F821
            A[1:-1] = A[1:-1]

    sdfg = f.to_sdfg()
    nodes = [n for s in sdfg.walk_states() for n in s.library_nodes]
    kinds = [type(n) for n in nodes]
    assert kinds == [MPIIsend, MPIIrecv, MPIWaitall]
    send = nodes[0]
    assert send.dest == "nw" and send.tag == 7


def test_nvshmem_calls_become_library_nodes():
    @program
    def f(A: float64[N], TSTEPS: int32, ne: int32):
        for t in range(1, TSTEPS):
            nvshmem.PutmemSignal(A[0], A[N - 2], flags[0], t, ne)  # noqa: F821
            nvshmem.SignalWait(flags[1], t)                        # noqa: F821
            A[1:-1] = A[1:-1]

    sdfg = f.to_sdfg()
    nodes = [n for s in sdfg.walk_states() for n in s.library_nodes]
    put, wait = nodes
    assert isinstance(put, PutmemSignal) and isinstance(wait, SignalWait)
    assert put.flag_index == 0 and wait.flag_index == 1
    assert put.pe == "ne"
    assert put.signal_value == Sym("t")


def test_map_ranges_match_written_subset():
    @program
    def f(A: float64[N], B: float64[N]):
        B[1:-1] = A[:-2] + A[2:]

    state = next(f.to_sdfg().walk_states())
    entry = state.map_entries[0]
    assert isinstance(entry, MapEntry)
    lo, hi = entry.ranges[0]
    assert lo == 1 and hi == -1


def test_copy_assignment_flagged():
    @program
    def f(A: float64[N], B: float64[N]):
        B[1:-1] = A[1:-1]

    tasklet = next(f.to_sdfg().walk_states()).tasklets[0]
    assert tasklet.is_copy


def test_non_copy_not_flagged():
    @program
    def f(A: float64[N], B: float64[N]):
        B[1:-1] = A[1:-1] + 1

    tasklet = next(f.to_sdfg().walk_states()).tasklets[0]
    assert not tasklet.is_copy


class TestErrors:
    def test_missing_annotation(self):
        @program
        def f(A):
            A[0] = 1

        with pytest.raises(FrontendError, match="annotation"):
            f.to_sdfg()

    def test_unknown_array(self):
        @program
        def f(A: float64[N]):
            B[0] = 1  # noqa: F821

        with pytest.raises(FrontendError, match="unknown array"):
            f.to_sdfg()

    def test_while_loop_rejected(self):
        @program
        def f(A: float64[N], TSTEPS: int32):
            while True:
                A[0] = 1

        with pytest.raises(FrontendError, match="unsupported statement"):
            f.to_sdfg()

    def test_range_step_rejected(self):
        @program
        def f(A: float64[N], TSTEPS: int32):
            for t in range(0, TSTEPS, 2):
                A[0] = 1

        with pytest.raises(FrontendError, match="step"):
            f.to_sdfg()

    def test_strided_slice_rejected(self):
        @program
        def f(A: float64[N]):
            A[0:10:2] = 1

        with pytest.raises(FrontendError, match="step"):
            f.to_sdfg()

    def test_unknown_namespace(self):
        @program
        def f(A: float64[N]):
            foo.Bar(A[0], 1, 2)  # noqa: F821

        with pytest.raises(FrontendError, match="namespace"):
            f.to_sdfg()

    def test_peer_must_be_param(self):
        @program
        def f(A: float64[N], TSTEPS: int32):
            for t in range(1, TSTEPS):
                comm.Isend(A[1], undeclared, 1)  # noqa: F821

        with pytest.raises(FrontendError, match="parameter"):
            f.to_sdfg()

    def test_flag_syntax_enforced(self):
        @program
        def f(A: float64[N], TSTEPS: int32, ne: int32):
            for t in range(1, TSTEPS):
                nvshmem.SignalWait(other[0], t)  # noqa: F821

        with pytest.raises(FrontendError, match="flags"):
            f.to_sdfg()


def test_describe_renders_structure():
    @program
    def f(A: float64[N], TSTEPS: int32):
        for t in range(1, TSTEPS):
            A[1:-1] = A[1:-1] + 1

    text = f.to_sdfg().describe()
    assert "for t in" in text
    assert "array A[N]" in text
