"""Static communication lint (repro.sdfg.lint)."""

import pytest

from repro.hw.memory import Storage
from repro.sdfg import LoopRegion, Memlet, SDFG, State, Sym
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.lint import LintFinding, lint_communication
from repro.sdfg.nodes import AccessNode, Tasklet
from repro.sdfg.programs import (
    CONJUGATES_1D,
    CONJUGATES_2D,
    baseline_pipeline,
    build_jacobi_1d_sdfg,
    build_jacobi_2d_sdfg,
    build_jacobi_3d_sdfg,
    cpufree_pipeline,
)

N = Sym("N")
T = Sym("t")


def loop_sdfg():
    sdfg = SDFG("lint")
    sdfg.add_array("A", (N,), storage=Storage.SYMMETRIC)
    sdfg.add_array("B", (N,), storage=Storage.SYMMETRIC)
    loop = LoopRegion("t", 0, 4)
    sdfg.body.add(loop)
    return sdfg, loop


def put_state(name, src, dst, flag, *, nbi=True, value=T):
    state = State(name)
    state.add_node(PutmemSignal(
        Memlet.from_slices(dst, 0), Memlet.from_slices(src, 1),
        flag, value, "nw", nbi=nbi,
    ))
    return state


def wait_state(name, flag, value=T):
    state = State(name)
    state.add_node(SignalWait(flag, value))
    return state


def compute_state(name, reads, writes):
    """A state whose dataflow reads ``reads`` and writes ``writes``."""
    state = State(name)
    t = state.add_node(Tasklet(name, reads, [reads], writes))
    r = state.add_node(AccessNode(reads))
    w = state.add_node(AccessNode(writes))
    state.add_edge(r, t, Memlet.from_slices(reads, 1))
    state.add_edge(t, w, Memlet.from_slices(writes, 1))
    return state


def rules_of(findings):
    return [f.rule for f in findings]


# -- shipped pipelines are clean (the CI gate's contract) ------------------


@pytest.mark.parametrize("build,conj", [
    (build_jacobi_1d_sdfg, CONJUGATES_1D),
    (build_jacobi_2d_sdfg, CONJUGATES_2D),
    (build_jacobi_3d_sdfg, CONJUGATES_1D),
])
def test_shipped_pipelines_are_clean(build, conj):
    assert lint_communication(baseline_pipeline(build())) == []
    assert lint_communication(cpufree_pipeline(build(), conj)) == []


# -- rule: unsignaled-put-racy-read ----------------------------------------


def test_unsignaled_put_whose_dest_is_read_flagged():
    sdfg, loop = loop_sdfg()
    loop.add(put_state("send", "A", "B", None))
    loop.add(compute_state("comp", "B", "A"))
    findings = lint_communication(sdfg)
    assert "unsignaled-put-racy-read" in rules_of(findings)
    f = next(f for f in findings if f.rule == "unsignaled-put-racy-read")
    assert f.location == "send/B"
    assert "races" in f.message


def test_unsignaled_put_with_unread_dest_not_flagged():
    sdfg, loop = loop_sdfg()
    loop.add(put_state("send", "A", "B", None))
    loop.add(compute_state("comp", "A", "A"))  # B never read
    assert "unsignaled-put-racy-read" not in rules_of(lint_communication(sdfg))


def test_signaled_put_not_flagged_as_unsignaled():
    sdfg, loop = loop_sdfg()
    loop.add(put_state("send", "A", "B", 0))
    loop.add(wait_state("recv", 0))
    loop.add(compute_state("comp", "B", "A"))
    assert "unsignaled-put-racy-read" not in rules_of(lint_communication(sdfg))


# -- rule: unmatched-wait ---------------------------------------------------


def test_wait_without_producer_flagged():
    sdfg, loop = loop_sdfg()
    loop.add(put_state("send", "A", "B", 0))
    loop.add(wait_state("recv", 5))
    findings = lint_communication(sdfg)
    f = next(f for f in findings if f.rule == "unmatched-wait")
    assert f.location == "recv/flag5"
    assert "no producer" in f.message


def test_unsignaled_put_is_not_a_producer():
    sdfg, loop = loop_sdfg()
    loop.add(put_state("send", "A", "B", None))
    loop.add(wait_state("recv", 0))
    assert "unmatched-wait" in rules_of(lint_communication(sdfg))


# -- rule: src-reuse-before-quiet ------------------------------------------


def test_src_rewritten_without_sync_flagged():
    sdfg, loop = loop_sdfg()
    loop.add(put_state("send", "A", "B", 0))
    loop.add(compute_state("comp", "B", "A"))  # overwrites src with no sync
    loop.add(wait_state("recv", 0))
    findings = lint_communication(sdfg)
    f = next(f for f in findings if f.rule == "src-reuse-before-quiet")
    assert f.location == "send/A"
    assert "overtake" in f.message


def test_src_rewritten_after_wait_not_flagged():
    sdfg, loop = loop_sdfg()
    loop.add(put_state("send", "A", "B", 0))
    loop.add(wait_state("recv", 0))
    loop.add(compute_state("comp", "B", "A"))
    assert "src-reuse-before-quiet" not in rules_of(lint_communication(sdfg))


def test_src_rewritten_after_blocking_put_not_flagged():
    sdfg, loop = loop_sdfg()
    loop.add(put_state("send", "A", "B", 0))
    loop.add(put_state("send_blocking", "B", "B", 1, nbi=False))
    loop.add(compute_state("comp", "B", "A"))
    assert "src-reuse-before-quiet" not in rules_of(lint_communication(sdfg))


def test_write_before_put_is_not_a_hazard():
    sdfg, loop = loop_sdfg()
    loop.add(compute_state("comp", "B", "A"))
    loop.add(put_state("send", "A", "B", 0))
    loop.add(wait_state("recv", 0))
    assert "src-reuse-before-quiet" not in rules_of(lint_communication(sdfg))


# -- rule: mismatched-signal-pair ------------------------------------------


def test_mismatched_value_expressions_flagged():
    sdfg, loop = loop_sdfg()
    loop.add(put_state("send", "A", "B", 0, value=T))
    loop.add(wait_state("recv", 0, value=0))
    findings = lint_communication(sdfg)
    f = next(f for f in findings if f.rule == "mismatched-signal-pair")
    assert f.location == "recv/flag0"
    assert "'0'" in f.message and "'t'" in f.message


def test_matching_value_expressions_not_flagged():
    sdfg, loop = loop_sdfg()
    loop.add(put_state("send", "A", "B", 0, value=T))
    loop.add(wait_state("recv", 0, value=T))
    assert rules_of(lint_communication(sdfg)) == []


# -- finding plumbing -------------------------------------------------------


def test_finding_id_and_describe_are_stable():
    f = LintFinding("unmatched-wait", "recv/flag5", "msg")
    assert f.finding_id == "unmatched-wait:recv/flag5"
    d = f.describe()
    assert d["id"] == "unmatched-wait:recv/flag5"
    assert d["kind"] == "lint"
    assert f.summary().startswith("[unmatched-wait] recv/flag5:")


def test_findings_deterministic_across_runs():
    def build():
        sdfg, loop = loop_sdfg()
        loop.add(put_state("send", "A", "B", None))
        loop.add(compute_state("comp", "B", "A"))
        loop.add(wait_state("recv", 9))
        return [f.describe() for f in lint_communication(sdfg)]

    assert build() == build()
