"""Tests for the §5.3.2 Mapped (per-element p) expansion."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.nvshmem import NVSHMEMRuntime
from repro.runtime import MultiGPUContext
from repro.sdfg import AccessKind, Memlet, Sym
from repro.sdfg.codegen import SDFGExecutor, generate_cuda
from repro.sdfg.distributed import GridDecomposition2D
from repro.sdfg.libnodes.nvshmem import PutmemSignal
from repro.sdfg.programs import (
    CONJUGATES_2D,
    build_jacobi_2d_sdfg,
    cpufree_pipeline,
)
from repro.sdfg.transforms import (
    gpu_persistent_kernel,
    gpu_transform,
    map_fusion,
    mpi_to_nvshmem,
    nvshmem_array,
)
from repro.sdfg.validation import validate
from repro.sim import Tracer


def mapped_pipeline(sdfg):
    gpu_transform(sdfg)
    map_fusion(sdfg)
    mpi_to_nvshmem(sdfg, CONJUGATES_2D, implementation="mapped")
    nvshmem_array(sdfg)
    gpu_persistent_kernel(sdfg)
    validate(sdfg)
    return sdfg


class TestExpansion:
    def test_mapped_implementation_selected(self):
        sdfg = mapped_pipeline(build_jacobi_2d_sdfg())
        puts = [n for s in sdfg.walk_states() for n in s.library_nodes
                if isinstance(n, PutmemSignal)]
        assert puts and all(p.implementation == "mapped" for p in puts)
        bindings = {"N": 16, "M": 16, "t": 1}
        kinds = {p.expand(sdfg, bindings).kind for p in puts}
        assert kinds == {"p_mapped"}

    def test_invalid_implementation_rejected(self):
        with pytest.raises(ValueError, match="implementation"):
            PutmemSignal(
                Memlet.from_slices("A", 0), Memlet.from_slices("A", 0),
                0, Sym("t"), "nw", implementation="telepathy",
            )

    def test_scalar_still_uses_plain_p(self):
        node = PutmemSignal(
            Memlet.from_slices("A", 0), Memlet.from_slices("A", 0),
            0, Sym("t"), "nw", implementation="mapped",
        )

        class FakeSDFG:
            arrays = {"A": type("D", (), {"shape": (16,)})()}

        expansion = node.expand(FakeSDFG, {})
        assert expansion.kind == "p"

    def test_generated_code_shows_grid_stride_loop(self):
        code = generate_cuda(mapped_pipeline(build_jacobi_2d_sdfg()))
        assert "for (int __i = __gidx" in code
        assert "nvshmem_double_p(&" in code


class TestExecution:
    def test_mapped_bit_exact(self):
        rng = np.random.default_rng(6)
        gy, gx, ranks, tsteps = 16, 24, 8, 5
        u0 = rng.random((gy + 2, gx + 2))
        decomp = GridDecomposition2D(gy, gx, ranks)

        results = []
        for pipeline in (cpufree_pipeline, None):
            sdfg = build_jacobi_2d_sdfg()
            if pipeline is None:
                sdfg = mapped_pipeline(sdfg)
            else:
                sdfg = pipeline(sdfg, CONJUGATES_2D)
            ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
            report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, tsteps))
            results.append(decomp.gather(report.arrays, u0))
        np.testing.assert_array_equal(results[0], results[1])

    def test_mapped_faster_than_single_thread_iput_on_long_columns(self):
        """The mapped expansion amortizes issue cost across threads —
        the §5.4 headroom, quantified at the library-node level."""

        def run(implementation):
            gy, gx, ranks = 2048 * 2, 2048 * 4, 8
            decomp = GridDecomposition2D(gy, gx, ranks)
            args = decomp.rank_args(np.zeros((gy + 2, gx + 2)), 4)
            args = [{k: v for k, v in a.items() if k not in ("A", "B")} for a in args]
            sdfg = build_jacobi_2d_sdfg()
            gpu_transform(sdfg)
            map_fusion(sdfg)
            mpi_to_nvshmem(sdfg, CONJUGATES_2D, implementation=implementation)
            nvshmem_array(sdfg)
            gpu_persistent_kernel(sdfg)
            ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
            return SDFGExecutor(sdfg, ctx, with_data=False).run(args)

        auto = run("auto")
        mapped = run("mapped")
        assert mapped.total_time_us < auto.total_time_us


class TestDeviceOp:
    def test_p_mapped_moves_data(self):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())
        rt = NVSHMEMRuntime(ctx)
        arr = rt.malloc("col", (64,), fill=0.0)

        def pe0():
            dev = rt.device(0)
            yield from dev.p_mapped(arr, slice(None), np.arange(64.0), dest_pe=1)
            yield from dev.quiet()

        ctx.sim.spawn(pe0(), name="pe0")
        ctx.run()
        np.testing.assert_array_equal(arr.local(1), np.arange(64.0))

    def test_p_mapped_issue_amortized_over_threads(self):
        def timed(threads):
            ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
            rt = NVSHMEMRuntime(ctx)

            def pe0():
                dev = rt.device(0)
                yield from dev.p_mapped(None, None, 0.0, dest_pe=1,
                                        elements=4096, threads=threads)
                yield from dev.quiet()

            ctx.sim.spawn(pe0(), name="pe0")
            return ctx.run()

        assert timed(1024) < timed(32) < timed(1)

    def test_p_mapped_invalid_threads(self):
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2))
        rt = NVSHMEMRuntime(ctx)

        def pe0():
            dev = rt.device(0)
            yield from dev.p_mapped(None, None, 0.0, dest_pe=1,
                                    elements=4, threads=0)

        ctx.sim.spawn(pe0(), name="pe0")
        with pytest.raises(ValueError):
            ctx.run()
