"""Tests for the §5.4 future-work extension: TB-specialized codegen."""

import numpy as np
import pytest

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg import Schedule
from repro.sdfg.codegen import SDFGExecutor
from repro.sdfg.distributed import GridDecomposition2D, SlabDecomposition1D
from repro.sdfg.programs import (
    CONJUGATES_1D,
    CONJUGATES_2D,
    build_jacobi_1d_sdfg,
    build_jacobi_2d_sdfg,
    cpufree_pipeline,
)
from repro.sim import Tracer


class TestTransformTagging:
    def test_states_tagged_by_group(self):
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D,
                                specialize_comm=True)
        loop = sdfg.loop_regions()[0]
        assert loop.comm_specialized
        groups = {getattr(s, "tb_group", None) for s in loop.walk_states()}
        assert groups == {"comm", "comp"}

    def test_comm_states_are_pure_library_states(self):
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D,
                                specialize_comm=True)
        for state in sdfg.loop_regions()[0].walk_states():
            if state.tb_group == "comm":
                assert state.library_nodes and not state.tasklets
            else:
                assert state.tasklets

    def test_default_pipeline_not_specialized(self):
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
        assert not sdfg.loop_regions()[0].comm_specialized


class TestSpecializedExecution:
    def ref_1d(self, u0, tsteps):
        A, B = np.array(u0), np.array(u0)
        for _ in range(1, tsteps):
            B[1:-1] = (A[:-2] + A[1:-1] + A[2:]) / 3.0
            A[1:-1] = (B[:-2] + B[1:-1] + B[2:]) / 3.0
        return A

    @pytest.mark.parametrize("ranks", [1, 2, 3])
    def test_1d_bit_exact(self, ranks):
        rng = np.random.default_rng(3)
        n_global = 8 * ranks
        u0 = rng.random(n_global + 2)
        decomp = SlabDecomposition1D(n_global, ranks)
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D,
                                specialize_comm=True)
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
        report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, 6))
        got = decomp.gather(report.arrays, u0)
        np.testing.assert_array_equal(got, self.ref_1d(u0, 6))

    @pytest.mark.parametrize("ranks", [2, 4, 8])
    def test_2d_bit_exact(self, ranks):
        rng = np.random.default_rng(4)
        gy, gx = 16, 24
        u0 = rng.random((gy + 2, gx + 2))
        decomp = GridDecomposition2D(gy, gx, ranks)
        sdfg = cpufree_pipeline(build_jacobi_2d_sdfg(), CONJUGATES_2D,
                                specialize_comm=True)
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer())
        report = SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, 5))
        got = decomp.gather(report.arrays, u0)

        A, B = np.array(u0), np.array(u0)
        for _ in range(1, 5):
            B[1:-1, 1:-1] = 0.25 * (A[:-2, 1:-1] + A[2:, 1:-1]
                                    + A[1:-1, :-2] + A[1:-1, 2:])
            A[1:-1, 1:-1] = 0.25 * (B[:-2, 1:-1] + B[2:, 1:-1]
                                    + B[1:-1, :-2] + B[1:-1, 2:])
        np.testing.assert_array_equal(got, A)

    def test_specialized_faster_than_single_group(self):
        def run(specialize):
            n_global = 1_000_000 * 4
            decomp = SlabDecomposition1D(n_global, 4)
            args = decomp.rank_args(np.zeros(n_global + 2), 8)
            args = [{k: v for k, v in a.items() if k not in ("A", "B")} for a in args]
            sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D,
                                    specialize_comm=specialize)
            ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(4), tracer=Tracer())
            return SDFGExecutor(sdfg, ctx, with_data=False).run(args)

        assert run(True).total_time_us < run(False).total_time_us

    def test_two_tb_groups_launched(self):
        n_global = 24
        decomp = SlabDecomposition1D(n_global, 2)
        u0 = np.zeros(n_global + 2)
        sdfg = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D,
                                specialize_comm=True)
        ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(2), tracer=Tracer())
        SDFGExecutor(sdfg, ctx).run(decomp.rank_args(u0, 4))
        lanes = ctx.tracer.lanes()
        assert any("comm" in lane for lane in lanes)
        assert any("comp" in lane for lane in lanes)
