"""Tests for the Graphviz DOT rendering."""

import pytest

from repro.sdfg import Sym, program
from repro.sdfg.dot import sdfg_to_dot
from repro.sdfg.frontend import float64, int32
from repro.sdfg.programs import (
    CONJUGATES_1D,
    baseline_pipeline,
    build_jacobi_1d_sdfg,
    cpufree_pipeline,
)

N = Sym("N")


@pytest.fixture(scope="module")
def cpufree_dot():
    return sdfg_to_dot(cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D))


def test_digraph_structure(cpufree_dot):
    assert cpufree_dot.startswith('digraph "jacobi_1d"')
    assert cpufree_dot.rstrip().endswith("}")
    assert cpufree_dot.count("{") == cpufree_dot.count("}")


def test_loop_cluster_labeled(cpufree_dot):
    assert "for t in [1, TSTEPS)" in cpufree_dot
    assert "gpu_persistent" in cpufree_dot


def test_library_nodes_rendered_as_octagons(cpufree_dot):
    assert "octagon" in cpufree_dot
    assert "PutmemSignal" in cpufree_dot
    assert "SignalWait" in cpufree_dot


def test_symmetric_arrays_colored(cpufree_dot):
    assert "lightblue" in cpufree_dot  # SYMMETRIC storage fill


def test_grid_sync_markers_shown(cpufree_dot):
    assert "+grid.sync" in cpufree_dot


def test_memlets_label_edges(cpufree_dot):
    assert "A[" in cpufree_dot


def test_baseline_renders_mpi_nodes():
    dot = sdfg_to_dot(baseline_pipeline(build_jacobi_1d_sdfg()))
    assert "Isend" in dot and "Waitall" in dot
    assert "gpu_persistent" not in dot


def test_quotes_escaped():
    @program
    def f(A: float64[N]):
        A[1:-1] = A[1:-1]

    dot = sdfg_to_dot(f.to_sdfg())
    # no raw unescaped quote inside a label breaks the format
    for line in dot.splitlines():
        assert line.count('"') % 2 == 0, line
