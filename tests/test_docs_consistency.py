"""Documentation consistency: the promises in DESIGN.md / README.md
point at files and symbols that actually exist."""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


def test_design_bench_targets_exist():
    design = read("DESIGN.md")
    targets = set(re.findall(r"benchmarks/(\w+\.py)", design))
    assert targets, "DESIGN.md should reference benchmark files"
    for target in targets:
        assert (ROOT / "benchmarks" / target).exists(), target


def test_design_test_targets_exist():
    design = read("DESIGN.md")
    for target in set(re.findall(r"tests/([\w/]+\.py)", design)):
        assert (ROOT / "tests" / target).exists(), target


def test_readme_examples_exist():
    readme = read("README.md")
    for target in set(re.findall(r"examples/(\w+\.py)", readme)):
        assert (ROOT / "examples" / target).exists(), target


def test_readme_docs_exist():
    for name in ("DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
        assert (ROOT / name).exists(), name
    for doc in ("architecture.md", "cost-model.md", "protocols.md", "tutorial.md"):
        assert (ROOT / "docs" / doc).exists(), doc


def test_experiments_covers_every_figure():
    experiments = read("EXPERIMENTS.md")
    for figure in ("2.2", "6.1", "6.2", "6.3"):
        assert f"Figure {figure}" in experiments, figure


def test_readme_mentions_every_package():
    readme = read("README.md")
    src = ROOT / "src" / "repro"
    packages = {p.name for p in src.iterdir() if p.is_dir() and not p.name.startswith("__")}
    for package in packages:
        assert f"repro.{package}" in readme, package


def test_design_lists_every_variant():
    design = read("DESIGN.md")
    from repro.stencil import variant_names

    for name in variant_names():
        assert name in design, name


def test_mentioned_public_symbols_importable():
    readme = read("README.md")
    for dotted in set(re.findall(r"`repro\.[\w.]+\.(?:[a-z_]+)`", readme)):
        path = dotted.strip("`")
        module, _, attr = path.rpartition(".")
        mod = __import__(module, fromlist=[attr])
        assert hasattr(mod, attr), path
