"""Tests for the Conjugate Gradient extension application."""

import numpy as np
import pytest

from repro.apps import CGConfig, reference_cg, run_cg
from repro.apps.cg import default_rhs, laplacian_apply


class TestOperator:
    def test_laplacian_of_zero_is_zero(self):
        p = np.zeros((6, 6))
        q = np.ones((6, 6))
        laplacian_apply(p, q)
        assert np.all(q[1:-1, 1:-1] == 0.0)

    def test_laplacian_five_point_formula(self):
        p = np.zeros((3, 3))
        p[1, 1] = 1.0
        p[0, 1], p[2, 1], p[1, 0], p[1, 2] = 0.1, 0.2, 0.3, 0.4
        q = np.zeros((3, 3))
        laplacian_apply(p, q)
        assert q[1, 1] == pytest.approx(4.0 - 0.1 - 0.2 - 0.3 - 0.4)

    def test_laplacian_is_spd_on_random_vectors(self):
        """x^T A x > 0 for nonzero x — CG's convergence requirement."""
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = np.zeros((10, 10))
            x[1:-1, 1:-1] = rng.standard_normal((8, 8))
            q = np.zeros_like(x)
            laplacian_apply(x, q)
            assert np.dot(x.ravel(), q.ravel()) > 0.0


class TestReference:
    def test_residual_decreases(self):
        b = default_rhs((18, 18), seed=1)
        def residual(iters):
            x = reference_cg(b, iters)
            q = np.zeros_like(x)
            laplacian_apply(x, q)
            r = b - q
            r[0] = r[-1] = 0.0
            r[:, 0] = r[:, -1] = 0.0
            return float(np.linalg.norm(r[1:-1, 1:-1]))

        r1, r5, r20 = residual(1), residual(5), residual(20)
        assert r20 < r5 < r1

    def test_converges_to_solution(self):
        """After enough iterations, A x ~= b on the interior."""
        b = default_rhs((14, 14), seed=2)
        x = reference_cg(b, 200)
        q = np.zeros_like(x)
        laplacian_apply(x, q)
        np.testing.assert_allclose(q[1:-1, 1:-1], b[1:-1, 1:-1], atol=1e-8)

    def test_chunked_reduction_changes_nothing_mathematically(self):
        b = default_rhs((20, 12), seed=3)
        x1 = reference_cg(b, 10, num_chunks=1)
        x3 = reference_cg(b, 10, num_chunks=3)
        np.testing.assert_allclose(x1, x3, rtol=1e-12)


class TestDistributedCG:
    @pytest.mark.parametrize("variant", ["cg_baseline", "cg_cpufree"])
    @pytest.mark.parametrize("ranks", [1, 2, 3])
    def test_bit_exact_against_reference(self, variant, ranks):
        cfg = CGConfig(global_shape=(9 * ranks + 2, 14), num_gpus=ranks, iterations=7)
        b = default_rhs(cfg.global_shape, cfg.seed)
        expected = reference_cg(b, cfg.iterations, num_chunks=ranks)
        result = run_cg(variant, cfg)
        np.testing.assert_array_equal(result.solution, expected)

    def test_both_variants_agree(self):
        cfg = CGConfig(global_shape=(26, 18), num_gpus=3, iterations=9)
        base = run_cg("cg_baseline", cfg)
        free = run_cg("cg_cpufree", cfg)
        np.testing.assert_array_equal(base.solution, free.solution)
        assert base.final_residual_norm2 == pytest.approx(free.final_residual_norm2)

    def test_cpufree_faster(self):
        cfg = CGConfig(global_shape=(8 * 16 + 2, 130), num_gpus=8,
                       iterations=12, with_data=False)
        base = run_cg("cg_baseline", cfg)
        free = run_cg("cg_cpufree", cfg)
        assert free.speedup_over(base) > 50.0

    def test_timing_independent_of_data(self):
        cfg_data = CGConfig(global_shape=(26, 18), num_gpus=3, iterations=5)
        cfg_nodata = CGConfig(global_shape=(26, 18), num_gpus=3, iterations=5,
                              with_data=False)
        with_data = run_cg("cg_cpufree", cfg_data)
        timing = run_cg("cg_cpufree", cfg_nodata)
        assert timing.solution is None
        assert timing.total_time_us == pytest.approx(with_data.total_time_us)

    def test_baseline_launches_many_kernels_cpufree_one(self):
        cfg = CGConfig(global_shape=(26, 18), num_gpus=2, iterations=5)
        base = run_cg("cg_baseline", cfg)
        free = run_cg("cg_cpufree", cfg)
        base_launches = [s for s in base.tracer.spans_in("api")
                         if s.name.startswith("launch")]
        free_launches = [s for s in free.tracer.spans_in("api")
                         if s.name.startswith("launch")]
        assert len(free_launches) == 2          # one per GPU
        assert len(base_launches) >= 5 * 5 * 2  # 5 kernels/iter/rank

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown CG variant"):
            run_cg("nope", CGConfig(global_shape=(14, 14), num_gpus=1, iterations=1))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CGConfig(global_shape=(14, 14), num_gpus=1, iterations=0)
        with pytest.raises(ValueError):
            CGConfig(global_shape=(14, 14, 14), num_gpus=1, iterations=1)
