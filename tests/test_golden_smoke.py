"""Perf-smoke goldens: a canonical observed run must reproduce the
committed metrics dump and Chrome trace byte for byte.

This is the local half of the CI ``perf-smoke`` job: every engine or
transport optimization claims to be invisible to published output, and
this test pins that claim to artifacts in git rather than to a
same-process A/B comparison.  If a change legitimately alters the
dumps, regenerate per tests/golden/README.md and review the diff.
"""

import pathlib

from repro.obs.__main__ import main

GOLDEN = pathlib.Path(__file__).resolve().parent / "golden"
CANONICAL = ["summary", "--shape", "66x130", "--gpus", "2", "--iterations", "4"]


def test_metrics_and_trace_match_committed_golden(tmp_path, capsys):
    metrics = tmp_path / "metrics.json"
    trace = tmp_path / "trace.json"
    rc = main([*CANONICAL, "--metrics-out", str(metrics),
               "--trace-out", str(trace)])
    assert rc == 0
    assert metrics.read_bytes() == (GOLDEN / "perf_smoke_metrics.json").read_bytes()
    assert trace.read_bytes() == (GOLDEN / "perf_smoke_trace.json").read_bytes()
