"""Unit tests for metric-dump flattening and regression diffing."""

import json
import math

import pytest

from repro.obs.diff import diff_metrics, flatten_metrics, load_metrics
from repro.obs.metrics import MetricsRegistry


class TestFlatten:
    def test_registry_dump_shape(self):
        reg = MetricsRegistry()
        reg.counter("ops", src=0, dst=1).inc(3)
        reg.gauge("level").set(7)
        reg.histogram("wait", edges=(1.0,)).observe(0.5)
        flat = flatten_metrics(json.loads(reg.to_json()))
        assert flat["ops{dst=1,src=0}"] == 3.0
        assert flat["level"] == 7.0
        assert flat["wait:sum"] == 0.5
        assert flat["wait:count"] == 1.0

    def test_nested_json_shape(self):
        payload = {
            "pr": 2,
            "suite": {"wall_seconds": 1.5, "name": "figures"},
            "flags": {"enabled": True},
        }
        flat = flatten_metrics(payload)
        assert flat == {"pr": 2.0, "suite.wall_seconds": 1.5}
        # strings and bools are not metrics
        assert "suite.name" not in flat and "flags.enabled" not in flat

    def test_load_metrics_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="expected a JSON object"):
            load_metrics(str(path))


class TestDiff:
    def test_equal_values_have_zero_rel(self):
        deltas = diff_metrics({"x": 5.0}, {"x": 5.0})
        assert len(deltas) == 1 and deltas[0].rel == 0.0
        assert not deltas[0].is_regression(0.0)

    def test_relative_increase(self):
        (delta,) = diff_metrics({"x": 10.0}, {"x": 12.0})
        assert delta.rel == pytest.approx(0.2)
        assert delta.is_regression(0.05)
        assert not delta.is_regression(0.25)

    def test_decrease_is_never_a_regression(self):
        (delta,) = diff_metrics({"x": 10.0}, {"x": 5.0})
        assert delta.rel == pytest.approx(-0.5)
        assert not delta.is_regression(0.0)

    def test_from_zero_is_infinite_increase(self):
        (delta,) = diff_metrics({"x": 0.0}, {"x": 1.0})
        assert math.isinf(delta.rel) and delta.rel > 0
        assert delta.is_regression(1000.0)

    def test_only_shared_keys_compared(self):
        deltas = diff_metrics({"a": 1.0, "b": 2.0}, {"b": 2.0, "c": 3.0})
        assert [d.key for d in deltas] == ["b"]

    def test_sorted_by_key(self):
        deltas = diff_metrics({"z": 1.0, "a": 1.0, "m": 1.0},
                              {"z": 1.0, "a": 1.0, "m": 1.0})
        assert [d.key for d in deltas] == ["a", "m", "z"]
