"""Causal what-if replay: exactness at scale 1, sane bottleneck calls."""

import pytest

from repro.obs.whatif import (
    DEFAULT_SCENARIOS,
    Scenario,
    replay_makespan,
    whatif_report,
    whatif_table,
)
from repro.sim.trace import Span


def _span(lane, name, category, start, end, meta=None):
    return Span(lane=lane, name=name, category=category, start=start,
                end=end, meta=meta)


def _run(variant, shape=(1026, 2050), gpus=4, iterations=4):
    from repro.stencil import StencilConfig, run_variant

    config = StencilConfig(global_shape=shape, num_gpus=gpus,
                           iterations=iterations, with_data=False)
    return run_variant(variant, config)


def _makespan(spans):
    return max(s.end for s in spans) - min(s.start for s in spans)


class TestScenario:
    def test_scale_routing(self):
        scenario = Scenario("s", compute=0.5, comm=0.7, host=0.9,
                            links={"wire.pe0->*": 0.1})
        assert scenario.scale_for(
            _span("gpu0.c", "k", "compute", 0, 1)) == 0.5
        assert scenario.scale_for(_span("gpu0.c", "pack", "comm", 0, 1)) == 0.7
        assert scenario.scale_for(_span("host0", "launch", "api", 0, 1)) == 0.9
        assert scenario.scale_for(_span("gpu0.c", "api", "api", 0, 1)) == 0.9
        assert scenario.scale_for(_span("wire.pe1->pe0", "put", "comm",
                                        0, 1)) == 0.7
        assert scenario.scale_for(_span("wire.pe0->pe1", "put", "comm",
                                        0, 1)) == 0.1
        # waiting is derived by the replay, never scaled directly
        assert scenario.scale_for(_span("gpu0.c", "wait", "sync", 0, 1)) == 1.0


class TestSyntheticDag:
    def test_empty(self):
        assert replay_makespan([], Scenario("s", compute=0.5)) == 0.0

    def test_single_compute_span_scales(self):
        spans = [_span("gpu0.c", "k", "compute", 0.0, 10.0)]
        assert replay_makespan(spans, Scenario("s", compute=0.5)) == \
            pytest.approx(5.0)

    def test_flow_wait_shrinks_with_its_producer(self):
        spans = [
            _span("gpu0.c", "k", "compute", 0.0, 10.0, meta={"flow_s": 1}),
            _span("gpu1.c", "wait", "sync", 0.0, 10.0, meta={"flow_f": 1}),
            _span("gpu1.c", "k", "compute", 10.0, 12.0),
        ]
        new = replay_makespan(spans, Scenario("s", compute=0.5))
        # producer halves to 5; wait collapses onto it; consumer compute
        # halves to 1 -> makespan 6
        assert new == pytest.approx(6.0)

    def test_barrier_releases_at_last_new_arrival(self):
        # two ranks arrive at 4 and 8; barrier costs 2, releases both at 10
        spans = [
            _span("host0", "work", "api", 0.0, 4.0),
            _span("host1", "work", "api", 0.0, 8.0),
            _span("host0", "host_barrier", "sync", 4.0, 10.0),
            _span("host1", "host_barrier", "sync", 8.0, 10.0),
        ]
        # host 2x faster: arrivals 2 and 4, cost 1 -> release at 5
        assert replay_makespan(spans, Scenario("s", host=0.5)) == \
            pytest.approx(5.0)

    def test_launch_anchored_kernel_follows_faster_host(self):
        spans = [
            _span("host0", "launch:k", "api", 0.0, 4.0),
            _span("gpu0.c", "k", "compute", 4.0, 10.0),
        ]
        # launch halves to [0,2); kernel starts at 2, keeps its 6us body
        assert replay_makespan(spans, Scenario("s", host=0.5)) == \
            pytest.approx(8.0)

    def test_unrelated_lane_slack_is_preserved(self):
        spans = [
            _span("gpu0.c", "a", "compute", 0.0, 2.0),
            _span("gpu0.c", "b", "compute", 5.0, 7.0),  # 3us of slack
        ]
        new = replay_makespan(spans, Scenario("s", compute=0.5))
        # a: [0,1); b starts at 1 + original 3us gap, runs 1 -> ends 5
        assert new == pytest.approx(5.0)


class TestExactnessAtScaleOne:
    """The original schedule must be the replay's fixed point."""

    @pytest.mark.parametrize("variant,shape,gpus", [
        ("cpufree", (2050, 2050), 4),
        ("cpufree", (130, 258), 4),
        ("baseline_overlap", (1026, 2050), 4),
        ("baseline_copy", (1026, 2050), 4),
        ("cpufree_perks", (1026, 2050), 2),
        ("baseline_nvshmem", (1026, 2050), 2),
    ])
    def test_identity_replay_reproduces_makespan(self, variant, shape, gpus):
        spans = list(_run(variant, shape=shape, gpus=gpus).tracer.spans)
        original = _makespan(spans)
        replayed = replay_makespan(spans, Scenario("identity"))
        assert replayed == pytest.approx(original, abs=1e-6)


class TestBottleneckVerdicts:
    """Predicted savings point at each variant's actual bottleneck."""

    def test_large_cpufree_is_compute_bound(self):
        spans = list(_run("cpufree", shape=(2050, 2050)).tracer.spans)
        payload = whatif_report(spans)
        assert payload["scenarios"][0]["name"] == "compute x2"
        assert payload["scenarios"][0]["saved_frac"] > 0.1

    def test_small_cpufree_is_comm_bound(self):
        spans = list(_run("cpufree", shape=(130, 258)).tracer.spans)
        payload = whatif_report(spans)
        assert payload["scenarios"][0]["name"] == "comm x2"
        assert payload["scenarios"][0]["saved_frac"] > 0.05

    @pytest.mark.parametrize("variant", ["baseline_copy", "baseline_overlap"])
    def test_cpu_controlled_baselines_are_host_bound(self, variant):
        spans = list(_run(variant).tracer.spans)
        payload = whatif_report(spans)
        assert payload["scenarios"][0]["name"] == "host x2"
        assert payload["scenarios"][0]["saved_frac"] > 0.2

    def test_savings_never_negative_for_speedups(self):
        spans = list(_run("cpufree", shape=(514, 1026)).tracer.spans)
        payload = whatif_report(spans)
        for entry in payload["scenarios"]:
            assert entry["saved_us"] >= -1e-6


class TestReport:
    def test_report_is_deterministic(self):
        spans = list(_run("cpufree", shape=(130, 258), gpus=2).tracer.spans)
        from repro.obs.stablejson import dumps_stable

        assert dumps_stable(whatif_report(spans)) == \
            dumps_stable(whatif_report(spans))

    def test_entries_sorted_by_savings(self):
        spans = list(_run("cpufree", shape=(2050, 2050)).tracer.spans)
        saved = [e["saved_us"] for e in whatif_report(spans)["scenarios"]]
        assert saved == sorted(saved, reverse=True)

    def test_custom_scenarios_and_meta(self):
        spans = [_span("gpu0.c", "k", "compute", 0.0, 10.0)]
        payload = whatif_report(spans, [Scenario("only", compute=0.25)],
                                meta={"variant": "unit"})
        assert [e["name"] for e in payload["scenarios"]] == ["only"]
        assert payload["run"] == {"variant": "unit"}
        assert payload["scenarios"][0]["makespan_us"] == pytest.approx(2.5)

    def test_table_mentions_every_scenario(self):
        spans = [_span("gpu0.c", "k", "compute", 0.0, 10.0)]
        text = whatif_table(whatif_report(spans, DEFAULT_SCENARIOS))
        assert "baseline makespan:" in text
        for scenario in DEFAULT_SCENARIOS:
            assert scenario.name in text
