"""Pin the shared byte-stable JSON dump contract.

Every exporter in the repo (metrics dumps, sanitizer reports, chaos
matrices, timelines, perf history) routes through
``repro.obs.stablejson`` — these tests pin the exact text convention so
a drive-by "cleanup" of the serializer shows up as a golden diff, not
as silently churned CI artifacts.
"""

import math

import pytest

from repro.obs.stablejson import digest_stable, dump_stable, dumps_stable


def test_key_ordering_is_sorted_at_every_level():
    text = dumps_stable({"b": 1, "a": {"z": 0, "y": {"q": 2, "p": 3}}})
    assert text == (
        '{\n'
        '  "a": {\n'
        '    "y": {\n'
        '      "p": 3,\n'
        '      "q": 2\n'
        '    },\n'
        '    "z": 0\n'
        '  },\n'
        '  "b": 1\n'
        '}\n'
    )


def test_float_formatting_is_shortest_roundtrip_repr():
    # repr-based rendering: equal values are equal text, no trailing-zero
    # or exponent drift between dump sites.
    text = dumps_stable({"a": 0.1, "b": 1.0, "c": 1e-07, "d": 2.5, "e": 1 / 3})
    assert '"a": 0.1' in text
    assert '"b": 1.0' in text
    assert '"c": 1e-07' in text
    assert '"d": 2.5' in text
    assert '"e": 0.3333333333333333' in text


def test_exactly_one_trailing_newline():
    text = dumps_stable([1, 2])
    assert text.endswith("\n")
    assert not text.endswith("\n\n")


def test_insertion_order_never_leaks():
    assert dumps_stable({"x": 1, "a": 2}) == dumps_stable({"a": 2, "x": 1})


def test_nan_and_infinity_rejected():
    with pytest.raises(ValueError):
        dumps_stable({"bad": math.nan})
    with pytest.raises(ValueError):
        dumps_stable({"bad": math.inf})


def test_dump_stable_writes_same_bytes(tmp_path):
    payload = {"counters": [{"name": "x", "value": 3}], "pi": 3.14159}
    path = dump_stable(payload, tmp_path / "out.json")
    assert path.read_text() == dumps_stable(payload)


def test_digest_stable_pinned():
    # 16 hex chars of sha256 over the stable text; pinned so the perf
    # history's metric fingerprints stay comparable across sessions.
    payload = {"a": 1, "b": [1.5, "x"]}
    digest = digest_stable(payload)
    assert len(digest) == 16
    assert digest == digest_stable({"b": [1.5, "x"], "a": 1})
    assert digest == "45c14b97735f9c34"


def test_all_report_helpers_share_the_convention():
    from repro.faults.harness import render_report
    from repro.obs.metrics import MetricsRegistry
    from repro.sanitize.report import dumps_report

    payload = {"z": 1, "a": {"n": 2.5}}
    assert render_report(payload) == dumps_stable(payload)
    assert dumps_report(payload) == dumps_stable(payload)

    reg = MetricsRegistry()
    reg.counter("events", kind="test").inc(3)
    assert reg.to_json() == dumps_stable(reg.to_dict())
