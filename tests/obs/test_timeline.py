"""Per-PE utilization timelines: the PR's acceptance criterion.

The headline claim — CPU-free variants hide strictly more of their
non-compute time under compute than CPU-controlled baselines, per PE,
at a paper-scale configuration — is pinned here, along with the
byte-stability of the timeline document and the phase-accounting
mechanics.
"""

import pytest

from repro.obs.stablejson import dumps_stable
from repro.obs.timeline import (
    PEPhases,
    pe_phases,
    render_gantt,
    timeline_payload,
    timeline_table,
)
from repro.sim.trace import Span

CPUFREE_VARIANTS = ("cpufree", "cpufree_coresident", "cpufree_perks")
BASELINE_VARIANTS = ("baseline_copy", "baseline_overlap", "baseline_p2p",
                     "baseline_nvshmem")


def _run(variant, shape=(1026, 2050), gpus=4, iterations=4):
    from repro.stencil import StencilConfig, run_variant

    config = StencilConfig(global_shape=shape, num_gpus=gpus,
                           iterations=iterations, with_data=False)
    return run_variant(variant, config)


def _span(lane, name, category, start, end, meta=None):
    return Span(lane=lane, name=name, category=category, start=start,
                end=end, meta=meta)


class TestPhaseAccounting:
    def test_buckets_by_lane_and_category(self):
        spans = [
            _span("gpu0.compute", "jacobi", "compute", 0.0, 10.0),
            _span("gpu0.comm", "pack", "comm", 2.0, 4.0),
            _span("gpu0.compute", "wait", "sync", 10.0, 12.0),
            _span("host0", "launch", "api", 0.0, 1.0),
            _span("wire.pe0->pe1", "put", "comm", 3.0, 6.0),
            _span("gpu1.compute", "jacobi", "compute", 0.0, 8.0),
        ]
        phases = pe_phases(spans)
        assert sorted(phases) == [0, 1]
        p0 = phases[0]
        assert p0.compute == [(0.0, 10.0)]
        # gpu comm and the outgoing wire merge into one comm set
        assert p0.comm == [(2.0, 6.0)]
        assert p0.sync == [(10.0, 12.0)]
        assert p0.host == [(0.0, 1.0)]

    def test_api_spans_on_gpu_lanes_count_as_control(self):
        phases = pe_phases([_span("gpu3.stream", "setup", "api", 0.0, 2.0)])
        assert phases[3].host == [(0.0, 2.0)]

    def test_zero_duration_spans_are_skipped(self):
        phases = pe_phases([_span("gpu0.s", "mark", "compute", 5.0, 5.0)])
        assert phases == {}

    def test_overlap_fraction_is_hidden_noncompute(self):
        p = PEPhases(0)
        p.compute = [(0.0, 10.0)]
        p.comm = [(5.0, 15.0)]  # 5 of 10 us hidden
        assert p.overlap_fraction() == pytest.approx(0.5)
        assert p.comm_overlap_fraction() == pytest.approx(0.5)

    def test_no_noncompute_means_zero_not_nan(self):
        p = PEPhases(0)
        p.compute = [(0.0, 10.0)]
        assert p.overlap_fraction() == 0.0
        assert p.comm_overlap_fraction() == 0.0


class TestAcceptance:
    """CPU-free overlap strictly dominates, per PE, at paper scale."""

    def test_cpufree_hides_more_noncompute_than_every_baseline(self):
        overlaps = {}
        for variant in CPUFREE_VARIANTS + BASELINE_VARIANTS:
            result = _run(variant)
            payload = timeline_payload(result.tracer.spans)
            overlaps[variant] = [pe["overlap"] for pe in payload["pes"]]
            assert len(overlaps[variant]) == 4
        worst_cpufree = min(min(overlaps[v]) for v in CPUFREE_VARIANTS)
        best_baseline = max(max(overlaps[v]) for v in BASELINE_VARIANTS)
        assert worst_cpufree > best_baseline, (
            f"cpufree min {worst_cpufree:.4f} must beat baseline max "
            f"{best_baseline:.4f}: {overlaps}")

    def test_separation_holds_at_two_gpus(self):
        cpufree = timeline_payload(
            _run("cpufree", gpus=2).tracer.spans)["overlap"]
        baseline = timeline_payload(
            _run("baseline_overlap", gpus=2).tracer.spans)["overlap"]
        assert cpufree > baseline


class TestPayloadStability:
    def test_rerun_is_byte_identical(self):
        a = timeline_payload(_run("cpufree", shape=(66, 130), gpus=2)
                             .tracer.spans, meta={"variant": "cpufree"})
        b = timeline_payload(_run("cpufree", shape=(66, 130), gpus=2)
                             .tracer.spans, meta={"variant": "cpufree"})
        assert dumps_stable(a) == dumps_stable(b)

    def test_payload_shape(self):
        payload = timeline_payload(_run("cpufree", shape=(66, 130), gpus=2)
                                   .tracer.spans)
        assert payload["format"] == "repro-timeline-v1"
        assert payload["makespan_us"] == pytest.approx(
            payload["t1_us"] - payload["t0_us"])
        for pe in payload["pes"]:
            assert pe["busy_us"] <= payload["makespan_us"] + 1e-9
            # hidden + exposed partition the non-compute *union*, which
            # can only be smaller than the per-phase sums
            noncompute = pe["hidden_us"] + pe["exposed_us"]
            assert noncompute <= (pe["comm_us"] + pe["sync_us"]
                                  + pe["host_us"] + 1e-9)
            assert 0.0 <= pe["overlap"] <= 1.0
        assert 0.0 <= payload["overlap"] <= 1.0

    def test_aggregate_overlap_is_hidden_over_noncompute(self):
        payload = timeline_payload(_run("cpufree", shape=(66, 130), gpus=2)
                                   .tracer.spans)
        hidden = sum(pe["hidden_us"] for pe in payload["pes"])
        noncompute = sum(pe["hidden_us"] + pe["exposed_us"]
                         for pe in payload["pes"])
        assert payload["overlap"] == pytest.approx(hidden / noncompute)


class TestRendering:
    def test_gantt_rows_and_legend(self):
        text = render_gantt(_run("cpufree", shape=(66, 130), gpus=2)
                            .tracer.spans, width=60)
        assert "pe0 |" in text and "pe1 |" in text
        assert "# compute" in text and "% hidden" in text

    def test_gantt_deterministic(self):
        spans_a = _run("cpufree", shape=(66, 130), gpus=2).tracer.spans
        spans_b = _run("cpufree", shape=(66, 130), gpus=2).tracer.spans
        assert render_gantt(spans_a) == render_gantt(spans_b)

    def test_gantt_empty(self):
        assert render_gantt([]) == "(empty timeline)"

    def test_table_mentions_every_pe(self):
        payload = timeline_payload(_run("cpufree", shape=(66, 130), gpus=2)
                                   .tracer.spans)
        text = timeline_table(payload)
        assert "makespan:" in text
        assert "overlap" in text and "comm ovl" in text
