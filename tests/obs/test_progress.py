"""Unit tests for the progress renderers and the history sink."""

import io
import json

from repro.obs.history import HistoryStore
from repro.obs.progress import (
    HistorySink,
    JsonlProgress,
    MultiSink,
    ProgressSink,
    TtyProgress,
    default_fields,
)


class _Row:
    """Duck-typed figure row."""

    def __init__(self, per_iteration_us=12.5, comm_us_per_iter=3.0,
                 overlap_ratio=0.4):
        self.per_iteration_us = per_iteration_us
        self.comm_us_per_iter = comm_us_per_iter
        self.overlap_ratio = overlap_ratio


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestJsonlProgress:
    def test_one_sorted_json_line_per_event(self):
        stream = io.StringIO()
        sink = JsonlProgress(stream)
        sink.sweep_begin("fn", ["a", "b"])
        sink.point_started(0, "a")
        sink.point_finished(0, "a", 0.1234567)
        sink.point_cached(1, "b", duplicate_of=0)
        sink.sweep_end("fn", 2)
        lines = stream.getvalue().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["event"] for e in events] == [
            "sweep_begin", "point_started", "point_finished",
            "point_cached", "sweep_end"]
        assert events[2]["wall_s"] == 0.123457  # rounded, not raw
        assert events[3]["duplicate_of"] == 0
        # keys are sorted so the stream diffs cleanly
        assert all(line == json.dumps(json.loads(line), sort_keys=True)
                   for line in lines)

    def test_plain_cache_hit_has_no_duplicate_field(self):
        stream = io.StringIO()
        JsonlProgress(stream).point_cached(0, "a")
        assert "duplicate_of" not in json.loads(stream.getvalue())


class TestTtyProgress:
    def test_counter_advances(self):
        stream = io.StringIO()
        sink = TtyProgress(stream=stream, clock=FakeClock())
        sink.sweep_begin("fn", ["a", "b"])
        sink.point_finished(0, "a", 0.5)
        sink.point_cached(1, "b")
        sink.sweep_end("fn", 2)
        out = stream.getvalue()
        assert "sweep fn: 2 point(s)" in out
        assert "[1/2] done (0.50s) a" in out
        assert "[2/2] cached b" in out
        assert "complete" in out

    def test_eta_uses_history_medians(self):
        stream = io.StringIO()
        sink = TtyProgress(stream=stream, eta_medians={"a": 2.0, "b": 3.0},
                           clock=FakeClock())
        sink.sweep_begin("fn", ["a", "b"])
        sink.point_finished(0, "a", 2.0)
        out = stream.getvalue().splitlines()[-1]
        assert "eta 3.0s" in out  # only b remains

    def test_eta_falls_back_to_running_mean(self):
        stream = io.StringIO()
        sink = TtyProgress(stream=stream, clock=FakeClock())
        sink.sweep_begin("fn", ["a", "b", "c"])
        sink.point_finished(0, "a", 4.0)
        out = stream.getvalue().splitlines()[-1]
        assert "eta 8.0s" in out  # 2 open points x 4s mean

    def test_no_eta_before_any_signal(self):
        stream = io.StringIO()
        sink = TtyProgress(stream=stream, clock=FakeClock())
        sink.sweep_begin("fn", ["a", "b"])
        sink.point_cached(0, "a")
        assert "eta" not in stream.getvalue().splitlines()[-1]

    def test_long_identities_are_truncated(self):
        stream = io.StringIO()
        sink = TtyProgress(stream=stream, clock=FakeClock())
        sink.sweep_begin("fn", ["x" * 200])
        sink.point_finished(0, "x" * 200, 0.1)
        line = stream.getvalue().splitlines()[-1]
        assert "..." in line and len(line) < 160


class TestMultiSink:
    def test_fans_out_in_order_and_skips_none(self):
        calls = []

        class Tap(ProgressSink):
            def __init__(self, tag):
                self.tag = tag

            def sweep_end(self, fn_name, n_points):
                calls.append(self.tag)

        MultiSink(Tap("a"), None, Tap("b")).sweep_end("fn", 1)
        assert calls == ["a", "b"]


class TestDefaultFields:
    def test_bare_row(self):
        fields = default_fields(_Row())
        assert fields == {"per_iter_us": 12.5, "comm_us_per_iter": 3.0,
                          "overlap": 0.4}

    def test_row_with_metrics_dump_adds_digest_and_events(self):
        dump = {"counters": [
            {"name": "sim.events_dispatched", "labels": {}, "value": 420.0},
        ]}
        fields = default_fields((_Row(), dump))
        assert fields["events"] == 420.0
        assert len(fields["digest"]) == 16

    def test_live_registry_is_dumped(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("sim.events_dispatched").inc(7)
        fields = default_fields((_Row(), registry))
        assert fields["events"] == 7.0

    def test_unknown_result_yields_nothing(self):
        assert default_fields(object()) == {}


class TestHistorySink:
    def test_finished_points_record_wall_and_rate(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        sink = HistorySink(store, "base")
        dump = {"counters": [
            {"name": "sim.events_dispatched", "labels": {}, "value": 100.0},
        ]}
        sink.point_finished(0, "fn|(1,)|", 0.5, (_Row(), dump))
        assert sink.recorded == 1
        [record] = store.records()
        assert record["run"] == "base" and record["id"] == "fn|(1,)|"
        assert record["wall_s"] == 0.5
        assert record["events_per_s"] == 200.0

    def test_batched_points_record_without_wall(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        sink = HistorySink(store, "base")
        sink.point_batched(0, "fn|(1,)|", 3, _Row())
        [record] = store.records()
        assert "wall_s" not in record
        assert record["per_iter_us"] == 12.5

    def test_cached_points_record_nothing(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        sink = HistorySink(store, "base")
        sink.point_cached(0, "fn|(1,)|")
        assert store.records() == [] and sink.recorded == 0

    def test_profile_is_stripped_from_id_but_kept_as_field(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        sink = HistorySink(store, "slow", profile="degraded")
        sink.point_finished(0, "fn|(1, 'degraded')|", 0.1, _Row())
        [record] = store.records()
        assert record["id"] == "fn|(1, None)|"
        assert record["profile"] == "degraded"

    def test_fieldless_results_are_skipped(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        sink = HistorySink(store, "base")
        sink.point_finished(0, "fn|(1,)|", 0.1, object())
        sink.point_finished(1, "fn|(2,)|", 0.1, None)
        assert store.records() == []

    def test_custom_extractor(self, tmp_path):
        store = HistoryStore(tmp_path / "h.jsonl")
        sink = HistorySink(store, "base",
                           extract=lambda r: {"score": float(r)})
        sink.point_finished(0, "fn|(1,)|", 0.1, 42)
        assert store.records()[0]["score"] == 42.0
