"""Integration tests: the instrumentation threaded through the
simulator, interconnect, NVSHMEM layer, sweeps, and stencils.

These encode the acceptance criteria of the observability layer:

- metrics record only simulated quantities, so dumps are byte-identical
  across repeated runs and across ``--jobs`` settings;
- enabling metrics never changes simulated time.
"""

import pytest

import repro.stencil  # noqa: F401  (registers the variants)
from repro.obs.metrics import MetricsRegistry, active_metrics, use_metrics
from repro.perf.sweep import SweepRunner
from repro.stencil.base import VARIANTS, StencilConfig

CONFIG = dict(global_shape=(66, 130), num_gpus=2, iterations=2, no_compute=True)


def _run(variant="cpufree"):
    registry = MetricsRegistry()
    with use_metrics(registry):
        result = VARIANTS[variant](StencilConfig(**CONFIG)).run()
    return result, registry


@pytest.fixture(scope="module")
def metered():
    return _run()


class TestEngineCounters:
    def test_event_loop_counters_published(self, metered):
        _, registry = metered
        assert registry.value("sim.events_dispatched") > 0
        assert registry.value("sim.heap_pops") > 0
        assert registry.value("sim.processes_spawned") > 0

    def test_flag_wakeups_labeled_per_flag(self, metered):
        _, registry = metered
        series = registry.find("sim.flag.wakeups", "counter")
        assert series, "expected per-flag wakeup counters"
        assert all("flag" in labels for labels, _ in series)
        assert sum(metric.value for _, metric in series) > 0


class TestLinkTraffic:
    def test_bytes_and_transfers_recorded(self, metered):
        _, registry = metered
        byte_series = registry.find("hw.link.bytes", "counter")
        assert byte_series
        assert all(metric.value > 0 for _, metric in byte_series)
        for labels, metric in registry.find("hw.link.transfers", "counter"):
            assert metric.value > 0

    def test_halo_exchange_is_symmetric(self, metered):
        # 2-GPU stencil: each PE sends its halo to the other
        _, registry = metered
        values = {tuple(sorted(labels.items())): metric.value
                  for labels, metric in registry.find("hw.link.bytes", "counter")}
        fwd = values.get((("dst", "1"), ("src", "0")))
        rev = values.get((("dst", "0"), ("src", "1")))
        assert fwd and rev and fwd == rev


class TestNVSHMEMOps:
    def test_op_counts_and_bytes(self, metered):
        _, registry = metered
        ops = registry.find("nvshmem.ops", "counter")
        assert ops
        assert sum(m.value for _, m in ops) > 0
        nbytes = registry.find("nvshmem.bytes", "counter")
        assert sum(m.value for _, m in nbytes) > 0

    def test_signal_wait_accounting(self, metered):
        _, registry = metered
        waits = registry.find("nvshmem.wait.count", "counter")
        assert waits
        hists = registry.find("nvshmem.wait.us.hist", "histogram")
        assert hists
        assert sum(h.count for _, h in hists) == sum(m.value for _, m in waits)


class TestTraceEnrichment:
    def test_flow_ids_pair_puts_with_waits(self, metered):
        result, _ = metered
        starts = {s.meta["flow_s"] for s in result.tracer.spans
                  if isinstance(s.meta, dict) and "flow_s" in s.meta}
        finishes = {s.meta["flow_f"] for s in result.tracer.spans
                    if isinstance(s.meta, dict) and "flow_f" in s.meta}
        assert starts and finishes
        assert finishes <= starts  # every satisfied wait has a producer


class TestDeterminism:
    def test_simulated_time_unchanged_by_metrics(self):
        plain = VARIANTS["cpufree"](StencilConfig(**CONFIG)).run()
        metered_result, _ = _run()
        assert metered_result.total_time_us == plain.total_time_us

    def test_dump_byte_identical_across_runs(self):
        _, a = _run()
        _, b = _run()
        assert a.to_json() == b.to_json()


def _sweep_point(n):
    """Top-level (picklable) sweep worker used by the jobs tests."""
    registry = active_metrics()
    registry.counter("test.points", bucket=n % 2).inc()
    registry.histogram("test.values", edges=(2.0, 8.0)).observe(float(n))
    return n * n


class TestSweepMetricsMerge:
    def _map(self, jobs):
        registry = MetricsRegistry()
        with use_metrics(registry):
            results = SweepRunner(jobs=jobs).map(_sweep_point, [(n,) for n in range(6)])
        return results, registry

    def test_jobs_1_vs_jobs_2_byte_identical(self):
        results_1, reg_1 = self._map(jobs=1)
        results_2, reg_2 = self._map(jobs=2)
        assert results_1 == results_2 == [n * n for n in range(6)]
        assert reg_1.to_json() == reg_2.to_json()
        assert reg_1.value("perf.sweep.points") == 6

    def test_without_ambient_registry_no_metrics(self):
        results = SweepRunner(jobs=1).map(_sweep_point, [])
        assert results == []


class TestStencilCounters:
    def test_run_and_iteration_counters(self, metered):
        _, registry = metered
        assert registry.value("stencil.runs", variant="cpufree") == 1
        assert registry.value("stencil.iterations", variant="cpufree") == \
               CONFIG["iterations"]
        assert registry.value("stencil.sim_time_us", variant="cpufree") > 0
