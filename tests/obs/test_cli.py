"""End-to-end tests for the ``python -m repro.obs`` CLI (in-process)."""

import json

import pytest

from repro.obs.__main__ import main

RUN_ARGS = ["--shape", "66x130", "--gpus", "2", "--iterations", "2"]


class TestRunCommands:
    def test_summary(self, capsys):
        assert main(["summary", *RUN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "cpufree: 66x130 on 2 GPU(s), 2 iteration(s)" in out
        assert "total simulated time:" in out
        assert "overlap ratio" in out
        assert "lane" in out and "busy %" in out

    def test_links(self, capsys):
        assert main(["links", *RUN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "src" in out and "bytes" in out and "mean sharers" in out

    def test_ops(self, capsys):
        assert main(["ops", *RUN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "op" in out and "count" in out
        assert "signal waits" in out

    def test_critical_path(self, capsys):
        assert main(["critical-path", *RUN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "us/iteration" in out
        assert "contributed us" in out

    def test_unknown_variant_exits(self):
        with pytest.raises(SystemExit, match="unknown variant"):
            main(["summary", "--variant", "nope", *RUN_ARGS])


class TestOutputs:
    def test_metrics_out_byte_identical_across_runs(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["summary", *RUN_ARGS, "--metrics-out", str(a)]) == 0
        assert main(["summary", *RUN_ARGS, "--metrics-out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        payload = json.loads(a.read_text())
        assert payload["counters"]  # non-trivial dump

    def test_trace_out_is_valid_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["ops", *RUN_ARGS, "--trace-out", str(path)]) == 0
        events = json.loads(path.read_text())
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        # flow events link puts to satisfied waits
        assert "s" in phases and "f" in phases


class TestDiff:
    @staticmethod
    def _dump(path, values):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        for name, value in values.items():
            reg.counter(name).inc(value)
        path.write_text(reg.to_json())

    def test_identical_dumps_exit_zero(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._dump(a, {"sim.events_dispatched": 100})
        self._dump(b, {"sim.events_dispatched": 100})
        assert main(["diff", str(a), str(b)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._dump(a, {"sim.events_dispatched": 100})
        self._dump(b, {"sim.events_dispatched": 150})
        assert main(["diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "+50.0%" in out

    def test_threshold_tolerates_small_increase(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._dump(a, {"x": 100})
        self._dump(b, {"x": 104})
        assert main(["diff", str(a), str(b), "--threshold", "0.05"]) == 0
        assert main(["diff", str(a), str(b), "--threshold", "0.01"]) == 1

    def test_improvement_exits_zero(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._dump(a, {"x": 100})
        self._dump(b, {"x": 50})
        assert main(["diff", str(a), str(b)]) == 0
        assert "improved" in capsys.readouterr().out

    def test_nested_bench_json_diffable(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps({"suite": {"wall_seconds": 2.0}}))
        b.write_text(json.dumps({"suite": {"wall_seconds": 1.9}}))
        assert main(["diff", str(a), str(b)]) == 0
