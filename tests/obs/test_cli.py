"""End-to-end tests for the ``python -m repro.obs`` CLI (in-process)."""

import json

import pytest

from repro.cliutil import CliError, cli_entry
from repro.obs.__main__ import main

RUN_ARGS = ["--shape", "66x130", "--gpus", "2", "--iterations", "2"]


class TestRunCommands:
    def test_summary(self, capsys):
        assert main(["summary", *RUN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "cpufree: 66x130 on 2 GPU(s), 2 iteration(s)" in out
        assert "total simulated time:" in out
        assert "overlap ratio" in out
        assert "lane" in out and "busy %" in out

    def test_links(self, capsys):
        assert main(["links", *RUN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "src" in out and "bytes" in out and "mean sharers" in out

    def test_ops(self, capsys):
        assert main(["ops", *RUN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "op" in out and "count" in out
        assert "signal waits" in out

    def test_critical_path(self, capsys):
        assert main(["critical-path", *RUN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "us/iteration" in out
        assert "contributed us" in out

    def test_unknown_variant_is_a_cli_error(self, capsys):
        with pytest.raises(CliError, match="unknown variant"):
            main(["summary", "--variant", "nope", *RUN_ARGS])
        # the module entry point renders it per the shared convention
        assert cli_entry(main, ["summary", "--variant", "nope", *RUN_ARGS]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown variant 'nope'")
        assert "cpufree" in err  # lists the valid choices


class TestOutputs:
    def test_metrics_out_byte_identical_across_runs(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["summary", *RUN_ARGS, "--metrics-out", str(a)]) == 0
        assert main(["summary", *RUN_ARGS, "--metrics-out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        payload = json.loads(a.read_text())
        assert payload["counters"]  # non-trivial dump

    def test_trace_out_is_valid_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["ops", *RUN_ARGS, "--trace-out", str(path)]) == 0
        events = json.loads(path.read_text())
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        # flow events link puts to satisfied waits
        assert "s" in phases and "f" in phases


class TestTimelineCommand:
    def test_prints_gantt_and_table(self, capsys):
        assert main(["timeline", *RUN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "legend" in out and "# compute" in out
        assert "overlap (non-compute hidden under compute)" in out
        assert "comm ovl" in out

    def test_timeline_out_byte_identical_and_self_describing(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["timeline", *RUN_ARGS, "--timeline-out", str(a)]) == 0
        assert main(["timeline", *RUN_ARGS, "--timeline-out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        payload = json.loads(a.read_text())
        assert payload["format"] == "repro-timeline-v1"
        assert payload["run"]["variant"] == "cpufree"
        assert payload["run"]["gpus"] == 2
        assert len(payload["pes"]) == 2


class TestWhatifCommand:
    def test_default_scenarios_ranked(self, capsys):
        assert main(["whatif", *RUN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "baseline makespan:" in out
        assert "compute x2" in out and "comm x2" in out and "host x2" in out

    def test_custom_scale_and_json_out(self, tmp_path, capsys):
        path = tmp_path / "wi.json"
        assert main(["whatif", *RUN_ARGS, "--scale", "comm=0.5",
                     "--json-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-whatif-v1"
        assert len(payload["scenarios"]) == 1
        assert payload["scenarios"][0]["comm"] == 0.5

    def test_unknown_scale_resource_is_a_cli_error(self):
        with pytest.raises(CliError, match="unknown resource"):
            main(["whatif", *RUN_ARGS, "--scale", "tpu=0.5"])


class TestRegressCommand:
    @staticmethod
    def _store(path):
        from repro.obs.history import HistoryStore

        return HistoryStore(path)

    def test_clean_rerun_exits_zero(self, tmp_path, capsys):
        store = self._store(tmp_path / "hist.jsonl")
        for run in ("base", "check"):
            store.append({"run": run, "id": "p1", "per_iter_us": 10.0})
        assert main(["regress", str(store.path)]) == 0
        assert "1 ok" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        store = self._store(tmp_path / "hist.jsonl")
        store.append({"run": "base", "id": "p1", "per_iter_us": 10.0})
        store.append({"run": "check", "id": "p1", "per_iter_us": 12.0})
        assert main(["regress", str(store.path)]) == 1
        assert "[regression]" in capsys.readouterr().out

    def test_rtol_for_override(self, tmp_path):
        store = self._store(tmp_path / "hist.jsonl")
        store.append({"run": "base", "id": "p1", "per_iter_us": 10.0})
        store.append({"run": "check", "id": "p1", "per_iter_us": 12.0})
        assert main(["regress", str(store.path),
                     "--rtol-for", "p*=0.3"]) == 0

    def test_missing_run_is_a_cli_error(self, tmp_path):
        store = self._store(tmp_path / "hist.jsonl")
        store.append({"run": "base", "id": "p1", "per_iter_us": 10.0})
        with pytest.raises(CliError, match="no baseline run"):
            main(["regress", str(store.path)])


class TestErrorConventionAcrossClis:
    """All four repro.* CLIs render bad invocations the same way."""

    def test_faults_unknown_variant(self, capsys):
        from repro.faults.__main__ import main as faults_main

        assert cli_entry(faults_main, ["--variants", "nope"]) == 2
        assert capsys.readouterr().err.startswith("error: unknown variant")

    def test_sanitize_unknown_variant(self, capsys):
        from repro.sanitize.__main__ import main as sanitize_main

        assert cli_entry(
            sanitize_main,
            ["run", "--variant", "nope", "--shape", "18x18",
             "--iterations", "1"],
        ) == 2
        assert capsys.readouterr().err.startswith("error: unknown variant")

    def test_obs_diff_unreadable_input(self, capsys, tmp_path):
        missing = tmp_path / "does-not-exist.json"
        assert cli_entry(main, ["diff", str(missing), str(missing)]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestDiff:
    @staticmethod
    def _dump(path, values):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        for name, value in values.items():
            reg.counter(name).inc(value)
        path.write_text(reg.to_json())

    def test_identical_dumps_exit_zero(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._dump(a, {"sim.events_dispatched": 100})
        self._dump(b, {"sim.events_dispatched": 100})
        assert main(["diff", str(a), str(b)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._dump(a, {"sim.events_dispatched": 100})
        self._dump(b, {"sim.events_dispatched": 150})
        assert main(["diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "+50.0%" in out

    def test_threshold_tolerates_small_increase(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._dump(a, {"x": 100})
        self._dump(b, {"x": 104})
        assert main(["diff", str(a), str(b), "--threshold", "0.05"]) == 0
        assert main(["diff", str(a), str(b), "--threshold", "0.01"]) == 1

    def test_improvement_exits_zero(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._dump(a, {"x": 100})
        self._dump(b, {"x": 50})
        assert main(["diff", str(a), str(b)]) == 0
        assert "improved" in capsys.readouterr().out

    def test_nested_bench_json_diffable(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps({"suite": {"wall_seconds": 2.0}}))
        b.write_text(json.dumps({"suite": {"wall_seconds": 1.9}}))
        assert main(["diff", str(a), str(b)]) == 0
