"""Perf history store and the noise-aware regression gate."""

import pytest

from repro.obs.history import (
    HistoryStore,
    normalized_identity,
    regress,
    regress_table,
)


@pytest.fixture
def store(tmp_path):
    return HistoryStore(tmp_path / "hist.jsonl")


def _fill(store, run, values, field="per_iter_us", **extra):
    for pid, value in values.items():
        store.append({"run": run, "id": pid, field: value, **extra})


class TestStore:
    def test_round_trip_and_run_order(self, store):
        _fill(store, "base", {"a": 1.0, "b": 2.0})
        _fill(store, "check", {"a": 1.1})
        assert [r["id"] for r in store.records()] == ["a", "b", "a"]
        assert store.runs() == ["base", "check"]
        assert store.latest_run() == "check"

    def test_append_requires_run_and_id(self, store):
        with pytest.raises(ValueError, match="needs 'run' and 'id'"):
            store.append({"id": "a", "per_iter_us": 1.0})

    def test_missing_file_reads_empty(self, store):
        assert store.records() == []
        assert store.latest_run() is None

    def test_corrupt_line_skipped_and_reported(self, store):
        store.append({"run": "base", "id": "a", "per_iter_us": 1.0})
        with open(store.path, "a") as fh:
            fh.write("not json\n")
        store.append({"run": "base", "id": "b", "per_iter_us": 2.0})
        records = store.records()
        assert [r["id"] for r in records] == ["a", "b"]
        assert store.corrupt == [(2, "unparseable JSON (torn line?)")]

    def test_checksum_mismatch_skipped(self, store):
        store.append({"run": "base", "id": "a", "per_iter_us": 1.0})
        text = store.path.read_text()
        store.path.write_text(text.replace("1.0", "9.0"))
        assert store.records() == []
        assert store.corrupt == [(1, "checksum mismatch")]

    def test_legacy_records_without_sha_accepted(self, store):
        import json

        with open(store.path, "a") as fh:
            fh.write(json.dumps({"run": "base", "id": "a",
                                 "per_iter_us": 1.0}) + "\n")
        assert [r["id"] for r in store.records()] == ["a"]
        assert store.corrupt == []

    def test_blank_lines_tolerated(self, store):
        store.append({"run": "base", "id": "a", "per_iter_us": 1.0})
        with open(store.path, "a") as fh:
            fh.write("\n\n")
        assert len(store.records()) == 1

    def test_median_of_repeats(self, store):
        for value in (10.0, 30.0, 11.0):
            store.append({"run": "base", "id": "a", "per_iter_us": value})
        assert store.medians("base", "per_iter_us") == {"a": 11.0}

    def test_wall_medians_span_all_runs(self, store):
        store.append({"run": "base", "id": "a", "wall_s": 1.0})
        store.append({"run": "check", "id": "a", "wall_s": 3.0})
        store.append({"run": "check", "id": "b", "per_iter_us": 5.0})
        assert store.wall_medians() == {"a": 2.0}


class TestNormalizedIdentity:
    def test_profile_repr_becomes_none(self):
        identity = ("repro.bench.figures._stencil_point|"
                    "((1026, 2050), 4, 'degraded')|cpufree")
        assert normalized_identity(identity, "degraded") == (
            "repro.bench.figures._stencil_point|"
            "((1026, 2050), 4, None)|cpufree")

    def test_none_profile_is_identity(self):
        assert normalized_identity("x|y|z", None) == "x|y|z"

    def test_faulted_and_clean_runs_share_keys(self, store):
        clean = "fn|((8, 8), 2, None)|cpufree"
        faulted = "fn|((8, 8), 2, 'degraded')|cpufree"
        store.append({"run": "base", "id": normalized_identity(clean, None),
                      "per_iter_us": 10.0})
        store.append({"run": "slow",
                      "id": normalized_identity(faulted, "degraded"),
                      "per_iter_us": 13.0})
        report = regress(store)
        assert [e.status for e in report.entries] == ["regression"]


class TestRegress:
    def test_self_comparison_is_exactly_ok(self, store):
        _fill(store, "base", {"a": 10.0, "b": 5.0})
        _fill(store, "check", {"a": 10.0, "b": 5.0})
        report = regress(store)
        assert report.ok
        assert {e.status for e in report.entries} == {"ok"}
        assert all(e.rel == 0.0 for e in report.entries)

    def test_slowdown_past_tolerance_regresses(self, store):
        _fill(store, "base", {"a": 10.0})
        _fill(store, "check", {"a": 10.6})
        report = regress(store, rtol=0.05)
        assert not report.ok
        assert report.regressions[0].rel == pytest.approx(0.06)

    def test_slowdown_within_tolerance_is_ok(self, store):
        _fill(store, "base", {"a": 10.0})
        _fill(store, "check", {"a": 10.4})
        assert regress(store, rtol=0.05).ok

    def test_speedup_is_improved(self, store):
        _fill(store, "base", {"a": 10.0})
        _fill(store, "check", {"a": 8.0})
        assert regress(store).entries[0].status == "improved"

    def test_higher_is_better_fields_flip_direction(self, store):
        _fill(store, "base", {"a": 0.8}, field="overlap")
        _fill(store, "check", {"a": 0.5}, field="overlap")
        report = regress(store, field_name="overlap", rtol=0.05)
        assert not report.ok  # overlap *dropped*: that is the regression

    def test_added_and_missing_never_fail(self, store):
        _fill(store, "base", {"a": 10.0, "gone": 1.0})
        _fill(store, "check", {"a": 10.0, "new": 2.0})
        report = regress(store)
        assert report.ok
        by_id = {e.id: e.status for e in report.entries}
        assert by_id == {"a": "ok", "gone": "missing", "new": "added"}

    def test_default_runs_latest_vs_first_other(self, store):
        _fill(store, "r1", {"a": 10.0})
        _fill(store, "r2", {"a": 11.0})
        _fill(store, "r3", {"a": 20.0})
        report = regress(store)
        assert report.run == "r3" and report.baseline_run == "r1"

    def test_explicit_run_selection(self, store):
        _fill(store, "r1", {"a": 10.0})
        _fill(store, "r2", {"a": 20.0})
        report = regress(store, run="r1", baseline="r2")
        assert report.entries[0].status == "improved"

    def test_rtol_for_last_match_wins(self, store):
        _fill(store, "base", {"noisy/a": 10.0})
        _fill(store, "check", {"noisy/a": 12.0})
        assert not regress(store, rtol_for={"noisy/*": 0.05}).ok
        assert regress(store, rtol_for={"noisy/*": 0.05,
                                        "noisy/a": 0.5}).ok

    def test_unknown_run_raises(self, store):
        _fill(store, "base", {"a": 1.0})
        with pytest.raises(ValueError, match="no records for run"):
            regress(store, run="nope")
        with pytest.raises(ValueError, match="no baseline run"):
            regress(store)

    def test_median_shields_one_noisy_repeat(self, store):
        _fill(store, "base", {"a": 10.0})
        for value in (10.0, 10.0, 99.0):  # one outlier repetition
            store.append({"run": "check", "id": "a", "per_iter_us": value})
        assert regress(store).ok


class TestRegressTable:
    def test_lists_regressions_and_summary(self, store):
        _fill(store, "base", {"a": 10.0, "b": 10.0})
        _fill(store, "check", {"a": 15.0, "b": 10.0})
        text = regress_table(regress(store))
        assert "[regression] a:" in text
        assert "b:" not in text  # ok rows hidden by default
        assert "2 point(s) compared: 1 ok, 1 regression" in text

    def test_show_ok_lists_everything(self, store):
        _fill(store, "base", {"a": 10.0})
        _fill(store, "check", {"a": 10.0})
        text = regress_table(regress(store), show_ok=True)
        assert "[ok] a:" in text
