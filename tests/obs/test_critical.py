"""Unit tests for critical-path extraction."""

from repro.obs.critical import critical_path
from repro.sim.trace import Span


def span(lane, name, start, end, category="compute", meta=None):
    return Span(lane, name, category, start, end, meta)


class TestLaneChains:
    def test_empty_input(self):
        report = critical_path([])
        assert report.steps == []
        assert report.total_us == 0.0
        assert report.by_category == {}

    def test_single_span(self):
        report = critical_path([span("gpu0", "a", 0.0, 5.0)])
        assert report.total_us == 5.0
        assert [s.span.name for s in report.steps] == ["a"]
        assert report.by_category == {"compute": 5.0}

    def test_sequential_same_lane_chains(self):
        spans = [
            span("gpu0", "a", 0.0, 2.0),
            span("gpu0", "b", 2.0, 5.0),
            span("gpu0", "c", 5.0, 9.0),
        ]
        report = critical_path(spans)
        assert report.total_us == 9.0
        assert [s.span.name for s in report.steps] == ["a", "b", "c"]

    def test_longest_lane_wins(self):
        spans = [
            span("gpu0", "short", 0.0, 1.0),
            span("gpu1", "long", 0.0, 7.0),
        ]
        report = critical_path(spans)
        assert report.total_us == 7.0
        assert [s.span.name for s in report.steps] == ["long"]

    def test_overlapping_spans_on_one_lane_do_not_chain(self):
        # second span starts before the first ends -> no lane dependency,
        # so the longest chain is one span, not the makespan
        spans = [
            span("gpu0", "a", 0.0, 4.0),
            span("gpu0", "b", 1.0, 5.0),
        ]
        report = critical_path(spans)
        assert report.total_us == 4.0
        assert len(report.steps) == 1


class TestFlowLinks:
    def test_flow_contributes_only_the_tail(self):
        # producer on gpu0 finishes at t=4; the wait on gpu1 spans [0, 6):
        # only the tail [4, 6) after the producer is attributable to the wait
        spans = [
            span("gpu0", "put", 0.0, 4.0, "comm", {"flow_s": 1}),
            span("gpu1", "wait", 0.0, 6.0, "sync", {"flow_f": 1}),
        ]
        report = critical_path(spans)
        assert report.total_us == 6.0
        assert [s.span.name for s in report.steps] == ["put", "wait"]
        assert report.by_category == {"comm": 4.0, "sync": 2.0}

    def test_cross_lane_chain_beats_local_lane(self):
        spans = [
            span("gpu0", "compute", 0.0, 3.0),
            span("gpu0", "put", 3.0, 5.0, "comm", {"flow_s": 7}),
            span("gpu1", "wait", 0.0, 5.5, "sync", {"flow_f": 7}),
            span("gpu1", "compute2", 5.5, 6.0),
        ]
        report = critical_path(spans)
        assert [s.span.name for s in report.steps] == [
            "compute", "put", "wait", "compute2"
        ]
        assert report.total_us == 6.0
        # wait contributed only its post-producer tail 5.5 - 5.0 = 0.5
        assert report.by_category["sync"] == 0.5

    def test_unmatched_flow_f_falls_back_to_lane_order(self):
        spans = [span("gpu1", "wait", 0.0, 3.0, "sync", {"flow_f": 99})]
        report = critical_path(spans)
        assert report.total_us == 3.0


class TestReportProperties:
    def test_per_iteration_and_fraction(self):
        spans = [
            span("gpu0", "a", 0.0, 6.0, "compute"),
            span("gpu0", "b", 6.0, 8.0, "sync"),
        ]
        report = critical_path(spans, iterations=4)
        assert report.total_us == 8.0
        assert report.per_iteration_us == 2.0
        assert report.fraction("compute") == 0.75
        assert report.fraction("sync") == 0.25
        assert report.fraction("comm") == 0.0

    def test_category_attribution_sums_to_total(self):
        spans = [
            span("gpu0", "a", 0.0, 3.0, "compute"),
            span("gpu0", "p", 3.0, 4.0, "comm", {"flow_s": 1}),
            span("gpu1", "w", 2.0, 4.5, "sync", {"flow_f": 1}),
        ]
        report = critical_path(spans)
        assert sum(report.by_category.values()) == report.total_us

    def test_deterministic_across_input_order(self):
        spans = [
            span("gpu0", "a", 0.0, 2.0),
            span("gpu1", "b", 0.0, 2.0),
            span("gpu0", "c", 2.0, 4.0, "comm", {"flow_s": 3}),
            span("gpu1", "d", 2.0, 4.5, "sync", {"flow_f": 3}),
        ]
        forward = critical_path(spans)
        backward = critical_path(list(reversed(spans)))
        assert [s.span.name for s in forward.steps] == \
               [s.span.name for s in backward.steps]
        assert forward.total_us == backward.total_us
