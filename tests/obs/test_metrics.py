"""Unit tests for the deterministic metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_US_EDGES,
    Histogram,
    MetricsRegistry,
    active_metrics,
    use_metrics,
)


class TestCounter:
    def test_inc_defaults_to_one(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc()
        assert reg.value("x") == 2

    def test_inc_by_amount(self):
        reg = MetricsRegistry()
        reg.counter("bytes").inc(4096)
        assert reg.value("bytes") == 4096

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="decrement"):
            reg.counter("x").inc(-1)

    def test_labels_identify_series(self):
        reg = MetricsRegistry()
        reg.counter("ops", src=0, dst=1).inc()
        reg.counter("ops", src=1, dst=0).inc(3)
        assert reg.value("ops", src=0, dst=1) == 1
        assert reg.value("ops", src=1, dst=0) == 3

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("ops", a=1, b=2).inc()
        reg.counter("ops", b=2, a=1).inc()
        assert reg.value("ops", a=1, b=2) == 2
        assert len(reg) == 1


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("level").set(3)
        reg.gauge("level").set(7)
        assert reg.value("level") == 7


class TestHistogram:
    def test_buckets_and_overflow(self):
        h = Histogram(edges=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 2]
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        assert h.mean == pytest.approx(555.5 / 4)

    def test_value_on_edge_falls_in_lower_bucket(self):
        h = Histogram(edges=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_edges_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(edges=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(edges=(2.0, 1.0))

    def test_default_edges(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait_us")
        assert h.edges == DEFAULT_US_EDGES

    def test_merge_requires_equal_edges(self):
        a = Histogram(edges=(1.0, 2.0))
        with pytest.raises(ValueError, match="different edges"):
            a._merge({"edges": [1.0, 3.0], "counts": [0, 0, 0], "sum": 0, "count": 0})


class TestRegistryDump:
    def test_to_json_is_byte_stable_across_creation_order(self):
        a = MetricsRegistry()
        a.counter("x", k=1).inc()
        a.counter("y").inc(2)
        a.gauge("g").set(5)
        b = MetricsRegistry()
        b.gauge("g").set(5)
        b.counter("y").inc(2)
        b.counter("x", k=1).inc()
        assert a.to_json() == b.to_json()

    def test_to_json_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        payload = json.loads(reg.to_json())
        assert payload["counters"][0]["name"] == "x"
        assert payload["histograms"][0]["counts"] == [1, 0]

    def test_merge_dict_adds_counters_and_histograms(self):
        a = MetricsRegistry()
        a.counter("x").inc(2)
        a.histogram("h", edges=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("x").inc(3)
        b.counter("y", lane=0).inc()
        b.histogram("h", edges=(1.0,)).observe(2.0)
        b.gauge("g").set(9)
        a.merge_dict(b.to_dict())
        assert a.value("x") == 5
        assert a.value("y", lane=0) == 1
        assert a.value("g") == 9
        h = a.histogram("h", edges=(1.0,))
        assert h.counts == [1, 1] and h.count == 2

    def test_merge_is_associative_over_worker_order(self):
        """Merging worker dumps in submission order gives one canonical
        dump regardless of how work was partitioned."""
        def make(n):
            r = MetricsRegistry()
            r.counter("x").inc(n)
            r.histogram("h").observe(float(n))
            return r

        serial = MetricsRegistry()
        for n in (1, 2, 3):
            serial.merge_dict(make(n).to_dict())
        pair = MetricsRegistry()
        ab = MetricsRegistry()
        ab.merge_dict(make(1).to_dict())
        ab.merge_dict(make(2).to_dict())
        pair.merge_dict(ab.to_dict())
        pair.merge_dict(make(3).to_dict())
        assert serial.to_json() == pair.to_json()

    def test_find_returns_sorted_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("ops", src=1).inc()
        reg.counter("ops", src=0).inc()
        labels = [l for l, _ in reg.find("ops")]
        assert labels == [{"src": "0"}, {"src": "1"}]


class TestActiveRegistry:
    def test_disabled_by_default(self):
        assert active_metrics() is None

    def test_use_metrics_installs_and_restores(self):
        reg = MetricsRegistry()
        with use_metrics(reg) as installed:
            assert installed is reg
            assert active_metrics() is reg
        assert active_metrics() is None

    def test_nesting_restores_outer(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_metrics(outer):
            with use_metrics(inner):
                assert active_metrics() is inner
            assert active_metrics() is outer

    def test_restored_after_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_metrics(reg):
                raise RuntimeError("boom")
        assert active_metrics() is None
