"""Critical-path extraction over the traced span DAG.

The tracer records *what ran when*; this module answers *why the run
took as long as it did*.  Dependencies are reconstructed from two
sources:

- **lane order**: on one lane (a host thread, a TB group, a wire),
  a span depends on the latest span that finished at or before it
  started;
- **flow links**: a ``putmem_signal`` span whose metadata carries a
  ``flow_s`` id feeds the ``signal_wait_until`` span on the destination
  PE carrying the matching ``flow_f`` id (recorded by
  :mod:`repro.nvshmem.device` when tracing is enabled).

The longest dependency chain is computed by dynamic programming over
spans sorted by completion time.  A flow dependency only contributes
the *tail* of the waiting span — the part after the producer finished —
so blocked time that overlaps the producer is not double counted.
Attribution sums those contributions per category, reproducing the
compute / comm / sync decomposition of the paper's overhead argument.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.sim.trace import Span

__all__ = ["CriticalPathReport", "PathStep", "critical_path"]


@dataclass(frozen=True)
class PathStep:
    """One span on the critical path and its contributed time."""

    span: Span
    contributed_us: float


@dataclass
class CriticalPathReport:
    """The longest dependency chain and its attribution."""

    steps: list[PathStep]
    total_us: float
    by_category: dict[str, float]
    iterations: int = 1

    @property
    def per_iteration_us(self) -> float:
        return self.total_us / max(1, self.iterations)

    def fraction(self, category: str) -> float:
        return self.by_category.get(category, 0.0) / self.total_us if self.total_us else 0.0


def _flow_id(span: Span, key: str):
    meta = span.meta
    return meta.get(key) if isinstance(meta, dict) else None


def critical_path(spans: list[Span], iterations: int = 1) -> CriticalPathReport:
    """Longest dependency chain through ``spans`` (see module docs)."""
    if not spans:
        return CriticalPathReport([], 0.0, {}, iterations)
    # deterministic processing order: completion time, then start/lane/name
    order = sorted(range(len(spans)),
                   key=lambda i: (spans[i].end, spans[i].start, spans[i].lane,
                                  spans[i].name, i))
    rank = {idx: pos for pos, idx in enumerate(order)}

    # lane-order predecessor: latest span on the same lane with end <= start
    by_lane: dict[str, list[int]] = {}
    lane_pos: dict[int, int] = {}
    for i in order:
        members = by_lane.setdefault(spans[i].lane, [])
        lane_pos[i] = len(members)
        members.append(i)
    lane_ends = {lane: [spans[j].end for j in members]
                 for lane, members in by_lane.items()}

    # flow links: producer span (flow_s) -> consumer span (flow_f)
    producers = {_flow_id(spans[i], "flow_s"): i for i in order
                 if _flow_id(spans[i], "flow_s") is not None}

    best: dict[int, float] = {}
    pred: dict[int, int | None] = {}
    contrib: dict[int, float] = {}

    for i in order:
        span = spans[i]
        candidates: list[tuple[float, float, int]] = []  # (chain, contributed, pred)
        # lane predecessor: rightmost earlier lane span with end <= start
        k = bisect_right(lane_ends[span.lane], span.start + 1e-12, 0, lane_pos[i]) - 1
        if k >= 0:
            prev = by_lane[span.lane][k]
            candidates.append((best[prev] + span.duration, span.duration, prev))
        # flow predecessor (only the tail after the producer completes)
        fid = _flow_id(span, "flow_f")
        if fid is not None:
            j = producers.get(fid)
            if j is not None and rank[j] < rank[i]:
                tail = span.end - max(span.start, spans[j].end)
                if tail >= 0:
                    candidates.append((best[j] + tail, tail, j))
        if candidates:
            chain, used, parent = max(candidates, key=lambda c: (c[0], -rank[c[2]]))
        else:
            chain, used, parent = span.duration, span.duration, None
        best[i] = chain
        pred[i] = parent
        contrib[i] = used

    # endpoint: maximal chain; ties broken by the deterministic order
    end = max(order, key=lambda i: (best[i], rank[i]))
    steps: list[PathStep] = []
    node: int | None = end
    while node is not None:
        steps.append(PathStep(spans[node], contrib[node]))
        node = pred[node]
    steps.reverse()

    by_category: dict[str, float] = {}
    for step in steps:
        by_category[step.span.category] = (
            by_category.get(step.span.category, 0.0) + step.contributed_us
        )
    return CriticalPathReport(steps, best[end], by_category, iterations)
