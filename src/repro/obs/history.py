"""Append-only perf history keyed by manifest point identity.

Every sweep point already has a source-independent name — the PR 5
manifest :func:`~repro.perf.cache.point_identity`.  This module turns
runs into a *trajectory*: each run appends one JSONL record per point
(simulated per-iteration time, overlap fraction, wall time, metrics
digest), and ``repro.obs regress`` compares two runs with noise-aware
thresholds.

Design rules:

**Append-only JSONL.**  One compact, key-sorted JSON object per line.
Appending never rewrites history, concurrent readers see a prefix, and
the file diffs/merges like a log.  Records carry a ``run`` label
(``--run-label``, e.g. a git SHA or ``base``/``check``) and the
normalized point ``id``.

**Crash-safe lines.**  Every record is stamped with a ``_sha``
checksum (first 12 hex of sha256 over the rest of the record) and
appended with a single ``write`` call.  Reads are *tolerant*: a torn
tail from a killed writer, a flipped byte, or a concurrent-append
interleaving is detected, skipped, and reported via
:attr:`HistoryStore.corrupt` — one damaged line costs one record,
never the whole history.  Records written before the checksum existed
(no ``_sha`` field) still load.

**Identity normalization.**  A faulted run's identities differ
textually from clean ones — the fault profile travels inside the
config repr (``fault_profile='degraded'``) and as a positional argument
(``'degraded'``).  :func:`normalized_identity` replaces the profile's
``repr`` with ``None`` so the *same point* under a straggler lands on
the *same history key* as its clean baseline — which is exactly what
lets the regression gate see the slowdown instead of two disjoint
point sets.  The profile is still recorded per record.

**Gate on simulated time.**  The default regression field is
``per_iter_us`` — deterministic simulated time, so re-running the same
code against its own baseline passes *exactly* (the CI gate's
self-consistency check).  Wall time is recorded informationally and
can be gated explicitly (``--field wall_s``) with a generous
tolerance.

**Median of N.**  A run may contain several records per id (repeat
sweeps); comparisons use the per-id median, so one noisy repetition
cannot flip the verdict.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from statistics import median
from typing import Any, Iterable

__all__ = [
    "HistoryStore",
    "RegressEntry",
    "RegressReport",
    "normalized_identity",
    "regress",
    "regress_table",
]

HISTORY_FORMAT = "repro-perf-history-v1"

#: gateable fields and whether an *increase* is a regression
LOWER_IS_BETTER = frozenset({"per_iter_us", "comm_us_per_iter", "wall_s"})
HIGHER_IS_BETTER = frozenset({"overlap", "overlap_ratio", "events_per_s"})


def normalized_identity(identity: str, profile: str | None = None) -> str:
    """Strip a fault profile out of a point identity (see module docs).

    ``repr(profile)`` (e.g. ``'degraded'`` with quotes) appears both in
    the config's dataclass repr and as a positional argument; replacing
    it with ``None`` reproduces the clean run's identity text.  Profile
    names are simple identifiers (optionally ``name@seed``), so the
    quoted text cannot collide with anything else in the repr.
    """
    if profile is None:
        return identity
    return identity.replace(repr(profile), "None")


def _record_sha(record: dict[str, Any]) -> str:
    """Integrity mark: sha256 (first 12 hex) over the record minus its
    ``_sha`` field, dumped with sorted keys."""
    body = {k: v for k, v in record.items() if k != "_sha"}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True, allow_nan=False).encode()
    ).hexdigest()[:12]


class HistoryStore:
    """Append-only JSONL store of per-point perf records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: damaged lines seen by the last :meth:`records` call, as
        #: ``(lineno, reason)`` — quarantined (skipped), never raised
        self.corrupt: list[tuple[int, str]] = []

    def append(self, record: dict[str, Any]) -> None:
        """Append one checksummed record (must carry ``run`` and
        ``id``).  The line goes out in a single ``write``, so a crash
        or a concurrent appender can tear at most this one record."""
        if "run" not in record or "id" not in record:
            raise ValueError(f"history record needs 'run' and 'id': {record}")
        record = dict(record)
        record["_sha"] = _record_sha(record)
        line = json.dumps(record, sort_keys=True, allow_nan=False)
        with open(self.path, "a") as fh:
            fh.write(line + "\n")

    def extend(self, records: Iterable[dict[str, Any]]) -> int:
        n = 0
        for record in records:
            self.append(record)
            n += 1
        return n

    def records(self) -> list[dict[str, Any]]:
        """All intact records in file order.

        Tolerant by design (the store must survive killed writers):
        unparseable lines and checksum mismatches are skipped and
        reported in :attr:`corrupt` instead of raising.  Legacy records
        without a ``_sha`` field are accepted as-is.
        """
        try:
            text = self.path.read_text()
        except OSError:
            self.corrupt = []
            return []
        out = []
        corrupt: list[tuple[int, str]] = []
        for lineno, line in enumerate(text.splitlines(), 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                corrupt.append((lineno, "unparseable JSON (torn line?)"))
                continue
            if not isinstance(record, dict):
                corrupt.append((lineno, "not a JSON object"))
                continue
            if "_sha" in record and record["_sha"] != _record_sha(record):
                corrupt.append((lineno, "checksum mismatch"))
                continue
            out.append(record)
        self.corrupt = corrupt
        return out

    def runs(self) -> list[str]:
        """Distinct run labels in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records():
            seen.setdefault(record["run"], None)
        return list(seen)

    def latest_run(self) -> str | None:
        runs = self.runs()
        return runs[-1] if runs else None

    def values(self, run: str, field_name: str) -> dict[str, list[float]]:
        """Per-id list of a numeric field's values within one run."""
        out: dict[str, list[float]] = {}
        for record in self.records():
            if record["run"] != run:
                continue
            value = record.get(field_name)
            if isinstance(value, (int, float)):
                out.setdefault(record["id"], []).append(float(value))
        return out

    def medians(self, run: str, field_name: str) -> dict[str, float]:
        """Per-id median of a field within one run (noise robustness)."""
        return {pid: median(vals)
                for pid, vals in self.values(run, field_name).items()}

    def wall_medians(self) -> dict[str, float]:
        """Per-id median wall seconds across *all* runs — the ETA
        estimate the live progress renderer uses."""
        out: dict[str, list[float]] = {}
        for record in self.records():
            value = record.get("wall_s")
            if isinstance(value, (int, float)):
                out.setdefault(record["id"], []).append(float(value))
        return {pid: median(vals) for pid, vals in out.items()}


@dataclass(frozen=True)
class RegressEntry:
    """One compared point."""

    id: str
    baseline: float | None
    current: float | None
    rel: float  #: signed relative change, (current - baseline) / baseline
    tol: float
    status: str  #: "ok" | "improved" | "regression" | "missing" | "added"


@dataclass
class RegressReport:
    """Outcome of one run-vs-baseline comparison."""

    run: str
    baseline_run: str
    field: str
    entries: list[RegressEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[RegressEntry]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _tolerance(identity: str, rtol: float,
               rtol_for: dict[str, float] | None) -> float:
    """Per-point tolerance: the last matching fnmatch pattern wins."""
    tol = rtol
    for pattern, value in (rtol_for or {}).items():
        if fnmatch(identity, pattern):
            tol = value
    return tol


def regress(store: HistoryStore, *, run: str | None = None,
            baseline: str | None = None, field_name: str = "per_iter_us",
            rtol: float = 0.05,
            rtol_for: dict[str, float] | None = None) -> RegressReport:
    """Compare ``run`` against ``baseline`` on one field.

    Defaults: ``run`` is the latest label in the store, ``baseline``
    the first label that differs from ``run``.  A point regresses when
    its median moves in the *bad* direction (field-dependent) by more
    than its tolerance; points present on only one side are reported
    (``missing`` / ``added``) but never fail the gate — the point set
    may legitimately change between commits.
    """
    runs = store.runs()
    if run is None:
        run = runs[-1] if runs else None
    if run is None or run not in runs:
        raise ValueError(f"no records for run {run!r} in {store.path} "
                         f"(runs: {runs})")
    if baseline is None:
        others = [r for r in runs if r != run]
        if not others:
            raise ValueError(f"no baseline run in {store.path}: only {runs}")
        baseline = others[0]
    if baseline not in runs:
        raise ValueError(f"no records for baseline run {baseline!r} in "
                         f"{store.path} (runs: {runs})")
    if field_name in HIGHER_IS_BETTER:
        bad_sign = -1.0
    else:
        # unknown fields default to lower-is-better (they are times)
        bad_sign = 1.0
    base = store.medians(baseline, field_name)
    cur = store.medians(run, field_name)
    report = RegressReport(run, baseline, field_name)
    for pid in sorted(base.keys() | cur.keys()):
        tol = _tolerance(pid, rtol, rtol_for)
        if pid not in cur:
            report.entries.append(RegressEntry(pid, base[pid], None, 0.0, tol,
                                               "missing"))
            continue
        if pid not in base:
            report.entries.append(RegressEntry(pid, None, cur[pid], 0.0, tol,
                                               "added"))
            continue
        b, c = base[pid], cur[pid]
        rel = (c - b) / b if b else (0.0 if c == b else float("inf"))
        badness = bad_sign * rel
        if badness > tol:
            status = "regression"
        elif badness < 0.0:
            status = "improved"
        else:
            status = "ok"
        report.entries.append(RegressEntry(pid, b, c, rel, tol, status))
    return report


def regress_table(report: RegressReport, *, show_ok: bool = False) -> str:
    """Plain-text verdict listing (regressions always shown)."""
    lines = [f"regress: run {report.run!r} vs baseline "
             f"{report.baseline_run!r} on {report.field}"]
    counts: dict[str, int] = {}
    for entry in report.entries:
        counts[entry.status] = counts.get(entry.status, 0) + 1
        if entry.status in ("ok", "improved") and not show_ok:
            continue
        if entry.status in ("missing", "added"):
            lines.append(f"  [{entry.status}] {entry.id}")
            continue
        lines.append(
            f"  [{entry.status}] {entry.id}: "
            f"{entry.baseline:g} -> {entry.current:g} "
            f"({100.0 * entry.rel:+.1f}%, tol {100.0 * entry.tol:.1f}%)"
        )
    summary = ", ".join(f"{counts.get(s, 0)} {s}" for s in
                        ("ok", "improved", "regression", "missing", "added")
                        if counts.get(s, 0))
    lines.append(f"{len(report.entries)} point(s) compared"
                 + (f": {summary}" if summary else ""))
    return "\n".join(lines)
