"""Plain-text report tables for the ``repro.obs`` CLI.

Every builder takes already-collected data (a tracer, a registry, a
critical-path report) and returns a string — no simulation, no I/O —
so the tables are unit-testable and byte-stable.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.critical import CriticalPathReport
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import Tracer

__all__ = [
    "critical_path_table",
    "links_table",
    "ops_table",
    "summary_table",
]


def _table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table (right-aligned numeric feel)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _us(value: float) -> str:
    return f"{value:.3f}"


def _pct(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def summary_table(tracer: Tracer, total_us: float, *, top: int = 5) -> str:
    """Per-lane busy %, category totals, overlap ratio, top-k spans."""
    lines = [f"total simulated time: {_us(total_us)} us"]
    lines.append(f"overlap ratio (comm overlapped with compute): "
                 f"{_pct(tracer.overlap_ratio())}")
    lines.append("")
    cat_rows = []
    for category in ("compute", "comm", "sync", "api"):
        busy = tracer.total(category)
        if busy or category in ("compute", "comm"):
            frac = busy / total_us if total_us else 0.0
            cat_rows.append([category, _us(busy), _pct(frac)])
    lines.append(_table(["category", "union us", "of total"], cat_rows))
    lines.append("")
    busy = tracer.busy_per_lane()
    lane_rows = [
        [lane, _us(busy_us), _pct(busy_us / total_us if total_us else 0.0)]
        for lane, busy_us in sorted(busy.items())
    ]
    lines.append(_table(["lane", "busy us", "busy %"], lane_rows))
    lines.append("")
    # top-k span names by summed duration
    by_name: dict[tuple[str, str], tuple[float, int]] = defaultdict(lambda: (0.0, 0))
    for span in tracer.spans:
        total, count = by_name[(span.name, span.category)]
        by_name[(span.name, span.category)] = (total + span.duration, count + 1)
    ranked = sorted(by_name.items(), key=lambda kv: (-kv[1][0], kv[0]))[:top]
    span_rows = [
        [name, category, str(count), _us(total)]
        for (name, category), (total, count) in ranked
    ]
    lines.append(f"top {len(span_rows)} span names by total duration:")
    lines.append(_table(["span", "category", "count", "total us"], span_rows))
    return "\n".join(lines)


def links_table(metrics: MetricsRegistry) -> str:
    """Per-link traffic: bytes, transfers, mean contention sharers."""
    rows = []
    transfers = {tuple(sorted(labels.items())): metric.value
                 for labels, metric in metrics.find("hw.link.transfers", "counter")}
    sharers = {tuple(sorted(labels.items())): metric.value
               for labels, metric in metrics.find("hw.link.sharers_total", "counter")}
    for labels, metric in metrics.find("hw.link.bytes", "counter"):
        key = tuple(sorted(labels.items()))
        n = transfers.get(key, 0)
        mean_sharers = sharers.get(key, 0) / n if n else 0.0
        rows.append([
            labels.get("src", "?"), labels.get("dst", "?"),
            f"{metric.value:.0f}", f"{n:.0f}", f"{mean_sharers:.2f}",
        ])
    if not rows:
        return "(no link traffic recorded)"
    rows.sort()
    return _table(["src", "dst", "bytes", "transfers", "mean sharers"], rows)


def _cap(rows: list[list[str]], top: int | None) -> tuple[list[list[str]], int]:
    """Keep the first ``top`` rows; return (kept, elided count)."""
    if top is None or len(rows) <= top:
        return rows, 0
    return rows[:top], len(rows) - top


def ops_table(metrics: MetricsRegistry, *, top: int | None = None) -> str:
    """NVSHMEM op counts/bytes and signal-wait time per PE pair.

    ``top`` caps each section at its heaviest rows (by count, ties by
    label order); ``None`` shows everything.
    """
    nbytes = {tuple(sorted(labels.items())): metric.value
              for labels, metric in metrics.find("nvshmem.bytes", "counter")}
    rows = []
    for labels, metric in metrics.find("nvshmem.ops", "counter"):
        key = tuple(sorted(labels.items()))
        rows.append([
            labels.get("op", "?"), labels.get("src", "?"), labels.get("dst", "?"),
            f"{metric.value:.0f}", f"{nbytes.get(key, 0):.0f}",
        ])
    sections = []
    if rows:
        rows.sort(key=lambda r: (-float(r[3]), r))
        rows, elided = _cap(rows, top)
        sections.append(_table(["op", "src", "dst", "count", "bytes"], rows))
        if elided:
            sections.append(f"(+{elided} more op row(s); raise --top to see them)")
    else:
        sections.append("(no NVSHMEM ops recorded)")
    wait_us = {tuple(sorted(labels.items())): metric.value
               for labels, metric in metrics.find("nvshmem.wait.us", "counter")}
    wait_rows = []
    for labels, metric in metrics.find("nvshmem.wait.count", "counter"):
        key = tuple(sorted(labels.items()))
        total = wait_us.get(key, 0.0)
        mean = total / metric.value if metric.value else 0.0
        wait_rows.append([
            labels.get("pe", "?"), labels.get("src", "?"),
            f"{metric.value:.0f}", _us(total), _us(mean),
        ])
    if wait_rows:
        wait_rows.sort(key=lambda r: (-float(r[3]), r))
        wait_rows, elided = _cap(wait_rows, top)
        sections.append("")
        sections.append("signal waits (waiting PE vs signal source):")
        sections.append(
            _table(["pe", "src", "count", "total us", "mean us"], wait_rows)
        )
        if elided:
            sections.append(
                f"(+{elided} more wait row(s); raise --top to see them)")
    return "\n".join(sections)


def critical_path_table(report: CriticalPathReport, *, top: int = 20) -> str:
    """The longest dependency chain and its category attribution."""
    lines = [
        f"critical path: {_us(report.total_us)} us over {len(report.steps)} span(s)"
        f" ({_us(report.per_iteration_us)} us/iteration)"
    ]
    cat_rows = [
        [category, _us(us), _pct(report.fraction(category))]
        for category, us in sorted(report.by_category.items(),
                                   key=lambda kv: (-kv[1], kv[0]))
    ]
    lines.append(_table(["category", "contributed us", "of path"], cat_rows))
    lines.append("")
    shown = report.steps if len(report.steps) <= top else report.steps[-top:]
    if len(report.steps) > top:
        lines.append(f"(last {top} of {len(report.steps)} steps)")
    step_rows = [
        [step.span.lane, step.span.name, step.span.category,
         _us(step.span.start), _us(step.span.end), _us(step.contributed_us)]
        for step in shown
    ]
    lines.append(_table(
        ["lane", "span", "category", "start", "end", "contributed us"], step_rows
    ))
    return "\n".join(lines)
