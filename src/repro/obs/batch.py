"""Per-member metrics recording for batched sweep execution.

A batched run executes B structurally identical sweep points inside one
simulation (see :mod:`repro.perf.batch`); its amounts may be
:class:`~repro.sim.stacked.Stacked` vectors.  :class:`BatchMetrics`
mirrors the :class:`~repro.obs.metrics.MetricsRegistry` recording API
but fans every operation out to B child registries: scalar amounts are
broadcast (the quantity was identical in every per-point run), stacked
amounts are demultiplexed element-wise.  After the run each child's
``to_dict()`` is byte-identical to the dump the per-point path would
have produced for that member.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import DEFAULT_US_EDGES, MetricsRegistry
from repro.sim.stacked import Stacked

__all__ = ["BatchMetrics"]


class _FanCounter:
    __slots__ = ("_children",)

    def __init__(self, children: list) -> None:
        self._children = children

    def inc(self, amount: Any = 1) -> None:
        if isinstance(amount, Stacked):
            for child, value in zip(self._children, amount.v):
                child.inc(value)
        else:
            for child in self._children:
                child.inc(amount)


class _FanGauge:
    __slots__ = ("_children",)

    def __init__(self, children: list) -> None:
        self._children = children

    def set(self, value: Any) -> None:
        if isinstance(value, Stacked):
            for child, v in zip(self._children, value.v):
                child.set(v)
        else:
            for child in self._children:
                child.set(value)


class _FanHistogram:
    __slots__ = ("_children",)

    def __init__(self, children: list) -> None:
        self._children = children

    def observe(self, value: Any) -> None:
        if isinstance(value, Stacked):
            for child, v in zip(self._children, value.v):
                child.observe(v)
        else:
            for child in self._children:
                child.observe(value)


class BatchMetrics:
    """Registry facade demultiplexing one batched run into B dumps.

    Only the *recording* surface is mirrored (``counter`` / ``gauge`` /
    ``histogram``); queries go to the per-member children directly.
    Metric creation is fanned to every child unconditionally — callers
    create metrics structurally (the same calls happen in every member's
    per-point run), only the recorded amounts differ.  The one caller
    that must create a metric in *some* members only (per-member flag
    wakeups) writes to :attr:`children` itself.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("batch size must be positive")
        self.size = size
        self.children = [MetricsRegistry() for _ in range(size)]

    def counter(self, name: str, **labels: Any) -> _FanCounter:
        return _FanCounter([c.counter(name, **labels) for c in self.children])

    def gauge(self, name: str, **labels: Any) -> _FanGauge:
        return _FanGauge([c.gauge(name, **labels) for c in self.children])

    def histogram(self, name: str, edges: tuple = DEFAULT_US_EDGES,
                  **labels: Any) -> _FanHistogram:
        return _FanHistogram(
            [c.histogram(name, edges=edges, **labels) for c in self.children]
        )

    def dumps(self) -> list[dict]:
        """Per-member ``to_dict()`` dumps, member order."""
        return [c.to_dict() for c in self.children]
