"""Causal what-if analysis: replay the span DAG with scaled costs.

:mod:`repro.obs.critical` answers *why was the run this long*; this
module answers *what would make it shorter*.  It rebuilds the same
dependency structure the critical-path extractor uses — lane order plus
``flow_s``/``flow_f`` signal links — and replays it with one resource's
intrinsic cost virtually scaled, predicting the new makespan:
"speeding up the wires 2x saves 31%; speeding up compute saves 4%".
That ranking is the principled bottleneck ordering the ROADMAP's
autotuner item needs.

The replay model:

* **Intrinsic durations scale.**  A span's duration is treated as work
  on its resource: compute spans scale by ``Scenario.compute``, wire
  spans by ``Scenario.comm`` (or a per-link override matched against
  the ``wire.pe{s}->pe{d}`` lane name), host-thread and ``api`` spans
  by ``Scenario.host``.  ``sync`` spans do *not* scale — their length
  is waiting, which the replay re-derives.
* **Lane slack is preserved.**  A span starts at its lane
  predecessor's new end plus the original gap between them.  Gaps
  encode scheduling structure the DAG does not model (issue order,
  period offsets), so keeping them absolute is the conservative
  choice: predictions never assume the runtime would also reschedule.
* **Device work moves with its launch.**  A GPU-lane work span whose
  start coincides with the end of a same-PE host ``api`` span (the
  ``launch:``/``memcpyAsync:`` call that enqueued it) is anchored to
  that span: it starts at the anchor's *new* end (still FIFO behind its
  lane predecessor).  This is what propagates faster host control onto
  the device timeline in CPU-controlled variants.
* **Transfers move with their issuer.**  A wire span's start is its
  *issue* time, which happens inside some span on the source PE (the
  kernel or API call that called ``putmem_signal``).  The replay
  anchors each wire span to the containing span on its source PE's
  lanes, at the original offset scaled by that span's factor — so
  faster compute issues its puts earlier and the transfers shift left
  with it.  FIFO order on the wire lane is still enforced (a transfer
  never starts before its lane predecessor's new end).
* **Waits end when their producer arrives.**  A span carrying
  ``flow_f`` ends at ``max(own start, producer's new end) + tail``,
  where ``tail`` is the original post-arrival processing time.  A wait
  whose producer speeds up shrinks; one whose producer slows down
  stretches.
* **Barriers release when the last party arrives.**  Sync spans named
  like barriers (``host_barrier``, ``nvshmem_barrier_all``) that share
  one original end across several lanes are one rendezvous round: every
  member's span runs from its own arrival to a common release at
  ``max(arrivals) + cost``.  The replay re-derives the release from the
  members' *new* starts and scales the rendezvous cost with the span's
  resource (host-side barriers are host-control overhead) — so a
  CPU-controlled variant's per-iteration barrier responds both to the
  stragglers arriving earlier and to faster host control.
* **Joins end when their last dependent finishes.**  A ``sync`` span
  with *no* flow link is a join — a host thread waiting for its
  device's streams (``eventSync``, end-of-run ``wait``).  Its
  producers are inferred: every same-PE span (GPU streams, outgoing
  wires) whose *original* end fell inside the wait's window.  The
  replayed wait ends when the latest of those ends in the replay —
  this is what lets faster compute shorten a CPU-controlled variant's
  launch-wait loop.

Values are solved by fixed-point iteration (Gauss–Seidel sweeps in
dependency-friendly order).  With every scale at 1.0 the original
schedule *is* the fixed point — each rule reproduces the original
start/end exactly — so the replay converges immediately and deltas are
pure effects of the scenario, never artifacts of the model (pinned in
``tests/obs/test_whatif.py``).

Assumptions (documented in docs/observability.md): dependencies are
fixed — scaling never changes *which* span satisfies a wait, overtakes
FIFO order on a wire, or alters contention; and un-modeled slack stays
constant rather than scaling with its neighbors.  Predictions are
therefore first-order estimates, most trustworthy for modest scale
factors.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Any, Iterable

from repro.sim.trace import Span, pe_of_lane, wire_route

__all__ = [
    "DEFAULT_SCENARIOS",
    "Scenario",
    "replay_makespan",
    "whatif_report",
    "whatif_table",
]

WHATIF_FORMAT = "repro-whatif-v1"


@dataclass(frozen=True)
class Scenario:
    """One virtual-hardware hypothesis.

    Scales multiply *durations*: 0.5 means the resource got 2x faster.
    ``links`` maps ``fnmatch`` patterns over wire lane names (e.g.
    ``"wire.pe0->*"``) to scales overriding ``comm`` per route.
    """

    name: str
    compute: float = 1.0
    comm: float = 1.0
    host: float = 1.0
    links: dict[str, float] = field(default_factory=dict)

    def scale_for(self, span: Span) -> float:
        if span.lane.startswith("wire."):
            scale = self.comm
            for pattern, value in self.links.items():
                if fnmatch(span.lane, pattern):
                    scale = value
            return scale
        if span.lane.startswith("host"):
            return self.host
        if span.category == "compute":
            return self.compute
        if span.category == "comm":
            return self.comm
        if span.category == "api":
            return self.host
        return 1.0  # sync: waiting is derived, not intrinsic


#: the standard bottleneck probe: each resource 2x faster, one at a time
DEFAULT_SCENARIOS = (
    Scenario("compute x2", compute=0.5),
    Scenario("comm x2", comm=0.5),
    Scenario("host x2", host=0.5),
)


def _flow_id(span: Span, key: str):
    meta = span.meta
    return meta.get(key) if isinstance(meta, dict) else None


def replay_makespan(spans: list[Span], scenario: Scenario,
                    max_passes: int = 25) -> float:
    """Predicted makespan (us) of ``spans`` under ``scenario``."""
    if not spans:
        return 0.0
    n = len(spans)
    # the same deterministic order + lane/flow dependency extraction as
    # repro.obs.critical.critical_path — the two must see the same DAG
    order = sorted(range(n),
                   key=lambda i: (spans[i].end, spans[i].start, spans[i].lane,
                                  spans[i].name, i))
    rank = {idx: pos for pos, idx in enumerate(order)}

    by_lane: dict[str, list[int]] = {}
    lane_pos: dict[int, int] = {}
    for i in order:
        members = by_lane.setdefault(spans[i].lane, [])
        lane_pos[i] = len(members)
        members.append(i)
    lane_ends = {lane: [spans[j].end for j in members]
                 for lane, members in by_lane.items()}

    lane_pred: list[int | None] = [None] * n
    for i in order:
        span = spans[i]
        k = bisect_right(lane_ends[span.lane], span.start + 1e-12, 0,
                         lane_pos[i]) - 1
        if k >= 0:
            lane_pred[i] = by_lane[span.lane][k]

    producers = {_flow_id(spans[i], "flow_s"): i for i in order
                 if _flow_id(spans[i], "flow_s") is not None}
    flow_pred: list[int | None] = [None] * n
    for i in order:
        fid = _flow_id(spans[i], "flow_f")
        j = producers.get(fid) if fid is not None else None
        if j is not None and rank[j] < rank[i]:
            flow_pred[i] = j

    # per-PE spans (own GPU streams + outgoing wires), sorted by end:
    # the candidate pool for issue anchors and join inference
    pe_work: dict[int, list[int]] = {}
    pe_other: dict[int, list[int]] = {}  # non-wire spans, sorted by start
    for i in order:
        span = spans[i]
        pe = pe_of_lane(span.lane)
        if pe is None:
            continue
        pe_work.setdefault(pe, []).append(i)
        if not span.lane.startswith("wire."):
            pe_other.setdefault(pe, []).append(i)
    for members in pe_work.values():
        members.sort(key=lambda j: (spans[j].end, spans[j].start,
                                    spans[j].lane, spans[j].name, j))
    for members in pe_other.values():
        members.sort(key=lambda j: (spans[j].start, spans[j].end,
                                    spans[j].lane, spans[j].name, j))
    pe_work_ends = {pe: [spans[j].end for j in members]
                    for pe, members in pe_work.items()}
    pe_other_starts = {pe: [spans[j].start for j in members]
                       for pe, members in pe_other.items()}

    # issue anchor per wire span: the latest-starting same-source-PE
    # span containing the wire span's start (the put's call site)
    issuer: list[int | None] = [None] * n
    for i in order:
        route = wire_route(spans[i].lane)
        if route is None:
            continue
        members = pe_other.get(route[0], [])
        k = bisect_right(pe_other_starts.get(route[0], []),
                         spans[i].start) - 1
        while k >= 0:
            j = members[k]
            if spans[j].end + 1e-12 >= spans[i].start:
                issuer[i] = j
                break
            k -= 1

    # host anchor per GPU-lane work span: the same-PE host api span
    # whose original end coincides with the span's start — the enqueue
    # call it was waiting on.  Coincidence *is* the dependency signal;
    # a span that started later than its enqueue was stream-queued and
    # the lane FIFO rule already covers it.
    pe_api: dict[int, list[int]] = {}
    for i in order:
        span = spans[i]
        if span.lane.startswith("host") and span.category == "api":
            pe = pe_of_lane(span.lane)
            if pe is not None:
                pe_api.setdefault(pe, []).append(i)
    for members in pe_api.values():
        members.sort(key=lambda j: (spans[j].end, spans[j].start, j))
    pe_api_ends = {pe: [spans[j].end for j in members]
                   for pe, members in pe_api.items()}

    host_anchor: list[int | None] = [None] * n
    for i in order:
        span = spans[i]
        if (not span.lane.startswith("gpu") or span.lane.startswith("wire.")
                or span.category == "sync"):
            continue
        pe = pe_of_lane(span.lane)
        members = pe_api.get(pe, [])
        ends = pe_api_ends.get(pe, [])
        k = bisect_right(ends, span.start + 1e-12) - 1
        while k >= 0 and ends[k] >= span.start - 1e-12:
            j = members[k]
            if rank[j] < rank[i]:
                host_anchor[i] = j
                break
            k -= 1

    # barrier rounds: sync spans *named* like barriers that share one
    # original end across distinct lanes are one rendezvous.  The name
    # check matters — symmetric per-rank waits can end at the same
    # instant without being causally coupled, and grouping those would
    # freeze their (join-derived) durations.
    barrier_group: list[list[int] | None] = [None] * n
    rounds: dict[tuple[str, float], list[int]] = {}
    for i in order:
        span = spans[i]
        if (span.category == "sync" and flow_pred[i] is None
                and "barrier" in span.name):
            rounds.setdefault((span.name, span.end), []).append(i)
    for members in rounds.values():
        if len({spans[j].lane for j in members}) >= 2:
            for j in members:
                barrier_group[j] = members

    # join producers per flow-less sync span: same-PE work whose
    # original end fell inside the wait's window (ties by rank so two
    # equal-ended joins never wait on each other)
    joins: list[list[int] | None] = [None] * n
    for i in order:
        span = spans[i]
        if (span.category != "sync" or flow_pred[i] is not None
                or barrier_group[i] is not None):
            continue
        pe = pe_of_lane(span.lane)
        members = pe_work.get(pe) if pe is not None else None
        if not members:
            continue
        ends = pe_work_ends[pe]
        lo = bisect_right(ends, span.start - 1e-12)
        hi = bisect_right(ends, span.end + 1e-12)
        deps = [j for j in members[lo:hi]
                if j != i and spans[j].lane != span.lane
                and (spans[j].end < span.end - 1e-12 or rank[j] < rank[i])]
        if deps:
            joins[i] = deps

    new_start = [s.start for s in spans]
    new_end = [s.end for s in spans]
    t0 = min(s.start for s in spans)

    # Gauss–Seidel: the rules below each reproduce the original value
    # when every scale is 1.0, so the original schedule is the fixed
    # point and the first sweep makes no changes.  Scaled scenarios
    # converge in a few sweeps because `order` is nearly topological.
    for _ in range(max_passes):
        changed = False
        for i in order:
            span = spans[i]
            prev = lane_pred[i]
            if span.lane.startswith("wire."):
                anchor = span.start
                j = issuer[i]
                if j is not None:
                    anchor = (new_start[j]
                              + (span.start - spans[j].start)
                              * scenario.scale_for(spans[j]))
                # FIFO: never overtake the prior transfer on this route
                start = anchor if prev is None else max(anchor, new_end[prev])
            elif host_anchor[i] is not None:
                # enqueued work starts when its enqueue call retires,
                # still FIFO behind whatever the stream ran before it
                start = new_end[host_anchor[i]]
                if prev is not None:
                    start = max(start, new_end[prev])
            elif prev is not None:
                # preserve the original gap to the lane predecessor
                start = new_end[prev] + (span.start - spans[prev].end)
            else:
                # first span on its lane keeps its absolute offset
                start = span.start
            j = flow_pred[i]
            if j is not None:
                tail = span.end - max(span.start, spans[j].end)
                end = max(start, new_end[j]) + max(0.0, tail)
            elif barrier_group[i] is not None:
                members = barrier_group[i]
                arrived = max(start if j == i else new_start[j]
                              for j in members)
                cost = span.end - max(spans[j].start for j in members)
                end = arrived + max(0.0, cost) * scenario.scale_for(span)
            elif joins[i] is not None:
                arrived = max(new_end[j] for j in joins[i])
                tail = span.end - max(spans[j].end for j in joins[i])
                end = max(start, arrived) + max(0.0, tail)
            else:
                end = start + span.duration * scenario.scale_for(span)
            if (abs(start - new_start[i]) > 1e-9
                    or abs(end - new_end[i]) > 1e-9):
                changed = True
            new_start[i] = start
            new_end[i] = end
        if not changed:
            break

    return max(new_end) - t0


def whatif_report(spans: Iterable[Span],
                  scenarios: Iterable[Scenario] = DEFAULT_SCENARIOS,
                  *, meta: dict[str, Any] | None = None) -> dict[str, Any]:
    """Byte-stable what-if document (``repro-whatif-v1``).

    Scenario entries are sorted by predicted savings, largest first
    (ties by name), so ``scenarios[0]`` *is* the bottleneck verdict.
    """
    spans = list(spans)
    baseline = replay_makespan(spans, Scenario("baseline"))
    entries = []
    for scenario in scenarios:
        makespan = replay_makespan(spans, scenario)
        saved = baseline - makespan
        entries.append({
            "name": scenario.name,
            "compute": scenario.compute,
            "comm": scenario.comm,
            "host": scenario.host,
            "links": dict(scenario.links),
            "makespan_us": makespan,
            "saved_us": saved,
            "saved_frac": (saved / baseline) if baseline else 0.0,
        })
    entries.sort(key=lambda e: (-e["saved_us"], e["name"]))
    payload: dict[str, Any] = {
        "format": WHATIF_FORMAT,
        "baseline_makespan_us": baseline,
        "scenarios": entries,
    }
    if meta is not None:
        payload["run"] = meta
    return payload


def whatif_table(payload: dict[str, Any]) -> str:
    """Ranked savings listing for the CLI."""
    lines = [f"baseline makespan: {payload['baseline_makespan_us']:.3f} us"]
    for entry in payload["scenarios"]:
        lines.append(
            f"  {entry['name']:>16}: {entry['makespan_us']:10.3f} us  "
            f"(saves {entry['saved_us']:.3f} us, "
            f"{100.0 * entry['saved_frac']:.1f}%)"
        )
    return "\n".join(lines)
