"""Compare two metric dumps and flag regressions.

Accepts both dump shapes the repo produces:

- a :meth:`~repro.obs.metrics.MetricsRegistry.to_json` dump (sections
  ``counters`` / ``gauges`` / ``histograms``), flattened to
  ``name{k=v,...}`` keys (histograms contribute ``...:sum`` and
  ``...:count``);
- any nested JSON object of numbers (e.g. a ``BENCH_*.json`` record),
  flattened to dotted paths; non-numeric leaves are ignored.

A *regression* is a relative increase beyond the threshold — the
convention matches what the tracked metrics mean (event counts, bytes,
simulated time: more is worse).  ``repro.obs diff`` exits non-zero when
any regression is found, so CI can gate on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

__all__ = ["MetricDelta", "diff_metrics", "flatten_metrics", "load_metrics"]


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric; ``rel`` is ``(new - old) / |old|``."""

    key: str
    old: float
    new: float
    rel: float

    def is_regression(self, threshold: float) -> bool:
        return self.rel > threshold


def _labeled(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def flatten_metrics(payload: dict[str, Any]) -> dict[str, float]:
    """Flatten a dump (either shape, see module docs) to ``key -> value``."""
    sections = ("counters", "gauges", "histograms")
    if all(isinstance(payload.get(s), list) for s in sections):
        flat: dict[str, float] = {}
        for section in ("counters", "gauges"):
            for entry in payload[section]:
                flat[_labeled(entry["name"], entry["labels"])] = float(entry["value"])
        for entry in payload["histograms"]:
            base = _labeled(entry["name"], entry["labels"])
            flat[f"{base}:sum"] = float(entry["sum"])
            flat[f"{base}:count"] = float(entry["count"])
        return flat
    flat = {}

    def walk(node: Any, path: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{path}.{key}" if path else str(key))
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            flat[path] = float(node)

    walk(payload, "")
    return flat


def load_metrics(path: str) -> dict[str, float]:
    """Load and flatten a JSON metrics dump from disk."""
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object, got {type(payload).__name__}")
    return flatten_metrics(payload)


def diff_metrics(old: dict[str, float], new: dict[str, float]) -> list[MetricDelta]:
    """Deltas for every key present in both dumps, sorted by key.

    Keys present on only one side are not deltas (use set arithmetic on
    the dicts to report them); a value appearing from zero counts as an
    infinite relative increase.
    """
    deltas = []
    for key in sorted(old.keys() & new.keys()):
        a, b = old[key], new[key]
        if a == b:
            rel = 0.0
        elif a == 0:
            rel = float("inf") if b > 0 else float("-inf")
        else:
            rel = (b - a) / abs(a)
        deltas.append(MetricDelta(key, a, b, rel))
    return deltas
