"""Inspection CLI for the observability layer.

Usage::

    python -m repro.obs summary                  # run a small stencil, report
    python -m repro.obs summary --variant baseline_copy --gpus 4
    python -m repro.obs links --metrics-out metrics.json
    python -m repro.obs ops --trace-out trace.json
    python -m repro.obs critical-path --iterations 8
    python -m repro.obs timeline --variant cpufree --gpus 4
    python -m repro.obs whatif --scale comm=0.5
    python -m repro.obs regress perf-history.jsonl --rtol 0.05
    python -m repro.obs diff old.json new.json --threshold 0.05

The run subcommands (``summary`` / ``links`` / ``ops`` /
``critical-path`` / ``timeline`` / ``whatif``) execute one stencil
variant on the simulator with metrics and tracing enabled and print the
corresponding report table.  ``--metrics-out`` writes the byte-stable
registry dump (same bytes on every run of the same configuration, at
any ``--jobs``); ``--trace-out`` writes the Chrome-trace JSON (open in
Perfetto / ``chrome://tracing``).

``timeline`` prints the per-PE phase gantt and utilization table
(:mod:`repro.obs.timeline`); ``--timeline-out`` writes the byte-stable
timeline document.  ``whatif`` replays the run's span DAG with scaled
resource costs (:mod:`repro.obs.whatif`) and ranks the predicted
savings; ``--scale compute=0.5`` (repeatable; also ``comm``, ``host``,
or a ``wire.pe0->*``-style link pattern) probes one custom scenario
instead of the default x2 sweep.

``regress`` compares two runs out of a perf-history JSONL file
(written by ``python -m repro.bench --history``) and exits 1 when any
point's median moved past its noise tolerance in the bad direction.

``diff`` compares two metric dumps (registry dumps or any nested JSON
of numbers, e.g. ``BENCH_*.json``) and exits with status 1 when any
metric increased by more than ``--threshold`` (relative).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cliutil import CliError, cli_entry, parse_shape
from repro.obs.critical import critical_path
from repro.obs.diff import diff_metrics, load_metrics
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.report import (
    critical_path_table,
    links_table,
    ops_table,
    summary_table,
)

RUN_COMMANDS = ("summary", "links", "ops", "critical-path", "timeline", "whatif")


def _add_run_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--variant", default="cpufree",
                     help="stencil variant to run (default: cpufree)")
    sub.add_argument("--gpus", type=int, default=2,
                     help="number of GPUs/PEs (default: 2)")
    sub.add_argument("--shape", type=parse_shape, default=(66, 130),
                     help="global domain shape, e.g. 66x130 (default)")
    sub.add_argument("--iterations", type=int, default=4,
                     help="stencil iterations (default: 4)")
    sub.add_argument("--no-compute", action="store_true",
                     help="communication/synchronization only (paper's "
                          "no-compute mode)")
    sub.add_argument("--metrics-out", metavar="PATH",
                     help="write the metrics registry dump (JSON) to PATH")
    sub.add_argument("--trace-out", metavar="PATH",
                     help="write the Chrome-trace JSON to PATH")
    sub.add_argument("--top", type=int, default=5,
                     help="rows in top-k listings (default: 5)")
    sub.add_argument("--fault-profile", metavar="NAME", default=None,
                     help="run under this fault profile (e.g. transient or "
                          "lost_signal@7); recorded in the metrics dump")
    sub.add_argument("--domain-gpus", type=int, default=None, metavar="N",
                     help="NVSwitch domain size: GPU counts above N build "
                          "the hierarchical multi-node topology (N-GPU "
                          "domains joined by NIC rails); default: the "
                          "node preset's full size")
    sub.add_argument("--no-shard", action="store_true",
                     help="keep the flat single-heap calendar even on a "
                          "hierarchical topology (A/B check: results are "
                          "byte-identical to sharded dispatch)")
    sub.add_argument("--sanitize", action="store_true",
                     help="attach the happens-before race detector "
                          "(repro.sanitize); findings are printed, added to "
                          "the trace as instant events, and exit status 1")


def _run_variant(args: argparse.Namespace):
    """Execute the configured stencil run under a fresh registry."""
    # import here so `diff`/`regress` work without pulling in the simulator
    from repro.stencil.base import VARIANTS, StencilConfig

    if args.variant not in VARIANTS:
        raise CliError(
            f"unknown variant {args.variant!r}; choose from {sorted(VARIANTS)}"
        )
    registry = MetricsRegistry()
    with use_metrics(registry):
        extra = {}
        if args.domain_gpus is not None:
            if args.domain_gpus <= 0:
                raise CliError("--domain-gpus must be positive")
            from dataclasses import replace

            from repro.hw import HGX_A100_8GPU

            extra["node"] = replace(
                HGX_A100_8GPU,
                num_gpus=min(args.domain_gpus, args.gpus),
                nvswitch_domain_gpus=args.domain_gpus,
            )
        if args.no_shard:
            extra["shard_scheduler"] = False
        config = StencilConfig(
            global_shape=args.shape,
            num_gpus=args.gpus,
            iterations=args.iterations,
            no_compute=args.no_compute,
            fault_profile=args.fault_profile,
            **extra,
        )
        variant = VARIANTS[args.variant](config)
        sanitizer = None
        if getattr(args, "sanitize", False):
            from repro.sanitize import attach_sanitizer

            sanitizer = attach_sanitizer(variant.ctx)
        result = variant.run()
    findings = []
    if sanitizer is not None:
        from repro.sanitize import detect_races

        findings = detect_races(sanitizer)
        # race findings become Chrome instant events, anchored at the
        # moment the second (completing) access of each pair happened
        for finding in findings:
            result.tracer.add_instant(
                finding.finding_id, finding.second.time_us,
                category="race", args=finding.describe(),
            )
    return result, registry, findings


def _run_meta(args: argparse.Namespace) -> dict:
    """The self-describing ``run`` block embedded in JSON documents."""
    meta = {
        "variant": args.variant,
        "shape": list(args.shape),
        "gpus": args.gpus,
        "iterations": args.iterations,
        "no_compute": args.no_compute,
        "fault_profile": args.fault_profile,
    }
    # topology overrides appear only when requested, so the default
    # run block (and the goldens pinning it) stays byte-identical
    if args.domain_gpus is not None:
        meta["domain_gpus"] = args.domain_gpus
    if args.no_shard:
        meta["no_shard"] = True
    return meta


def _write_outputs(args: argparse.Namespace, result, registry: MetricsRegistry) -> None:
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(registry.to_json())
        print(f"(metrics dump written to {args.metrics_out})", file=sys.stderr)
    if args.trace_out:
        with open(args.trace_out, "w") as fh:
            json.dump(result.tracer.to_chrome_trace(), fh, indent=1)
            fh.write("\n")
        print(f"(chrome trace written to {args.trace_out})", file=sys.stderr)


def _parse_scale(text: str) -> tuple[str, float]:
    resource, sep, factor = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"bad scale {text!r}: expected resource=factor, e.g. comm=0.5")
    try:
        value = float(factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad scale factor {factor!r} in {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"scale factor must be positive: {text!r}")
    return resource, value


def _timeline_command(args: argparse.Namespace, result) -> None:
    from repro.obs.stablejson import dump_stable
    from repro.obs.timeline import render_gantt, timeline_payload, timeline_table

    spans = result.tracer.spans
    payload = timeline_payload(spans, meta=_run_meta(args))
    print(render_gantt(spans, width=args.width))
    print()
    print(timeline_table(payload))
    if args.timeline_out:
        dump_stable(payload, args.timeline_out)
        print(f"(timeline written to {args.timeline_out})", file=sys.stderr)


def _whatif_command(args: argparse.Namespace, result) -> None:
    from repro.obs.stablejson import dump_stable
    from repro.obs.whatif import DEFAULT_SCENARIOS, Scenario, whatif_report, whatif_table

    if args.scale:
        resources = {"compute": 1.0, "comm": 1.0, "host": 1.0}
        links = {}
        for resource, factor in args.scale:
            if resource in resources:
                resources[resource] = factor
            elif resource.startswith("wire."):
                links[resource] = factor
            else:
                raise CliError(
                    f"unknown resource {resource!r} in --scale; choose "
                    f"compute, comm, host, or a wire.peS->peD link pattern")
        name = ",".join(f"{r}={f:g}" for r, f in args.scale)
        scenarios = [Scenario(name, links=links, **resources)]
    else:
        scenarios = list(DEFAULT_SCENARIOS)
    payload = whatif_report(result.tracer.spans, scenarios,
                            meta=_run_meta(args))
    print(whatif_table(payload))
    if args.json_out:
        dump_stable(payload, args.json_out)
        print(f"(what-if report written to {args.json_out})", file=sys.stderr)


def _regress_command(args: argparse.Namespace) -> int:
    from repro.obs.history import HistoryStore, regress, regress_table

    store = HistoryStore(args.history)
    rtol_for = dict(args.rtol_for or [])
    try:
        report = regress(store, run=args.run, baseline=args.baseline,
                         field_name=args.field, rtol=args.rtol,
                         rtol_for=rtol_for)
    except ValueError as exc:
        raise CliError(str(exc)) from None
    print(regress_table(report, show_ok=args.show_ok))
    return 1 if report.regressions else 0


def _parse_rtol_for(text: str) -> tuple[str, float]:
    pattern, sep, tol = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"bad per-point tolerance {text!r}: expected PATTERN=RTOL")
    try:
        return pattern, float(tol)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad tolerance {tol!r} in {text!r}") from None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect a simulated run: metrics, traces, critical path, "
                    "timelines, perf history, causal what-if.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for command in RUN_COMMANDS:
        sub = subparsers.add_parser(command)
        _add_run_options(sub)
        if command == "timeline":
            sub.add_argument("--timeline-out", metavar="PATH",
                             help="write the byte-stable timeline JSON to PATH")
            sub.add_argument("--width", type=int, default=80,
                             help="gantt width in cells (default: 80)")
        elif command == "whatif":
            sub.add_argument("--scale", type=_parse_scale, action="append",
                             default=[], metavar="RESOURCE=FACTOR",
                             help="probe one custom scenario: scale compute/"
                                  "comm/host (or a wire.peS->peD link "
                                  "pattern) durations by FACTOR (repeatable; "
                                  "default: each resource 2x faster in turn)")
            sub.add_argument("--json-out", metavar="PATH",
                             help="write the byte-stable what-if JSON to PATH")
    regress_p = subparsers.add_parser("regress")
    regress_p.add_argument("history", help="perf-history JSONL file "
                           "(python -m repro.bench --history)")
    regress_p.add_argument("--run", default=None,
                           help="run label to judge (default: latest in file)")
    regress_p.add_argument("--baseline", default=None,
                           help="baseline run label (default: first other run)")
    regress_p.add_argument("--field", default="per_iter_us",
                           help="record field to compare (default: per_iter_us)")
    regress_p.add_argument("--rtol", type=float, default=0.05,
                           help="relative tolerance before a move in the bad "
                                "direction counts as a regression "
                                "(default: 0.05)")
    regress_p.add_argument("--rtol-for", type=_parse_rtol_for, action="append",
                           default=[], metavar="PATTERN=RTOL",
                           help="per-point tolerance override, fnmatch over "
                                "point ids (repeatable; last match wins)")
    regress_p.add_argument("--show-ok", action="store_true",
                           help="also list points that did not regress")
    diff = subparsers.add_parser("diff")
    diff.add_argument("old", help="baseline metrics JSON")
    diff.add_argument("new", help="candidate metrics JSON")
    diff.add_argument("--threshold", type=float, default=0.05,
                      help="relative increase that counts as a regression "
                           "(default: 0.05)")
    diff.add_argument("--all", action="store_true",
                      help="print every compared metric, not just changes")
    args = parser.parse_args(argv)

    if args.command == "diff":
        return _diff_command(args)
    if args.command == "regress":
        return _regress_command(args)

    result, registry, findings = _run_variant(args)
    if args.command == "summary":
        header = (f"{args.variant}: {'x'.join(map(str, args.shape))} on "
                  f"{args.gpus} GPU(s), {args.iterations} iteration(s)")
        print(header)
        print()
        print(summary_table(result.tracer, result.total_time_us, top=args.top))
    elif args.command == "links":
        print(links_table(registry))
    elif args.command == "ops":
        print(ops_table(registry, top=args.top))
    elif args.command == "timeline":
        _timeline_command(args, result)
    elif args.command == "whatif":
        _whatif_command(args, result)
    else:  # critical-path
        report = critical_path(result.tracer.spans, iterations=args.iterations)
        print(critical_path_table(report, top=max(args.top, 20)))
    if getattr(args, "sanitize", False):
        print()
        print(f"sanitizer: {len(findings)} race finding(s)")
        for finding in findings:
            print(f"  {finding.summary()}")
    _write_outputs(args, result, registry)
    return 1 if findings else 0


def _diff_command(args: argparse.Namespace) -> int:
    try:
        old = load_metrics(args.old)
        new = load_metrics(args.new)
    except (OSError, ValueError) as exc:
        raise CliError(str(exc)) from None
    deltas = diff_metrics(old, new)
    only_old = sorted(old.keys() - new.keys())
    only_new = sorted(new.keys() - old.keys())
    regressions = [d for d in deltas if d.is_regression(args.threshold)]
    for delta in deltas:
        if not args.all and delta.rel == 0.0:
            continue
        marker = "REGRESSION" if delta.is_regression(args.threshold) else (
            "improved" if delta.rel < 0 else "within threshold")
        rel = "new" if delta.rel == float("inf") else f"{100.0 * delta.rel:+.1f}%"
        print(f"{delta.key}: {delta.old:g} -> {delta.new:g} ({rel}) [{marker}]")
    for key in only_old:
        print(f"{key}: only in {args.old}")
    for key in only_new:
        print(f"{key}: only in {args.new}")
    print(f"{len(deltas)} metric(s) compared, {len(regressions)} regression(s) "
          f"beyond {100.0 * args.threshold:.1f}%")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(cli_entry(main))
