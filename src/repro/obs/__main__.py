"""Inspection CLI for the observability layer.

Usage::

    python -m repro.obs summary                  # run a small stencil, report
    python -m repro.obs summary --variant baseline_copy --gpus 4
    python -m repro.obs links --metrics-out metrics.json
    python -m repro.obs ops --trace-out trace.json
    python -m repro.obs critical-path --iterations 8
    python -m repro.obs diff old.json new.json --threshold 0.05

The run subcommands (``summary`` / ``links`` / ``ops`` /
``critical-path``) execute one stencil variant on the simulator with
metrics and tracing enabled and print the corresponding report table.
``--metrics-out`` writes the byte-stable registry dump (same bytes on
every run of the same configuration, at any ``--jobs``);
``--trace-out`` writes the Chrome-trace JSON (open in Perfetto /
``chrome://tracing``).

``diff`` compares two metric dumps (registry dumps or any nested JSON
of numbers, e.g. ``BENCH_*.json``) and exits with status 1 when any
metric increased by more than ``--threshold`` (relative).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.critical import critical_path
from repro.obs.diff import diff_metrics, load_metrics
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.report import (
    critical_path_table,
    links_table,
    ops_table,
    summary_table,
)

RUN_COMMANDS = ("summary", "links", "ops", "critical-path")


def _parse_shape(text: str) -> tuple[int, ...]:
    try:
        shape = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad shape {text!r}: expected e.g. 66x130 or 34x34x34"
        ) from None
    if not shape or any(dim <= 0 for dim in shape):
        raise argparse.ArgumentTypeError(f"bad shape {text!r}: dims must be positive")
    return shape


def _add_run_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--variant", default="cpufree",
                     help="stencil variant to run (default: cpufree)")
    sub.add_argument("--gpus", type=int, default=2,
                     help="number of GPUs/PEs (default: 2)")
    sub.add_argument("--shape", type=_parse_shape, default=(66, 130),
                     help="global domain shape, e.g. 66x130 (default)")
    sub.add_argument("--iterations", type=int, default=4,
                     help="stencil iterations (default: 4)")
    sub.add_argument("--no-compute", action="store_true",
                     help="communication/synchronization only (paper's "
                          "no-compute mode)")
    sub.add_argument("--metrics-out", metavar="PATH",
                     help="write the metrics registry dump (JSON) to PATH")
    sub.add_argument("--trace-out", metavar="PATH",
                     help="write the Chrome-trace JSON to PATH")
    sub.add_argument("--top", type=int, default=5,
                     help="rows in top-k listings (default: 5)")
    sub.add_argument("--fault-profile", metavar="NAME", default=None,
                     help="run under this fault profile (e.g. transient or "
                          "lost_signal@7); recorded in the metrics dump")
    sub.add_argument("--sanitize", action="store_true",
                     help="attach the happens-before race detector "
                          "(repro.sanitize); findings are printed, added to "
                          "the trace as instant events, and exit status 1")


def _run_variant(args: argparse.Namespace):
    """Execute the configured stencil run under a fresh registry."""
    # import here so `diff` works without pulling in the whole simulator
    from repro.stencil.base import VARIANTS, StencilConfig

    if args.variant not in VARIANTS:
        raise SystemExit(
            f"unknown variant {args.variant!r}; choose from {sorted(VARIANTS)}"
        )
    registry = MetricsRegistry()
    with use_metrics(registry):
        config = StencilConfig(
            global_shape=args.shape,
            num_gpus=args.gpus,
            iterations=args.iterations,
            no_compute=args.no_compute,
            fault_profile=args.fault_profile,
        )
        variant = VARIANTS[args.variant](config)
        sanitizer = None
        if getattr(args, "sanitize", False):
            from repro.sanitize import attach_sanitizer

            sanitizer = attach_sanitizer(variant.ctx)
        result = variant.run()
    findings = []
    if sanitizer is not None:
        from repro.sanitize import detect_races

        findings = detect_races(sanitizer)
        # race findings become Chrome instant events, anchored at the
        # moment the second (completing) access of each pair happened
        for finding in findings:
            result.tracer.add_instant(
                finding.finding_id, finding.second.time_us,
                category="race", args=finding.describe(),
            )
    return result, registry, findings


def _write_outputs(args: argparse.Namespace, result, registry: MetricsRegistry) -> None:
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(registry.to_json())
        print(f"(metrics dump written to {args.metrics_out})", file=sys.stderr)
    if args.trace_out:
        with open(args.trace_out, "w") as fh:
            json.dump(result.tracer.to_chrome_trace(), fh, indent=1)
            fh.write("\n")
        print(f"(chrome trace written to {args.trace_out})", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect a simulated run: metrics, traces, critical path.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for command in RUN_COMMANDS:
        sub = subparsers.add_parser(command)
        _add_run_options(sub)
    diff = subparsers.add_parser("diff")
    diff.add_argument("old", help="baseline metrics JSON")
    diff.add_argument("new", help="candidate metrics JSON")
    diff.add_argument("--threshold", type=float, default=0.05,
                      help="relative increase that counts as a regression "
                           "(default: 0.05)")
    diff.add_argument("--all", action="store_true",
                      help="print every compared metric, not just changes")
    args = parser.parse_args(argv)

    if args.command == "diff":
        return _diff_command(args)

    result, registry, findings = _run_variant(args)
    if args.command == "summary":
        header = (f"{args.variant}: {'x'.join(map(str, args.shape))} on "
                  f"{args.gpus} GPU(s), {args.iterations} iteration(s)")
        print(header)
        print()
        print(summary_table(result.tracer, result.total_time_us, top=args.top))
    elif args.command == "links":
        print(links_table(registry))
    elif args.command == "ops":
        print(ops_table(registry))
    else:  # critical-path
        report = critical_path(result.tracer.spans, iterations=args.iterations)
        print(critical_path_table(report, top=max(args.top, 20)))
    if getattr(args, "sanitize", False):
        print()
        print(f"sanitizer: {len(findings)} race finding(s)")
        for finding in findings:
            print(f"  {finding.summary()}")
    _write_outputs(args, result, registry)
    return 1 if findings else 0


def _diff_command(args: argparse.Namespace) -> int:
    old = load_metrics(args.old)
    new = load_metrics(args.new)
    deltas = diff_metrics(old, new)
    only_old = sorted(old.keys() - new.keys())
    only_new = sorted(new.keys() - old.keys())
    regressions = [d for d in deltas if d.is_regression(args.threshold)]
    for delta in deltas:
        if not args.all and delta.rel == 0.0:
            continue
        marker = "REGRESSION" if delta.is_regression(args.threshold) else (
            "improved" if delta.rel < 0 else "within threshold")
        rel = "new" if delta.rel == float("inf") else f"{100.0 * delta.rel:+.1f}%"
        print(f"{delta.key}: {delta.old:g} -> {delta.new:g} ({rel}) [{marker}]")
    for key in only_old:
        print(f"{key}: only in {args.old}")
    for key in only_new:
        print(f"{key}: only in {args.new}")
    print(f"{len(deltas)} metric(s) compared, {len(regressions)} regression(s) "
          f"beyond {100.0 * args.threshold:.1f}%")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
