"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of the observability layer (the
:class:`~repro.sim.trace.Tracer` is the timeline half).  Two rules make
it safe to leave enabled everywhere:

**Determinism.**  Metrics may only record *simulated* quantities —
event counts, modeled bytes, simulated microseconds.  No wall clock, no
randomness, no process ids.  Two runs of the same configuration must
produce byte-identical :meth:`MetricsRegistry.to_json` dumps, and a
sweep fanned out over worker processes must merge to the same dump as
a serial run (``repro.perf`` merges worker registries in submission
order).  Histograms use *fixed* bucket edges for the same reason.

**Zero perturbation.**  Recording must never advance simulated time or
change scheduling.  Instrumented components hold an optional registry
and skip recording when it is ``None`` — the same ``None``-safe pattern
the tracer uses.

The active registry is installed with :func:`use_metrics`; components
created inside the block (e.g. a :class:`~repro.runtime.context.
MultiGPUContext`) pick it up at construction time.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_metrics",
    "use_metrics",
]

#: default histogram bucket upper edges, in simulated microseconds
DEFAULT_US_EDGES = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)


class Counter:
    """Monotonically increasing value (int or simulated-time float)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter decrement: {amount}")
        self.value += amount

    def _dump(self) -> dict[str, Any]:
        return {"value": self.value}

    def _merge(self, payload: dict[str, Any]) -> None:
        self.value += payload["value"]


class Gauge:
    """Last-written value (e.g. a configured size or level)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def _dump(self) -> dict[str, Any]:
        return {"value": self.value}

    def _merge(self, payload: dict[str, Any]) -> None:
        self.value = payload["value"]


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` observations ``<= edges[i]``,
    plus one overflow bucket; tracks sum and count for means."""

    __slots__ = ("edges", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, edges: tuple[float, ...] = DEFAULT_US_EDGES) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram edges must be strictly increasing: {edges}")
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(edges) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _dump(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def _merge(self, payload: dict[str, Any]) -> None:
        if list(payload["edges"]) != list(self.edges):
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{payload['edges']} vs {list(self.edges)}"
            )
        for i, n in enumerate(payload["counts"]):
            self.counts[i] += n
        self.sum += payload["sum"]
        self.count += payload["count"]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _canonical_labels(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create store of labeled metrics.

    A metric is identified by ``(kind, name, labels)``; labels are
    stringified and sorted, so ``counter("x", a=1, b=2)`` and
    ``counter("x", b=2, a=1)`` are the same counter.  Dumps are sorted
    on every axis, so creation order never leaks into the output.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, str, tuple[tuple[str, str], ...]], Any] = {}

    # -- get-or-create -------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, edges: tuple[float, ...] = DEFAULT_US_EDGES,
                  **labels: Any) -> Histogram:
        key = ("histogram", name, _canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Histogram(edges)
        return metric

    def _get(self, kind: str, name: str, labels: dict[str, Any]) -> Any:
        key = (kind, name, _canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = _KINDS[kind]()
        return metric

    # -- queries -------------------------------------------------------------

    def find(self, name: str, kind: str | None = None) -> list[tuple[dict[str, str], Any]]:
        """All ``(labels, metric)`` pairs registered under ``name``,
        sorted by labels (deterministic iteration for table builders)."""
        out = [
            (dict(key[2]), metric)
            for key, metric in self._metrics.items()
            if key[1] == name and (kind is None or key[0] == kind)
        ]
        out.sort(key=lambda pair: sorted(pair[0].items()))
        return out

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge, or 0 if never touched."""
        for kind in ("counter", "gauge"):
            metric = self._metrics.get((kind, name, _canonical_labels(labels)))
            if metric is not None:
                return metric.value
        return 0

    def __len__(self) -> int:
        return len(self._metrics)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, list[dict[str, Any]]]:
        """Canonical nested form: one sorted list per metric kind."""
        out: dict[str, list[dict[str, Any]]] = {
            "counters": [], "gauges": [], "histograms": [],
        }
        section = {"counter": "counters", "gauge": "gauges", "histogram": "histograms"}
        for key in sorted(self._metrics):
            kind, name, labels = key
            entry = {"name": name, "labels": dict(labels)}
            entry.update(self._metrics[key]._dump())
            out[section[kind]].append(entry)
        return out

    def to_json(self) -> str:
        """Byte-stable JSON rendering (the on-disk dump format)."""
        from repro.obs.stablejson import dumps_stable

        return dumps_stable(self.to_dict())

    def merge_registry(self, other: "MetricsRegistry") -> None:
        """Fold another registry in directly — equivalent to
        ``merge_dict(other.to_dict())`` without the dump round-trip
        (the fast path for in-process sweep merges)."""
        for key in sorted(other._metrics):
            metric = other._metrics[key]
            mine = self._metrics.get(key)
            if mine is None:
                mine = self._metrics[key] = (
                    Histogram(metric.edges) if key[0] == "histogram"
                    else _KINDS[key[0]]()
                )
            mine._merge(metric._dump())

    def merge_dict(self, payload: dict[str, Any]) -> None:
        """Fold a :meth:`to_dict` dump into this registry (counters and
        histograms add; gauges take the incoming value).  Used to merge
        per-worker registries in deterministic submission order."""
        for kind, section in (("counter", "counters"), ("gauge", "gauges"),
                              ("histogram", "histograms")):
            for entry in payload.get(section, []):
                if kind == "histogram":
                    metric = self.histogram(entry["name"], tuple(entry["edges"]),
                                            **entry["labels"])
                else:
                    metric = self._get(kind, entry["name"], entry["labels"])
                metric._merge(entry)


#: module-level active registry (None = observability disabled)
_active: MetricsRegistry | None = None


def active_metrics() -> MetricsRegistry | None:
    """The registry instrumented components should record into, if any."""
    return _active


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the active registry for the enclosed block."""
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous
