"""Per-PE utilization timelines — the paper's argument as a number.

The CPU-free claim is that each PE keeps its GPU busy by overlapping
device-initiated communication with interior compute and by removing
host-side control latency.  This module post-processes a run's spans
into deterministic per-PE *phase accounting* that makes the claim
checkable per PE:

``compute``
    union of ``category == "compute"`` spans on that PE's GPU lanes
    (``gpu{d}.*``).
``comm``
    union of the PE's outgoing transfers (``wire.pe{d}->*`` lanes —
    a transfer is charged to the PE that initiated it) plus
    ``category == "comm"`` spans on its GPU lanes (local packing,
    D2D copy legs).
``sync``
    union of ``category == "sync"`` spans on its GPU lanes (signal
    waits, barrier waits).
``host``
    union of *all* spans on its host lane (``host{d}``): kernel-launch
    and API calls, host-side waits — the control time the CPU-free
    design removes.

The headline **overlap fraction** is the *hidden-non-compute* fraction:

    overlap = |(comm ∪ sync ∪ host) ∩ compute| / |comm ∪ sync ∪ host|

i.e. of everything a PE did besides compute, how much was hidden under
its own compute.  CPU-controlled baselines serialize launch/wait
control between kernels, so their sync + host time is *exposed* and the
fraction is low; CPU-free variants fold waits and communication under
interior compute and score strictly higher (the acceptance criterion of
this PR, pinned in ``tests/obs/test_timeline.py``).  The narrower
comm-only fraction (``comm_overlap`` — the classic Figure 2.2b metric)
is also reported; note that baselines whose only "comm" is a D2D copy
scheduled under interior compute can score a perfect comm-only ratio
while hiding none of their control time, which is why it is not the
headline.

Everything here is a pure function of the span list — simulated
timestamps only, no wall clock — so payloads are byte-identical across
reruns, ``--jobs`` counts, and ``--batch`` on/off (batched runs demux
to the same spans by the PR 6 contract).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.sim.trace import (
    Span,
    interval_union_length,
    merge_intervals,
    overlap_length,
    pe_of_lane,
)

__all__ = [
    "PEPhases",
    "pe_phases",
    "render_gantt",
    "timeline_payload",
    "timeline_table",
]

TIMELINE_FORMAT = "repro-timeline-v1"

Interval = tuple[float, float]


class PEPhases:
    """Merged phase interval sets for one PE (see module docs)."""

    __slots__ = ("pe", "compute", "comm", "sync", "host")

    def __init__(self, pe: int) -> None:
        self.pe = pe
        self.compute: list[Interval] = []
        self.comm: list[Interval] = []
        self.sync: list[Interval] = []
        self.host: list[Interval] = []

    @property
    def noncompute(self) -> list[Interval]:
        """Everything but compute — the time that *could* be hidden."""
        return merge_intervals(self.comm + self.sync + self.host)

    @property
    def busy(self) -> list[Interval]:
        return merge_intervals(self.compute + self.comm + self.sync + self.host)

    def overlap_fraction(self) -> float:
        """Headline metric: fraction of non-compute hidden under compute."""
        noncompute = self.noncompute
        total = interval_union_length(noncompute)
        if total == 0.0:
            return 0.0
        return overlap_length(noncompute, self.compute) / total

    def comm_overlap_fraction(self) -> float:
        """Narrow Figure-2.2b metric: fraction of comm hidden under compute."""
        total = interval_union_length(self.comm)
        if total == 0.0:
            return 0.0
        return overlap_length(self.comm, self.compute) / total


def pe_phases(spans: Iterable[Span]) -> dict[int, PEPhases]:
    """Bucket spans into per-PE phase interval sets.

    Lanes that do not belong to a PE (none exist today) are ignored;
    zero-duration spans contribute nothing to a union and are skipped.
    """
    phases: dict[int, PEPhases] = {}
    for span in spans:
        pe = pe_of_lane(span.lane)
        if pe is None or span.duration == 0.0:
            continue
        entry = phases.get(pe)
        if entry is None:
            entry = phases[pe] = PEPhases(pe)
        interval = (span.start, span.end)
        if span.lane.startswith("host"):
            entry.host.append(interval)
        elif span.lane.startswith("wire."):
            entry.comm.append(interval)
        elif span.category == "compute":
            entry.compute.append(interval)
        elif span.category == "comm":
            entry.comm.append(interval)
        elif span.category == "sync":
            entry.sync.append(interval)
        else:  # "api" and anything future on a GPU lane: control time
            entry.host.append(interval)
    for entry in phases.values():
        entry.compute = merge_intervals(entry.compute)
        entry.comm = merge_intervals(entry.comm)
        entry.sync = merge_intervals(entry.sync)
        entry.host = merge_intervals(entry.host)
    return phases


def timeline_payload(spans: Iterable[Span], *, meta: dict[str, Any] | None = None) -> dict[str, Any]:
    """Byte-stable timeline document (``repro-timeline-v1``).

    ``meta`` is echoed verbatim under ``"run"`` so a dump is
    self-describing (variant, shape, gpus, ...).  All times are
    simulated microseconds.
    """
    spans = list(spans)
    phases = pe_phases(spans)
    timed = [s for s in spans if s.duration > 0.0] or list(spans)
    t0 = min((s.start for s in timed), default=0.0)
    t1 = max((s.end for s in timed), default=0.0)
    makespan = t1 - t0
    pes = []
    total_noncompute = 0.0
    total_hidden = 0.0
    for pe in sorted(phases):
        entry = phases[pe]
        noncompute = entry.noncompute
        noncompute_us = interval_union_length(noncompute)
        hidden_us = overlap_length(noncompute, entry.compute)
        busy_us = interval_union_length(entry.busy)
        total_noncompute += noncompute_us
        total_hidden += hidden_us
        pes.append({
            "pe": pe,
            "compute_us": interval_union_length(entry.compute),
            "comm_us": interval_union_length(entry.comm),
            "sync_us": interval_union_length(entry.sync),
            "host_us": interval_union_length(entry.host),
            "busy_us": busy_us,
            "idle_us": max(0.0, makespan - busy_us),
            "hidden_us": hidden_us,
            "exposed_us": noncompute_us - hidden_us,
            "overlap": entry.overlap_fraction(),
            "comm_overlap": entry.comm_overlap_fraction(),
        })
    payload: dict[str, Any] = {
        "format": TIMELINE_FORMAT,
        "t0_us": t0,
        "t1_us": t1,
        "makespan_us": makespan,
        "pes": pes,
        "overlap": (total_hidden / total_noncompute) if total_noncompute else 0.0,
        "mean_overlap": (
            sum(p["overlap"] for p in pes) / len(pes) if pes else 0.0
        ),
    }
    if meta is not None:
        payload["run"] = meta
    return payload


def timeline_table(payload: dict[str, Any]) -> str:
    """Fixed-width per-PE phase table for the CLI."""
    headers = ["pe", "compute us", "comm us", "sync us", "host us",
               "idle us", "overlap", "comm ovl"]
    rows = [
        [str(p["pe"]), f"{p['compute_us']:.3f}", f"{p['comm_us']:.3f}",
         f"{p['sync_us']:.3f}", f"{p['host_us']:.3f}", f"{p['idle_us']:.3f}",
         f"{100.0 * p['overlap']:.1f}%", f"{100.0 * p['comm_overlap']:.1f}%"]
        for p in payload["pes"]
    ]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [
        f"makespan: {payload['makespan_us']:.3f} us over {len(payload['pes'])} PE(s)",
        f"overlap (non-compute hidden under compute): "
        f"{100.0 * payload['overlap']:.1f}%",
        "",
        fmt(headers),
        fmt(["-" * w for w in widths]),
    ]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_gantt(spans: Iterable[Span], width: int = 80) -> str:
    """One-row-per-PE ASCII gantt with phase glyphs.

    ``#`` compute · ``%`` non-compute hidden under compute · ``~``
    exposed comm · ``|`` exposed sync · ``.`` exposed host-control ·
    space idle.  Cells are painted from merged interval sets, so two
    runs with the same spans render the same text.
    """
    phases = pe_phases(spans)
    if not phases:
        return "(empty timeline)"
    t0 = min(iv[0] for p in phases.values() for iv in p.busy)
    t1 = max(iv[1] for p in phases.values() for iv in p.busy)
    extent = max(t1 - t0, 1e-12)

    def paint(mask: list[bool], intervals: list[Interval]) -> None:
        for lo_t, hi_t in intervals:
            lo = int((lo_t - t0) / extent * (width - 1))
            hi = max(lo + 1, int((hi_t - t0) / extent * (width - 1)) + 1)
            for i in range(lo, min(hi, width)):
                mask[i] = True

    label_width = max(len(f"pe{pe}") for pe in phases)
    rows = [_gantt_ruler(t0, t1, width, label_width)]
    for pe in sorted(phases):
        entry = phases[pe]
        compute = [False] * width
        comm = [False] * width
        sync = [False] * width
        host = [False] * width
        paint(compute, entry.compute)
        paint(comm, entry.comm)
        paint(sync, entry.sync)
        paint(host, entry.host)
        row = []
        for i in range(width):
            noncompute = comm[i] or sync[i] or host[i]
            if compute[i] and noncompute:
                row.append("%")
            elif compute[i]:
                row.append("#")
            elif comm[i]:
                row.append("~")
            elif sync[i]:
                row.append("|")
            elif host[i]:
                row.append(".")
            else:
                row.append(" ")
        rows.append(f"{f'pe{pe}':>{label_width}} |{''.join(row)}|")
    rows.append(f"{'legend':>{label_width}}  # compute   % hidden   ~ comm   "
                f"| sync   . host   (space) idle")
    return "\n".join(rows)


def _gantt_ruler(t0: float, t1: float, width: int, label_width: int) -> str:
    ticks = [0, (width - 1) // 4, (width - 1) // 2, 3 * (width - 1) // 4, width - 1]
    ruler = ["-"] * width
    for tick in ticks:
        ruler[tick] = "+"
    labels = [" "] * width
    for tick in ticks:
        text = f"{t0 + (t1 - t0) * tick / max(1, width - 1):.1f}"
        at = min(tick, width - len(text))
        labels[at:at + len(text)] = text
    return (f"{'':>{label_width}}  {''.join(labels)}\n"
            f"{'t (us)':>{label_width}} |{''.join(ruler)}|")
