"""Unified observability layer: metrics, trace enrichment, inspection.

Three pieces, all deterministic and zero-cost when disabled:

- :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` (counters,
  gauges, fixed-bucket histograms) threaded through the engine,
  interconnect, NVSHMEM, SDFG codegen, and sweep layers;
- :mod:`repro.obs.critical` — critical-path extraction over the traced
  span DAG (lane order + signal flow links);
- ``python -m repro.obs`` — the inspection CLI (``summary``, ``links``,
  ``ops``, ``critical-path``, ``diff``).

See ``docs/observability.md`` for the metrics catalogue and the
determinism contract.
"""

from repro.obs.critical import CriticalPathReport, PathStep, critical_path
from repro.obs.diff import diff_metrics, flatten_metrics, load_metrics
from repro.obs.metrics import (
    DEFAULT_US_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_metrics,
    use_metrics,
)
from repro.obs.report import (
    critical_path_table,
    links_table,
    ops_table,
    summary_table,
)

__all__ = [
    "DEFAULT_US_EDGES",
    "Counter",
    "CriticalPathReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PathStep",
    "active_metrics",
    "critical_path",
    "critical_path_table",
    "diff_metrics",
    "flatten_metrics",
    "links_table",
    "load_metrics",
    "ops_table",
    "summary_table",
    "use_metrics",
]
