"""Live sweep progress streaming (the sweep-service groundwork).

:class:`~repro.perf.sweep.SweepRunner` accepts a ``progress`` sink and
narrates each map call through it: every point is announced as queued,
then resolved as cached / batched / computed, with wall timing where it
exists.  Sinks are *observers* — they never influence results, cache
keys, or scheduling, so a sweep with a sink attached is byte-identical
to one without (enforced by ``tests/perf/test_progress.py``).

Three renderers ship:

:class:`JsonlProgress`
    One JSON object per event — the machine-readable stream a future
    sweep service would tail.
:class:`TtyProgress`
    Human one-liners with a running ``[done/total]`` counter and an ETA
    computed from per-point median wall seconds out of the perf
    history (:meth:`~repro.obs.history.HistoryStore.wall_medians`).
:class:`HistorySink`
    Appends one :mod:`~repro.obs.history` record per finished point —
    this is how ``repro.bench --history`` populates the store.

Wall clocks are injectable (``clock=``) so tests run against a fake.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, TextIO

from repro.obs.history import HistoryStore, normalized_identity
from repro.obs.stablejson import digest_stable

__all__ = [
    "HistorySink",
    "JsonlProgress",
    "MultiSink",
    "ProgressSink",
    "TtyProgress",
    "default_fields",
]


class ProgressSink:
    """No-op base class; override the events you care about.

    Event order per map call: one :meth:`sweep_begin`; then per point
    exactly one of :meth:`point_cached` / :meth:`point_batched` /
    (:meth:`point_started` + :meth:`point_finished`), except duplicate
    argtuples which resolve as :meth:`point_cached` with
    ``duplicate_of`` set; finally one :meth:`sweep_end`.
    """

    def sweep_begin(self, fn_name: str, identities: list[str]) -> None:
        pass

    def point_cached(self, index: int, identity: str,
                     duplicate_of: int | None = None) -> None:
        pass

    def point_batched(self, index: int, identity: str, group_size: int,
                      result: Any = None) -> None:
        pass

    def point_started(self, index: int, identity: str) -> None:
        pass

    def point_finished(self, index: int, identity: str, wall_s: float,
                       result: Any = None) -> None:
        pass

    def sweep_end(self, fn_name: str, n_points: int) -> None:
        pass


class MultiSink(ProgressSink):
    """Fan every event out to several sinks in order."""

    def __init__(self, *sinks: ProgressSink) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def sweep_begin(self, fn_name, identities):
        for s in self.sinks:
            s.sweep_begin(fn_name, identities)

    def point_cached(self, index, identity, duplicate_of=None):
        for s in self.sinks:
            s.point_cached(index, identity, duplicate_of)

    def point_batched(self, index, identity, group_size, result=None):
        for s in self.sinks:
            s.point_batched(index, identity, group_size, result)

    def point_started(self, index, identity):
        for s in self.sinks:
            s.point_started(index, identity)

    def point_finished(self, index, identity, wall_s, result=None):
        for s in self.sinks:
            s.point_finished(index, identity, wall_s, result)

    def sweep_end(self, fn_name, n_points):
        for s in self.sinks:
            s.sweep_end(fn_name, n_points)


class JsonlProgress(ProgressSink):
    """One JSON line per event, flushed immediately (tail-able)."""

    def __init__(self, stream: TextIO) -> None:
        self.stream = stream

    def _emit(self, event: str, **fields: Any) -> None:
        record = {"event": event, **fields}
        self.stream.write(json.dumps(record, sort_keys=True) + "\n")
        self.stream.flush()

    def sweep_begin(self, fn_name, identities):
        self._emit("sweep_begin", fn=fn_name, points=len(identities))

    def point_cached(self, index, identity, duplicate_of=None):
        self._emit("point_cached", i=index, id=identity,
                   **({"duplicate_of": duplicate_of}
                      if duplicate_of is not None else {}))

    def point_batched(self, index, identity, group_size, result=None):
        self._emit("point_batched", i=index, id=identity, group=group_size)

    def point_started(self, index, identity):
        self._emit("point_started", i=index, id=identity)

    def point_finished(self, index, identity, wall_s, result=None):
        self._emit("point_finished", i=index, id=identity,
                   wall_s=round(wall_s, 6))

    def sweep_end(self, fn_name, n_points):
        self._emit("sweep_end", fn=fn_name, points=n_points)


class TtyProgress(ProgressSink):
    """Human-readable one-liners with a running counter and ETA.

    ``eta_medians`` maps point identities to median wall seconds
    (usually :meth:`HistoryStore.wall_medians`); unknown identities
    fall back to the running mean of finished points this sweep.
    """

    def __init__(self, stream: TextIO | None = None,
                 eta_medians: dict[str, float] | None = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.eta_medians = eta_medians or {}
        self.clock = clock
        self._total = 0
        self._done = 0
        self._open: dict[int, str] = {}
        self._spent = 0.0
        self._computed = 0

    def _remaining_estimate(self) -> float | None:
        if not self._open:
            return 0.0
        known = [self.eta_medians[i] for i in self._open.values()
                 if i in self.eta_medians]
        if len(known) < len(self._open):
            if not self._computed:
                return None  # no basis for a guess yet
            mean = self._spent / self._computed
            known.extend([mean] * (len(self._open) - len(known)))
        return sum(known)

    def _line(self, text: str) -> None:
        eta = self._remaining_estimate()
        suffix = "" if eta is None else f"  eta {eta:.1f}s"
        self.stream.write(f"[{self._done}/{self._total}] {text}{suffix}\n")
        self.stream.flush()

    @staticmethod
    def _short(identity: str) -> str:
        return identity if len(identity) <= 96 else identity[:93] + "..."

    def sweep_begin(self, fn_name, identities):
        self._total = len(identities)
        self._done = 0
        self._open = dict(enumerate(identities))
        self.stream.write(f"sweep {fn_name}: {self._total} point(s)\n")
        self.stream.flush()

    def point_cached(self, index, identity, duplicate_of=None):
        self._done += 1
        self._open.pop(index, None)
        kind = "dup" if duplicate_of is not None else "cached"
        self._line(f"{kind} {self._short(identity)}")

    def point_batched(self, index, identity, group_size, result=None):
        self._done += 1
        self._open.pop(index, None)
        self._line(f"batched(x{group_size}) {self._short(identity)}")

    def point_finished(self, index, identity, wall_s, result=None):
        self._done += 1
        self._open.pop(index, None)
        self._spent += wall_s
        self._computed += 1
        self._line(f"done ({wall_s:.2f}s) {self._short(identity)}")

    def sweep_end(self, fn_name, n_points):
        self.stream.write(f"sweep {fn_name}: complete\n")
        self.stream.flush()


def _events_from_dump(dump: dict[str, Any]) -> float | None:
    for entry in dump.get("counters", []):
        if entry.get("name") == "sim.events_dispatched" and not entry.get("labels"):
            return float(entry["value"])
    return None


def default_fields(result: Any) -> dict[str, Any]:
    """Duck-typed numeric extraction from a sweep point's value.

    Handles bare figure ``Row``-likes and the ``(result, metrics
    dump)`` pairs a metrics-collecting sweep produces.
    """
    fields: dict[str, Any] = {}
    dump = None
    if isinstance(result, tuple) and len(result) == 2:
        if isinstance(result[1], dict):
            result, dump = result
        elif hasattr(result[1], "to_dict"):
            # the in-process sweep path hands back the live registry
            result, dump = result[0], result[1].to_dict()
    for attr, key in (("per_iteration_us", "per_iter_us"),
                      ("comm_us_per_iter", "comm_us_per_iter"),
                      ("overlap_ratio", "overlap")):
        value = getattr(result, attr, None)
        if isinstance(value, (int, float)):
            fields[key] = float(value)
    if dump is not None:
        fields["digest"] = digest_stable(dump)
        events = _events_from_dump(dump)
        if events is not None:
            fields["events"] = events
    return fields


class HistorySink(ProgressSink):
    """Append a history record per resolved point.

    Batched points record their deterministic fields without wall time;
    computed points add ``wall_s`` and events/s; cache hits record
    nothing (a replayed result is not a new observation — run with a
    fresh cache dir or ``--no-cache`` when populating history).  The
    ambient fault ``profile`` is stripped from the identity
    (:func:`normalized_identity`) and recorded as its own field.
    """

    def __init__(self, store: HistoryStore, run_label: str,
                 profile: str | None = None,
                 extract: Callable[[Any], dict[str, Any]] | None = None) -> None:
        self.store = store
        self.run_label = run_label
        self.profile = profile
        self.extract = extract or default_fields
        self.recorded = 0

    def _record(self, identity: str, result: Any,
                wall_s: float | None) -> None:
        if result is None:
            return
        fields = self.extract(result)
        if not fields:
            return
        record: dict[str, Any] = {
            "run": self.run_label,
            "id": normalized_identity(identity, self.profile),
            "profile": self.profile,
            **fields,
        }
        if wall_s is not None:
            record["wall_s"] = round(wall_s, 6)
            events = fields.get("events")
            if events and wall_s > 0:
                record["events_per_s"] = round(events / wall_s, 3)
        self.store.append(record)
        self.recorded += 1

    def point_cached(self, index, identity, duplicate_of=None):
        pass  # a replayed point is not a new observation

    def point_batched(self, index, identity, group_size, result=None):
        self._record(identity, result, None)

    def point_finished(self, index, identity, wall_s, result=None):
        self._record(identity, result, wall_s)
