"""The one byte-stable JSON dump convention, shared by every exporter.

Every tool in this repo that persists a JSON report (metrics dumps,
sanitizer reports, chaos-matrix reports, timelines, perf history)
promises the same contract: *identical inputs produce identical
bytes*.  Before this module each subsystem carried its own copy of the
``json.dumps(..., indent=2, sort_keys=True) + "\\n"`` incantation; now
they all call :func:`dumps_stable`, and the contract is pinned by one
test (``tests/obs/test_stablejson.py``) instead of three conventions
drifting apart.

The rules:

* keys sorted at every nesting level (``sort_keys=True``);
* two-space indentation, default separators;
* floats rendered by :func:`repr` via the stock encoder — Python
  guarantees shortest round-trip repr, so equal values are equal text;
* exactly one trailing newline (POSIX text file, clean ``cmp``/diffs);
* no NaN/Infinity — they are not JSON and would break re-parsing.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

__all__ = ["digest_stable", "dump_stable", "dumps_stable"]


def dumps_stable(payload: Any) -> str:
    """Render ``payload`` as byte-stable JSON text (see module docs)."""
    return json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"


def dump_stable(payload: Any, path: str | Path) -> Path:
    """Write :func:`dumps_stable` text to ``path``; returns the path."""
    path = Path(path)
    path.write_text(dumps_stable(payload))
    return path


def digest_stable(payload: Any) -> str:
    """Short content digest of a payload's stable rendering.

    Used by the perf history to fingerprint metric dumps: two runs
    with byte-identical metrics share a digest, so a digest flip is a
    one-field signal that *something* observable changed.
    """
    return hashlib.sha256(dumps_stable(payload).encode()).hexdigest()[:16]
