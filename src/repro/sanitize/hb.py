"""Vector clocks and the engine monitor that maintains them.

The simulator already funnels *every* synchronization primitive through
:class:`repro.sim.Flag` — NVSHMEM signal words, the quiet pending
counters, grid-barrier arrival counts, host barriers, stream completion
flags, MPI request flags and local spin flags are all Flags — so a
monitor observing flag releases/acquires plus process spawn/join sees
the complete happens-before relation of a run.

The model is the classic one:

* each process (DES generator) carries a vector clock; entry ``tid``
  counts that process's release points;
* ``released(flag)``: the flag's clock joins the releaser's, then the
  releaser ticks its own component (so later events are *not* ordered
  before the release);
* ``acquired(flag)``: the acquirer's clock joins the flag's;
* ``spawned(child, parent)``: the child starts from a copy of the
  parent's clock (everything the parent did so far happens-before the
  child) and the parent ticks;
* ``finished`` / ``joined``: the final clock of a finished process
  joins into every joiner.

Two subtleties, mirrored from the engine:

* a ``Flag.set`` to the current value is a no-op (no waiters wake) —
  the engine skips the ``released`` hook for it, so a same-value set
  creates no edge;
* a ``WaitFlag`` that resumes via *timeout* never observed the flag —
  the engine deliberately performs no ``acquired`` for it.

Clock maps are keyed by the live ``Process`` / ``Flag`` objects (which
also keeps them alive): ``id()`` reuse after garbage collection would
otherwise merge a dead process's clock into an unrelated new one and
fabricate happens-before edges.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Flag, Process

__all__ = ["HBMonitor", "VectorClock", "happens_before"]

#: tid used for code running outside any DES process (the host setup
#: code that fills initial conditions, sets flags to 1, etc.).
MAIN_TID = 0


class VectorClock(dict):
    """``{tid: count}`` vector clock; missing entries are zero."""

    __slots__ = ()

    def join(self, other: dict[int, int]) -> None:
        """In-place component-wise max (the HB join)."""
        for tid, count in other.items():
            if self.get(tid, 0) < count:
                self[tid] = count

    def copy(self) -> "VectorClock":
        return VectorClock(self)


def happens_before(
    a_tid: int, a_clock: dict[int, int], b_clock: dict[int, int]
) -> bool:
    """Did the event stamped ``(a_tid, a_clock)`` happen-before an
    event stamped with ``b_clock``?

    True iff ``b``'s view of ``a``'s component is at least ``a``'s own
    count at the time of the event — i.e. some chain of sync edges
    carried ``a``'s progress to ``b``.
    """
    return b_clock.get(a_tid, 0) >= a_clock.get(a_tid, 0)


class HBMonitor:
    """Engine monitor (``Simulator.monitor``) maintaining vector clocks.

    Install with ``sim.monitor = HBMonitor()``; the recorder
    (:class:`repro.sanitize.recorder.Sanitizer`) snapshots
    :meth:`clock_of` at each tracked heap access.
    """

    def __init__(self) -> None:
        self._next_tid = MAIN_TID + 1
        # keyed by Process object; None stands for host/main code
        self._tids: dict[object, int] = {}
        self._proc_clocks: dict[object, VectorClock] = {}
        self._flag_clocks: dict[object, VectorClock] = {}
        self._main_clock = VectorClock({MAIN_TID: 1})

    # -- identity ------------------------------------------------------------

    def tid_of(self, proc: "Process | None") -> int:
        if proc is None:
            return MAIN_TID
        tid = self._tids.get(proc)
        if tid is None:
            tid = self._tids[proc] = self._next_tid
            self._next_tid += 1
        return tid

    def clock_of(self, proc: "Process | None") -> VectorClock:
        if proc is None:
            return self._main_clock
        clock = self._proc_clocks.get(proc)
        if clock is None:
            # process observed before its spawn hook (defensive): it
            # inherits nothing but its own component.
            clock = self._proc_clocks[proc] = VectorClock({self.tid_of(proc): 1})
        return clock

    # -- engine hook protocol ------------------------------------------------

    def spawned(self, child: "Process", parent: "Process | None") -> None:
        parent_clock = self.clock_of(parent)
        child_clock = parent_clock.copy()
        child_clock[self.tid_of(child)] = 1
        self._proc_clocks[child] = child_clock
        # tick the parent: the spawn is a release point for it
        parent_clock[self.tid_of(parent)] = parent_clock.get(self.tid_of(parent), 0) + 1

    def released(self, flag: "Flag", releaser: "Process | None") -> None:
        clock = self.clock_of(releaser)
        flag_clock = self._flag_clocks.get(flag)
        if flag_clock is None:
            flag_clock = self._flag_clocks[flag] = VectorClock()
        flag_clock.join(clock)
        tid = self.tid_of(releaser)
        clock[tid] = clock.get(tid, 0) + 1

    def acquired(self, proc: "Process", flag: "Flag") -> None:
        flag_clock = self._flag_clocks.get(flag)
        if flag_clock:
            self.clock_of(proc).join(flag_clock)

    def finished(self, proc: "Process") -> None:
        # tick so the final clock is a proper release point for joiners
        clock = self.clock_of(proc)
        tid = self.tid_of(proc)
        clock[tid] = clock.get(tid, 0) + 1

    def joined(self, joiner: "Process", target: "Process") -> None:
        self.clock_of(joiner).join(self.clock_of(target))
