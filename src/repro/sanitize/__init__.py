"""Communication sanitizer: happens-before race detection.

The sanitizer is the correctness leg next to the perf (``repro.perf``),
observability (``repro.obs``) and robustness (``repro.faults``) layers.
It has two halves:

* a **dynamic vector-clock happens-before detector**
  (:mod:`repro.sanitize.hb`, :mod:`repro.sanitize.detect`) that consumes
  the simulator's deterministic event stream — local loads/stores on
  symmetric heap regions, put / put-signal delivery legs, signal-wait
  completions, quiet/fence/barrier edges — and reports conflicting
  accesses not ordered by any synchronization edge, naming both PEs,
  the heap offsets, and the trace spans involved; and
* a **static communication lint** over SDFGs
  (:mod:`repro.sdfg.lint`) that flags unsignaled puts, waits with no
  producer, source-buffer reuse before quiet, and mismatched signal
  pairs without running anything.

Attach the dynamic half with :func:`attach_sanitizer` before a run and
collect findings with :func:`~repro.sanitize.detect.detect_races`; or
use ``python -m repro.sanitize`` which does both and emits byte-stable
JSON reports.
"""

from __future__ import annotations

from repro.sanitize.detect import RaceFinding, detect_races
from repro.sanitize.hb import HBMonitor, VectorClock
from repro.sanitize.recorder import Access, Sanitizer, attach_sanitizer

__all__ = [
    "Access",
    "HBMonitor",
    "RaceFinding",
    "Sanitizer",
    "VectorClock",
    "attach_sanitizer",
    "detect_races",
]
