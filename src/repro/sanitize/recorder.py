"""Recording symmetric-heap accesses against live vector clocks.

:class:`Sanitizer` is the glue between the engine's
:class:`~repro.sanitize.hb.HBMonitor` (which maintains the clocks) and
the race detector (which replays the recorded accesses offline after
the run).  Instrumentation points call :meth:`Sanitizer.record` /
:meth:`Sanitizer.record_symmetric`:

* ``stencil/base.py`` records the local read/write row ranges of each
  compute step and the boundary-row read of each send;
* ``nvshmem/device.py`` records the destination store of every put's
  delivery leg (attributed to the *delivery* process, whose clock the
  spawning put seeded — so a signal chained after the data creates the
  edge readers acquire).

Only allocations registered via :meth:`register_array` (every
``nvshmem_malloc`` when a sanitizer is attached) are tracked; accesses
to unregistered memory are dropped, so untracked code can only cause
false *negatives*, never false findings.

Scope note: put *source* buffers are snapshotted at issue time by the
simulator, so dynamic source-reuse-before-quiet races cannot manifest
here — the static lint (:mod:`repro.sdfg.lint`) covers that hazard.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sanitize.hb import HBMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nvshmem.heap import SymmetricArray
    from repro.runtime.context import MultiGPUContext
    from repro.sim import Simulator

__all__ = ["Access", "Sanitizer", "attach_sanitizer"]


class Access:
    """One recorded load/store on a symmetric allocation."""

    __slots__ = (
        "seq", "array", "owner_pe", "by_pe", "lo", "hi", "kind",
        "site", "label", "origin", "time_us", "tid", "clock",
    )

    def __init__(self, seq: int, array: str, owner_pe: int, by_pe: int,
                 lo: int, hi: int, kind: str, site: str, label: str,
                 origin: str, time_us: float, tid: int,
                 clock: dict[int, int]) -> None:
        self.seq = seq
        self.array = array
        self.owner_pe = owner_pe
        self.by_pe = by_pe
        self.lo = lo
        self.hi = hi
        self.kind = kind
        self.site = site
        self.label = label
        self.origin = origin
        self.time_us = time_us
        self.tid = tid
        self.clock = clock

    def describe(self) -> dict[str, Any]:
        """JSON-ready summary (no clocks — those are run-internal)."""
        return {
            "kind": self.kind,
            "by_pe": self.by_pe,
            "offsets": [self.lo, self.hi],
            "site": self.site,
            "label": self.label,
            "origin": self.origin,
            "time_us": round(self.time_us, 3),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Access {self.kind} {self.array}@pe{self.owner_pe}"
                f"[{self.lo}:{self.hi}] by pe{self.by_pe} ({self.site})>")


class Sanitizer:
    """Collects accesses on registered symmetric arrays during a run."""

    def __init__(self, sim: "Simulator", monitor: HBMonitor) -> None:
        self.sim = sim
        self.monitor = monitor
        self.accesses: list[Access] = []
        self._tracked: set[str] = set()

    def register_array(self, array: "SymmetricArray") -> None:
        """Track ``array`` (called by ``nvshmem_malloc``)."""
        self._tracked.add(array.name)

    def tracks(self, name: str) -> bool:
        return name in self._tracked

    def record(self, array: str, owner_pe: int, lo: int, hi: int,
               kind: str, *, site: str, by_pe: int, label: str = "") -> None:
        """Record one access with the current process's clock snapshot."""
        if array not in self._tracked or lo >= hi:
            return
        proc = self.sim.current
        self.accesses.append(Access(
            seq=len(self.accesses),
            array=array,
            owner_pe=owner_pe,
            by_pe=by_pe,
            lo=lo,
            hi=hi,
            kind=kind,
            site=site,
            label=label,
            origin=getattr(proc, "name", None) or "main",
            time_us=self.sim.now,
            tid=self.monitor.tid_of(proc),
            clock=dict(self.monitor.clock_of(proc)),
        ))

    def record_symmetric(self, array: "SymmetricArray", owner_pe: int,
                         index: Any, kind: str, *, site: str, by_pe: int,
                         label: str = "") -> None:
        """Record an access expressed as a NumPy index on ``array``."""
        if array.name not in self._tracked:
            return
        from repro.nvshmem.heap import element_range

        lo, hi = element_range(array.shape, index)
        self.record(array.name, owner_pe, lo, hi, kind,
                    site=site, by_pe=by_pe, label=label)


def attach_sanitizer(ctx: "MultiGPUContext") -> Sanitizer:
    """Install the HB monitor on ``ctx.sim`` and a recorder on ``ctx``.

    Call before building the runtime/variant so symmetric allocations
    register themselves; returns the :class:`Sanitizer` to hand to
    :func:`~repro.sanitize.detect.detect_races` after the run.
    """
    monitor = HBMonitor()
    ctx.sim.monitor = monitor
    sanitizer = Sanitizer(ctx.sim, monitor)
    ctx.sanitizer = sanitizer
    return sanitizer
