"""Communication-sanitizer CLI.

Usage::

    python -m repro.sanitize                     # CI gate: sweep + lint
    python -m repro.sanitize sweep               # all variants vs expectations
    python -m repro.sanitize run --variant cpufree --gpus 4
    python -m repro.sanitize run --variant racy_unsignaled   # seeded bug
    python -m repro.sanitize lint                # static lint, SDFG samples
    python -m repro.sanitize lint --demo-bad     # + seeded-bad SDFGs

``run`` executes one stencil variant (shipped or seeded) with the
happens-before detector attached and exits 1 when any unsuppressed
race is found.  ``sweep`` runs every shipped variant (which must be
clean) plus every seeded-bug variant (which must be flagged) and exits
1 when either expectation fails — so it is meaningful as a CI gate in
both directions: it catches new races *and* a detector that has gone
blind.  ``lint`` runs the static communication lint over the shipped
SDFG pipelines (jacobi 1d/2d/3d x baseline/cpufree).

``--report-out`` writes a byte-stable JSON report (identical bytes on
identical configurations — CI compares reruns with ``cmp``);
``--trace-out`` (run only) writes a Chrome trace with race findings as
instant events.  ``--suppress PATTERN`` marks findings whose stable id
matches the fnmatch pattern: they stay in the report but do not affect
the exit status.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.cliutil import CliError, cli_entry, parse_shape
from repro.sanitize.detect import detect_races
from repro.sanitize.recorder import attach_sanitizer
from repro.sanitize.report import apply_suppressions, dumps_report, render_findings
from repro.sanitize.seeded import SEEDED_VARIANTS


def _add_run_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--gpus", type=int, default=2,
                     help="number of GPUs/PEs (default: 2)")
    sub.add_argument("--shape", type=parse_shape, default=(34, 66),
                     help="global domain shape (default: 34x66)")
    sub.add_argument("--iterations", type=int, default=4,
                     help="stencil iterations (default: 4)")
    sub.add_argument("--fault-profile", metavar="NAME", default=None,
                     help="run under this fault profile (e.g. transient)")
    sub.add_argument("--suppress", action="append", default=[], metavar="PATTERN",
                     help="fnmatch pattern over finding ids to suppress "
                          "(repeatable)")
    sub.add_argument("--report-out", metavar="PATH",
                     help="write the byte-stable JSON report to PATH")


def _sanitized_run(name: str, args: argparse.Namespace):
    """Run one variant with the detector attached; returns
    (result, sanitizer, findings)."""
    from repro.sanitize.seeded import SEEDED_VARIANTS
    from repro.stencil.base import VARIANTS, StencilConfig

    cls = VARIANTS.get(name) or SEEDED_VARIANTS.get(name)
    if cls is None:
        raise CliError(
            f"unknown variant {name!r}; choose from "
            f"{sorted(VARIANTS) + sorted(SEEDED_VARIANTS)}"
        )
    config = StencilConfig(
        global_shape=args.shape,
        num_gpus=args.gpus,
        iterations=args.iterations,
        fault_profile=args.fault_profile,
    )
    variant = cls(config)
    sanitizer = attach_sanitizer(variant.ctx)
    result = variant.run()
    return result, sanitizer, detect_races(sanitizer)


def _config_block(args: argparse.Namespace) -> dict[str, Any]:
    return {
        "shape": list(args.shape),
        "gpus": args.gpus,
        "iterations": args.iterations,
        "fault_profile": args.fault_profile,
        "suppressions": list(args.suppress),
    }


def _write_report(args: argparse.Namespace, report: dict[str, Any]) -> None:
    if args.report_out:
        with open(args.report_out, "w") as fh:
            fh.write(dumps_report(report))
        print(f"(report written to {args.report_out})", file=sys.stderr)


def _run_command(args: argparse.Namespace) -> int:
    result, sanitizer, findings = _sanitized_run(args.variant, args)
    described, n_active = apply_suppressions(
        [f.describe() for f in findings], args.suppress
    )
    print(f"{args.variant}: {len(sanitizer.accesses)} access(es) recorded, "
          f"{len(findings)} race finding(s), {n_active} active")
    print(render_findings(findings))
    if args.trace_out:
        for finding in findings:
            result.tracer.add_instant(
                finding.finding_id, finding.second.time_us,
                category="race", args=finding.describe(),
            )
        with open(args.trace_out, "w") as fh:
            json.dump(result.tracer.to_chrome_trace(), fh, indent=1)
            fh.write("\n")
        print(f"(chrome trace written to {args.trace_out})", file=sys.stderr)
    _write_report(args, {
        "tool": "repro.sanitize",
        "mode": "run",
        "variant": args.variant,
        "config": _config_block(args),
        "accesses": len(sanitizer.accesses),
        "findings": described,
        "n_active": n_active,
        "ok": n_active == 0,
    })
    return 0 if n_active == 0 else 1


def _sweep_command(args: argparse.Namespace) -> int:
    from repro.stencil.base import VARIANTS

    variants: dict[str, Any] = {}
    ok = True
    for name in sorted(VARIANTS) + sorted(SEEDED_VARIANTS):
        expect_clean = name not in SEEDED_VARIANTS
        _result, sanitizer, findings = _sanitized_run(name, args)
        described, n_active = apply_suppressions(
            [f.describe() for f in findings], args.suppress
        )
        this_ok = (n_active == 0) if expect_clean else (n_active > 0)
        ok = ok and this_ok
        variants[name] = {
            "expected": "clean" if expect_clean else "racy",
            "accesses": len(sanitizer.accesses),
            "findings": described,
            "n_active": n_active,
            "ok": this_ok,
        }
        verdict = "ok" if this_ok else "FAIL"
        print(f"{name}: expected {'clean' if expect_clean else 'racy'}, "
              f"{n_active} active finding(s) [{verdict}]")
        if findings and not this_ok:
            print(render_findings(findings))
    _write_report(args, {
        "tool": "repro.sanitize",
        "mode": "sweep",
        "config": _config_block(args),
        "variants": variants,
        "ok": ok,
    })
    print(f"sweep: {'all expectations hold' if ok else 'EXPECTATION VIOLATED'}")
    return 0 if ok else 1


def _lint_samples(demo_bad: bool):
    """(name, sdfg, expect_clean) triples: the shipped pipelines, plus
    deliberately broken derivatives under ``--demo-bad``."""
    from repro.sdfg.graph import State
    from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
    from repro.sdfg.programs import (
        CONJUGATES_1D,
        CONJUGATES_2D,
        baseline_pipeline,
        build_jacobi_1d_sdfg,
        build_jacobi_2d_sdfg,
        build_jacobi_3d_sdfg,
        cpufree_pipeline,
    )

    programs = (
        ("jacobi_1d", build_jacobi_1d_sdfg, CONJUGATES_1D),
        ("jacobi_2d", build_jacobi_2d_sdfg, CONJUGATES_2D),
        ("jacobi_3d", build_jacobi_3d_sdfg, CONJUGATES_1D),
    )
    samples = []
    for prog, build, conj in programs:
        samples.append((f"{prog}/baseline", baseline_pipeline(build()), True))
        samples.append((f"{prog}/cpufree", cpufree_pipeline(build(), conj), True))
    if not demo_bad:
        return samples

    def puts(sdfg):
        return [n for s in sdfg.walk_states() for n in s.library_nodes
                if isinstance(n, PutmemSignal)]

    # drop the signal from one put: its destination read next iteration
    # is now unordered, and its paired wait loses its producer
    bad = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
    puts(bad)[0].flag_index = None
    samples.append(("demo/unsignaled-put", bad, False))

    # wait compares against a constant the producer never signals
    bad = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
    for state in bad.walk_states():
        for node in state.library_nodes:
            if isinstance(node, SignalWait):
                node.value = 0
                break
        else:
            continue
        break
    samples.append(("demo/mismatched-pair", bad, False))

    # remove every wait: source buffers are rewritten with no
    # synchronization point after the non-blocking puts
    bad = cpufree_pipeline(build_jacobi_1d_sdfg(), CONJUGATES_1D)
    for region in bad.walk_regions():
        region.elements = [
            el for el in region.elements
            if not (isinstance(el, State)
                    and any(isinstance(n, SignalWait) for n in el.library_nodes))
        ]
    samples.append(("demo/no-waits", bad, False))
    return samples


def _lint_command(args: argparse.Namespace) -> int:
    from repro.sdfg.lint import lint_communication

    ok = True
    sdfgs: dict[str, Any] = {}
    for name, sdfg, expect_clean in _lint_samples(args.demo_bad):
        findings = lint_communication(sdfg)
        described, n_active = apply_suppressions(
            [f.describe() for f in findings], args.suppress
        )
        this_ok = (n_active == 0) if expect_clean else (n_active > 0)
        ok = ok and this_ok
        sdfgs[name] = {
            "expected": "clean" if expect_clean else "findings",
            "findings": described,
            "n_active": n_active,
            "ok": this_ok,
        }
        verdict = "ok" if this_ok else "FAIL"
        print(f"{name}: {n_active} active finding(s) [{verdict}]")
        if findings:
            print(render_findings(findings))
    _write_report(args, {
        "tool": "repro.sanitize",
        "mode": "lint",
        "config": {"demo_bad": args.demo_bad, "suppressions": list(args.suppress)},
        "sdfgs": sdfgs,
        "ok": ok,
    })
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Happens-before race detection and communication lint.",
    )
    subparsers = parser.add_subparsers(dest="command")

    run = subparsers.add_parser("run", help="sanitize one variant run")
    run.add_argument("--variant", default="cpufree",
                     help="shipped or seeded variant (default: cpufree)")
    _add_run_options(run)
    run.add_argument("--trace-out", metavar="PATH",
                     help="write a Chrome trace with race instants to PATH")

    sweep = subparsers.add_parser(
        "sweep", help="all shipped variants must be clean, seeded must be flagged")
    _add_run_options(sweep)

    lint = subparsers.add_parser("lint", help="static lint over SDFG samples")
    lint.add_argument("--demo-bad", action="store_true",
                      help="also lint deliberately broken SDFGs (must be flagged)")
    lint.add_argument("--suppress", action="append", default=[], metavar="PATTERN")
    lint.add_argument("--report-out", metavar="PATH")

    args = parser.parse_args(argv)
    if args.command == "run":
        return _run_command(args)
    if args.command == "sweep":
        return _sweep_command(args)
    if args.command == "lint":
        return _lint_command(args)
    # no subcommand: the CI gate — dynamic sweep then static lint
    sweep_args = parser.parse_args(["sweep"])
    lint_args = parser.parse_args(["lint"])
    rc = _sweep_command(sweep_args)
    return _lint_command(lint_args) or rc


if __name__ == "__main__":
    sys.exit(cli_entry(main))
