"""Offline race detection over recorded accesses.

Two accesses race when they touch overlapping offsets of the same PE's
copy of a symmetric allocation, at least one is a write, they come from
different processes, and no chain of synchronization edges orders them
(:func:`~repro.sanitize.hb.happens_before` on the recorded clock
snapshots).

Because the engine is single-threaded, the recorded sequence respects
real execution order: for ``a`` recorded before ``b``, ``b`` cannot
causally precede ``a``, so only the ``a -> b`` direction needs
checking.  Findings are deduplicated by *site pair* (the instrumented
source locations), keeping the earliest occurrence and a count — one
missing signal produces one finding per conflicting site pair, not one
per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sanitize.hb import happens_before
from repro.sanitize.recorder import Access, Sanitizer

__all__ = ["RaceFinding", "detect_races"]


@dataclass
class RaceFinding:
    """One (deduplicated) happens-before violation."""

    array: str
    owner_pe: int
    kind: str  # "read-write" | "write-read" | "write-write"
    offsets: tuple[int, int]  # overlapping [lo, hi) on the owner's copy
    first: Access
    second: Access
    count: int = 1

    @property
    def pes(self) -> tuple[int, ...]:
        return tuple(sorted({self.first.by_pe, self.second.by_pe}))

    @property
    def dedup_key(self) -> tuple:
        return (self.array, self.owner_pe, self.kind,
                self.first.site, self.second.site,
                self.first.by_pe, self.second.by_pe)

    @property
    def finding_id(self) -> str:
        """Stable id used for reporting and suppression matching."""
        return (f"race:{self.array}@pe{self.owner_pe}:"
                f"{self.first.site}<->{self.second.site}")

    def describe(self) -> dict[str, Any]:
        return {
            "id": self.finding_id,
            "array": self.array,
            "owner_pe": self.owner_pe,
            "kind": self.kind,
            "offsets": list(self.offsets),
            "pes": list(self.pes),
            "count": self.count,
            "first": self.first.describe(),
            "second": self.second.describe(),
        }

    def summary(self) -> str:
        a, b = self.first, self.second
        return (f"{self.kind} race on {self.array}@pe{self.owner_pe}"
                f"[{self.offsets[0]}:{self.offsets[1]}]: "
                f"{a.kind} by pe{a.by_pe} ({a.site}"
                f"{' ' + a.label if a.label else ''}, t={a.time_us:.3f}us) vs "
                f"{b.kind} by pe{b.by_pe} ({b.site}"
                f"{' ' + b.label if b.label else ''}, t={b.time_us:.3f}us), "
                f"x{self.count}")


def detect_races(sanitizer: Sanitizer) -> list[RaceFinding]:
    """All happens-before violations among the recorded accesses,
    deduplicated by site pair and ordered by first occurrence."""
    groups: dict[tuple[str, int], list[Access]] = {}
    for access in sanitizer.accesses:
        groups.setdefault((access.array, access.owner_pe), []).append(access)

    found: dict[tuple, RaceFinding] = {}
    for (array, owner_pe), accesses in groups.items():
        for j, b in enumerate(accesses):
            for i in range(j):
                a = accesses[i]
                if a.kind == "read" and b.kind == "read":
                    continue
                if a.tid == b.tid:  # program order
                    continue
                lo = max(a.lo, b.lo)
                hi = min(a.hi, b.hi)
                if lo >= hi:  # disjoint offsets
                    continue
                if happens_before(a.tid, a.clock, b.clock):
                    continue
                finding = RaceFinding(
                    array=array,
                    owner_pe=owner_pe,
                    kind=f"{a.kind}-{b.kind}",
                    offsets=(lo, hi),
                    first=a,
                    second=b,
                )
                prior = found.get(finding.dedup_key)
                if prior is None:
                    found[finding.dedup_key] = finding
                else:
                    prior.count += 1
    findings = sorted(found.values(),
                      key=lambda f: (f.first.seq, f.second.seq))
    return findings
