"""Byte-stable JSON reports and suppression matching.

Reports serialize via :func:`repro.obs.stablejson.dumps_stable` (the
repo-wide dump convention), so identical runs produce identical bytes
— CI diffs them with ``cmp``.

Suppressions are ``fnmatch`` patterns matched against a finding's
stable id (``race:<array>@pe<N>:<site><-><site>`` for dynamic
findings, ``<rule>:<location>`` for lint findings).  A suppressed
finding still appears in the report, marked ``"suppressed": true``,
but does not affect the exit status.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Any

from repro.obs.stablejson import dumps_stable

__all__ = ["apply_suppressions", "dumps_report", "render_findings"]


def apply_suppressions(
    described: list[dict[str, Any]], suppressions: list[str]
) -> tuple[list[dict[str, Any]], int]:
    """Mark suppressed findings; returns (described, n_active)."""
    active = 0
    for finding in described:
        suppressed = any(fnmatch(finding["id"], pat) for pat in suppressions)
        finding["suppressed"] = suppressed
        if not suppressed:
            active += 1
    return described, active


def dumps_report(report: dict[str, Any]) -> str:
    """Deterministic serialization (same bytes on every rerun)."""
    return dumps_stable(report)


def render_findings(findings: list, *, prefix: str = "  ") -> str:
    """Human-readable listing (objects must expose ``summary()``)."""
    if not findings:
        return f"{prefix}no findings"
    return "\n".join(f"{prefix}{f.summary()}" for f in findings)
