"""Deliberately buggy stencil variants for sanitizer validation.

These are the dynamic detector's positive controls: known-racy
programs the sanitizer *must* flag.  They are intentionally NOT in the
global variant registry — the chaos matrix and benchmark sweeps must
never run them — and are reachable only through
``python -m repro.sanitize`` and the sanitizer tests via
:data:`SEEDED_VARIANTS`.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.core import GridBarrier
from repro.runtime.kernel import DeviceKernelContext
from repro.stencil.variants.cpufree import CPUFree

__all__ = ["RacyUnsignaled", "SEEDED_VARIANTS"]


class RacyUnsignaled(CPUFree):
    """CPU-Free stencil with the §4.1.1 semaphore protocol removed.

    Two deliberate bugs relative to :class:`CPUFree`:

    * boundary groups never ``signal_wait_until`` — they read halo
      rows whether or not the neighbor's layer has landed;
    * halos are pushed with plain ``putmem_nbi`` (no signal), so
      nothing ever publishes the delivery to the reader.

    Every halo delivery therefore races with the neighbor's reads of
    (and later deliveries into) the same rows — exactly the
    missing-signal bug class the detector exists for.
    """

    name = "racy_unsignaled"

    def _boundary_body(self, rank: int, side: str, plan):
        neighbors = self.neighbors(rank)
        nbr = neighbors.get(side)

        def body(dev: DeviceKernelContext, grid: GridBarrier) -> Generator[Any, Any, None]:
            nv = self.nvshmem.device(rank, lane=dev.lane)
            layer = self.boundary_layer(rank, side)
            for it in range(1, self.config.iterations + 1):
                # BUG (deliberate): no signal_wait_until — the halo read
                # below may see a stale or in-flight layer
                yield from self.compute_layers(
                    dev, rank, it, layer, layer + 1,
                    fraction_of_device=plan.boundary_fraction_per_side,
                    name=f"boundary_{side}",
                )
                if nbr is not None:
                    dst = self.sym[self.write_parity(it)] if self.config.with_data else None
                    # BUG (deliberate): unsignaled put — the destination
                    # halo is read next iteration with no ordering edge
                    yield from nv.putmem_nbi(
                        dst,
                        self.halo_layer(nbr, self.opposite(side)),
                        self.boundary_values(rank, it, side),
                        dest_pe=nbr,
                        nbytes=self.halo_nbytes,
                        name=f"halo_{side}",
                    )
                yield from grid.wait()

        return body


#: seeded-bug registry, parallel to ``stencil.base.VARIANTS`` but never
#: merged into it
SEEDED_VARIANTS: dict[str, type[CPUFree]] = {
    RacyUnsignaled.name: RacyUnsignaled,
}
