"""Command-line autotuner entry point.

Usage::

    python -m repro.tune --size large --gpus 8          # tune one config
    python -m repro.tune --budget 12 --out schedule.json
    python -m repro.tune --jobs 4 --save-manifest tune.manifest.json
    python -m repro.tune --changed-only tune.manifest.json   # cache replay
    python -m repro.tune --winloss-out BENCH_PR10.json  # win/loss table

Trials run through the same :mod:`repro.perf` machinery as
``repro.bench``: points fan out over ``--jobs`` processes, replay from
the on-disk result cache, and a saved manifest lets a rerun on an
unchanged repo classify every trial as ``replayed``.  The emitted
schedule JSON is byte-stable (identical repo -> identical bytes), which
CI asserts by tuning twice and ``cmp``-ing the files.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.figures import DEFAULT_GPU_COUNTS, SIZE_CLASSES_2D
from repro.cliutil import cli_entry
from repro.obs.stablejson import dump_stable
from repro.perf import ResultCache, SweepManifest, SweepRunner
from repro.perf.cache import DEFAULT_CACHE_DIR
from repro.tune import schedule_payload, tune, win_loss_payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Autotune the auto-overlap schedule for one "
                    "(app, topology, size) configuration.",
    )
    parser.add_argument("--size", type=str, default="large",
                        choices=sorted(SIZE_CLASSES_2D),
                        help="2D domain size class (default: large)")
    parser.add_argument("--gpus", type=int, default=8,
                        help="GPU count / topology scale (default: 8)")
    parser.add_argument("--iterations", type=int, default=20,
                        help="time steps per trial (default: 20)")
    parser.add_argument("--budget", type=int, default=None, metavar="N",
                        help="measure at most N candidates from the "
                             "priority-ordered grid (default: all)")
    parser.add_argument("--out", type=str, default=None, metavar="PATH",
                        help="write the byte-stable best-schedule JSON here")
    parser.add_argument("--winloss-out", type=str, default=None, metavar="PATH",
                        help="also sweep auto_overlap vs cpufree across the "
                             "figure suite's (size x gpus) points and write "
                             "the win/loss table here (BENCH_PR10.json)")
    parser.add_argument("--winloss-iterations", type=int, default=40,
                        help="time steps per win/loss point (default: 40, "
                             "matching the figure suite)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for trial points (default: 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result cache")
    parser.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR,
                        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--save-manifest", type=str, default=None, metavar="PATH",
                        help="record every trial's cache key to PATH (the "
                             "replay baseline for --changed-only); requires "
                             "the cache")
    parser.add_argument("--changed-only", type=str, default=None, metavar="PATH",
                        help="compare each trial's cache key against the "
                             "manifest at PATH: unchanged trials replay from "
                             "the cache (tallies print to stdout); requires "
                             "the cache")
    args = parser.parse_args(argv)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if cache is None and (args.save_manifest or args.changed_only):
        parser.error("--save-manifest/--changed-only need the result cache; "
                     "drop --no-cache")
    manifest = SweepManifest() if args.save_manifest else None
    baseline = None
    if args.changed_only:
        try:
            baseline = SweepManifest.load(args.changed_only)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"--changed-only: {exc}")
    runner = SweepRunner(jobs=args.jobs, cache=cache, manifest=manifest,
                         baseline=baseline)

    result = tune(args.size, args.gpus, args.iterations,
                  budget=args.budget, runner=runner)
    print(f"tuned jacobi2d size={args.size} gpus={args.gpus} "
          f"iterations={args.iterations}: {len(result.trials)} trial(s)")
    print(f"  best schedule: {result.best.describe()} "
          f"-> {result.best_per_iteration_us:.3f} us/iter")
    print(f"  cost model:    {result.model.describe()} "
          f"-> {result.model_per_iteration_us:.3f} us/iter "
          f"(regret {result.model_regret_percent:.2f}%)")
    print(f"  hand-tuned cpufree: {result.cpufree_per_iteration_us:.3f} us/iter")
    if args.out:
        dump_stable(schedule_payload(result), args.out)
        print(f"best-schedule JSON written to {args.out}")

    if args.winloss_out:
        table = win_loss_payload(
            gpu_counts=DEFAULT_GPU_COUNTS,
            iterations=args.winloss_iterations, runner=runner)
        dump_stable(table, args.winloss_out)
        print(f"win/loss table written to {args.winloss_out}: "
              f"{table['wins']} win(s), {table['ties']} tie(s), "
              f"{table['losses']} loss(es) over {len(table['points'])} "
              f"point(s)")

    # stdout-only diagnostics, mirroring repro.bench: the JSON artifacts
    # above must stay byte-identical across cache states and --jobs
    if cache is not None:
        print(f"(sweep cache: {runner.hits} hit(s), {runner.misses} miss(es) "
              f"in {args.cache_dir})")
    if args.changed_only:
        print(f"(changed-only vs {args.changed_only}: {runner.replayed} "
              f"replayed, {runner.changed} changed, {runner.added} new, "
              f"{runner.stale} stale)")
    if args.save_manifest:
        manifest.save(args.save_manifest)
        print(f"({len(manifest)} point key(s) recorded to {args.save_manifest})")
    return 0


if __name__ == "__main__":
    sys.exit(cli_entry(main))
