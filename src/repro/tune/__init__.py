"""Empirical autotuner for the auto-overlap schedule (the ROADMAP's
"cost model + autotuner" closer for the compiler-side perf lever).

The cost model in :func:`repro.stencil.variants.auto_overlap.
choose_schedule` predicts a chunk count from calibrated constants
alone.  This package *refines* that guess by measuring: it sweeps
(chunk count × TB-specialization split × boundary fusion) candidates
per (app, topology, size) through the :mod:`repro.perf` runner, so
every trial is an ordinary sweep point — fanned out over ``--jobs``
worker processes, cached on disk by content key, and replayable via
``--changed-only`` manifests.  Re-running the tuner on an unchanged
repo replays every trial from the cache (the manifest classifies them
``replayed``) and re-emits byte-identical schedule JSON.

Determinism contract: the candidate grid is a pure function of the
configuration (priority-ordered, deduplicated, budget-truncated), the
winner is the minimum ``(per_iteration_us, grid position)`` — so ties
resolve to the earlier, simpler candidate — and all JSON goes through
:mod:`repro.obs.stablejson`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# reuses the figure suite's sweep worker so the cpufree baseline point
# shares cache entries with `repro.bench` runs of the same config
from repro.bench.figures import (
    DEFAULT_GPU_COUNTS,
    SIZE_CLASSES_2D,
    _stencil_point,
    weak_shape_2d,
)
from repro.core.autotune import candidate_splits
from repro.perf import SweepRunner, active_runner
from repro.stencil.base import StencilConfig
from repro.stencil.variants.auto_overlap import (
    CHUNK_CANDIDATES,
    AutoOverlap,
    OverlapSchedule,
    choose_schedule,
)

__all__ = [
    "SCHEDULE_FORMAT",
    "WINLOSS_FORMAT",
    "TuneResult",
    "schedule_grid",
    "schedule_payload",
    "trial_point",
    "tune",
    "win_loss_payload",
]

SCHEDULE_FORMAT = "repro-tune-schedule-v1"
WINLOSS_FORMAT = "repro-tune-winloss-v1"


def _config(size: str, gpus: int, iterations: int) -> StencilConfig:
    """The tuner's fixed app/topology: 2D Jacobi, weak-scaling shapes,
    timing-only (identical simulated time to the data-carrying run)."""
    return StencilConfig(
        global_shape=weak_shape_2d(SIZE_CLASSES_2D[size], gpus),
        num_gpus=gpus, iterations=iterations, with_data=False,
    )


def trial_point(size: str, gpus: int, iterations: int, chunks: int,
                boundary_tb_per_side: int | None, fuse_boundary: bool) -> dict:
    """Sweep worker: measure one schedule candidate.

    Top-level and primitive-argument on purpose: the :mod:`repro.perf`
    cache keys points by ``qualname + repr(args) + source digest``, so
    this signature is the trial's cache identity.
    """
    schedule = OverlapSchedule(
        chunks=chunks,
        boundary_tb_per_side=boundary_tb_per_side,
        fuse_boundary=fuse_boundary,
    )
    res = AutoOverlap(_config(size, gpus, iterations), schedule=schedule).run()
    return {
        "per_iteration_us": res.per_iteration_us,
        "overlap_ratio": res.overlap_ratio,
    }


def schedule_grid(config: StencilConfig, *,
                  budget: int | None = None) -> list[OverlapSchedule]:
    """Candidate schedules in deterministic priority order.

    Tiers, so a small ``--budget`` still explores every axis instead of
    exhausting the first nested loop:

    1. the chunk axis alone (contains the cost model's seed and the
       ``chunks=1`` candidate, which *is* cpufree's schedule);
    2. the TB-split axis at the model-seeded chunk count;
    3. boundary fusion at the seeded chunk count (alone, then crossed
       with the splits);
    4. the remaining full cross-product.

    Duplicates collapse onto their first (highest-priority) position;
    ``budget`` truncates the tail.
    """
    seed = choose_schedule(config)
    tb_total = config.node.gpu.max_coresident_blocks(config.threads_per_block)
    splits = candidate_splits(tb_total, sides=2)[:6]
    tiers: list[OverlapSchedule] = []
    tiers += [OverlapSchedule(k) for k in CHUNK_CANDIDATES]
    tiers += [OverlapSchedule(seed.chunks, s) for s in splits]
    tiers += [OverlapSchedule(seed.chunks, None, True)]
    tiers += [OverlapSchedule(seed.chunks, s, True) for s in splits]
    for k in CHUNK_CANDIDATES:
        for s in (None, *splits):
            for fuse in (False, True):
                tiers.append(OverlapSchedule(k, s, fuse))
    seen: set[OverlapSchedule] = set()
    ordered = [s for s in tiers if not (s in seen or seen.add(s))]
    if budget is not None:
        ordered = ordered[:budget]
    return ordered


@dataclass
class TuneResult:
    """Outcome of one (app, topology, size) search."""

    size: str
    gpus: int
    iterations: int
    best: OverlapSchedule
    best_per_iteration_us: float
    cpufree_per_iteration_us: float
    model: OverlapSchedule
    model_per_iteration_us: float
    #: every measured candidate, in grid order
    trials: list[dict] = field(default_factory=list)

    @property
    def model_regret_percent(self) -> float:
        """How much slower the pure cost-model schedule is than the
        empirical optimum (0.0 = the model found it)."""
        if self.best_per_iteration_us == 0.0:
            return 0.0
        return ((self.model_per_iteration_us - self.best_per_iteration_us)
                / self.best_per_iteration_us * 100.0)


def tune(size: str, gpus: int, iterations: int = 20, *,
         budget: int | None = None,
         runner: SweepRunner | None = None) -> TuneResult:
    """Search the schedule grid for one configuration."""
    runner = runner if runner is not None else active_runner()
    config = _config(size, gpus, iterations)
    grid = schedule_grid(config, budget=budget)
    model = choose_schedule(config)
    tasks = [
        (size, gpus, iterations, s.chunks, s.boundary_tb_per_side,
         s.fuse_boundary)
        for s in grid
    ]
    measured = runner.map(trial_point, tasks)
    cpufree_row = runner.map(_stencil_point, [("cpufree", config)])[0]
    best_i = min(range(len(grid)),
                 key=lambda i: (measured[i]["per_iteration_us"], i))
    model_us = next(
        m["per_iteration_us"]
        for s, m in zip(grid, measured) if s == model
    )
    return TuneResult(
        size=size, gpus=gpus, iterations=iterations,
        best=grid[best_i],
        best_per_iteration_us=measured[best_i]["per_iteration_us"],
        cpufree_per_iteration_us=cpufree_row.per_iteration_us,
        model=model,
        model_per_iteration_us=model_us,
        trials=[
            {"schedule": s.describe(), **m}
            for s, m in zip(grid, measured)
        ],
    )


def schedule_payload(result: TuneResult) -> dict:
    """The byte-stable best-schedule document (``--out``)."""
    return {
        "format": SCHEDULE_FORMAT,
        "app": "jacobi2d",
        "size": result.size,
        "gpus": result.gpus,
        "iterations": result.iterations,
        "schedule": result.best.describe(),
        "best_per_iteration_us": result.best_per_iteration_us,
        "cpufree_per_iteration_us": result.cpufree_per_iteration_us,
        "model_schedule": result.model.describe(),
        "model_per_iteration_us": result.model_per_iteration_us,
        "model_regret_percent": result.model_regret_percent,
        "trials": result.trials,
    }


def win_loss_payload(sizes: tuple[str, ...] = ("small", "medium", "large"),
                     gpu_counts: tuple[int, ...] = DEFAULT_GPU_COUNTS,
                     iterations: int = 40, *,
                     runner: SweepRunner | None = None) -> dict:
    """``auto_overlap`` vs hand-tuned ``cpufree`` across the figure
    suite's (size × gpus) points — the ``BENCH_PR10.json`` table."""
    runner = runner if runner is not None else active_runner()
    variants = ("cpufree", "auto_overlap")
    tasks = [
        (variant, _config(size, gpus, iterations))
        for size in sizes for gpus in gpu_counts for variant in variants
    ]
    rows = runner.map(_stencil_point, tasks)
    points: list[dict] = []
    wins = ties = losses = 0
    it = iter(rows)
    for size in sizes:
        for gpus in gpu_counts:
            cf, ao = next(it), next(it)
            # chunks==1 delegates to cpufree's exact body, so ties are
            # bit-exact; anything inside float-noise of that is a tie
            eps = 1e-9 * cf.per_iteration_us
            if ao.per_iteration_us < cf.per_iteration_us - eps:
                outcome = "win"
                wins += 1
            elif ao.per_iteration_us <= cf.per_iteration_us + eps:
                outcome = "tie"
                ties += 1
            else:
                outcome = "loss"
                losses += 1
            points.append({
                "size": size,
                "gpus": gpus,
                "chunks": choose_schedule(
                    _config(size, gpus, iterations)).chunks,
                "cpufree_per_iteration_us": cf.per_iteration_us,
                "auto_overlap_per_iteration_us": ao.per_iteration_us,
                "cpufree_overlap_ratio": cf.overlap_ratio,
                "auto_overlap_overlap_ratio": ao.overlap_ratio,
                "outcome": outcome,
            })
    total = len(points)
    return {
        "format": WINLOSS_FORMAT,
        "app": "jacobi2d",
        "iterations": iterations,
        "points": points,
        "wins": wins,
        "ties": ties,
        "losses": losses,
        "win_or_tie_fraction": (wins + ties) / total if total else 0.0,
    }
