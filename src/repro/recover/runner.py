"""Rollback recovery for fail-stop PE crashes.

The run is split into *segments* of ``checkpoint_every`` iterations.
Each segment executes on a fresh simulator seeded from the previous
checkpoint's state; at the segment boundary every PE is quiescent (same
iteration count, no in-flight deliveries), so the gathered field plus a
:class:`~repro.nvshmem.heap.HeapSnapshot` forms a consistent global
checkpoint.  When a PE dies mid-segment:

1. **Detection.**  Every PE pumps a heartbeat signal word each
   ``heartbeat_us`` (weak calendar events — they never extend the
   measured timeline).  A crash stops the pump; after
   ``heartbeat_misses`` silent periods the monitor declares the PE dead
   at a *quantised* instant — detection latency is deterministic
   arithmetic on the crash time, not a race.
2. **Rollback.**  The crashed segment's partial state is discarded
   wholesale (survivors quiesce by construction: the whole segment
   simulator is torn down), and the global clock is charged with the
   time the failed attempt consumed up to detection plus the plan's
   ``restart_cost_us`` (checkpoint reload + PE restart).
3. **Restart + resume.**  The segment re-runs from the last checkpoint
   with the crash *consumed* (``use_crash_context``) — the re-run is
   crash-free and therefore byte-identical to a fault-free execution of
   those iterations.  Halos re-sync naturally: the fresh segment
   rescatters the checkpoint into both parities on every PE.

Determinism argument: segment chaining is exact — the gathered field of
``k`` iterations from state ``S`` equals the reference of ``k``
iterations from ``S`` (boundary ring is Dirichlet, interior round-trips
through gather/scatter losslessly) — so the recovered run's final field
is byte-identical to the fault-free reference; only simulated time
grows (detection latency + restart cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.faults.inject import use_crash_context
from repro.faults.plan import FaultPlan
from repro.faults.profiles import get_plan
from repro.nvshmem.heap import SignalArray
from repro.recover.checkpoint import Checkpoint, CheckpointStore

__all__ = [
    "PECrashDetected",
    "RecoveryManager",
    "RecoveryOutcome",
    "UnrecoverableCrashError",
    "run_with_recovery",
]


class PECrashDetected(Exception):
    """Raised out of ``sim.run()`` when the heartbeat monitor declares
    a PE dead.  Carries segment-local times; the recovery runner
    translates them to the global clock."""

    def __init__(self, pe: int, crash_t: float, detect_t: float) -> None:
        super().__init__(
            f"pe{pe} declared dead at t={detect_t:.3f}us "
            f"(crashed fail-stop at t={crash_t:.3f}us, detection latency "
            f"{detect_t - crash_t:.3f}us)")
        self.pe = pe
        self.crash_t = crash_t
        self.detect_t = detect_t


class UnrecoverableCrashError(RuntimeError):
    """A PE died and no recovery is possible (checkpointing disabled or
    the restart budget exhausted).  The message names the dead PE — the
    fail-stop contract is diagnostic-or-recover, never a hang."""


class RecoveryManager:
    """Heartbeat-based crash detection for one segment run.

    Attaches to a constructed (not yet run) variant instance: allocates
    a symmetric heartbeat signal word per PE, pumps each alive PE's
    word every ``heartbeat_us`` via weak calendar events, and — when
    the fault injector reports a crash — schedules a *strong* check at
    the first instant the monitor can have observed ``heartbeat_misses``
    consecutive silent periods.  The check raises
    :class:`PECrashDetected` out of the simulation.
    """

    def __init__(self, instance: Any, plan: FaultPlan) -> None:
        self.instance = instance
        self.plan = plan
        self.sim = instance.ctx.sim
        self.faults = instance.faults
        n = instance.config.num_gpus
        self.heartbeat_us = plan.heartbeat_us
        #: one signal word per PE; standalone (not on the symmetric
        #: heap) so heartbeats never leak into heap checkpoints
        self.signals = SignalArray(self.sim, "recover.heartbeat", n, 1)
        self.beats = [0] * n
        self.detected: list[PECrashDetected] = []
        if self.faults is not None and plan.crashes:
            self.faults.on_crash(self._on_crash)
        for pe in range(n):
            self._arm_pump(pe)

    def _arm_pump(self, pe: int) -> None:
        self.sim.call_at(self.sim.now + self.heartbeat_us,
                         lambda: self._pump(pe), weak=True)

    def _pump(self, pe: int) -> None:
        if self.faults is not None and pe in self.faults.crashed:
            return  # dead PEs stop beating — that IS the detection signal
        self.beats[pe] += 1
        self.signals.flag(pe, 0).add(1)
        self._arm_pump(pe)

    def _on_crash(self, pe: int, crash_t: float) -> None:
        # First heartbeat the dead PE misses is the next period boundary
        # after the crash; the monitor declares death once
        # ``heartbeat_misses`` further periods pass in silence.  Strong
        # event: detection must fire even after survivors quiesce.
        hb = self.heartbeat_us
        detect_t = (math.floor(crash_t / hb) + 1 + self.plan.heartbeat_misses) * hb
        self.sim.call_at(detect_t, lambda: self._detect(pe, crash_t, detect_t))

    def _detect(self, pe: int, crash_t: float, detect_t: float) -> None:
        exc = PECrashDetected(pe, crash_t, detect_t)
        self.detected.append(exc)
        tracer = self.instance.tracer
        if tracer is not None:
            tracer.add_instant(
                "recover:crash_detected", detect_t, category="recover",
                args={"pe": pe, "crash_t_us": crash_t,
                      "latency_us": detect_t - crash_t,
                      "heartbeats": self.beats[pe]})
        raise exc


@dataclass
class RecoveryOutcome:
    """Everything a recovered (or clean, segmented) run produced."""

    variant: str
    result: np.ndarray
    total_time_us: float
    iterations: int
    checkpoint_every: int
    store: CheckpointStore
    #: one dict per segment attempt, in execution order
    attempts: list[dict] = field(default_factory=list)
    #: pe -> global crash time, for every crash that fired
    crashed_pes: dict[int, float] = field(default_factory=dict)
    restarts: int = 0
    detect_latency_us: float = 0.0
    lost_time_us: float = 0.0
    #: fault summary of the final (successful) segment's injector
    faults: dict | None = None

    @property
    def recovered(self) -> bool:
        return self.restarts > 0

    def report(self) -> dict:
        """JSON-safe digest (no arrays) for CLI/CI artifacts."""
        return {
            "variant": self.variant,
            "iterations": self.iterations,
            "checkpoint_every": self.checkpoint_every,
            "total_time_us": self.total_time_us,
            "checkpoints": len(self.store),
            "checkpoint_bytes": self.store.total_bytes(),
            "restarts": self.restarts,
            "recovered": self.recovered,
            "crashed_pes": {str(pe): t for pe, t in sorted(self.crashed_pes.items())},
            "detect_latency_us": self.detect_latency_us,
            "lost_time_us": self.lost_time_us,
            "attempts": self.attempts,
            "faults": self.faults,
        }


def _publish_metrics(metrics: Any, outcome: RecoveryOutcome) -> None:
    """Land the ``recover.*`` counters in the final segment's registry
    so they show up in every metrics dump alongside ``faults.*``."""
    if metrics is None:
        return
    metrics.counter("recover.checkpoints").inc(len(outcome.store))
    metrics.counter("recover.checkpoint_bytes").inc(outcome.store.total_bytes())
    metrics.gauge("recover.checkpoint_every").set(outcome.checkpoint_every)
    if outcome.crashed_pes:
        metrics.counter("recover.crashes_detected").inc(len(outcome.crashed_pes))
    if outcome.restarts:
        metrics.counter("recover.restarts").inc(outcome.restarts)
        metrics.counter("recover.detect_latency_us").inc(outcome.detect_latency_us)
        metrics.counter("recover.lost_time_us").inc(outcome.lost_time_us)


def run_with_recovery(
    variant_cls: type,
    config: Any,
    *,
    checkpoint_every: int | None = None,
    plan: FaultPlan | None = None,
) -> RecoveryOutcome:
    """Run a stencil variant under fail-stop recovery.

    ``plan`` defaults to the plan of ``config.fault_profile``;
    ``checkpoint_every`` defaults to the plan's cadence.  With
    checkpointing unavailable, any crash raises
    :class:`UnrecoverableCrashError` naming the dead PE.
    """
    if plan is None:
        plan = get_plan(config.fault_profile) if config.fault_profile else FaultPlan(name="none")
    if not config.with_data:
        raise ValueError("recovery needs field data (config.with_data=False)")
    every = checkpoint_every if checkpoint_every is not None else plan.checkpoint_every

    if every is None:
        return _run_unrecoverable(variant_cls, config, plan)

    segments = [every] * (config.iterations // every)
    if config.iterations % every:
        segments.append(config.iterations % every)

    store = CheckpointStore()
    state: np.ndarray | None = None
    consumed: set[int] = set()
    base_us = 0.0
    attempts: list[dict] = []
    crashed_pes: dict[int, float] = {}
    restarts = 0
    detect_latency_us = 0.0
    lost_time_us = 0.0
    iter_done = 0
    last_instance = None
    max_restarts = len(plan.crashes) + 2  # each crash fires at most once

    for seg_index, seg_iters in enumerate(segments):
        while True:
            seg_config = replace(config, iterations=seg_iters)
            with use_crash_context(base_us, frozenset(consumed)):
                instance = variant_cls(seg_config)
            if state is None:
                state = instance.initial  # epoch-0 checkpoint: the scatter
                store.save(0, state, 0.0)
            else:
                instance.initial = state
            manager = RecoveryManager(instance, plan)
            attempt = {"segment": seg_index, "iterations": seg_iters,
                       "start_iteration": iter_done, "base_us": base_us}
            try:
                res = instance.run()
            except PECrashDetected as exc:
                if restarts >= max_restarts:
                    raise UnrecoverableCrashError(
                        f"pe{exc.pe} crashed and the restart budget "
                        f"({max_restarts}) is exhausted; dead PEs so far: "
                        f"{sorted(crashed_pes)}") from exc
                consumed.add(exc.pe)
                if instance.faults is not None:
                    consumed.update(instance.faults.crashed)
                crashed_pes[exc.pe] = base_us + exc.crash_t
                restarts += 1
                detect_latency_us += exc.detect_t - exc.crash_t
                lost = exc.detect_t + plan.restart_cost_us
                lost_time_us += lost
                base_us += lost
                attempt.update(status="crashed", crashed_pe=exc.pe,
                               crash_t_us=attempt["base_us"] + exc.crash_t,
                               detect_t_us=attempt["base_us"] + exc.detect_t,
                               restart_cost_us=plan.restart_cost_us,
                               lost_time_us=lost)
                attempts.append(attempt)
                if instance.tracer is not None:
                    instance.tracer.add_instant(
                        "recover:restart", exc.detect_t, category="recover",
                        args={"pe": exc.pe, "epoch": store.latest.epoch,
                              "restart_cost_us": plan.restart_cost_us})
                continue  # re-run this segment from the checkpoint
            # clean segment: advance the checkpoint chain
            if instance.faults is not None:
                # a crash that fired but killed nothing (the PE had
                # already finished) is consumed without a restart
                for pe, t in instance.faults.crashed.items():
                    consumed.add(pe)
                    crashed_pes.setdefault(pe, base_us + t)
            state = res.result
            base_us += res.total_time_us
            iter_done += seg_iters
            snap = (instance.nvshmem.heap.snapshot(epoch=len(store))
                    if instance.nvshmem is not None else None)
            store.save(iter_done, state, base_us, heap=snap)
            if instance.tracer is not None:
                instance.tracer.add_instant(
                    "recover:checkpoint", res.total_time_us, category="recover",
                    args={"epoch": len(store) - 1, "iteration": iter_done,
                          "sim_time_us": base_us})
            attempt.update(status="ok", sim_time_us=res.total_time_us)
            attempts.append(attempt)
            last_instance = instance
            break

    outcome = RecoveryOutcome(
        variant=variant_cls.name,
        result=state,
        total_time_us=base_us,
        iterations=config.iterations,
        checkpoint_every=every,
        store=store,
        attempts=attempts,
        crashed_pes=crashed_pes,
        restarts=restarts,
        detect_latency_us=detect_latency_us,
        lost_time_us=lost_time_us,
        faults=(last_instance.faults.summary()
                if last_instance is not None and last_instance.faults is not None
                else None),
    )
    if last_instance is not None:
        _publish_metrics(last_instance.ctx.metrics, outcome)
    return outcome


def _run_unrecoverable(variant_cls: type, config: Any,
                       plan: FaultPlan) -> RecoveryOutcome:
    """No checkpoints: run whole, convert a detected crash into an
    :class:`UnrecoverableCrashError` naming the dead PE."""
    instance = variant_cls(config)
    manager = RecoveryManager(instance, plan)
    try:
        res = instance.run()
    except PECrashDetected as exc:
        raise UnrecoverableCrashError(
            f"pe{exc.pe} crashed fail-stop at t={exc.crash_t:.3f}us and no "
            f"checkpoint exists (checkpointing disabled) — cannot recover; "
            f"detected via missed heartbeats at t={exc.detect_t:.3f}us"
        ) from exc
    outcome = RecoveryOutcome(
        variant=variant_cls.name,
        result=res.result,
        total_time_us=res.total_time_us,
        iterations=config.iterations,
        checkpoint_every=0,
        store=CheckpointStore(),
        faults=instance.faults.summary() if instance.faults is not None else None,
    )
    _publish_metrics(instance.ctx.metrics, outcome)
    return outcome
