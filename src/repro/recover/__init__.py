"""Fail-stop recovery: checkpoints, crash detection, rollback-restart.

The missing piece of the CPU-free model's robustness story: the paper
moves all control onto the GPUs, so a dead PE takes the whole autonomous
execution graph with it.  This package recovers such runs from periodic
symmetric-heap checkpoints — see :mod:`repro.recover.runner` for the
protocol and its determinism argument, and ``python -m repro.recover``
for the CLI that demonstrates recovered-vs-clean byte-identity.
"""

from repro.recover.checkpoint import Checkpoint, CheckpointStore
from repro.recover.runner import (
    PECrashDetected,
    RecoveryManager,
    RecoveryOutcome,
    UnrecoverableCrashError,
    run_with_recovery,
)

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "PECrashDetected",
    "RecoveryManager",
    "RecoveryOutcome",
    "UnrecoverableCrashError",
    "run_with_recovery",
]
