"""Fail-stop recovery CLI.

Usage::

    python -m repro.recover                               # cpufree, crash_recover
    python -m repro.recover --variant baseline_p2p --profile crash_recover@7
    python -m repro.recover --checkpoint-every 3 --report-out recovery.json

Runs one stencil variant under a crash profile with checkpoint/restart
recovery, runs the fault-free reference, and verifies the recovered
final field is **byte-identical** to the reference (only simulated time
may differ).  Exits 1 when recovery fails the identity check (or no
crash fired so recovery was never exercised), 2 on bad invocation.

``--report-out`` writes a byte-stable JSON recovery report (checkpoint
epochs, crash/detection times, restarts, time accounting) — the CI
``chaos-recovery`` gate uploads these as artifacts.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.cliutil import CliError, cli_entry, parse_shape
from repro.faults.profiles import get_plan
from repro.obs.stablejson import dumps_stable
from repro.recover.runner import UnrecoverableCrashError, run_with_recovery


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.recover",
        description="Crash a PE mid-run, recover from checkpoints, and "
                    "verify byte-identity against the fault-free reference.",
    )
    parser.add_argument("--variant", default="cpufree",
                        help="stencil variant to run (default: cpufree)")
    parser.add_argument("--profile", default="crash_recover",
                        help="fault profile spec, optionally seeded "
                             "(default: crash_recover)")
    parser.add_argument("--gpus", type=int, default=2,
                        help="number of GPUs/PEs (default: 2)")
    parser.add_argument("--shape", type=parse_shape, default=(34, 66),
                        help="global domain shape (default: 34x66)")
    parser.add_argument("--iterations", type=int, default=6,
                        help="stencil iterations (default: 6)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="checkpoint cadence in iterations "
                             "(default: the profile's cadence)")
    parser.add_argument("--report-out", metavar="PATH",
                        help="write the JSON recovery report to PATH")
    args = parser.parse_args(argv)

    import repro.stencil.variants  # noqa: F401 - populate the registry
    from repro.stencil.base import VARIANTS, StencilConfig, variant_names
    from repro.stencil.reference import jacobi_reference
    from repro.stencil.base import default_initial

    if args.variant not in VARIANTS:
        raise CliError(
            f"unknown variant {args.variant!r}; choose from {variant_names()}")
    plan = get_plan(args.profile)  # raises CliError on unknown profiles
    if args.checkpoint_every is not None and args.checkpoint_every <= 0:
        raise CliError("--checkpoint-every must be positive")

    config = StencilConfig(
        global_shape=args.shape,
        num_gpus=args.gpus,
        iterations=args.iterations,
        fault_profile=args.profile,
    )
    try:
        outcome = run_with_recovery(
            VARIANTS[args.variant], config,
            checkpoint_every=args.checkpoint_every, plan=plan)
    except UnrecoverableCrashError as exc:
        print(f"unrecoverable: {exc}", file=sys.stderr)
        return 1

    reference = jacobi_reference(
        default_initial(config.global_shape, config.seed), config.iterations)
    identical = bool(np.array_equal(outcome.result, reference))

    report = outcome.report()
    report["byte_identical"] = identical
    report["profile"] = args.profile
    report["shape"] = list(args.shape)
    report["num_gpus"] = args.gpus

    print(f"recovery: {args.variant} under {args.profile} "
          f"({'x'.join(map(str, args.shape))}, {args.gpus} GPU(s), "
          f"{args.iterations} iteration(s))")
    print(f"  checkpoints: {len(outcome.store)} every "
          f"{outcome.checkpoint_every} iteration(s), "
          f"{outcome.store.total_bytes()} bytes")
    for pe, t in sorted(outcome.crashed_pes.items()):
        print(f"  crash: pe{pe} at t={t:.3f}us")
    print(f"  restarts: {outcome.restarts}, detection latency "
          f"{outcome.detect_latency_us:.3f}us, lost {outcome.lost_time_us:.3f}us")
    print(f"  total simulated time: {outcome.total_time_us:.3f}us")
    print(f"  final field vs fault-free reference: "
          f"{'byte-identical' if identical else 'MISMATCH'}")

    if args.report_out:
        with open(args.report_out, "w") as fh:
            fh.write(dumps_stable(report))
        print(f"(report written to {args.report_out})", file=sys.stderr)

    if not identical:
        return 1
    if plan.crashes and not outcome.recovered:
        print("recovery was never exercised: the seeded crash missed the run",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(cli_entry(main))
