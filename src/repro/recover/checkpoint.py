"""Epoch-tagged checkpoints for fail-stop recovery.

A checkpoint is everything needed to restart the computation from an
iteration boundary: the gathered global field (the logical state of the
distributed double buffers) plus, when the variant runs on NVSHMEM, a
deep :class:`~repro.nvshmem.heap.HeapSnapshot` of every symmetric
allocation and signal word.  Checkpoints are taken at *quiescent*
points — segment boundaries where every PE has passed the same
iteration count and no deliveries are in flight — which is what makes
restart-from-checkpoint deterministic: the restarted segment sees
exactly the state a fresh run of the remaining iterations would.

The store is in-memory: the simulated machine's "NVMe" target.  What
would be durable-media cost in a real system is charged in simulated
time by the recovery runner (``restart_cost_us``), not modeled here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nvshmem.heap import HeapSnapshot

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True, eq=False)
class Checkpoint:
    """One recovery point.

    ``epoch`` counts checkpoints from 0 (the initial scatter —
    restartable by construction); ``iteration`` is the global iteration
    count the state corresponds to; ``sim_time_us`` is the accumulated
    clean simulated time up to this point (global clock, not
    segment-local).
    """

    epoch: int
    iteration: int
    state: np.ndarray
    sim_time_us: float
    heap: HeapSnapshot | None = None

    @property
    def nbytes(self) -> int:
        total = int(self.state.nbytes)
        if self.heap is not None:
            total += self.heap.nbytes
        return total


class CheckpointStore:
    """Append-only sequence of checkpoints, newest last."""

    def __init__(self) -> None:
        self._checkpoints: list[Checkpoint] = []

    def __len__(self) -> int:
        return len(self._checkpoints)

    def save(self, iteration: int, state: np.ndarray, sim_time_us: float,
             heap: HeapSnapshot | None = None) -> Checkpoint:
        """Record a checkpoint; the state is deep-copied so later
        segment runs cannot mutate a recovery point in place."""
        ckpt = Checkpoint(
            epoch=len(self._checkpoints),
            iteration=iteration,
            state=np.array(state, copy=True),
            sim_time_us=sim_time_us,
            heap=heap,
        )
        self._checkpoints.append(ckpt)
        return ckpt

    @property
    def latest(self) -> Checkpoint | None:
        return self._checkpoints[-1] if self._checkpoints else None

    def epochs(self) -> list[int]:
        return [c.epoch for c in self._checkpoints]

    def total_bytes(self) -> int:
        return sum(c.nbytes for c in self._checkpoints)
