"""Deterministic discrete-event simulation (DES) engine.

Every component of the multi-GPU model — host threads, CUDA streams,
thread-block groups inside persistent kernels, interconnect transfers —
is a :class:`~repro.sim.engine.Process`: a Python generator that yields
*commands* (:class:`~repro.sim.engine.Delay`,
:class:`~repro.sim.engine.WaitFlag`, ...) to the
:class:`~repro.sim.engine.Simulator`.  The simulator advances virtual
time deterministically: identical inputs always produce identical
simulated timelines, which is what makes the paper's latency-accounting
experiments reproducible without real hardware.
"""

from repro.sim.engine import (
    TIMEOUT,
    DeadlockError,
    Delay,
    Flag,
    Process,
    ProcessFailed,
    ProcessKilled,
    SimulationError,
    Simulator,
    WaitFlag,
    WaitProcess,
    Watchdog,
    WatchdogError,
)
from repro.sim.resources import Channel, Mutex, Semaphore
from repro.sim.trace import (
    Span,
    Tracer,
    interval_union_length,
    merge_intervals,
    overlap_length,
)

__all__ = [
    "Channel",
    "DeadlockError",
    "Delay",
    "Flag",
    "Mutex",
    "Process",
    "ProcessFailed",
    "ProcessKilled",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "Span",
    "TIMEOUT",
    "Tracer",
    "WaitFlag",
    "WaitProcess",
    "Watchdog",
    "WatchdogError",
    "interval_union_length",
    "merge_intervals",
    "overlap_length",
]
