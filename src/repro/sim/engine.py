"""Core event loop, processes, and waitable flags.

The engine is intentionally small and dependency-free.  A *process* is a
Python generator.  It communicates with the simulator by yielding
command objects:

``Delay(dt)``
    Suspend for ``dt`` units of simulated time (microseconds by
    convention throughout this project).

``WaitFlag(flag, predicate)``
    Suspend until ``predicate(flag.value)`` is true.  The check happens
    immediately (zero-time resume if already satisfied) and again on
    every mutation of the flag.

``WaitProcess(process)``
    Suspend until another process terminates; resumes with its return
    value.

``Process`` objects returned by :meth:`Simulator.spawn` can also be
yielded directly as shorthand for ``WaitProcess``.

Determinism: events are ordered by ``(time, sequence)`` where the
sequence number increases monotonically with scheduling order, so runs
are fully reproducible.

Fast paths: heap entries are plain ``(time, seq, proc, value)`` tuples
(the unique ``seq`` guarantees comparisons never reach the process),
and zero-delay resumes — the dominant event class in signaling-heavy
protocols — go through a FIFO ready queue that bypasses the heap
entirely.  Both preserve the ``(time, seq)`` ordering contract exactly:
the main loop merges the ready queue and the heap by that key.

``WaitFlag`` predicates must be pure functions of the flag *value*:
:meth:`Flag.set` skips the waiter scan when the stored value does not
change, so a predicate that consults ambient state (e.g. ``sim.now``)
is not re-evaluated on no-op writes.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable, Generator
from dataclasses import dataclass
from typing import Any

__all__ = [
    "DeadlockError",
    "Delay",
    "Flag",
    "Process",
    "ProcessFailed",
    "SimulationError",
    "Simulator",
    "WaitFlag",
    "WaitProcess",
]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class DeadlockError(SimulationError):
    """Raised when no events remain but processes are still blocked.

    The message lists the blocked processes and what each one is
    waiting for — this is the primary debugging aid for signaling
    protocol mistakes (e.g. a halo-exchange flag that is never set).
    """


class ProcessFailed(SimulationError):
    """Raised when joining a process that terminated with an exception."""


@dataclass(frozen=True)
class Delay:
    """Command: suspend the yielding process for ``dt`` simulated time."""

    dt: float

    def __post_init__(self) -> None:
        if self.dt < 0:
            raise ValueError(f"negative delay: {self.dt}")


@dataclass(frozen=True)
class WaitFlag:
    """Command: suspend until ``predicate(flag.value)`` holds."""

    flag: "Flag"
    predicate: Callable[[Any], bool]


@dataclass(frozen=True)
class WaitProcess:
    """Command: suspend until ``process`` finishes; resumes with its result."""

    process: "Process"


class Process:
    """A running coroutine inside the simulator.

    Created via :meth:`Simulator.spawn`.  The wrapped generator's
    ``return`` value becomes :attr:`result` and is delivered to any
    process that joins it.
    """

    __slots__ = ("sim", "gen", "name", "alive", "result", "error", "_joiners", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator[Any, Any, Any], name: str) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.alive = True
        self.result: Any = None
        self.error: BaseException | None = None
        self._joiners: list[Process] = []
        #: human-readable description of the blocking command (deadlock report)
        self._waiting_on: str = "<not started>"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"


class Flag:
    """An integer-valued cell processes can wait on.

    This is the simulated analogue of a word in GPU memory used as a
    synchronization flag: NVSHMEM ``signal_wait_until`` and device-side
    spin loops are modeled as :class:`WaitFlag` commands on a ``Flag``.
    Mutations are instantaneous in simulated time; the *cost* of the
    signaling operation is charged separately by the caller.
    """

    __slots__ = ("sim", "name", "_value", "_waiters")

    def __init__(self, sim: "Simulator", value: int = 0, name: str = "flag") -> None:
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: list[tuple[Process, Callable[[Any], bool]]] = []

    @property
    def value(self) -> int:
        return self._value

    def set(self, value: int) -> None:
        """Store ``value`` and wake any waiter whose predicate now holds.

        A no-op write (same value) skips the waiter scan: predicates
        depend only on the value, and a waiter whose predicate already
        held would have resumed when it was enqueued.
        """
        if value == self._value:
            return
        self._value = value
        self._wake()

    def add(self, delta: int = 1) -> int:
        """Atomically add ``delta``; returns the new value."""
        self._value += delta
        self._wake()
        return self._value

    def _wake(self) -> None:
        if not self._waiters:
            return
        still_blocked: list[tuple[Process, Callable[[Any], bool]]] = []
        resumed = 0
        for proc, predicate in self._waiters:
            if predicate(self._value):
                self.sim._resume(proc, self._value)
                resumed += 1
            else:
                still_blocked.append((proc, predicate))
        self._waiters = still_blocked
        if resumed:
            wakeups = self.sim.flag_wakeups
            wakeups[self.name] = wakeups.get(self.name, 0) + resumed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Flag {self.name}={self._value} waiters={len(self._waiters)}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Usage::

        sim = Simulator()

        def worker():
            yield Delay(5.0)
            return "done"

        p = sim.spawn(worker(), name="worker")
        sim.run()
        assert sim.now == 5.0 and p.result == "done"
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        #: future events as ``(time, seq, proc, value)`` tuples
        self._heap: list[tuple[float, int, Process, Any]] = []
        #: events at the *current* time, FIFO by seq (heap bypass)
        self._ready: deque[tuple[float, int, Process, Any]] = deque()
        self._seq = 0
        self._processes: list[Process] = []
        self._blocked = 0
        # Observability counters — plain ints so the hot loop pays one
        # attribute increment, published into a MetricsRegistry by the
        # owning context after run().  Purely diagnostic: they never
        # influence scheduling or simulated time.
        self.n_events = 0
        self.n_heap_pops = 0
        self.n_ready_pops = 0
        self.n_spawned = 0
        #: waiter resumptions per flag name
        self.flag_wakeups: dict[str, int] = {}

    # -- process management -------------------------------------------------

    def spawn(self, gen: Generator[Any, Any, Any], name: str = "proc") -> Process:
        """Register ``gen`` as a process and schedule its first step now."""
        if not isinstance(gen, Generator):
            raise TypeError(f"spawn() needs a generator, got {type(gen).__name__}")
        proc = Process(self, gen, name)
        self._processes.append(proc)
        self.n_spawned += 1
        self._push(self.now, proc, None)
        return proc

    def flag(self, value: int = 0, name: str = "flag") -> Flag:
        """Convenience constructor for a :class:`Flag` bound to this sim."""
        return Flag(self, value, name)

    # -- scheduling internals ------------------------------------------------

    def _push(self, time: float, proc: Process, value: Any) -> None:
        self._seq += 1
        entry = (time, self._seq, proc, value)
        if time == self.now:
            # Zero-delay wakeup: seq is monotonic, so FIFO append keeps
            # the ready queue sorted by (time, seq) for free.
            self._ready.append(entry)
        else:
            heapq.heappush(self._heap, entry)

    def _resume(self, proc: Process, value: Any) -> None:
        """Schedule ``proc`` to continue at the current time."""
        self._blocked -= 1
        self._push(self.now, proc, value)

    # -- main loop -----------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run until no events remain (or ``until`` is reached).

        Returns the final simulated time.  Raises :class:`DeadlockError`
        if live processes remain blocked with no pending events, and
        re-raises the first exception of any failed process.
        """
        heap, ready = self._heap, self._ready
        while heap or ready:
            # Merge the ready queue and the heap by (time, seq): ready
            # entries sit at the current time, but the heap may still
            # hold a same-time event with a smaller seq.
            if ready and (not heap or (ready[0][0], ready[0][1]) <= (heap[0][0], heap[0][1])):
                event = ready.popleft()
                self.n_ready_pops += 1
            else:
                event = heapq.heappop(heap)
                self.n_heap_pops += 1
            time = event[0]
            if until is not None and time > until:
                heapq.heappush(heap, event)
                self.now = until
                return self.now
            if time < self.now - 1e-12:
                raise SimulationError("event scheduled in the past")
            if time > self.now:
                self.now = time
            self._step(event[2], event[3])
        alive_blocked = [p for p in self._processes if p.alive]
        if alive_blocked:
            detail = ", ".join(f"{p.name} waiting on {p._waiting_on}" for p in alive_blocked)
            raise DeadlockError(f"deadlock: {len(alive_blocked)} blocked process(es): {detail}")
        return self.now

    def _step(self, proc: Process, value: Any) -> None:
        if not proc.alive:  # joined process already finished
            return
        self.n_events += 1
        try:
            command = proc.gen.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except Exception as exc:  # mark failed, propagate to joiners and run()
            self._finish(proc, None, exc)
            raise
        self._dispatch(proc, command)

    def _dispatch(self, proc: Process, command: Any) -> None:
        # Exact-type dispatch for the hot commands; subclasses of the
        # command types take the isinstance fallback below.
        cls = command.__class__
        if cls is Delay:
            proc._waiting_on = f"Delay({command.dt})"
            self._push(self.now + command.dt, proc, None)
        elif cls is WaitFlag:
            self._wait_flag(proc, command)
        elif cls is WaitProcess or cls is Process:
            self._join(proc, command.process if cls is WaitProcess else command)
        elif isinstance(command, Delay):
            proc._waiting_on = f"Delay({command.dt})"
            self._push(self.now + command.dt, proc, None)
        elif isinstance(command, WaitFlag):
            self._wait_flag(proc, command)
        elif isinstance(command, (WaitProcess, Process)):
            self._join(proc, command.process if isinstance(command, WaitProcess) else command)
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported command {command!r}"
            )

    def _wait_flag(self, proc: Process, command: WaitFlag) -> None:
        flag = command.flag
        if command.predicate(flag.value):
            self._push(self.now, proc, flag.value)
        else:
            proc._waiting_on = f"Flag({flag.name}={flag.value})"
            self._blocked += 1
            flag._waiters.append((proc, command.predicate))

    def _join(self, proc: Process, target: Process) -> None:
        if not target.alive:
            if target.error is not None:
                raise ProcessFailed(f"joined process {target.name} failed") from target.error
            self._push(self.now, proc, target.result)
        else:
            proc._waiting_on = f"join({target.name})"
            self._blocked += 1
            target._joiners.append(proc)

    def _finish(self, proc: Process, result: Any, error: BaseException | None) -> None:
        proc.alive = False
        proc.result = result
        proc.error = error
        for joiner in proc._joiners:
            self._resume(joiner, result)
        proc._joiners.clear()
