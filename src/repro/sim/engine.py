"""Core event loop, processes, and waitable flags.

The engine is intentionally small and dependency-free.  A *process* is a
Python generator.  It communicates with the simulator by yielding
command objects:

``Delay(dt)``
    Suspend for ``dt`` units of simulated time (microseconds by
    convention throughout this project).

``WaitFlag(flag, predicate, timeout=None, *, ge=None, eq=None)``
    Suspend until the flag satisfies a condition.  The check happens
    immediately (zero-time resume if already satisfied) and again on
    every mutation of the flag.  The condition is either an arbitrary
    ``predicate(value)`` or — preferred on hot paths — one of the
    structured forms ``ge=t`` (wait for ``value >= t``) or ``eq=t``
    (wait for ``value == t``), which the flag indexes so a mutation
    wakes exactly the satisfied waiters without scanning.  With a
    ``timeout`` (simulated time), the process instead resumes with the
    :data:`TIMEOUT` sentinel if the condition still fails when the
    budget expires — the primitive under retrying NVSHMEM waits.

``WaitProcess(process)``
    Suspend until another process terminates; resumes with its return
    value.

``Process`` objects returned by :meth:`Simulator.spawn` can also be
yielded directly as shorthand for ``WaitProcess``.

Determinism: events are ordered by ``(time, sequence)`` where the
sequence number increases monotonically with scheduling order, so runs
are fully reproducible.

Scheduling is a two-level calendar queue rather than one global heap:

* a ``dict`` maps each distinct future timestamp to a FIFO *bucket*
  (``deque``) of events — same-timestamp scheduling is O(1) because the
  monotonic sequence number means plain ``append`` keeps every bucket
  sorted by ``(time, seq)`` for free;
* a small heap orders only the *distinct* timestamps, so advancing time
  leaps directly to the next populated instant (idle-time leaping —
  there is no tick-by-tick draining, and the heap shrinks from
  one-entry-per-event to one-entry-per-timestamp);
* a bucket and its timestamp are retired together when the bucket
  drains, so the timestamp heap never holds dead entries;
* zero-delay resumes — the dominant event class in signaling-heavy
  protocols — bypass both levels through a FIFO ready queue holding
  events at the current instant.

The main loop merges the ready queue and the calendar by ``(time,
seq)``.  Because events only enter the ready queue while ``sim.now``
equals their timestamp, every event in the current instant's *bucket*
predates (in seq order) every event in the ready queue, so the merge
reduces to a single timestamp comparison.

The calendar also carries *callback events* (:meth:`Simulator.call_at`):
bare functions run at a timestamp with no generator, no Process object,
and no per-event counter updates.  The NVSHMEM transport uses them to
coalesce many same-route delivery legs into one scheduled event while
charging the per-leg counters explicitly (virtual accounting), keeping
published metrics byte-identical to the unbatched engine.

``WaitFlag`` predicates must be pure functions of the flag *value*:
:meth:`Flag.set` skips waiter wakeup when the stored value does not
change, so a predicate that consults ambient state (e.g. ``sim.now``)
is not re-evaluated on no-op writes.

Hang diagnosis: a :class:`Watchdog` attached via
:meth:`Simulator.attach_watchdog` monitors waits on flags marked with a
``watch_budget_us`` and converts a wait that outlives its budget — or a
drained calendar with watched waiters still blocked — into a
:class:`WatchdogError` naming the stuck process, the signal it waits
on, and any registered context (e.g. the last delivery attempt).

Synchronization observation: an object installed as
:attr:`Simulator.monitor` receives every synchronization edge the
engine creates — process forks (``spawned``), flag mutations
(``released``), waiter resumptions (``acquired``), and process
completion/joins (``finished``/``joined``).  The happens-before race
detector in :mod:`repro.sanitize` is built entirely on these five
callbacks; every higher-level primitive in this codebase (NVSHMEM
signals and pending counters, grid/host barriers, stream chaining,
MPI requests, local spin flags) synchronizes through :class:`Flag`,
so the hooks cover them all uniformly.  Two deliberate subtleties: a
no-op ``Flag.set`` (same value) releases nothing, matching the
engine's wakeup semantics, and a :data:`TIMEOUT` resume acquires
nothing — a timed-out waiter observed no release.
"""

from __future__ import annotations

import sys
from collections import deque
from collections.abc import Callable, Generator
from heapq import heappop, heappush
from os.path import basename
from typing import Any

from repro.sim.stacked import (
    Stacked,
    emax as _emax,
    members as _members,
)

__all__ = [
    "DeadlockError",
    "Delay",
    "Flag",
    "Process",
    "ProcessFailed",
    "ProcessKilled",
    "SimulationError",
    "Simulator",
    "TIMEOUT",
    "WaitFlag",
    "WaitProcess",
    "Watchdog",
    "WatchdogError",
]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class DeadlockError(SimulationError):
    """Raised when no events remain but processes are still blocked.

    The message carries the simulated timestamp and, for every blocked
    process, what it is waiting for, since when, and where it was
    spawned; join chains are chased so the root blocker is named first.
    This is the primary debugging aid for signaling protocol mistakes
    (e.g. a halo-exchange flag that is never set).
    """


class WatchdogError(DeadlockError):
    """Raised by a :class:`Watchdog`: a monitored wait exceeded its
    simulated-time budget (or the event calendar drained while watched
    waiters were still blocked).  Subclasses :class:`DeadlockError` so
    existing hang handling keeps working, but the message additionally
    names the stuck signal and the last delivery attempt reported by
    registered context providers."""


class ProcessFailed(SimulationError):
    """Raised when joining a process that terminated with an exception."""


class ProcessKilled(SimulationError):
    """Recorded as a process's ``error`` when :meth:`Simulator.kill`
    terminates it mid-run (fail-stop fault model).  A later join of the
    killed process raises :class:`ProcessFailed` from this, so the
    joiner observes the death instead of a phantom result."""


class _TimeoutSentinel:
    """Singleton resume value delivered when a ``WaitFlag`` times out."""

    _instance: "_TimeoutSentinel | None" = None

    def __new__(cls) -> "_TimeoutSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TIMEOUT"


#: resume value a timed ``WaitFlag`` yields back when the budget expires
TIMEOUT = _TimeoutSentinel()


class Delay:
    """Command: suspend the yielding process for ``dt`` simulated time."""

    __slots__ = ("dt",)

    def __init__(self, dt: float) -> None:
        # `not (dt >= 0)` also catches NaN, which would otherwise poison
        # the (time, seq) calendar ordering far from the offending yield.
        if not (dt >= 0):
            raise ValueError(
                f"Delay dt must be a non-negative number, got {dt!r} "
                f"(negative and NaN delays would corrupt event ordering)"
            )
        self.dt = dt

    def __repr__(self) -> str:
        return f"Delay(dt={self.dt!r})"

    def __eq__(self, other: Any) -> bool:
        return other.__class__ is Delay and other.dt == self.dt

    def __hash__(self) -> int:
        return hash((Delay, self.dt))


class WaitFlag:
    """Command: suspend until the flag satisfies the wait condition.

    Exactly one of ``predicate``, ``ge``, or ``eq`` names the
    condition:

    ``predicate``
        Arbitrary callable on the flag value.  The flag re-evaluates it
        on every (value-changing) mutation — a linear scan.

    ``ge=t``
        Wait for ``value >= t``.  Indexed: the flag keeps threshold
        waiters in a heap and a mutation wakes exactly the satisfied
        ones.  Use this for monotonic counters (signals, arrivals).

    ``eq=t``
        Wait for ``value == t``.  Indexed by target value.  Note the
        wait only resumes if the flag *lands exactly* on ``t`` — a
        mutation that jumps over ``t`` wakes nobody, matching the
        equivalent predicate.

    ``timeout`` (simulated time, ``None`` = wait forever) bounds the
    wait: if the condition still fails after ``timeout``, the process
    resumes with the :data:`TIMEOUT` sentinel instead of the flag
    value.  Callers must compare ``result is TIMEOUT``.
    """

    __slots__ = ("flag", "predicate", "timeout", "ge", "eq")

    def __init__(
        self,
        flag: "Flag",
        predicate: Callable[[Any], bool] | None = None,
        timeout: float | None = None,
        *,
        ge: Any | None = None,
        eq: Any | None = None,
    ) -> None:
        if predicate is not None:
            if ge is not None or eq is not None:
                raise ValueError(
                    "WaitFlag takes either a predicate or a structured "
                    "condition (ge=/eq=), not both"
                )
        elif (ge is None) == (eq is None):
            raise ValueError(
                "WaitFlag needs exactly one condition: a predicate, ge=, or eq="
            )
        if timeout is not None and not (timeout > 0):
            raise ValueError(
                f"WaitFlag timeout must be a positive number, got {timeout!r}"
            )
        self.flag = flag
        self.predicate = predicate
        self.timeout = timeout
        self.ge = ge
        self.eq = eq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.ge is not None:
            cond = f"ge={self.ge!r}"
        elif self.eq is not None:
            cond = f"eq={self.eq!r}"
        else:
            cond = f"predicate={self.predicate!r}"
        return f"WaitFlag({self.flag!r}, {cond}, timeout={self.timeout!r})"


class WaitProcess:
    """Command: suspend until ``process`` finishes; resumes with its result."""

    __slots__ = ("process",)

    def __init__(self, process: "Process") -> None:
        self.process = process

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WaitProcess({self.process!r})"


class _TimeoutEntry:
    """Calendar token arming a ``WaitFlag`` timeout.

    Cancellation is lazy: resuming the waiter flips ``cancelled`` and the
    main loop discards the token when it surfaces — crucially *before*
    advancing ``sim.now``, so a resolved wait never inflates the final
    simulated time.
    """

    __slots__ = ("flag", "cancelled")

    def __init__(self, flag: "Flag") -> None:
        self.flag = flag
        self.cancelled = False


class _WeakCallback:
    """Calendar wrapper for ``call_at(..., weak=True)`` callbacks.

    A *weak* callback must not keep the simulation alive: when one
    surfaces and only weak events (or dead tokens) remain pending, the
    run ends at the current time instead of advancing to the callback's
    timestamp.  The fault layer arms crash timers this way — a crash
    scheduled past the natural end of the run neither fires nor
    stretches the measured timeline.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn


class Process:
    """A running coroutine inside the simulator.

    Created via :meth:`Simulator.spawn`.  The wrapped generator's
    ``return`` value becomes :attr:`result` and is delivered to any
    process that joins it.
    """

    __slots__ = (
        "sim", "gen", "name", "alive", "result", "error", "_joiners",
        "_waiting_on", "_waiting_flag", "_waiting_join", "_blocked_since",
        "_timeout", "_spawn_site", "_wait_epoch", "_finish_time",
        "_blocked_seq", "shard",
    )

    def __init__(self, sim: "Simulator", gen: Generator[Any, Any, Any], name: str,
                 site: tuple[str, int] | None = None) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.alive = True
        #: calendar lane under sharded dispatch (inherited at spawn);
        #: purely a queue-balancing hint — never affects event order
        self.shard = 0
        self.result: Any = None
        self.error: BaseException | None = None
        self._joiners: list[Process] = []
        #: what the process is blocked on, stored cheaply (the command
        #: object / a (flag, value) tuple / the join target) and only
        #: formatted into text when a diagnostic report needs it
        self._waiting_on: Any = "<not started>"
        #: the Flag / Process currently blocked on (None when runnable)
        self._waiting_flag: Flag | None = None
        self._waiting_join: Process | None = None
        #: sim.now when the current blocking wait began (None when runnable)
        self._blocked_since: float | None = None
        #: batched runs: joint dispatch seq of the current flag block
        self._blocked_seq = 0
        #: pending WaitFlag timeout token, if any
        self._timeout: _TimeoutEntry | None = None
        #: (filename, lineno) of the spawn() call site
        self._spawn_site = site
        #: bumped on every flag block; indexed waiter entries snapshot it
        #: so entries from an earlier (timed-out) wait are dead on arrival
        self._wait_epoch = 0
        #: sim.now at termination (batched runs join it into late joins)
        self._finish_time: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"


def _format_site(site: tuple[str, int] | None) -> str:
    return f"{basename(site[0])}:{site[1]}" if site is not None else "?"


def _describe_wait(waiting_on: Any) -> str:
    """Format a lazily-stored wait description (deadlock reports only —
    the hot path never builds these strings)."""
    cls = waiting_on.__class__
    if cls is str:
        return waiting_on
    if cls is tuple:  # (flag, value-at-block-time)
        return f"Flag({waiting_on[0].name}={waiting_on[1]})"
    if cls is Delay:
        return f"Delay({waiting_on.dt})"
    if cls is Process:
        return f"join({waiting_on.name})"
    return str(waiting_on)  # pragma: no cover - future command types


class Flag:
    """An integer-valued cell processes can wait on.

    This is the simulated analogue of a word in GPU memory used as a
    synchronization flag: NVSHMEM ``signal_wait_until`` and device-side
    spin loops are modeled as :class:`WaitFlag` commands on a ``Flag``.
    Mutations are instantaneous in simulated time; the *cost* of the
    signaling operation is charged separately by the caller.

    Waiters are indexed by condition so a mutation wakes exactly the
    satisfied ones: ``ge`` waits sit in a threshold heap, ``eq`` waits
    in a dict keyed by target value, and only opaque ``predicate``
    waits pay a linear re-evaluation scan.  Wakeup *order* is
    registration order regardless of index (each wait gets a per-flag
    registration number and satisfied waiters resume sorted by it),
    preserving the exact semantics — and determinism — of the previous
    single-list scan.  Index entries are invalidated lazily: a timed-out
    or resumed waiter leaves its heap/dict entry behind, and the entry
    is discarded when it surfaces (the waiter's ``_wait_epoch`` no
    longer matches).

    ``watch_budget_us`` opts the flag into watchdog monitoring: every
    wait on a marked flag must resume within that many simulated
    microseconds or the attached :class:`Watchdog` raises.  Left
    ``None`` (the default) the flag is never monitored — legitimate
    whole-run waits (host joins, grid barriers) stay exempt.
    """

    __slots__ = ("sim", "name", "_value", "_ge", "_eq", "_scan", "_wseq",
                 "watch_budget_us", "_last_change", "_lcm_t", "_lcm_s")

    def __init__(self, sim: "Simulator", value: int = 0, name: str = "flag") -> None:
        self.sim = sim
        self.name = name
        self._value = value
        #: sim.now of the last effective mutation (None = initial value,
        #: which carries no time dependence).  Batched runs join this
        #: into the wake time of an already-satisfied wait: the waiter
        #: member that arrived before its release member waited there.
        self._last_change: Any = None
        #: batched runs only: per-member time and joint seq of the
        #: mutation that achieved the member's accumulated release time
        #: (lexicographic max over the mutation history, kept as two
        #: parallel lists to stay allocation-free on the hot path).  The
        #: seq breaks member-time ties by joint dispatch order, which
        #: the member's own per-point run reproduces for equal-time
        #: events.
        self._lcm_t: list[Any] | None = None
        self._lcm_s: list[int] | None = None
        #: threshold waiters: heap of (threshold, wseq, proc, epoch)
        self._ge: list[tuple[Any, int, Process, int]] = []
        #: exact-value waiters: target value -> [(wseq, proc, epoch), ...]
        self._eq: dict[Any, list[tuple[int, Process, int]]] = {}
        #: opaque-predicate waiters: [(wseq, proc, predicate), ...]
        self._scan: list[tuple[int, Process, Callable[[Any], bool]]] = []
        #: per-flag registration counter — defines wakeup order
        self._wseq = 0
        self.watch_budget_us: float | None = None

    @property
    def value(self) -> int:
        return self._value

    def set(self, value: int) -> None:
        """Store ``value`` and wake any waiter whose condition now holds.

        A no-op write (same value) skips wakeup: wait conditions depend
        only on the value, and a waiter whose condition already held
        would have resumed when it was enqueued.  The attached monitor
        (if any) sees no release either — a write nobody can observe
        creates no synchronization edge.
        """
        if value == self._value:
            return
        self._value = value
        self._stamp_change()
        monitor = self.sim.monitor
        if monitor is not None:
            monitor.released(self, self.sim.current)
        if self._ge or self._eq or self._scan:
            self._wake()

    def add(self, delta: int = 1) -> int:
        """Atomically add ``delta``; returns the new value."""
        self._value += delta
        self._stamp_change()
        monitor = self.sim.monitor
        if monitor is not None:
            monitor.released(self, self.sim.current)
        if self._ge or self._eq or self._scan:
            self._wake()
        return self._value

    def _stamp_change(self) -> None:
        """Record the release time of this mutation.

        Scalar runs: plainly ``sim.now`` (time is globally monotone, so
        the last mutation is also the latest).  Batched runs: the
        element-wise max over the mutation history — for a threshold
        crossed by the current mutation count (signals, barriers), each
        member's crossing is the max of *its* mutation times, which need
        not belong to the pilot's latest mutation.
        """
        sim = self.sim
        now = sim.now
        last = self._last_change
        if last is None or (now.__class__ is float and last.__class__ is float):
            self._last_change = now
        else:
            self._last_change = _emax(now, last)
        B = sim.batch_members
        if B is not None:
            seq = sim._order_seq = sim._order_seq + 1
            nows = _members(now, B)
            ts = self._lcm_t
            if ts is None:
                self._lcm_t = list(nows)
                self._lcm_s = [seq] * B
            else:
                ss = self._lcm_s
                for m in range(B):
                    # seq is strictly increasing across mutations, so a
                    # tie on time is always won by the current mutation.
                    if nows[m] >= ts[m]:
                        ts[m] = nows[m]
                        ss[m] = seq

    def _wake(self) -> None:
        value = self._value
        woken: list[tuple[int, Process]] | None = None
        ge = self._ge
        while ge and ge[0][0] <= value:
            entry = heappop(ge)
            proc = entry[2]
            # Lazy invalidation: the entry is live only if the process
            # is still blocked on *this* flag by the *same* wait.
            if proc._waiting_flag is self and proc._wait_epoch == entry[3]:
                if woken is None:
                    woken = [(entry[1], proc)]
                else:
                    woken.append((entry[1], proc))
        if self._eq:
            entries = self._eq.pop(value, None)
            if entries is not None:
                for wseq, proc, epoch in entries:
                    if proc._waiting_flag is self and proc._wait_epoch == epoch:
                        if woken is None:
                            woken = [(wseq, proc)]
                        else:
                            woken.append((wseq, proc))
        if self._scan:
            still: list[tuple[int, Process, Callable[[Any], bool]]] = []
            for item in self._scan:
                if item[2](value):
                    if woken is None:
                        woken = [(item[0], item[1])]
                    else:
                        woken.append((item[0], item[1]))
                else:
                    still.append(item)
            self._scan = still
        if woken is None:
            return
        sim = self.sim
        monitor = sim.monitor
        B = sim.batch_members
        if B is not None:
            # Per-member wakeup bookkeeping: a member whose arrival came
            # after its release was satisfied at arrival in the
            # equivalent per-point run and never counted a wakeup there.
            vec = sim.flag_wakeups_m.get(self.name)
            if vec is None:
                vec = sim.flag_wakeups_m[self.name] = [0] * B
            rel_t = self._lcm_t
            rel_s = self._lcm_s
            for _, proc in woken:
                arr = _members(proc._blocked_since, B)
                aseq = proc._blocked_seq
                for m in range(B):
                    # Lexicographic on (member time, joint seq): at a
                    # member-time tie the per-point run dispatches the
                    # equal-time events in joint order, so the seq says
                    # whether that run saw the wait or the release first.
                    am = arr[m]
                    tm = rel_t[m]
                    if am < tm or (am == tm and aseq < rel_s[m]):
                        vec[m] += 1
        if len(woken) == 1:
            proc = woken[0][1]
            if monitor is not None:
                monitor.acquired(proc, self)
            sim._resume(proc, value, self._last_change)
        else:
            # Registration order, exactly as the old single-list scan
            # woke them (wseq is unique per flag, so the sort is total).
            woken.sort()
            for _, proc in woken:
                if monitor is not None:
                    monitor.acquired(proc, self)
                sim._resume(proc, value, self._last_change)
        wakeups = sim.flag_wakeups
        wakeups[self.name] = wakeups.get(self.name, 0) + len(woken)

    def _waiter_count(self) -> int:
        """Number of (possibly stale) registered waiters — debug aid."""
        return (len(self._ge) + len(self._scan)
                + sum(len(v) for v in self._eq.values()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Flag {self.name}={self._value} waiters={self._waiter_count()}>"


class Watchdog:
    """Quiescence-without-progress detector for signal protocols.

    Unlike an OS watchdog this is *not* a spawned process (a periodic
    poller would keep the event calendar alive and stretch the measured
    timeline).  It hooks the simulator's time advance: whenever a wait
    starts on a flag marked via :meth:`watch` (or a flag whose
    ``watch_budget_us`` was set directly), a deadline is recorded, and
    the main loop checks overdue deadlines before stepping past them.
    Entries are validated lazily — a waiter that resumed and re-blocked
    leaves a stale entry behind, detected by comparing the recorded
    ``blocked_since`` timestamp.

    ``context providers`` registered with :meth:`add_context` are
    callables ``(flag) -> str | None`` consulted when building the
    diagnostic; the fault-injection layer uses one to report the last
    delivery attempt targeting the stuck signal.
    """

    def __init__(self, budget_us: float, name: str = "watchdog") -> None:
        if not (budget_us > 0):
            raise ValueError(f"watchdog budget must be positive, got {budget_us!r}")
        self.budget_us = budget_us
        self.name = name
        #: set once the watchdog has raised (inspection aid for tests)
        self.fired = False
        self._heap: list[tuple[float, int, Process, Flag, float]] = []
        self._seq = 0
        self._next_deadline = float("inf")
        self._context: list[Callable[[Flag], str | None]] = []

    def watch(self, flag: Flag, budget_us: float | None = None) -> Flag:
        """Mark ``flag`` for monitoring; waits must resume within
        ``budget_us`` (default: this watchdog's budget)."""
        flag.watch_budget_us = self.budget_us if budget_us is None else budget_us
        return flag

    def add_context(self, provider: Callable[[Flag], str | None]) -> None:
        """Register a diagnostic context provider consulted on firing."""
        self._context.append(provider)

    # -- internals (driven by the Simulator) ---------------------------------

    def _arm(self, deadline: float, proc: Process, flag: Flag, since: float) -> None:
        self._seq += 1
        heappush(self._heap, (deadline, self._seq, proc, flag, since))
        if deadline < self._next_deadline:
            self._next_deadline = deadline

    def _check(self, sim: "Simulator", event_time: float) -> None:
        """Fire any overdue, still-valid deadline strictly before
        ``event_time`` (same-time events get to deliver their wakeups
        first, so a signal landing exactly at the deadline wins)."""
        heap = self._heap
        while heap and heap[0][0] < event_time:
            deadline, _, proc, flag, since = heappop(heap)
            if proc.alive and proc._waiting_flag is flag and proc._blocked_since == since:
                if deadline > sim.now:
                    sim.now = deadline
                self.fired = True
                raise WatchdogError(self._describe(sim, proc, flag, since, deadline))
        self._next_deadline = heap[0][0] if heap else float("inf")

    def _context_lines(self, flag: Flag) -> list[str]:
        lines = []
        for provider in self._context:
            text = provider(flag)
            if text:
                lines.append(text)
        return lines

    def _describe(self, sim: "Simulator", proc: Process, flag: Flag,
                  since: float, deadline: float) -> str:
        lines = [
            f"watchdog[{self.name}]: {proc.name} stuck waiting on signal "
            f"{flag.name} (value={flag.value}) since t={since:.3f}us — no wakeup "
            f"within budget {flag.watch_budget_us:.3f}us (deadline t={deadline:.3f}us); "
            f"spawned at {_format_site(proc._spawn_site)}",
        ]
        for text in self._context_lines(flag):
            lines.append(f"  {text}")
        others = [p for p in sim._processes
                  if p.alive and p._blocked_since is not None and p is not proc]
        if others:
            lines.append(f"  {len(others)} other blocked process(es):")
            lines.append(sim._wait_report(others, indent="    "))
        return "\n".join(lines)

    def _drain_error(self, sim: "Simulator", blocked: list[Process],
                     report: str) -> WatchdogError:
        """Rich diagnostic for a calendar drain with watched waiters blocked."""
        self.fired = True
        lines = [
            f"watchdog[{self.name}]: simulation quiescent at t={sim.now:.3f}us "
            f"with {len(blocked)} blocked process(es) and no pending events:",
            report,
        ]
        for proc in blocked:
            flag = proc._waiting_flag
            if flag is not None and flag.watch_budget_us is not None:
                for text in self._context_lines(flag):
                    lines.append(f"  [{proc.name}] {text}")
        return WatchdogError("\n".join(lines))


class Simulator:
    """Deterministic discrete-event simulator.

    Usage::

        sim = Simulator()

        def worker():
            yield Delay(5.0)
            return "done"

        p = sim.spawn(worker(), name="worker")
        sim.run()
        assert sim.now == 5.0 and p.result == "done"
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        #: calendar: distinct future timestamps, heap-ordered
        self._times: list[float] = []
        #: calendar: timestamp -> FIFO bucket of (time, seq, proc, value)
        #: events (seq-sorted for free — seq is assigned at push time)
        self._buckets: dict[float, deque[tuple[float, int, Any, Any]]] = {}
        #: events at the *current* time, FIFO by seq (calendar bypass)
        self._ready: deque[tuple[float, int, Any, Any]] = deque()
        self._seq = 0
        self._processes: list[Process] = []
        self._blocked = 0
        #: hang monitor installed via attach_watchdog (None = unmonitored)
        self.watchdog: Watchdog | None = None
        #: the process whose generator is currently stepping (None when
        #: the engine is between steps, e.g. in setup code before run())
        self.current: Process | None = None
        #: synchronization observer (e.g. the repro.sanitize HB monitor);
        #: must expose spawned/released/acquired/finished/joined.  None
        #: (the default) keeps every hook site on a single None-check.
        self.monitor: Any | None = None
        # Observability counters — plain ints so the hot loop pays one
        # attribute increment, published into a MetricsRegistry by the
        # owning context after run().  Purely diagnostic: they never
        # influence scheduling or simulated time.  Callback events
        # (call_at) deliberately skip them: batching callers charge the
        # counters for the logical events a callback stands in for, so
        # the published totals describe the *modeled* workload, not the
        # engine's internal batching.
        self.n_events = 0
        self.n_heap_pops = 0
        self.n_ready_pops = 0
        self.n_spawned = 0
        #: callback events executed (engine-internal, not published)
        self.n_callbacks = 0
        #: waiter resumptions per flag name
        self.flag_wakeups: dict[str, int] = {}
        #: batched runs: member count of the config stack (None = scalar
        #: run) and the per-member wakeup tallies that replace
        #: ``flag_wakeups`` when metrics are demultiplexed
        self.batch_members: int | None = None
        self.flag_wakeups_m: dict[str, list[int]] = {}
        #: joint program-order counter shared by flag mutations and
        #: blocking waits — breaks member-time ties in wakeup accounting
        self._order_seq = 0
        #: sharded calendar (enable_sharding): number of lanes and the
        #: per-lane timestamp heaps / bucket dicts.  0 = flat calendar.
        self._n_shards = 0
        self._lane_times: list[list[float]] | None = None
        self._lane_buckets: list[dict] | None = None
        #: finished/killed processes awaiting compaction of _processes
        self._n_dead = 0

    # -- process management -------------------------------------------------

    def spawn(self, gen: Generator[Any, Any, Any], name: str = "proc", *,
              shard: int | None = None) -> Process:
        """Register ``gen`` as a process and schedule its first step now.

        ``shard`` pins the process to a calendar lane under sharded
        dispatch (default: inherit the spawning process's lane; lane 0
        from setup code).  The lane is a load-balancing hint only —
        dispatch order is the global ``(time, seq)`` order either way.
        """
        if not isinstance(gen, Generator):
            raise TypeError(f"spawn() needs a generator, got {type(gen).__name__}")
        frame = sys._getframe(1)
        proc = Process(self, gen, name, (frame.f_code.co_filename, frame.f_lineno))
        if shard is not None:
            if self._n_shards and not 0 <= shard < self._n_shards:
                raise ValueError(f"shard {shard} out of range "
                                 f"(n_shards={self._n_shards})")
            proc.shard = shard if self._n_shards else 0
        elif self.current is not None:
            proc.shard = self.current.shard
        self._processes.append(proc)
        self.n_spawned += 1
        if self.monitor is not None:
            self.monitor.spawned(proc, self.current)
        self._push(self.now, proc, None)
        return proc

    def enable_sharding(self, n_shards: int) -> None:
        """Partition the calendar into ``n_shards`` per-domain lanes.

        Each lane keeps its own timestamp heap and bucket dict, so at
        256+ PEs no single heap holds every pending timestamp; the
        dispatch loop merges lane heads by ``(time, seq)``.  The merge
        is *provably* order-identical to the flat calendar: within a
        lane the head bucket entry is the lane's minimal ``(time,
        seq)``, the sequence counter stays global, and the ready queue
        is shared — so the minimum over lane heads is the same event
        the flat heap would pop, and every run is byte-identical to
        unsharded dispatch.

        Call before :meth:`run`; events already scheduled (setup-time
        spawns, fault timers) stay in lane 0, which is always correct —
        lanes only balance queue sizes.
        """
        if n_shards < 2:
            raise ValueError("n_shards must be >= 2")
        if self._n_shards:
            raise SimulationError("sharding already enabled")
        self._n_shards = n_shards
        # Lane 0 aliases the flat structures so pre-enable events keep
        # their ordering without a migration pass.
        self._lane_times = [self._times] + [[] for _ in range(n_shards - 1)]
        self._lane_buckets = [self._buckets] + [{} for _ in range(n_shards - 1)]

    def flag(self, value: int = 0, name: str = "flag") -> Flag:
        """Convenience constructor for a :class:`Flag` bound to this sim."""
        return Flag(self, value, name)

    def attach_watchdog(self, watchdog: Watchdog) -> Watchdog:
        """Install ``watchdog`` as this simulator's hang monitor."""
        self.watchdog = watchdog
        return watchdog

    # -- scheduling internals ------------------------------------------------

    def _push(self, time: float, proc: Any, value: Any) -> None:
        self._seq += 1
        entry = (time, self._seq, proc, value)
        # Calendar keys are the *pilot* timestamp — a plain float even
        # in batched runs, so heap pushes/pops and bucket lookups
        # compare in C instead of through BatchTime dunders.  Pilot
        # order is every member's order (repro.sim.stacked), and the
        # dispatch loop re-reads each entry's exact time vector.
        t = (time if time.__class__ is float
             else time.v[0] if isinstance(time, Stacked) else time)
        now = self.now
        if t == (now if now.__class__ is float
                 else now.v[0] if isinstance(now, Stacked) else now):
            # Zero-delay wakeup: seq is monotonic, so FIFO append keeps
            # the ready queue sorted by (time, seq) for free.
            self._ready.append(entry)
            return
        if self._n_shards:
            # Route to the owner's lane (callbacks: the scheduling
            # process's lane).  Any lane would be *correct* — dispatch
            # merges by (time, seq) — this just keeps lanes balanced.
            owner = proc if proc is not None else self.current
            lane = owner.shard if owner is not None else 0
            buckets = self._lane_buckets[lane]
            times = self._lane_times[lane]
        else:
            buckets = self._buckets
            times = self._times
        bucket = buckets.get(t)
        if bucket is None:
            buckets[t] = deque((entry,))
            heappush(times, t)
        else:
            bucket.append(entry)

    def call_at(self, time: float, fn: Callable[[], None], *,
                weak: bool = False) -> None:
        """Schedule a bare callback to run at ``time``.

        Callback events ride the calendar like process resumes but skip
        the generator trampoline and the per-event counters — callers
        that collapse many logical events into one callback (e.g.
        coalesced NVSHMEM deliveries) account for those events
        themselves.  Callbacks at the same timestamp run in scheduling
        order relative to every other event, per the ``(time, seq)``
        contract.

        ``weak=True`` schedules a callback that must not keep the run
        alive: if it surfaces when nothing but weak events remains
        pending, the run ends at the current time without executing it
        or advancing the clock.  Crash timers use this so a fault
        armed past the run's natural end leaves the timeline untouched.
        """
        if time < self.now - 1e-12:
            raise SimulationError("callback scheduled in the past")
        self._push(time, None, _WeakCallback(fn) if weak else fn)

    def _any_strong(self) -> bool:
        """True when any pending event other than weak callbacks and
        dead tokens remains — i.e. the simulation still has work that
        justifies advancing time.  Linear, but only consulted when a
        weak callback surfaces at the head of the calendar."""
        if self._n_shards:
            queues: list = [self._ready]
            for buckets in self._lane_buckets:
                queues.extend(buckets.values())
        else:
            queues = (self._ready, *self._buckets.values())
        for queue in queues:
            for entry in queue:
                proc = entry[2]
                value = entry[3]
                if proc is not None:
                    if not proc.alive:
                        continue
                    if value.__class__ is _TimeoutEntry and value.cancelled:
                        continue
                    return True
                if value.__class__ is not _WeakCallback:
                    return True
        return False

    # -- fail-stop kill ------------------------------------------------------

    def kill(self, proc: Process, error: BaseException | None = None) -> bool:
        """Terminate ``proc`` fail-stop at the current simulated time.

        The process stops existing mid-flight: its pending event (a
        Delay resume, a flag wakeup, a timeout token) is discarded when
        it surfaces, waiter registrations are invalidated, and its
        generator is closed.  Joiners are *not* resumed — with fail-stop
        semantics nobody tells them their target died, which is exactly
        the hang the watchdog/deadlock diagnostics then attribute.  A
        *later* join raises :class:`ProcessFailed` from the recorded
        :class:`ProcessKilled` error.  Returns ``False`` if the process
        had already finished.
        """
        if not proc.alive:
            return False
        proc.alive = False
        proc.result = None
        proc.error = error if error is not None else ProcessKilled(
            f"process {proc.name} killed at t={self.now}")
        proc._finish_time = self.now
        if proc._blocked_since is not None:
            self._blocked -= 1
        flag = proc._waiting_flag
        if flag is not None and flag._scan:
            flag._scan = [w for w in flag._scan if w[1] is not proc]
        # indexed ge/eq waiter entries (and any armed watchdog deadline)
        # die lazily: the epoch bump / alive check invalidates them
        proc._wait_epoch += 1
        token = proc._timeout
        if token is not None:
            token.cancelled = True
            proc._timeout = None
        proc._waiting_flag = None
        proc._waiting_join = None
        proc._blocked_since = None
        proc._waiting_on = "<killed>"
        try:
            proc.gen.close()
        except Exception:
            pass  # cleanup errors inside dying code are part of the crash
        if self.monitor is not None:
            self.monitor.finished(proc)
        # No compaction here: kill() runs inside kill_matching's
        # iteration over _processes.  _finish picks the tally up later.
        self._n_dead += 1
        return True

    def kill_matching(self, predicate: Callable[[Process], bool]) -> list[Process]:
        """Kill every live process whose name/state matches, in spawn
        order (deterministic).  Returns the killed processes."""
        killed = []
        for proc in self._processes:
            if proc.alive and predicate(proc):
                self.kill(proc)
                killed.append(proc)
        return killed

    def _resume(self, proc: Process, value: Any, release: Any = None) -> None:
        """Schedule ``proc`` to continue at the current time.

        Batched runs: the waiter's wake time is the element-wise max of
        the releaser's (vector) clock and the waiter's block time — a
        member that blocked later than the releaser's member resumed
        there, not at the releaser's earlier instant.  Flag wakeups pass
        the flag's accumulated ``release`` time, which per member may
        exceed the waking mutation's own clock (e.g. a barrier whose
        slowest arriver differs between members).
        """
        self._blocked -= 1
        since = proc._blocked_since
        proc._waiting_flag = None
        proc._waiting_join = None
        proc._blocked_since = None
        token = proc._timeout
        if token is not None:
            token.cancelled = True
            proc._timeout = None
        now = self.now if release is None else release
        if now.__class__ is float and since.__class__ is float:
            self._push(now, proc, value)
        else:
            self._push(_emax(now, since), proc, value)

    # -- main loop -----------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run until no events remain (or ``until`` is reached).

        Returns the final simulated time.  Raises :class:`DeadlockError`
        if live processes remain blocked with no pending events, and
        re-raises the first exception of any failed process.
        """
        if self._n_shards:
            return self._run_sharded(until)
        times, buckets, ready = self._times, self._buckets, self._ready
        # Counters accumulate in locals (written back in the finally —
        # also on the until/exception exits) so the loop pays no
        # attribute stores for them.  The hot _step/_dispatch path is
        # inlined below for the same reason: one event is one loop
        # iteration, no trampoline calls.
        n_heap = n_ready = n_call = n_events = 0
        # Pilot mirror of self.now: all loop-internal time comparisons
        # run on plain floats even when the clock is a BatchTime vector.
        now_p = self.now
        if now_p.__class__ is not float and isinstance(now_p, Stacked):
            now_p = now_p.v[0]
        try:
            while times or ready:
                # Merge the ready queue and the calendar by (time, seq).
                # Ready events sit exactly at self.now; a same-timestamp
                # bucket only holds events pushed *before* now advanced
                # here (later pushes at now go to the ready queue), so
                # its seqs all precede the ready queue's and one
                # timestamp comparison decides the merge.
                if times and not (ready and times[0] > now_p):
                    time = times[0]
                    bucket = buckets[time]
                    event = bucket.popleft()
                    if not bucket:
                        # Retire the bucket and its timestamp together:
                        # the timestamp heap never holds dead entries.
                        del buckets[time]
                        heappop(times)
                    # The entry's own timestamp, not the bucket key:
                    # batched runs bucket pilot-equal time *vectors*
                    # together, and each entry carries its exact vector.
                    time = event[0]
                    from_calendar = True
                else:
                    event = ready.popleft()
                    time = event[0]
                    from_calendar = False
                proc = event[2]
                value = event[3]
                t_p = (time if time.__class__ is float
                       else time.v[0] if isinstance(time, Stacked) else time)
                if proc is not None:
                    if from_calendar:
                        n_heap += 1
                    else:
                        n_ready += 1
                    if not proc.alive:
                        # Dead process (killed fail-stop, or a joined
                        # process that already finished): its leftover
                        # event must not advance time.
                        continue
                    if value.__class__ is _TimeoutEntry and value.cancelled:
                        # Lazily-cancelled timeout token: discard before
                        # the time advance so a resolved wait never
                        # inflates now.
                        continue
                elif value.__class__ is _WeakCallback:
                    # Weak callback: only runs while strong events keep
                    # the simulation alive.  The scan is O(pending) but
                    # rare — it only triggers when a weak event actually
                    # surfaces at the head of the calendar.
                    if not self._any_strong():
                        break
                    value = value.fn
                if until is not None and t_p > until:
                    bucket = buckets.get(t_p)
                    if bucket is None:
                        buckets[t_p] = deque((event,))
                        heappush(times, t_p)
                    else:
                        bucket.appendleft(event)
                    self.now = until
                    return self.now
                if t_p > now_p:
                    # Idle-time leap: jump straight to the next populated
                    # instant (after letting the watchdog veto the jump).
                    wd = self.watchdog
                    if wd is not None and wd._next_deadline < t_p:
                        wd._check(self, time)
                    self.now = time
                    now_p = t_p
                elif t_p < now_p - 1e-12:
                    raise SimulationError("event scheduled in the past")
                else:
                    # Pilot-equal, not necessarily identical: during a
                    # batched step `now` must be the dispatched event's
                    # exact time vector.  Scalar runs re-store an equal
                    # float — a no-op in value.
                    self.now = time
                    now_p = t_p
                if proc is None:
                    n_call += 1
                    value()
                    continue
                if value.__class__ is _TimeoutEntry:
                    self._fire_timeout(proc, value)
                    continue
                # -- inlined _step + _dispatch fast path ----------------
                if not proc.alive:  # joined process already finished
                    continue
                n_events += 1
                self.current = proc
                try:
                    command = proc.gen.send(value)
                except StopIteration as stop:
                    self._finish(proc, stop.value, None)
                    continue
                except Exception as exc:
                    self._finish(proc, None, exc)
                    raise
                cls = command.__class__
                if cls is Delay:
                    proc._waiting_on = command
                    dt = command.dt
                    if dt.__class__ is float:
                        self._push(self.now + dt, proc, None)
                    elif isinstance(dt, Stacked):  # stacked duration -> time vector
                        self._push(dt.add_to_time(self.now), proc, None)
                    else:  # plain int duration
                        self._push(self.now + dt, proc, None)
                elif cls is WaitFlag:
                    self._wait_flag(proc, command)
                else:
                    self._dispatch(proc, command)
        finally:
            self.n_heap_pops += n_heap
            self.n_ready_pops += n_ready
            self.n_callbacks += n_call
            self.n_events += n_events
        return self._drained()

    def _run_sharded(self, until: float | None = None) -> float:
        """Sharded twin of :meth:`run`: the calendar lives in per-lane
        heaps/buckets and dispatch pops the lane whose head is globally
        minimal by ``(time, seq)``.

        Within a lane the head bucket's first entry is that lane's
        minimal ``(time, seq)`` (buckets are seq-sorted FIFOs, the heap
        orders distinct times), so the min over lane heads *is* the
        global minimum — the exact event the flat heap would pop.  The
        sequence counter and the ready queue are shared across lanes,
        and the ready-vs-calendar merge rule is unchanged, so sharded
        runs dispatch byte-identically to flat runs.  Kept separate so
        the flat loop stays free of per-event lane scans.
        """
        lane_times = self._lane_times
        lane_buckets = self._lane_buckets
        ready = self._ready
        n_heap = n_ready = n_call = n_events = 0
        now_p = self.now
        if now_p.__class__ is not float and isinstance(now_p, Stacked):
            now_p = now_p.v[0]
        try:
            while True:
                # Head selection: minimal (head time, head seq) over
                # the non-empty lanes.
                best = -1
                best_t = 0.0
                best_s = 0
                for lane, times in enumerate(lane_times):
                    if not times:
                        continue
                    t = times[0]
                    if best < 0 or t < best_t:
                        best = lane
                        best_t = t
                        best_s = lane_buckets[lane][t][0][1]
                    elif t == best_t:
                        s = lane_buckets[lane][t][0][1]
                        if s < best_s:
                            best = lane
                            best_s = s
                if best < 0 and not ready:
                    break
                # Same merge rule as the flat loop: ready events sit at
                # self.now and postdate (in seq) any same-time bucket.
                if best >= 0 and not (ready and best_t > now_p):
                    times = lane_times[best]
                    buckets = lane_buckets[best]
                    time = best_t
                    bucket = buckets[time]
                    event = bucket.popleft()
                    if not bucket:
                        del buckets[time]
                        heappop(times)
                    time = event[0]
                    from_calendar = True
                else:
                    event = ready.popleft()
                    time = event[0]
                    from_calendar = False
                proc = event[2]
                value = event[3]
                t_p = (time if time.__class__ is float
                       else time.v[0] if isinstance(time, Stacked) else time)
                if proc is not None:
                    if from_calendar:
                        n_heap += 1
                    else:
                        n_ready += 1
                    if not proc.alive:
                        continue
                    if value.__class__ is _TimeoutEntry and value.cancelled:
                        continue
                elif value.__class__ is _WeakCallback:
                    if not self._any_strong():
                        break
                    value = value.fn
                if until is not None and t_p > until:
                    lane = best if from_calendar else 0
                    buckets = lane_buckets[lane]
                    bucket = buckets.get(t_p)
                    if bucket is None:
                        buckets[t_p] = deque((event,))
                        heappush(lane_times[lane], t_p)
                    else:
                        bucket.appendleft(event)
                    self.now = until
                    return self.now
                if t_p > now_p:
                    wd = self.watchdog
                    if wd is not None and wd._next_deadline < t_p:
                        wd._check(self, time)
                    self.now = time
                    now_p = t_p
                elif t_p < now_p - 1e-12:
                    raise SimulationError("event scheduled in the past")
                else:
                    self.now = time
                    now_p = t_p
                if proc is None:
                    n_call += 1
                    value()
                    continue
                if value.__class__ is _TimeoutEntry:
                    self._fire_timeout(proc, value)
                    continue
                if not proc.alive:  # joined process already finished
                    continue
                n_events += 1
                self.current = proc
                try:
                    command = proc.gen.send(value)
                except StopIteration as stop:
                    self._finish(proc, stop.value, None)
                    continue
                except Exception as exc:
                    self._finish(proc, None, exc)
                    raise
                cls = command.__class__
                if cls is Delay:
                    proc._waiting_on = command
                    dt = command.dt
                    if dt.__class__ is float:
                        self._push(self.now + dt, proc, None)
                    elif isinstance(dt, Stacked):
                        self._push(dt.add_to_time(self.now), proc, None)
                    else:  # plain int duration
                        self._push(self.now + dt, proc, None)
                elif cls is WaitFlag:
                    self._wait_flag(proc, command)
                else:
                    self._dispatch(proc, command)
        finally:
            self.n_heap_pops += n_heap
            self.n_ready_pops += n_ready
            self.n_callbacks += n_call
            self.n_events += n_events
        return self._drained()

    def _drained(self) -> float:
        """Post-drain epilogue shared by the flat and sharded loops:
        diagnose blocked survivors, else report the final time."""
        alive_blocked = [p for p in self._processes if p.alive]
        if alive_blocked:
            report = self._wait_report(alive_blocked)
            wd = self.watchdog
            if wd is not None and any(
                p._waiting_flag is not None and p._waiting_flag.watch_budget_us is not None
                for p in alive_blocked
            ):
                raise wd._drain_error(self, alive_blocked, report)
            raise DeadlockError(
                f"deadlock at t={self.now:.3f}us: "
                f"{len(alive_blocked)} blocked process(es):\n{report}"
            )
        return self.now

    def _wait_report(self, blocked: list[Process], indent: str = "  ") -> str:
        """One line per blocked process: what it waits on, since when,
        and its spawn site.  Join chains are chased to the root blocker
        — the process everyone is transitively waiting for — which is
        reported first on each chain line."""

        def describe(p: Process) -> str:
            since = "" if p._blocked_since is None else f" since t={p._blocked_since:.3f}us"
            return (f"{p.name} waiting on {_describe_wait(p._waiting_on)}{since} "
                    f"(spawned at {_format_site(p._spawn_site)})")

        roots = [p for p in blocked if p._waiting_join is None]
        joiners = [p for p in blocked if p._waiting_join is not None]
        lines = [f"{indent}{describe(p)}" for p in roots]
        for p in joiners:
            chain = [p]
            seen = {id(p)}
            while chain[-1]._waiting_join is not None and id(chain[-1]._waiting_join) not in seen:
                nxt = chain[-1]._waiting_join
                seen.add(id(nxt))
                chain.append(nxt)
            root = chain[-1]
            path = " -> ".join(q.name for q in chain)
            lines.append(
                f"{indent}root blocker {describe(root)} [join chain: {path}]"
            )
        return "\n".join(lines)

    def _fire_timeout(self, proc: Process, entry: _TimeoutEntry) -> None:
        if proc._timeout is not entry:  # stale token for a resolved wait
            return
        flag = entry.flag
        # Opaque-predicate entries are removed eagerly (the list is
        # always short); indexed ge/eq entries die lazily — the epoch
        # bump below invalidates them wherever they sit.
        if flag._scan:
            flag._scan = [w for w in flag._scan if w[1] is not proc]
        proc._wait_epoch += 1
        proc._timeout = None
        proc._waiting_flag = None
        proc._blocked_since = None
        self._blocked -= 1
        self._step(proc, TIMEOUT)

    def _step(self, proc: Process, value: Any) -> None:
        if not proc.alive:  # joined process already finished
            return
        self.n_events += 1
        self.current = proc
        try:
            command = proc.gen.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except Exception as exc:  # mark failed, propagate to joiners and run()
            self._finish(proc, None, exc)
            raise
        self._dispatch(proc, command)

    def _dispatch(self, proc: Process, command: Any) -> None:
        # Exact-type dispatch for the hot commands; subclasses of the
        # command types take the isinstance fallback below.
        cls = command.__class__
        if cls is Delay:
            proc._waiting_on = command
            dt = command.dt
            if dt.__class__ is float:
                self._push(self.now + dt, proc, None)
            elif isinstance(dt, Stacked):  # stacked duration -> time vector
                self._push(dt.add_to_time(self.now), proc, None)
            else:  # plain int duration
                self._push(self.now + dt, proc, None)
        elif cls is WaitFlag:
            self._wait_flag(proc, command)
        elif cls is WaitProcess or cls is Process:
            self._join(proc, command.process if cls is WaitProcess else command)
        elif isinstance(command, Delay):
            proc._waiting_on = command
            dt = command.dt
            if dt.__class__ is float:
                self._push(self.now + dt, proc, None)
            elif isinstance(dt, Stacked):  # stacked duration -> time vector
                self._push(dt.add_to_time(self.now), proc, None)
            else:  # plain int duration
                self._push(self.now + dt, proc, None)
        elif isinstance(command, WaitFlag):
            self._wait_flag(proc, command)
        elif isinstance(command, (WaitProcess, Process)):
            self._join(proc, command.process if isinstance(command, WaitProcess) else command)
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported command {command!r}"
            )

    def _wait_flag(self, proc: Process, command: WaitFlag) -> None:
        flag = command.flag
        value = flag._value
        ge = command.ge
        eq = command.eq
        if ge is not None:
            satisfied = value >= ge
        elif eq is not None:
            satisfied = value == eq
        else:
            satisfied = command.predicate(value)
        if satisfied:
            if self.monitor is not None:
                self.monitor.acquired(proc, flag)
            now = self.now
            last = flag._last_change
            if now.__class__ is float and (last is None or last.__class__ is float):
                self._push(now, proc, value)
            else:
                # Already-satisfied wait in a batched run: a member whose
                # release came after its arrival resumed at the release —
                # and counted a flag wakeup in the per-point run.
                B = self.batch_members
                if B is not None:
                    nows = _members(now, B)
                    lasts = _members(last, B)
                    blocked = [m for m in range(B) if lasts[m] > nows[m]]
                    if blocked:
                        vec = self.flag_wakeups_m.get(flag.name)
                        if vec is None:
                            vec = self.flag_wakeups_m[flag.name] = [0] * B
                        for m in blocked:
                            vec[m] += 1
                self._push(_emax(now, last), proc, value)
            return
        proc._waiting_on = (flag, value)
        proc._waiting_flag = flag
        proc._blocked_since = self.now
        if self.batch_members is not None:
            proc._blocked_seq = self._order_seq = self._order_seq + 1
        proc._wait_epoch += 1
        self._blocked += 1
        flag._wseq += 1
        if ge is not None:
            heappush(flag._ge, (ge, flag._wseq, proc, proc._wait_epoch))
        elif eq is not None:
            flag._eq.setdefault(eq, []).append((flag._wseq, proc, proc._wait_epoch))
        else:
            flag._scan.append((flag._wseq, proc, command.predicate))
        if command.timeout is not None:
            token = _TimeoutEntry(flag)
            proc._timeout = token
            self._push(self.now + command.timeout, proc, token)
        wd = self.watchdog
        if wd is not None:
            budget = flag.watch_budget_us
            if budget is not None:
                wd._arm(self.now + budget, proc, flag, self.now)

    def _join(self, proc: Process, target: Process) -> None:
        if not target.alive:
            if target.error is not None:
                raise ProcessFailed(f"joined process {target.name} failed") from target.error
            if self.monitor is not None:
                self.monitor.joined(proc, target)
            now = self.now
            ft = target._finish_time
            if now.__class__ is float and (ft is None or ft.__class__ is float):
                self._push(now, proc, target.result)
            else:
                # Late join in a batched run: a member that arrived
                # before its target member finished waited for it.
                self._push(_emax(now, ft), proc, target.result)
        else:
            proc._waiting_on = target
            proc._waiting_join = target
            proc._blocked_since = self.now
            self._blocked += 1
            target._joiners.append(proc)

    def _finish(self, proc: Process, result: Any, error: BaseException | None) -> None:
        proc.alive = False
        proc.result = result
        proc.error = error
        proc._finish_time = self.now
        monitor = self.monitor
        if monitor is not None:
            monitor.finished(proc)
        for joiner in proc._joiners:
            if monitor is not None:
                monitor.joined(joiner, proc)
            self._resume(joiner, result)
        proc._joiners.clear()
        # Bound the process table: long runs at 256+ PEs retire millions
        # of short-lived delivery/transfer processes, and keeping every
        # corpse makes memory grow with *events* instead of PEs.  Dead
        # entries are dropped (preserving spawn order) once they
        # dominate the table.  Skipped for batched runs — the batch
        # demux folds finish times over the full table afterwards — and
        # never triggered from kill(), which iterates the table.
        self._n_dead += 1
        if (self._n_dead > 4096 and self._n_dead * 2 > len(self._processes)
                and self.batch_members is None):
            self._processes = [p for p in self._processes if p.alive]
            self._n_dead = 0
