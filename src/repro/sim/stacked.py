"""Stacked scalars: the value plane of the batched execution backend.

A *batched* run executes B structurally identical sweep points (same
variant, topology, iteration count — differing only in domain size)
through ONE discrete-event simulation.  Every quantity that differs
across the stacked points is carried as a small fixed-width vector:

``BatchVal``
    A configuration-derived value (element counts, byte sizes, block
    counts, fractions).  Arithmetic is element-wise.  Comparisons are
    **uniform-or-raise**: the boolean result must agree across all
    members, otherwise :class:`BatchDivergence` aborts the batch and
    the scheduler falls back to per-point execution.  This is the
    safety net that makes batching *sound*: control flow can never
    silently follow one member's branch on another member's behalf.

``BatchTime``
    A simulated timestamp (a vector clock over the members).  Every
    event's time is, by induction, an (emax, +)-combination of its
    dependencies' times — max-plus algebra over the stack.  Ordering
    (heap ranking, time-advance checks, ready-queue classification)
    uses **member 0 (the pilot)**: structural invariance of the batch
    guarantees every member observes the same dependency structure, so
    the pilot's order is every member's order.  ``emax`` is the join
    used at synchronization points (flag waits, process joins).

Classes are generated per batch width ``B`` with fully unrolled
tuple-literal bodies (``(a[0]+b[0], a[1]+b[1], ...)``), which measures
~40% faster than NumPy at the B≤4 widths sweep batches use and keeps
per-event overhead low enough for the batch to beat per-point runs.
"""

from __future__ import annotations

import math

__all__ = [
    "BatchDivergence",
    "Stacked",
    "WAIT_SPAN",
    "any_member_gt",
    "as_size",
    "as_time",
    "batch_classes",
    "emax",
    "members",
    "pilot",
    "stacked_time",
    "stacked_val",
]


class BatchDivergence(Exception):
    """A comparison's boolean result differed across batch members.

    Raised by :class:`BatchVal` comparisons; the batch scheduler
    catches it and re-runs the group per-point (exact by construction).
    """


class Stacked:
    """Common base of all generated ``BatchVal``/``BatchTime`` classes.

    ``v`` is the member tuple; ``isinstance(x, Stacked)`` is the one
    check runtime code uses to route stacked quantities.
    """

    __slots__ = ("v",)

    def __init__(self, v: tuple) -> None:
        self.v = v


#: sentinel ``meta`` for sync spans where only *some* batch members
#: actually waited; the demultiplexer drops zero-duration members and
#: rewrites the meta to None, so the sentinel never reaches output
WAIT_SPAN = object()


def _divergent(op: str, a: tuple, b) -> BatchDivergence:
    return BatchDivergence(f"comparison {op} diverges across batch members: "
                           f"{a!r} {op} {getattr(b, 'v', b)!r}")


_ARITH = [
    ("__add__", "+"), ("__sub__", "-"), ("__mul__", "*"),
    ("__truediv__", "/"), ("__floordiv__", "//"), ("__mod__", "%"),
]
_RARITH = [
    ("__radd__", "+"), ("__rsub__", "-"), ("__rmul__", "*"),
    ("__rtruediv__", "/"), ("__rfloordiv__", "//"), ("__rmod__", "%"),
]
_CMP = [
    ("__lt__", "<"), ("__le__", "<="), ("__gt__", ">"),
    ("__ge__", ">="), ("__eq__", "=="), ("__ne__", "!="),
]


def _gen_source(B: int) -> str:
    """Source of the BatchVal/BatchTime pair for batch width ``B``."""
    idx = range(B)
    lines: list[str] = []
    w = lines.append

    def tup(expr: str) -> str:
        # tuple literal ("(e0, e1, ...)") — guaranteed length >= 2
        return "(" + ", ".join(expr.format(i=i) for i in idx) + ")"

    # ---------------- BatchVal ----------------
    w("class BV(Stacked):")
    w("    __slots__ = ()")
    w("    def __repr__(self):")
    w("        return f'BatchVal{self.v!r}'")
    for name, op in _ARITH:
        w(f"    def {name}(self, o):")
        w("        a = self.v; c = o.__class__")
        w("        if c is float or c is int:")
        w(f"            return BV({tup('a[{i}] %s o' % op)})")
        w("        if c is BV:")
        w("            b = o.v")
        w(f"            return BV({tup('a[{i}] %s b[{i}]' % op)})")
        w("        if c is BT:")
        w("            b = o.v")
        w(f"            return BT({tup('a[{i}] %s b[{i}]' % op)})")
        w("        return NotImplemented")
    for name, op in _RARITH:
        w(f"    def {name}(self, o):")
        w("        a = self.v")
        w("        if o.__class__ is float or o.__class__ is int:")
        w(f"            return BV({tup('o %s a[{i}]' % op)})")
        w("        return NotImplemented")
    w("    def __neg__(self):")
    w("        a = self.v")
    w(f"        return BV({tup('-a[{i}]')})")
    w("    def __abs__(self):")
    w("        a = self.v")
    w(f"        return BV({tup('abs(a[{i}])')})")
    w("    def __ceil__(self):")
    w("        a = self.v")
    w(f"        return BV({tup('_ceil(a[{i}])')})")
    w("    def __floor__(self):")
    w("        a = self.v")
    w(f"        return BV({tup('_floor(a[{i}])')})")
    w("    def add_to_time(self, now):")
    w("        a = self.v")
    w("        if now.__class__ is float or now.__class__ is int:")
    w(f"            return BT({tup('now + a[{i}]')})")
    w("        b = now.v")
    w(f"        return BT({tup('b[{i}] + a[{i}]')})")
    w("    def __divmod__(self, o):")
    w("        a = self.v")
    w("        if o.__class__ is float or o.__class__ is int:")
    w(f"            q = BV({tup('a[{i}] // o')})")
    w(f"            r = BV({tup('a[{i}] % o')})")
    w("            return (q, r)")
    w("        if o.__class__ is BV:")
    w("            b = o.v")
    w(f"            q = BV({tup('a[{i}] // b[{i}]')})")
    w(f"            r = BV({tup('a[{i}] % b[{i}]')})")
    w("            return (q, r)")
    w("        return NotImplemented")
    # uniform-or-raise comparisons (True/False are singletons: `is`)
    for name, op in _CMP:
        w(f"    def {name}(self, o):")
        w("        a = self.v")
        w("        if o.__class__ is BV or o.__class__ is BT:")
        w("            b = o.v")
        for i in idx:
            w(f"            r{i} = a[{i}] {op} b[{i}]")
        w("        else:")
        for i in idx:
            w(f"            r{i} = a[{i}] {op} o")
        cond = " and ".join(f"r0 is r{i}" for i in range(1, B)) or "True"
        w(f"        if {cond}:")
        w("            return r0")
        w(f"        raise _divergent({op!r}, a, o)")
    w("    def __bool__(self):")
    w("        a = self.v")
    for i in idx:
        w(f"        r{i} = bool(a[{i}])")
    cond = " and ".join(f"r0 is r{i}" for i in range(1, B)) or "True"
    w(f"        if {cond}:")
    w("            return r0")
    w("        raise _divergent('bool', a, None)")
    w("    def __hash__(self):")
    w("        a = self.v")
    cond = " and ".join(f"a[0] == a[{i}]" for i in range(1, B)) or "True"
    w(f"        if {cond}:")
    w("            return hash(a[0])")
    w("        raise _divergent('hash', a, None)")

    # ---------------- BatchTime ----------------
    w("class BT(Stacked):")
    w("    __slots__ = ()")
    w("    def __repr__(self):")
    w("        return f'BatchTime{self.v!r}'")
    for name, op in _ARITH[:4]:  # + - * / are all a time ever needs
        w(f"    def {name}(self, o):")
        w("        a = self.v; c = o.__class__")
        w("        if c is float or c is int:")
        w(f"            return BT({tup('a[{i}] %s o' % op)})")
        w("        if c is BT or c is BV:")
        w("            b = o.v")
        w(f"            return BT({tup('a[{i}] %s b[{i}]' % op)})")
        w("        return NotImplemented")
    for name, op in _RARITH[:4]:
        w(f"    def {name}(self, o):")
        w("        a = self.v")
        w("        if o.__class__ is float or o.__class__ is int:")
        w(f"            return BT({tup('o %s a[{i}]' % op)})")
        w("        return NotImplemented")
    # pilot-ordered comparisons: structural invariance makes member 0's
    # event order every member's event order
    for name, op in _CMP:
        w(f"    def {name}(self, o):")
        w("        p = self.v[0]")
        w("        if o.__class__ is BT or o.__class__ is BV:")
        w(f"            return p {op} o.v[0]")
        w(f"        return p {op} o")
    w("    def __hash__(self):")
    w("        return hash(self.v[0])")
    w("    def add_to_time(self, now):")
    w("        a = self.v")
    w("        if now.__class__ is float or now.__class__ is int:")
    w(f"            return BT({tup('now + a[{i}]')})")
    w("        b = now.v")
    w(f"        return BT({tup('b[{i}] + a[{i}]')})")
    w("    def emax(self, o):")
    w("        a = self.v")
    w("        if o.__class__ is float or o.__class__ is int:")
    w(f"            return BT({tup('a[{i}] if a[{i}] >= o else o')})")
    w("        b = o.v")
    w(f"        return BT({tup('a[{i}] if a[{i}] >= b[{i}] else b[{i}]')})")
    return "\n".join(lines)


_CLASS_CACHE: dict[int, tuple[type, type]] = {}


def batch_classes(B: int) -> tuple[type, type]:
    """The ``(BatchVal, BatchTime)`` class pair for batch width ``B``."""
    pair = _CLASS_CACHE.get(B)
    if pair is None:
        if B < 2:
            raise ValueError("batch width must be >= 2")
        ns: dict = {"Stacked": Stacked, "_divergent": _divergent,
                    "_ceil": math.ceil, "_floor": math.floor}
        exec(compile(_gen_source(B), f"<stacked B={B}>", "exec"), ns)
        bv, bt = ns["BV"], ns["BT"]
        bv.__name__ = bv.__qualname__ = f"BatchVal{B}"
        bt.__name__ = bt.__qualname__ = f"BatchTime{B}"
        bv._time = bt
        bt._time = bt
        pair = _CLASS_CACHE[B] = (bv, bt)
    return pair


def stacked_val(values) -> Stacked:
    """Stack per-member config values into a :class:`BatchVal`."""
    values = tuple(values)
    return batch_classes(len(values))[0](values)


def stacked_time(values) -> Stacked:
    """Stack per-member timestamps into a :class:`BatchTime`."""
    values = tuple(values)
    return batch_classes(len(values))[1](values)


# ---------------- runtime helpers (engine / demux) ----------------


def emax(x, y):
    """Element-wise max of two times (floats and/or BatchTimes)."""
    if y is None:
        return x
    if x.__class__ is float or x.__class__ is int:
        if y.__class__ is float or y.__class__ is int:
            return x if x >= y else y
        return y.emax(x)
    return x.emax(y)


def as_time(now, dt):
    """``now + dt`` promoted to a :class:`BatchTime` when ``dt`` stacks.

    The engine's Delay handler calls this for non-float durations so a
    stacked duration added to a (still scalar) clock yields a *time*
    vector, not a value vector — times and values compare differently.
    """
    if not isinstance(dt, Stacked):
        return now + dt
    return dt.add_to_time(now)


def as_size(nbytes):
    """``int(nbytes)`` that lets stacked byte counts pass through."""
    if isinstance(nbytes, Stacked):
        return nbytes
    return int(nbytes)


def any_member_gt(end, start) -> bool:
    """True when any member's ``end`` exceeds its ``start``."""
    ev = end.v if isinstance(end, Stacked) else None
    sv = start.v if isinstance(start, Stacked) else None
    if ev is None:
        if sv is None:
            return end > start
        return any(end > s for s in sv)
    if sv is None:
        return any(e > start for e in ev)
    return any(e > s for e, s in zip(ev, sv))


def members(x, B: int) -> tuple:
    """Per-member view of ``x``: broadcast scalars, unpack stacks."""
    if isinstance(x, Stacked):
        return x.v
    return (x,) * B


def pilot(x):
    """Member-0 view of ``x`` (scalar passthrough)."""
    if isinstance(x, Stacked):
        return x.v[0]
    return x
