"""Blocking resources built on top of :class:`~repro.sim.engine.Flag`.

These are thin, deterministic analogues of the synchronization objects
the modeled systems use internally: bounded FIFO channels (CUDA stream
work queues), counting semaphores (in-flight transfer limits), and
mutexes (host runtime lock).

All helpers are written as generator functions: callers ``yield from``
them inside their own process bodies.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import Any

from repro.sim.engine import Flag, Simulator, WaitFlag

__all__ = ["Channel", "Mutex", "Semaphore"]


class Semaphore:
    """Counting semaphore; ``acquire``/``release`` are generator helpers."""

    def __init__(self, sim: Simulator, value: int = 1, name: str = "sem") -> None:
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self._count = Flag(sim, value, name=name)

    @property
    def value(self) -> int:
        return self._count.value

    def acquire(self) -> Generator[Any, Any, None]:
        """Wait until the count is positive, then decrement it."""
        while True:
            yield WaitFlag(self._count, ge=1)
            # A competing process resumed at the same instant may have
            # taken the unit; re-check before claiming it.
            if self._count.value > 0:
                self._count.add(-1)
                return

    def release(self) -> None:
        self._count.add(1)


class Mutex(Semaphore):
    """Binary semaphore."""

    def __init__(self, sim: Simulator, name: str = "mutex") -> None:
        super().__init__(sim, value=1, name=name)


class Channel:
    """Unbounded deterministic FIFO channel between processes.

    ``put`` is non-blocking; ``get`` blocks until an item is available.
    Used to model host→stream work submission queues.
    """

    def __init__(self, sim: Simulator, name: str = "chan") -> None:
        self._items: deque[Any] = deque()
        self._size = Flag(sim, 0, name=f"{name}.size")

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self._items.append(item)
        self._size.add(1)

    def get(self) -> Generator[Any, Any, Any]:
        """Block until an item is available and return it (FIFO order)."""
        while True:
            yield WaitFlag(self._size, ge=1)
            if self._items:
                self._size.add(-1)
                return self._items.popleft()
