"""Timeline tracing — the simulator's answer to NVIDIA Nsight.

Processes record :class:`Span` intervals on named *lanes* (one lane per
GPU stream / thread-block group / host thread).  Spans carry a
*category* (``"compute"``, ``"comm"``, ``"sync"``, ``"api"``) so the
analysis helpers can reproduce the paper's Figure 2.2b: what fraction
of execution is communication, and how much of that communication is
overlapped with computation.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Any

__all__ = [
    "Span",
    "Tracer",
    "interval_union_length",
    "merge_intervals",
    "overlap_length",
    "pe_of_lane",
    "wire_route",
]

#: lane naming convention (see :mod:`repro.runtime.context`):
#: ``gpu{d}.{stream}`` for device streams, ``host{r}`` for host control
#: threads, ``wire.pe{src}->pe{dst}`` for in-flight transfers.
_GPU_LANE = re.compile(r"^gpu(\d+)\.")
_HOST_LANE = re.compile(r"^host(\d+)$")
_WIRE_LANE = re.compile(r"^wire\.pe(\d+)->pe(\d+)$")


def pe_of_lane(lane: str) -> int | None:
    """The PE a lane belongs to, or ``None`` for non-PE lanes.

    Wire lanes are attributed to the *source* PE — the transfer is work
    that PE initiated, which is how the paper's per-PE accounting
    charges communication.
    """
    m = _GPU_LANE.match(lane) or _HOST_LANE.match(lane)
    if m:
        return int(m.group(1))
    m = _WIRE_LANE.match(lane)
    if m:
        return int(m.group(1))
    return None


def wire_route(lane: str) -> tuple[int, int] | None:
    """``(src, dst)`` for a ``wire.pe{src}->pe{dst}`` lane, else None."""
    m = _WIRE_LANE.match(lane)
    return (int(m.group(1)), int(m.group(2))) if m else None


class Span:
    """A half-open interval ``[start, end)`` of activity on a lane.

    ``meta`` carries optional enrichment used by the observability
    layer — notably ``{"flow_s": id}`` on a span that produces a signal
    and ``{"flow_f": id}`` on the wait it satisfies (Chrome-trace flow
    events, critical-path dependencies).  It never affects timing.

    A ``__slots__`` value class rather than a dataclass: traced runs
    allocate one per simulated activity, putting construction on the
    engine's hot path.
    """

    __slots__ = ("lane", "name", "category", "start", "end", "meta")

    def __init__(self, lane: str, name: str, category: str,
                 start: float, end: float, meta: Any = None) -> None:
        self.lane = lane
        self.name = name
        self.category = category
        self.start = start
        self.end = end
        self.meta = meta

    @property
    def duration(self) -> float:
        return self.end - self.start

    def _key(self) -> tuple:
        return (self.lane, self.name, self.category, self.start, self.end,
                self.meta)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return self._key() == other._key()

    def __repr__(self) -> str:
        return (f"Span(lane={self.lane!r}, name={self.name!r}, "
                f"category={self.category!r}, start={self.start!r}, "
                f"end={self.end!r}, meta={self.meta!r})")


class Tracer:
    """Collects spans; ``None``-safe pattern: components accept an
    optional tracer and skip recording when it is absent."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._open: dict[tuple[str, str], tuple[str, float]] = {}
        #: counter samples as ``(name, time, value)`` — exported as
        #: Chrome-trace counter ("C") events
        self.counter_samples: list[tuple[str, float, float]] = []
        #: point-in-time markers as ``(time, name, category, args)`` —
        #: exported as Chrome-trace instant ("i") events; the fault
        #: layer uses these to pin injected faults on the timeline
        self.instant_events: list[tuple[float, str, str, Any]] = []

    def record(self, lane: str, name: str, category: str, start: float, end: float,
               meta: Any = None) -> None:
        """Record a completed span (most callers know both endpoints)."""
        if end < start:
            raise ValueError(f"span ends before it starts: {name} [{start}, {end})")
        self.spans.append(Span(lane, name, category, start, end, meta))

    def begin(self, lane: str, name: str, category: str, now: float) -> None:
        """Open a span; pair with :meth:`end` using the same (lane, name)."""
        self._open[(lane, name)] = (category, now)

    def end(self, lane: str, name: str, now: float) -> None:
        try:
            category, start = self._open.pop((lane, name))
        except KeyError:
            raise ValueError(
                f"Tracer.end() without a matching begin(): no open span "
                f"named {name!r} on lane {lane!r}"
            ) from None
        self.record(lane, name, category, start, now)

    def close_all(self, now: float, *, lanes: Any = None,
                  tag: str | None = None) -> list[tuple[str, str]]:
        """Close dangling open spans at ``now`` (crash hygiene: a
        process that died mid-span still shows up in the timeline).

        ``lanes`` narrows the sweep to matching lanes — a ``lane ->
        bool`` predicate, so a PE crash can close exactly the dead PE's
        spans while survivors keep theirs open.  ``tag`` marks every
        closed span with ``{"closed_by": tag}`` meta, making
        crash-truncated spans distinguishable from normally-ended ones
        in the exported trace.  Returns the closed ``(lane, name)``
        pairs, sorted.
        """
        closed = sorted(
            key for key in self._open if lanes is None or lanes(key[0]))
        meta = {"closed_by": tag} if tag is not None else None
        for key in closed:
            category, start = self._open.pop(key)
            self.record(key[0], key[1], category, start, max(start, now), meta)
        return closed

    def add_counter(self, name: str, now: float, value: float) -> None:
        """Record one sample of a time-varying counter (e.g. in-flight
        deliveries per PE)."""
        self.counter_samples.append((name, now, value))

    def add_instant(self, name: str, now: float, category: str = "instant",
                    args: Any = None) -> None:
        """Record a zero-duration marker (e.g. an injected fault)."""
        self.instant_events.append((now, name, category, args))

    # -- queries -------------------------------------------------------------

    def lanes(self) -> list[str]:
        return sorted({s.lane for s in self.spans})

    def spans_in(self, category: str | None = None, lane_prefix: str | None = None) -> list[Span]:
        """Filter spans by category and/or lane-name prefix."""
        out = self.spans
        if category is not None:
            out = [s for s in out if s.category == category]
        if lane_prefix is not None:
            out = [s for s in out if s.lane.startswith(lane_prefix)]
        return out

    def total(self, category: str, lane_prefix: str | None = None) -> float:
        """Union length of all spans of ``category`` (overlaps counted once)."""
        spans = self.spans_in(category, lane_prefix)
        return interval_union_length([(s.start, s.end) for s in spans])

    def busy_per_lane(self) -> dict[str, float]:
        """Union length of activity per lane."""
        per_lane: dict[str, list[tuple[float, float]]] = defaultdict(list)
        for s in self.spans:
            per_lane[s.lane].append((s.start, s.end))
        return {lane: interval_union_length(iv) for lane, iv in per_lane.items()}

    def overlap_ratio(self, comm_category: str = "comm", comp_category: str = "compute",
                      lane_prefix: str | None = None) -> float:
        """Fraction of communication time overlapped with computation.

        This is the metric of Figure 2.2b: ``overlap_len(comm ∩ comp) /
        union_len(comm)``.  Returns 0.0 when there is no communication.
        """
        comm = [(s.start, s.end) for s in self.spans_in(comm_category, lane_prefix)]
        comp = [(s.start, s.end) for s in self.spans_in(comp_category, lane_prefix)]
        comm_len = interval_union_length(comm)
        if comm_len == 0.0:
            return 0.0
        return overlap_length(comm, comp) / comm_len

    def to_chrome_trace(self) -> list[dict]:
        """Export spans in Chrome Tracing (``chrome://tracing`` /
        Perfetto) JSON event format — the closest thing to opening the
        simulated run in Nsight.

        Lanes map to thread ids within one process; categories become
        event categories.  Durations are in microseconds, matching the
        trace-event spec's native unit.
        """
        lane_ids = {lane: i for i, lane in enumerate(self.lanes())}
        events: list[dict] = [
            {
                "name": lane,
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": lane},
                "cat": "__metadata",
            }
            for lane, tid in lane_ids.items()
        ]
        flow_starts: list[dict] = []
        flow_finishes: list[dict] = []
        seen_flow_ids: set = set()
        # Flow ids are renumbered by first appearance in the sorted span
        # order below: the raw ids are allocated at op *issue* time,
        # whose order at equal timestamps is an engine dispatch detail —
        # canonical ids make the exported trace a pure function of the
        # spans themselves.
        canon_flow: dict = {}
        for span in sorted(self.spans, key=lambda s: (s.start, s.end, s.lane, s.name)):
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "pid": 0,
                "tid": lane_ids[span.lane],
                "ts": span.start,
                "dur": span.duration,
            })
            meta = span.meta if isinstance(span.meta, dict) else {}
            if "flow_s" in meta:
                raw = meta["flow_s"]
                seen_flow_ids.add(raw)
                if raw not in canon_flow:
                    canon_flow[raw] = len(canon_flow) + 1
                flow_starts.append({
                    "name": "signal", "cat": "flow", "ph": "s",
                    "id": canon_flow[raw],
                    "pid": 0, "tid": lane_ids[span.lane], "ts": span.end,
                })
            if "flow_f" in meta:
                flow_finishes.append({
                    "name": "signal", "cat": "flow", "ph": "f", "bp": "e",
                    "id": meta["flow_f"], "pid": 0, "tid": lane_ids[span.lane],
                    "ts": span.end,
                })
        events.extend(flow_starts)
        # only emit finishes whose start half exists (spec requires pairing)
        for e in flow_finishes:
            if e["id"] in seen_flow_ids:
                e["id"] = canon_flow[e["id"]]
                events.append(e)
        for name, ts, value in sorted(self.counter_samples):
            events.append({
                "name": name, "cat": "counter", "ph": "C", "pid": 0,
                "ts": ts, "args": {"value": value},
            })
        # stable sort on (ts, name) only: args dicts are not orderable,
        # and insertion order (deterministic) breaks remaining ties
        for ts, name, category, args in sorted(
            self.instant_events, key=lambda e: (e[0], e[1])
        ):
            event = {
                "name": name, "cat": category, "ph": "i", "s": "g",
                "pid": 0, "ts": ts,
            }
            if args is not None:
                event["args"] = args
            events.append(event)
        return events

    def render_ascii(self, width: int = 80, lane_prefix: str | None = None) -> str:
        """Render a coarse ASCII timeline: a time-axis ruler, one row
        per lane, and an inline legend.  Zero-duration spans appear as
        a single ``*`` glyph instead of being stretched to a cell."""
        spans = self.spans if lane_prefix is None else [
            s for s in self.spans if s.lane.startswith(lane_prefix)
        ]
        if not spans:
            return "(empty timeline)"
        t0 = min(s.start for s in spans)
        t1 = max(s.end for s in spans)
        extent = max(t1 - t0, 1e-12)
        glyph = {"compute": "#", "comm": "~", "sync": "|", "api": "."}
        rows = [self._ruler_row(t0, t1, width)]
        for lane in sorted({s.lane for s in spans}):
            row = [" "] * width
            for s in spans:
                if s.lane != lane:
                    continue
                lo = int((s.start - t0) / extent * (width - 1))
                if s.duration == 0.0:
                    row[lo] = "*"
                    continue
                hi = max(lo + 1, int((s.end - t0) / extent * (width - 1)) + 1)
                ch = glyph.get(s.category, "?")
                for i in range(lo, min(hi, width)):
                    row[i] = ch
            rows.append(f"{lane:>24} |{''.join(row)}|")
        rows.append(f"{'legend':>24}  # compute   ~ comm   | sync   "
                    f". api   * zero-duration")
        return "\n".join(rows)

    @staticmethod
    def _ruler_row(t0: float, t1: float, width: int) -> str:
        """Time-axis ruler: tick marks at the quartiles, labeled in µs."""
        ticks = [0, (width - 1) // 4, (width - 1) // 2, 3 * (width - 1) // 4, width - 1]
        ruler = ["-"] * width
        for tick in ticks:
            ruler[tick] = "+"
        labels = [" "] * width
        for tick in ticks:
            text = f"{t0 + (t1 - t0) * tick / max(1, width - 1):.1f}"
            at = min(tick, width - len(text))
            labels[at:at + len(text)] = text
        header = f"{'t (us)':>24} |{''.join(ruler)}|"
        return f"{'':>24}  {''.join(labels)}\n{header}"


def merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge possibly-overlapping intervals into a sorted disjoint list."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for lo, hi in ordered[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def interval_union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by the union of ``intervals``."""
    return sum(hi - lo for lo, hi in merge_intervals(intervals))


def overlap_length(a: list[tuple[float, float]], b: list[tuple[float, float]]) -> float:
    """Length of the intersection of two interval sets."""
    ma, mb = merge_intervals(a), merge_intervals(b)
    i = j = 0
    total = 0.0
    while i < len(ma) and j < len(mb):
        lo = max(ma[i][0], mb[j][0])
        hi = min(ma[i][1], mb[j][1])
        if hi > lo:
            total += hi - lo
        if ma[i][1] < mb[j][1]:
            i += 1
        else:
            j += 1
    return total
