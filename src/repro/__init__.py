"""repro — CPU-Free multi-GPU execution, reproduced in simulation.

A production-quality reproduction of *"Autonomous Execution for
Multi-GPU Systems: CPU-Free Blueprint and Compiler Support"*
(Baydamirli, 2023; SC'24): the CPU-Free persistent-kernel execution
model, its hand-written 2D/3D Jacobi stencil evaluation against four
CPU-controlled baselines, and the DaCe-style compiler pipeline that
lowers high-level Python stencils to CPU-Free code — all running on a
deterministic discrete-event model of an 8xA100 HGX node.

Package map
-----------
``repro.sim``      deterministic discrete-event engine + timeline tracing
``repro.hw``       GPU/node/interconnect/memory models, cost calibration
``repro.runtime``  CUDA-like host runtime (streams, launches, memcpy, MPI)
``repro.nvshmem``  GPU-initiated communication (symmetric heap, signals)
``repro.core``     the CPU-Free model: persistent kernels, TB
                   specialization, device-side synchronization
``repro.stencil``  2D/3D Jacobi in seven communication variants
``repro.sdfg``     data-centric IR, frontend, transforms, code generation
``repro.bench``    per-figure experiment harness

Quickstart
----------
>>> from repro.stencil import StencilConfig, run_variant
>>> config = StencilConfig(global_shape=(66, 66), num_gpus=4, iterations=10)
>>> result = run_variant("cpufree", config)
>>> result.per_iteration_us  # doctest: +SKIP
4.2
"""

__version__ = "1.0.0"
