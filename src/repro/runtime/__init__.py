"""CUDA-like host runtime on top of the discrete-event simulator.

The runtime reproduces the *control path* of the traditional
(CPU-controlled) multi-GPU programming model the paper argues against:

- :class:`~repro.runtime.context.MultiGPUContext` — the per-node
  runtime: simulator + topology + memory + cost model + tracer,
- :class:`~repro.runtime.stream.Stream` / ``Event`` — in-order work
  queues with host-visible completion,
- kernel launches (discrete and cooperative, with the co-residency
  check of paper §4.1.4),
- ``memcpy_async`` over NVLink/PCIe,
- :mod:`repro.runtime.mpi` — host-side message passing and barriers
  used by the baselines and the DaCe MPI library nodes.

Every host API call charges the calibrated overhead to the calling
host process, which is precisely the latency the CPU-Free model
eliminates.
"""

from repro.runtime.context import MultiGPUContext
from repro.runtime.kernel import CooperativeLaunchError, DeviceKernelContext
from repro.runtime.mpi import Communicator, HostBarrier, Request, VectorType
from repro.runtime.stream import Event, Stream

__all__ = [
    "Communicator",
    "CooperativeLaunchError",
    "DeviceKernelContext",
    "Event",
    "HostBarrier",
    "MultiGPUContext",
    "Request",
    "Stream",
    "VectorType",
]
