"""Host-side message passing — the baselines' communication layer.

Models the subset of MPI the paper's baselines and DaCe's library nodes
use: nonblocking point-to-point (``Isend``/``Irecv`` + ``Waitall``),
blocking send/recv, derived vector datatypes (``MPI_Type_vector``,
which DaCe emits for strided halo columns), and barriers.

Cost structure (the part that matters for the reproduction):

- every call charges host CPU time to the calling rank's process;
- each matched message pays ``mpi_message_latency_us`` plus bytes over
  the peer link (CUDA-aware MPI stays on NVLink within a node);
- vector datatypes pay a pack/unpack multiplier — the reason the
  paper's DaCe 2D baseline is "almost completely dominated by
  communication" (§6.2.3).
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.runtime.context import MultiGPUContext
from repro.sim import Delay, Flag, Simulator, WaitFlag
from repro.sim.stacked import as_size

__all__ = ["Communicator", "HostBarrier", "Request", "VectorType"]


@dataclass(frozen=True)
class VectorType:
    """``MPI_Type_vector(count, blocklength, stride)`` — strided data."""

    count: int
    blocklength: int
    stride: int

    def __post_init__(self) -> None:
        if self.count <= 0 or self.blocklength <= 0:
            raise ValueError("count and blocklength must be positive")
        if self.stride < self.blocklength:
            raise ValueError("stride must be >= blocklength")

    @property
    def elements(self) -> int:
        return self.count * self.blocklength


class Request:
    """Handle for a nonblocking operation; complete when flag >= 1."""

    __slots__ = ("flag", "kind")

    def __init__(self, flag: Flag, kind: str) -> None:
        self.flag = flag
        self.kind = kind

    @property
    def complete(self) -> bool:
        return self.flag.value >= 1


class HostBarrier:
    """Reusable host barrier (OpenMP/MPI style) over ``parties`` ranks."""

    def __init__(self, sim: Simulator, parties: int, cost_us: float, name: str = "barrier") -> None:
        if parties <= 0:
            raise ValueError("parties must be positive")
        self.sim = sim
        self.parties = parties
        self.cost_us = cost_us
        self._arrivals = Flag(sim, 0, name=f"{name}.arrivals")

    def wait(self) -> Generator[Any, Any, None]:
        """Arrive and block until the current round completes."""
        n = self._arrivals.add(1)
        target = math.ceil(n / self.parties) * self.parties
        yield WaitFlag(self._arrivals, ge=target)
        if self.cost_us > 0:
            yield Delay(self.cost_us)


@dataclass
class _PendingSend:
    data: np.ndarray
    nbytes: int
    datatype: VectorType | None
    request: Request


@dataclass
class _PendingRecv:
    out: np.ndarray | None
    nbytes: int
    datatype: VectorType | None
    request: Request


class Communicator:
    """Single-node communicator: one rank per GPU.

    Send/recv matching is by ``(source, dest, tag)`` in posting order,
    as MPI guarantees for a single communicator.
    """

    def __init__(self, ctx: MultiGPUContext, num_ranks: int | None = None) -> None:
        self.ctx = ctx
        self.num_ranks = num_ranks if num_ranks is not None else ctx.num_gpus
        if self.num_ranks > ctx.num_gpus:
            raise ValueError("more ranks than GPUs on the node")
        self._sends: dict[tuple[int, int, int], deque[_PendingSend]] = {}
        self._recvs: dict[tuple[int, int, int], deque[_PendingRecv]] = {}
        self._barrier = HostBarrier(
            ctx.sim, self.num_ranks, ctx.cost.mpi_barrier_us(self.num_ranks), name="mpi"
        )
        # allreduce state: per-rank round counters + per-round values
        self._allreduce_round = [0] * self.num_ranks
        self._allreduce_values: dict[int, dict[int, float]] = {}
        self._allreduce_arrivals = Flag(ctx.sim, 0, name="mpi.allreduce")

    # -- helpers --------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range (size={self.num_ranks})")

    def _charge(self, rank: int, us: float, name: str) -> Generator[Any, Any, None]:
        start = self.ctx.sim.now
        yield Delay(us)
        self.ctx.trace(f"host{rank}", name, "api", start, self.ctx.sim.now)

    def _message_time_us(self, src: int, dst: int, nbytes: int, datatype: VectorType | None) -> float:
        cost = self.ctx.cost
        base = cost.mpi_message_latency_us + self.ctx.topology.transfer_us(src, dst, nbytes)
        if datatype is not None:
            # MPI_Type_vector on device memory: both ends pack/unpack
            # element-wise plus a fixed overhead factor (§6.2.3)
            base *= 1.0 + cost.mpi_vector_pack_overhead
            base += datatype.elements * cost.mpi_vector_element_us
        return base

    def _try_match(self, key: tuple[int, int, int]) -> None:
        sends = self._sends.get(key)
        recvs = self._recvs.get(key)
        while sends and recvs:
            send = sends.popleft()
            recv = recvs.popleft()
            src, dst, _ = key
            duration = self._message_time_us(src, dst, send.nbytes, send.datatype)
            sim = self.ctx.sim
            ctx = self.ctx

            def transfer(send=send, recv=recv, duration=duration, src=src, dst=dst):
                start = sim.now
                yield Delay(duration)
                if recv.out is not None:
                    recv.out[...] = send.data.reshape(recv.out.shape)
                send.request.flag.set(1)
                recv.request.flag.set(1)
                ctx.trace(f"mpi.{src}->{dst}", "message", "comm", start, sim.now)

            sim.spawn(transfer(), name=f"mpi_xfer_{src}_{dst}")

    # -- point-to-point ----------------------------------------------------------

    def isend(
        self,
        rank: int,
        values: np.ndarray | float,
        dest: int,
        tag: int = 0,
        datatype: VectorType | None = None,
    ) -> Generator[Any, Any, Request]:
        """Nonblocking send of ``values`` (snapshot taken at call time)."""
        self._check_rank(rank)
        self._check_rank(dest)
        yield from self._charge(rank, self.ctx.cost.api_enqueue_us, "MPI_Isend")
        data = np.array(values, copy=True)
        request = Request(Flag(self.ctx.sim, 0, "isend"), "send")
        key = (rank, dest, tag)
        self._sends.setdefault(key, deque()).append(
            _PendingSend(data, data.nbytes, datatype, request)
        )
        self._try_match(key)
        return request

    def irecv(
        self,
        rank: int,
        out: np.ndarray | None,
        source: int,
        tag: int = 0,
        nbytes: int | None = None,
        datatype: VectorType | None = None,
    ) -> Generator[Any, Any, Request]:
        """Nonblocking receive into the NumPy view ``out``.

        ``out=None`` with explicit ``nbytes`` gives a timing-only
        receive for no-compute experiments.
        """
        self._check_rank(rank)
        self._check_rank(source)
        yield from self._charge(rank, self.ctx.cost.api_enqueue_us, "MPI_Irecv")
        size = out.nbytes if out is not None else as_size(nbytes or 0)
        request = Request(Flag(self.ctx.sim, 0, "irecv"), "recv")
        key = (source, rank, tag)
        self._recvs.setdefault(key, deque()).append(_PendingRecv(out, size, datatype, request))
        self._try_match(key)
        return request

    def wait(self, rank: int, request: Request) -> Generator[Any, Any, None]:
        """Block the host until ``request`` completes."""
        self._check_rank(rank)
        start = self.ctx.sim.now
        yield WaitFlag(request.flag, ge=1)
        self.ctx.trace_wait(f"host{rank}", f"MPI_Wait:{request.kind}", start, self.ctx.sim.now)

    def waitall(self, rank: int, requests: list[Request]) -> Generator[Any, Any, None]:
        """``MPI_Waitall`` over ``requests``."""
        yield from self._charge(rank, self.ctx.cost.api_enqueue_us, "MPI_Waitall")
        for request in requests:
            yield from self.wait(rank, request)

    def send(self, rank, values, dest, tag=0, datatype=None) -> Generator[Any, Any, None]:
        """Blocking send."""
        request = yield from self.isend(rank, values, dest, tag, datatype)
        yield from self.wait(rank, request)

    def recv(self, rank, out, source, tag=0, nbytes=None, datatype=None) -> Generator[Any, Any, None]:
        """Blocking receive."""
        request = yield from self.irecv(rank, out, source, tag, nbytes, datatype)
        yield from self.wait(rank, request)

    # -- collectives -----------------------------------------------------------------

    def barrier(self, rank: int) -> Generator[Any, Any, None]:
        """``MPI_Barrier`` across all ranks."""
        self._check_rank(rank)
        start = self.ctx.sim.now
        yield from self._barrier.wait()
        self.ctx.trace(f"host{rank}", "MPI_Barrier", "sync", start, self.ctx.sim.now)

    def allreduce(self, rank: int, value: float) -> Generator[Any, Any, float]:
        """``MPI_Allreduce(SUM)`` of one scalar across all ranks.

        Deterministic: contributions are summed in rank order, so the
        result is bit-identical on every rank and across runs.
        """
        self._check_rank(rank)
        start = self.ctx.sim.now
        round_no = self._allreduce_round[rank]
        self._allreduce_round[rank] += 1
        slot = self._allreduce_values.setdefault(round_no, {})
        slot[rank] = value
        self._allreduce_arrivals.add(1)
        target_total = (round_no + 1) * self.num_ranks
        yield WaitFlag(self._allreduce_arrivals, ge=target_total)
        yield Delay(self.ctx.cost.mpi_allreduce_us(self.num_ranks))
        total = 0.0
        for r in sorted(slot):
            total += slot[r]
        self.ctx.trace(f"host{rank}", "MPI_Allreduce", "sync", start, self.ctx.sim.now)
        return total
