"""Kernel launch mechanics and the device-side execution context.

Kernel *bodies* are generator functions taking a
:class:`DeviceKernelContext`.  The context exposes the operations a
modeled kernel performs — charge compute time (optionally doing the
real NumPy arithmetic alongside), direct peer loads/stores, tracing —
while the launch path enforces the distinction the paper leans on:

- **discrete launch**: any grid size (the runtime serializes waves of
  blocks transparently) but the kernel dies at the end of the body;
- **cooperative launch**: required for device-wide ``grid.sync()``,
  but the grid must be fully co-resident
  (:class:`CooperativeLaunchError` otherwise) — paper §4.1.4.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.sim import Delay
from repro.sim.stacked import Stacked

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.memory import DeviceBuffer
    from repro.runtime.context import MultiGPUContext

__all__ = ["CooperativeLaunchError", "DeviceKernelContext", "KernelSpec"]


class CooperativeLaunchError(RuntimeError):
    """Cooperative grid exceeds the device's co-resident block budget."""


class KernelSpec:
    """Launch configuration: grid/block sizes plus scheduling flags."""

    __slots__ = ("name", "blocks", "threads_per_block", "cooperative")

    def __init__(
        self,
        name: str,
        blocks: int,
        threads_per_block: int = 1024,
        cooperative: bool = False,
    ) -> None:
        if blocks <= 0:
            raise ValueError("blocks must be positive")
        if threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        self.name = name
        self.blocks = blocks
        self.threads_per_block = threads_per_block
        self.cooperative = cooperative

    @property
    def threads(self) -> int:
        return self.blocks * self.threads_per_block


class DeviceKernelContext:
    """What a running (modeled) kernel can do.

    One instance per kernel launch.  For persistent CPU-Free kernels the
    body spawns sub-processes per specialized thread-block group; those
    share this context.
    """

    def __init__(
        self,
        ctx: "MultiGPUContext",
        device: int,
        spec: KernelSpec,
        lane: str,
    ) -> None:
        self.ctx = ctx
        self.device = device
        self.spec = spec
        self.lane = lane

    # -- time charging --------------------------------------------------------

    def compute(
        self,
        elements: int,
        *,
        fraction_of_device: float = 1.0,
        tiling_factor: float = 1.0,
        perks_residency: float = 0.0,
        name: str = "compute",
        category: str = "compute",
    ) -> Generator[Any, Any, None]:
        """Charge stencil-compute time for ``elements`` grid points."""
        # compute_time_us is pure in its arguments and the (per-context)
        # cost model, and persistent kernels recharge identical costs
        # every iteration — memoize on the context.  Stacked quantities
        # key by their member tuple (their own hash is divergence-guarded).
        key = (elements.v if isinstance(elements, Stacked) else elements,
               fraction_of_device.v if isinstance(fraction_of_device, Stacked)
               else fraction_of_device,
               tiling_factor.v if isinstance(tiling_factor, Stacked)
               else tiling_factor,
               perks_residency.v if isinstance(perks_residency, Stacked)
               else perks_residency)
        memo = self.ctx._compute_memo
        cost = memo.get(key)
        if cost is None:
            cost = memo[key] = self.ctx.cost.compute_time_us(
                elements,
                self.ctx.node.gpu.hbm_bandwidth_gbps,
                fraction_of_device=fraction_of_device,
                tiling_factor=tiling_factor,
                perks_residency=perks_residency,
            )
        faults = self.ctx.faults
        if faults is not None:
            cost *= faults.compute_scale(self.device)
        yield from self.busy(cost, name=name, category=category)

    def busy(self, duration_us: float, name: str, category: str) -> Generator[Any, Any, None]:
        """Occupy simulated time and trace it on this kernel's lane."""
        start = self.ctx.sim.now
        yield Delay(duration_us)
        self.ctx.trace(self.lane, name, category, start, self.ctx.sim.now)

    # -- device-initiated data movement (UVA peer load/store) -----------------

    def peer_store(
        self,
        dst: "DeviceBuffer",
        dst_index: Any,
        src_values: np.ndarray,
        *,
        name: str = "p2p_store",
    ) -> Generator[Any, Any, None]:
        """Direct store into a peer device's memory (P2P over NVLink).

        Requires peer access (or symmetric storage) — enforced through
        :meth:`repro.hw.memory.MemoryManager.check_peer_access`.
        """
        self.ctx.memory.check_peer_access(self.device, dst)
        nbytes = np.asarray(src_values).nbytes
        cost = self.ctx.topology.transfer_us(self.device, dst.device, nbytes)
        start = self.ctx.sim.now
        yield Delay(cost)
        dst.data[dst_index] = src_values
        self.ctx.trace(self.lane, name, "comm", start, self.ctx.sim.now)

    def peer_load(
        self,
        src: "DeviceBuffer",
        src_index: Any,
        *,
        name: str = "p2p_load",
    ) -> Generator[Any, Any, np.ndarray]:
        """Direct load from a peer device's memory."""
        self.ctx.memory.check_peer_access(self.device, src)
        view = np.asarray(src.data[src_index])
        cost = self.ctx.topology.transfer_us(src.device, self.device, view.nbytes)
        start = self.ctx.sim.now
        yield Delay(cost)
        self.ctx.trace(self.lane, name, "comm", start, self.ctx.sim.now)
        return np.array(view)


def validate_cooperative_launch(ctx: "MultiGPUContext", spec: KernelSpec) -> None:
    """Reject cooperative grids that cannot be co-resident (§4.1.4)."""
    limit = ctx.node.gpu.max_coresident_blocks(spec.threads_per_block)
    if spec.blocks > limit:
        raise CooperativeLaunchError(
            f"cooperative kernel {spec.name!r} requests {spec.blocks} blocks of "
            f"{spec.threads_per_block} threads but only {limit} can be co-resident "
            f"on {ctx.node.gpu.name}"
        )
