"""The multi-GPU runtime context and host-thread API.

:class:`MultiGPUContext` bundles everything one simulated node needs:
the event loop, topology, memory manager, cost model, and tracer.

:class:`HostThread` is the simulated analogue of one CPU thread driving
one GPU (the OpenMP-style "one thread per device" pattern of NVIDIA's
multi-GPU samples).  Every method charges the calibrated host-side API
overhead to the calling process and traces it on the host's lane —
making the CPU-controlled baselines pay exactly the latencies the
paper attributes to them.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

import numpy as np

from repro.hw import (
    DEFAULT_COST_MODEL,
    CostModel,
    DeviceBuffer,
    MemoryManager,
    NodeSpec,
    Storage,
    build_topology,
)
from repro.obs.metrics import MetricsRegistry, active_metrics
from repro.runtime.kernel import (
    DeviceKernelContext,
    KernelSpec,
    validate_cooperative_launch,
)
from repro.runtime.stream import Event, Stream
from repro.sim import Delay, Simulator, Tracer
from repro.sim.stacked import WAIT_SPAN, any_member_gt

__all__ = ["HostThread", "MultiGPUContext"]


class MultiGPUContext:
    """One simulated multi-GPU node plus its runtime state."""

    def __init__(
        self,
        node: NodeSpec,
        cost: CostModel = DEFAULT_COST_MODEL,
        tracer: Tracer | None = None,
        metrics: "MetricsRegistry | None" = None,
        faults: Any = None,
        coalesce_comm: bool = True,
        shard_scheduler: bool | None = None,
    ) -> None:
        self.node = node
        self.cost = cost
        self.sim = Simulator()
        #: flat complete-graph topology within one NVSwitch domain,
        #: hierarchical (domains + rails) above it
        self.topology = build_topology(node)
        #: rail occupancy is priced against the sim clock
        self.topology.sim = self.sim
        #: sharded calendar dispatch: one lane per NVSwitch domain.
        #: None = auto (shard iff hierarchical); False forces the flat
        #: calendar for A/B determinism checks.  Dispatch order — and
        #: therefore every metric and trace — is identical either way.
        if shard_scheduler is None:
            shard_scheduler = self.topology.num_domains > 1
        if shard_scheduler and self.topology.num_domains > 1:
            self.sim.enable_sharding(self.topology.num_domains)
        self.memory = MemoryManager(node.num_gpus)
        self.tracer = tracer
        #: observability registry — explicit, or the ambient one
        #: installed via ``repro.obs.use_metrics`` (None = disabled)
        self.metrics = metrics if metrics is not None else active_metrics()
        self.topology.metrics = self.metrics
        self._published_engine: dict[str, Any] = {}
        #: memo for :meth:`DeviceKernelContext.compute` cost lookups —
        #: kernels recharge the same pure (elements, split) cost every
        #: iteration, which is cheap with floats but dominates batched
        #: runs where each recomputation is stacked arithmetic
        self._compute_memo: dict[Any, Any] = {}
        self._metric_flushers: list[Callable[[], None]] = []
        self._streams: dict[tuple[int, str], Stream] = {}
        #: optional FaultInjector (None = fault plane fully inert)
        self.faults = faults
        if faults is not None:
            faults.bind(self)
        #: optional communication sanitizer recorder, installed via
        #: ``repro.sanitize.attach_sanitizer`` (None = no recording)
        self.sanitizer: Any = None
        #: allow the NVSHMEM transport to coalesce same-route
        #: same-arrival delivery legs into one engine event (False
        #: forces the per-leg generator path; results are identical
        #: either way — the switch exists for A/B verification)
        self.coalesce_comm = coalesce_comm

    @property
    def num_gpus(self) -> int:
        return self.node.num_gpus

    def domain_of(self, rank: int) -> int:
        """NVSwitch domain of ``rank`` — the calendar lane its host and
        device processes should be spawned on (0 on a flat node)."""
        return self.topology.domain_of(rank)

    # -- resources -------------------------------------------------------------

    def stream(self, device: int, name: str = "default") -> Stream:
        """Get-or-create the named stream on ``device``."""
        key = (device, name)
        if key not in self._streams:
            if not 0 <= device < self.num_gpus:
                raise ValueError(f"device {device} out of range")
            self._streams[key] = Stream(self.sim, device, name)
        return self._streams[key]

    def alloc(
        self,
        device: int,
        name: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        storage: Storage = Storage.GLOBAL,
        fill: float | None = 0.0,
    ) -> DeviceBuffer:
        """Allocate device memory (see :class:`~repro.hw.memory.MemoryManager`)."""
        return self.memory.alloc(device, name, shape, dtype, storage, fill)

    def host(self, rank: int) -> "HostThread":
        """The host thread driving GPU ``rank``."""
        return HostThread(self, rank)

    def add_metric_flusher(self, flush: Callable[[], None]) -> None:
        """Register a component hook that folds privately accumulated
        metrics into the registry; invoked after each :meth:`run`."""
        self._metric_flushers.append(flush)

    def link_down(self, src: int, dst: int) -> bool:
        """True when an active fault plan marks the direct ``src -> dst``
        link permanently down (variants use this to pick their
        degraded host-staged path)."""
        return self.faults is not None and self.faults.link_down(src, dst)

    # -- tracing ----------------------------------------------------------------

    def trace(self, lane: str, name: str, category: str, start: float, end: float,
              meta: Any = None) -> None:
        if self.tracer is not None:
            self.tracer.record(lane, name, category, start, end, meta)

    def trace_wait(self, lane: str, name: str, start: float, end: float) -> None:
        """Record a sync span only if the caller actually waited.

        Scalar runs: a plain ``end > start`` guard.  Batched runs: the
        span is recorded whenever *any* member waited and tagged with
        the :data:`~repro.sim.stacked.WAIT_SPAN` sentinel; the
        demultiplexer drops the zero-duration members, reproducing the
        per-point guard member-by-member.
        """
        if end.__class__ is float and start.__class__ is float:
            if end > start:
                self.trace(lane, name, "sync", start, end)
        elif any_member_gt(end, start):
            self.trace(lane, name, "sync", start, end, meta=WAIT_SPAN)

    # -- orchestration ------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run the simulation to completion; returns final time (µs)."""
        total = self.sim.run(until)
        self._publish_engine_metrics()
        return total

    def _publish_engine_metrics(self) -> None:
        """Fold the engine's plain-int counters into the registry.

        Delta-tracked so repeated ``run()`` calls (e.g. ``until=``
        stepping) never double count.
        """
        m = self.metrics
        if m is None:
            return
        self.topology.flush_metrics()
        for flush in self._metric_flushers:
            flush()
        sim = self.sim
        scalars = {
            "sim.events_dispatched": sim.n_events,
            "sim.heap_pops": sim.n_heap_pops,
            "sim.ready_pops": sim.n_ready_pops,
            "sim.processes_spawned": sim.n_spawned,
        }
        for name, value in scalars.items():
            delta = value - self._published_engine.get(name, 0)
            if delta:
                m.counter(name).inc(delta)
                self._published_engine[name] = value
        if sim.batch_members is None:
            for flag, count in sorted(sim.flag_wakeups.items()):
                key = f"flag:{flag}"
                delta = count - self._published_engine.get(key, 0)
                if delta:
                    m.counter("sim.flag.wakeups", flag=flag).inc(delta)
                    self._published_engine[key] = count
        else:
            # Batched run: per-member wakeup tallies replace the joint
            # counts (whether a waiter blocks depends on per-member
            # timing).  A member that never blocked on a flag has no
            # counter entry at all in the per-point dump, so zero
            # members must not even create one — write each member's
            # registry directly instead of fanning out.
            children = m.children
            for flag, counts in sorted(sim.flag_wakeups_m.items()):
                key = f"flag:{flag}"
                prev = self._published_engine.get(key)
                for i, child in enumerate(children):
                    delta = counts[i] - (prev[i] if prev is not None else 0)
                    if delta:
                        child.counter("sim.flag.wakeups", flag=flag).inc(delta)
                self._published_engine[key] = tuple(counts)


class HostThread:
    """Host-side CUDA API surface for one rank.  All methods are
    generator helpers to be ``yield from``-ed inside a host process."""

    def __init__(self, ctx: MultiGPUContext, rank: int) -> None:
        self.ctx = ctx
        self.rank = rank
        self.lane = f"host{rank}"

    # -- internal ---------------------------------------------------------------

    def _api(self, us: float, name: str) -> Generator[Any, Any, None]:
        """Charge a host API overhead and trace it."""
        start = self.ctx.sim.now
        yield Delay(us)
        self.ctx.trace(self.lane, name, "api", start, self.ctx.sim.now)

    # -- kernel launch -------------------------------------------------------------

    def launch(
        self,
        stream: Stream,
        spec: KernelSpec,
        body: Callable[[DeviceKernelContext], Generator[Any, Any, Any]],
    ) -> Generator[Any, Any, Event]:
        """``cudaLaunchKernel`` / ``cudaLaunchCooperativeKernel``.

        Charges host launch latency, validates co-residency for
        cooperative kernels, and enqueues the body on ``stream``.
        Returns the kernel's completion :class:`Event`.
        """
        cost = self.ctx.cost.kernel_launch_us
        if spec.cooperative:
            validate_cooperative_launch(self.ctx, spec)
            cost += self.ctx.cost.cooperative_launch_extra_us
        yield from self._api(cost, f"launch:{spec.name}")
        dev = DeviceKernelContext(self.ctx, stream.device, spec, stream.lane)
        return stream.enqueue(lambda: body(dev), name=spec.name)

    # -- memory movement --------------------------------------------------------------

    def memcpy_async(
        self,
        stream: Stream,
        dst: DeviceBuffer,
        dst_index: Any,
        src: DeviceBuffer,
        src_index: Any,
        *,
        name: str = "memcpy",
    ) -> Generator[Any, Any, Event]:
        """``cudaMemcpyAsync``: host enqueues, the copy runs in-stream.

        Data actually moves (NumPy assignment) when the stream reaches
        the copy, preserving in-order semantics.
        """
        yield from self._api(self.ctx.cost.memcpy_enqueue_us, f"memcpyAsync:{name}")
        ctx = self.ctx

        def copy_work() -> Generator[Any, Any, None]:
            values = np.array(src.data[src_index])
            cost = ctx.topology.transfer_us(src.device, dst.device, values.nbytes)
            start = ctx.sim.now
            yield Delay(cost)
            dst.data[dst_index] = values
            ctx.trace(stream.lane, name, "comm", start, ctx.sim.now)

        return stream.enqueue(copy_work, name=name)

    def memcpy_async_modeled(
        self,
        stream: Stream,
        src_device: int,
        dst_device: int,
        nbytes: float,
        *,
        name: str = "memcpy",
    ) -> Generator[Any, Any, Event]:
        """Timing-only copy (no backing data) for no-compute experiments."""
        yield from self._api(self.ctx.cost.memcpy_enqueue_us, f"memcpyAsync:{name}")
        ctx = self.ctx

        def copy_work() -> Generator[Any, Any, None]:
            cost = ctx.topology.transfer_us(src_device, dst_device, nbytes)
            start = ctx.sim.now
            yield Delay(cost)
            ctx.trace(stream.lane, name, "comm", start, ctx.sim.now)

        return stream.enqueue(copy_work, name=name)

    # -- synchronization ---------------------------------------------------------------

    def stream_sync(self, stream: Stream) -> Generator[Any, Any, None]:
        """``cudaStreamSynchronize``: block the host until drain."""
        yield from self._api(self.ctx.cost.stream_sync_us, f"streamSync:{stream.name}")
        start = self.ctx.sim.now
        yield from stream.drained()
        self.ctx.trace_wait(self.lane, f"wait:{stream.name}", start, self.ctx.sim.now)

    def device_sync(self, device: int) -> Generator[Any, Any, None]:
        """``cudaDeviceSynchronize``: drain every stream of ``device``."""
        yield from self._api(self.ctx.cost.stream_sync_us, "deviceSync")
        for (dev, _), stream in sorted(self.ctx._streams.items()):
            if dev == device:
                yield from stream.drained()

    def event_record(self, stream: Stream, name: str = "event") -> Generator[Any, Any, Event]:
        """``cudaEventRecord`` on ``stream``."""
        yield from self._api(self.ctx.cost.event_record_us, f"eventRecord:{name}")
        return stream.record_event(name)

    def event_sync(self, event: Event) -> Generator[Any, Any, None]:
        """``cudaEventSynchronize``."""
        yield from self._api(self.ctx.cost.event_sync_us, f"eventSync:{event.name}")
        start = self.ctx.sim.now
        yield from event.wait()
        self.ctx.trace_wait(self.lane, f"wait:{event.name}", start, self.ctx.sim.now)

    def stream_wait_event(self, stream: Stream, event: Event) -> Generator[Any, Any, None]:
        """``cudaStreamWaitEvent``: device-side dependency, cheap for host."""
        yield from self._api(self.ctx.cost.api_enqueue_us, f"streamWaitEvent:{event.name}")
        stream.wait_event(event)
