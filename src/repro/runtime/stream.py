"""CUDA streams and events.

A :class:`Stream` is an in-order work queue.  We model ordering by
*completion chaining*: each enqueued work item waits for the previous
item's completion flag before running, so items execute back-to-back in
FIFO order while distinct streams proceed concurrently — exactly the
semantics the baselines exploit for communication/computation overlap
(``comp_stream`` / ``comm_stream`` in paper Listing 2.1a).

An :class:`Event` is a snapshot of a stream's tail: host code (or other
streams) can wait on it, mirroring ``cudaEventRecord`` /
``cudaStreamWaitEvent`` / ``cudaEventSynchronize``.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

from repro.sim import Delay, Flag, Simulator, WaitFlag

__all__ = ["Event", "Stream"]


class Event:
    """Completion marker tied to a point in a stream's work queue."""

    __slots__ = ("flag", "name")

    def __init__(self, flag: Flag, name: str = "event") -> None:
        self.flag = flag
        self.name = name

    @property
    def complete(self) -> bool:
        return self.flag.value >= 1

    def wait(self) -> Generator[Any, Any, None]:
        """Generator helper: suspend until the event completes."""
        yield WaitFlag(self.flag, ge=1)


class Stream:
    """An in-order device work queue bound to one GPU.

    Work items are zero-argument generator factories; the stream runs
    them serially.  ``lane`` names the tracer lane device-side spans
    are recorded on.
    """

    def __init__(self, sim: Simulator, device: int, name: str) -> None:
        self.sim = sim
        self.device = device
        self.name = name
        self.lane = f"gpu{device}.{name}"
        # Tail = completion flag of the most recently enqueued item.
        done = Flag(sim, 1, name=f"{self.lane}.origin")
        self._tail = done
        self._depth = 0

    @property
    def idle(self) -> bool:
        """True when every enqueued item has completed."""
        return self._tail.value >= 1

    def enqueue(self, work: Callable[[], Generator[Any, Any, Any]], name: str = "work") -> Event:
        """Append a work item; returns an event for its completion."""
        prev = self._tail
        done = Flag(self.sim, 0, name=f"{self.lane}.{name}.done")
        self._tail = done
        self._depth += 1

        def runner() -> Generator[Any, Any, None]:
            yield WaitFlag(prev, ge=1)
            yield from work()
            done.set(1)

        self.sim.spawn(runner(), name=f"{self.lane}.{name}")
        return Event(done, name=name)

    def enqueue_delay(self, duration_us: float, name: str = "delay") -> Event:
        """Append a pure time cost (e.g. a modeled device-side copy)."""

        def work() -> Generator[Any, Any, None]:
            yield Delay(duration_us)

        return self.enqueue(work, name=name)

    def record_event(self, name: str = "event") -> Event:
        """``cudaEventRecord``: completes when all prior work completes.

        The host-side cost of recording is charged by the caller (see
        :meth:`repro.runtime.context.MultiGPUContext.event_record`).
        """
        return Event(self._tail, name=name)

    def wait_event(self, event: Event) -> None:
        """``cudaStreamWaitEvent``: subsequent items also wait on ``event``."""

        def work() -> Generator[Any, Any, None]:
            yield from event.wait()

        self.enqueue(work, name=f"wait_{event.name}")

    def drained(self) -> Generator[Any, Any, None]:
        """Generator helper: suspend until the queue is fully drained."""
        tail = self._tail
        yield WaitFlag(tail, ge=1)
