"""Process-level warm-start store for expensive per-point setup.

Sweep workers rebuild the same heavyweight inputs for every point: the
DaCe figures, for instance, parse and transform one SDFG per (GPU
count, pipeline) pair even though the graph depends only on the
pipeline.  :func:`warm` memoizes such templates once per worker
process so later points skip the build.

Determinism contract: callers must NOT hand the cached template itself
to code that mutates it or that records cache-visibility metrics
against it.  Pass ``copy=`` (usually :func:`copy.deepcopy`) so every
point receives a fresh instance — the per-point behavior, traces, and
metrics are then byte-identical whether the template was warm or cold,
and identical at any ``--jobs`` setting (worker processes simply start
with a cold store).  What *is* shared safely behind the copy are
process-wide immutable caches keyed by content — e.g. the tasklet
compile cache in :mod:`repro.sdfg.codegen.fastpath`.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["clear", "stats", "warm"]

#: template store, one per worker process
_store: dict[Any, Any] = {}
_hits = 0
_misses = 0


def warm(key: Any, build: Callable[[], Any], *,
         copy: Callable[[Any], Any] | None = None) -> Any:
    """Get-or-build the template for ``key``; return a per-point instance.

    ``build``
        Zero-argument constructor, called at most once per process for
        a given ``key`` (which must be hashable and fully describe the
        build — include function qualnames, not just positional args).
    ``copy``
        Applied to the cached template to produce the instance handed
        back (e.g. ``copy.deepcopy``).  ``None`` returns the template
        itself — only safe when every consumer treats it as immutable.
    """
    global _hits, _misses
    try:
        template = _store[key]
        _hits += 1
    except KeyError:
        template = _store[key] = build()
        _misses += 1
    return copy(template) if copy is not None else template


def stats() -> tuple[int, int, int]:
    """``(hits, misses, live templates)`` for this process."""
    return _hits, _misses, len(_store)


def clear() -> None:
    """Drop every template (tests; long-lived processes after edits)."""
    global _hits, _misses
    _store.clear()
    _hits = 0
    _misses = 0
