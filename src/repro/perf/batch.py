"""Batched sweep scheduling: group compatible points, run them fused.

The vector-carrying simulation core (:mod:`repro.sim.stacked`,
:mod:`repro.stencil.batch`) executes a *stack* of structurally
identical sweep points in one discrete-event run.  This module is the
scheduling layer that decides which points may share a stack: a worker
function registers a :class:`BatchAdapter` and the
:class:`~repro.perf.sweep.SweepRunner` consults it to partition the
cache-miss points into groups, run each group fused, and fall back to
the ordinary per-point path whenever a group diverges.

The contract is strict: batched execution is an *optimization only*.
Per-point results, metrics dumps, and cache entries must come out
byte-identical to the per-point path (enforced by ``tests/perf`` and
the hypothesis equivalence suite), cache keys are shared between the
two paths, and any :class:`~repro.sim.stacked.BatchDivergence` — or
any adapter failure at all — silently reverts the group to per-point
execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence

__all__ = ["BatchAdapter", "adapter_for", "register_batchable"]


@dataclass(frozen=True)
class BatchAdapter:
    """How to batch one worker function's sweep points.

    ``group_key(args)``
        Hashable key of the batch group ``args`` belongs to, or ``None``
        when the point must run per-point (e.g. faulted or data-carrying
        configurations).  Points map to the same group only when they
        are identical up to the batched axis; the group runner
        re-validates this and raises
        :class:`~repro.sim.stacked.BatchDivergence` on violations.
    ``run(argtuples, with_metrics)``
        Execute one group fused.  Returns one value per argtuple, in
        order: ``(result, metrics dump)`` pairs when ``with_metrics``
        (the exact form :func:`~repro.perf.sweep._call_with_metrics`
        produces, so cache entries are interchangeable), else bare
        results.
    """

    group_key: Callable[[tuple], Hashable | None]
    run: Callable[[Sequence[tuple], bool], list[Any]]


#: worker function -> adapter; populated at import time by the modules
#: that own the workers (a pool worker re-populates it by importing the
#: worker's module when the function is unpickled)
_ADAPTERS: dict[Callable, BatchAdapter] = {}


def register_batchable(
    fn: Callable,
    *,
    group_key: Callable[[tuple], Hashable | None],
    run: Callable[[Sequence[tuple], bool], list[Any]],
) -> None:
    """Register ``fn`` as batchable (idempotent per function)."""
    _ADAPTERS[fn] = BatchAdapter(group_key=group_key, run=run)


def adapter_for(fn: Callable) -> BatchAdapter | None:
    """The registered adapter for ``fn``, or ``None``."""
    return _ADAPTERS.get(fn)
