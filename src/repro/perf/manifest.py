"""Sweep manifests: the per-point cache-key ledger behind ``--changed-only``.

A manifest records, for every sweep point of a baseline run, the
*identity* of the point (worker qualname + args + variant — stable
across source edits) and the full *cache key* it resolved to (which
folds in the source digest, so it flips whenever any simulator source
changes).  A later run loaded with ``--changed-only`` compares each
point's current key against the ledger:

* key unchanged  -> the point is replayed from the result cache
  (recomputed, and counted as *stale*, only if the entry was evicted);
* key changed    -> the point re-runs;
* identity absent -> the point is new and runs normally.

The runner tallies these outcomes (``replayed`` / ``changed`` /
``added`` / ``stale``) so the CLI can report exactly what a source or
sweep-shape edit invalidated.  The report body itself stays
byte-identical — the manifest only steers *where results come from*,
never what they are.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ManifestDiff", "SweepManifest"]

_FORMAT = "repro-sweep-manifest-v1"


@dataclass
class ManifestDiff:
    """Identity-level comparison of two manifests."""

    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    changed: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.added or self.removed or self.changed)


class SweepManifest:
    """Mapping of point identity -> cache key, serialized as JSON."""

    def __init__(self, entries: dict[str, str] | None = None,
                 path: str | Path | None = None) -> None:
        self.entries: dict[str, str] = dict(entries or {})
        self.path = Path(path) if path is not None else None

    @classmethod
    def load(cls, path: str | Path) -> "SweepManifest":
        """Read a manifest written by :meth:`save`."""
        path = Path(path)
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or data.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a sweep manifest "
                             f"(expected format {_FORMAT!r})")
        points = data.get("points")
        if not isinstance(points, dict):
            raise ValueError(f"{path}: malformed manifest (no points table)")
        return cls(points, path=path)

    def record(self, identity: str, key: str) -> None:
        """Note that ``identity`` currently resolves to cache ``key``."""
        self.entries[identity] = key

    def key_for(self, identity: str) -> str | None:
        """The recorded key for ``identity``, or ``None`` if unseen."""
        return self.entries.get(identity)

    def save(self, path: str | Path | None = None) -> Path:
        """Write the ledger (sorted, so reruns are byte-identical)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("SweepManifest.save: no path given or remembered")
        payload = {"format": _FORMAT,
                   "points": dict(sorted(self.entries.items()))}
        target.write_text(json.dumps(payload, indent=2) + "\n")
        self.path = target
        return target

    def diff(self, other: "SweepManifest") -> ManifestDiff:
        """What changed going from ``other`` (older) to ``self``."""
        out = ManifestDiff()
        for identity, key in sorted(self.entries.items()):
            old = other.entries.get(identity)
            if old is None:
                out.added.append(identity)
            elif old != key:
                out.changed.append(identity)
        out.removed = sorted(set(other.entries) - set(self.entries))
        return out

    def __len__(self) -> int:
        return len(self.entries)
