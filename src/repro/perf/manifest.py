"""Sweep manifests: the per-point cache-key ledger behind ``--changed-only``.

A manifest records, for every sweep point of a baseline run, the
*identity* of the point (worker qualname + args + variant — stable
across source edits) and the full *cache key* it resolved to (which
folds in the source digest, so it flips whenever any simulator source
changes).  A later run loaded with ``--changed-only`` compares each
point's current key against the ledger:

* key unchanged  -> the point is replayed from the result cache
  (recomputed, and counted as *stale*, only if the entry was evicted);
* key changed    -> the point re-runs;
* identity absent -> the point is new and runs normally.

The runner tallies these outcomes (``replayed`` / ``changed`` /
``added`` / ``stale``) so the CLI can report exactly what a source or
sweep-shape edit invalidated.  The report body itself stays
byte-identical — the manifest only steers *where results come from*,
never what they are.

:class:`SweepJournal` is the manifest's crash-safe sibling: an
append-only JSONL ledger the runner writes *as each point completes*
(one checksummed line per point), so an interrupted sweep leaves a
readable prefix behind and ``repro.bench --resume`` can replay the
finished points from cache and compute only the rest.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ManifestDiff", "SweepJournal", "SweepManifest"]

_FORMAT = "repro-sweep-manifest-v1"
_JOURNAL_FORMAT = "repro-sweep-journal-v1"


def _points_sha(points: dict) -> str:
    """Checksum of the points table in canonical (sorted-key) form."""
    return hashlib.sha256(
        json.dumps(points, sort_keys=True).encode()).hexdigest()


def _line_sha(record: dict) -> str:
    """Per-line integrity mark: first 12 hex of sha256 over the record
    without its ``_sha`` field, dumped with sorted keys."""
    body = {k: v for k, v in record.items() if k != "_sha"}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode()).hexdigest()[:12]


@dataclass
class ManifestDiff:
    """Identity-level comparison of two manifests."""

    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    changed: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.added or self.removed or self.changed)


class SweepManifest:
    """Mapping of point identity -> cache key, serialized as JSON."""

    def __init__(self, entries: dict[str, str] | None = None,
                 path: str | Path | None = None) -> None:
        self.entries: dict[str, str] = dict(entries or {})
        self.path = Path(path) if path is not None else None

    @classmethod
    def load(cls, path: str | Path) -> "SweepManifest":
        """Read a manifest written by :meth:`save`.  Verifies the
        whole-file checksum when present (manifests written before the
        checksum existed still load)."""
        path = Path(path)
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or data.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a sweep manifest "
                             f"(expected format {_FORMAT!r})")
        points = data.get("points")
        if not isinstance(points, dict):
            raise ValueError(f"{path}: malformed manifest (no points table)")
        recorded = data.get("sha256")
        if recorded is not None and recorded != _points_sha(points):
            raise ValueError(f"{path}: manifest checksum mismatch — the "
                             f"points table was corrupted or hand-edited")
        return cls(points, path=path)

    def record(self, identity: str, key: str) -> None:
        """Note that ``identity`` currently resolves to cache ``key``."""
        self.entries[identity] = key

    def key_for(self, identity: str) -> str | None:
        """The recorded key for ``identity``, or ``None`` if unseen."""
        return self.entries.get(identity)

    def save(self, path: str | Path | None = None) -> Path:
        """Write the ledger atomically (temp file + rename, so a crash
        mid-save never leaves a torn manifest) with a checksum over the
        points table.  Sorted, so reruns are byte-identical."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("SweepManifest.save: no path given or remembered")
        points = dict(sorted(self.entries.items()))
        payload = {"format": _FORMAT,
                   "points": points,
                   "sha256": _points_sha(points)}
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, target)
        self.path = target
        return target

    def diff(self, other: "SweepManifest") -> ManifestDiff:
        """What changed going from ``other`` (older) to ``self``."""
        out = ManifestDiff()
        for identity, key in sorted(self.entries.items()):
            old = other.entries.get(identity)
            if old is None:
                out.added.append(identity)
            elif old != key:
                out.changed.append(identity)
        out.removed = sorted(set(other.entries) - set(self.entries))
        return out

    def __len__(self) -> int:
        return len(self.entries)


class SweepJournal:
    """Append-only JSONL ledger of completed sweep points.

    One line per completed point: ``{"identity": ..., "key": ...,
    "_sha": ...}`` where ``_sha`` covers the rest of the line.  Lines
    are written with a single ``write`` call each, so a worker killed
    mid-sweep leaves at worst one torn trailing line — which the
    tolerant :meth:`load` detects, skips, and counts.  The loaded
    journal converts to a :class:`SweepManifest` that ``--resume``
    hands to the runner as its replay baseline.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = None

    def append(self, identity: str, key: str) -> None:
        """Record one completed point (opens lazily, appends, flushes)."""
        record = {"format": _JOURNAL_FORMAT, "identity": identity, "key": key}
        record["_sha"] = _line_sha(record)
        if self._fh is None:
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @classmethod
    def load(cls, path: str | Path) -> tuple[SweepManifest, list[tuple[int, str]]]:
        """Read a journal, tolerantly.

        Returns ``(manifest, corrupt)`` where ``manifest`` maps every
        validly journaled identity to its cache key (later lines win)
        and ``corrupt`` lists ``(lineno, reason)`` for every skipped
        line — a torn tail from a killed worker is data loss of at most
        that one point, never a crash.
        """
        path = Path(path)
        entries: dict[str, str] = {}
        corrupt: list[tuple[int, str]] = []
        with open(path) as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    corrupt.append((lineno, "unparseable JSON (torn line?)"))
                    continue
                if not isinstance(record, dict) \
                        or record.get("format") != _JOURNAL_FORMAT:
                    corrupt.append((lineno, "not a journal record"))
                    continue
                if record.get("_sha") != _line_sha(record):
                    corrupt.append((lineno, "checksum mismatch"))
                    continue
                identity, key = record.get("identity"), record.get("key")
                if not isinstance(identity, str) or not isinstance(key, str):
                    corrupt.append((lineno, "malformed identity/key"))
                    continue
                entries[identity] = key
        return SweepManifest(entries, path=path), corrupt
