"""Content-addressed on-disk cache for sweep results.

A cache entry's key is ``sha256(worker id | repr(args) | source
digest)`` where the source digest hashes every ``.py`` file under the
installed ``repro`` package.  Invalidation is therefore automatic and
conservative: *any* source change makes every old key unreachable, so
a stale entry can never be replayed against new simulator semantics.
Stale files are simply never read again (delete the cache directory to
reclaim the space).

Values are pickled; sweep workers return small dataclasses (rows of a
figure table), never large arrays.
"""

from __future__ import annotations

import functools
import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Callable

__all__ = ["ResultCache", "point_identity", "source_digest"]

DEFAULT_CACHE_DIR = ".repro-perf-cache"


@functools.lru_cache(maxsize=1)
def source_digest() -> str:
    """Hash of every repro source file (hex). Computed once per process."""
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def point_identity(fn: Callable, args: tuple, variant: str = "") -> str:
    """Source-independent identity of one sweep point.

    This is the manifest's row key: it names *which* point a cache key
    belongs to, and survives source edits (which change the key but
    not the identity).  ``repr(args)`` must be a faithful value
    rendering — sweep workers take primitives and frozen dataclasses,
    which it is.
    """
    return f"{fn.__module__}.{fn.__qualname__}|{args!r}|{variant}"


class ResultCache:
    """Pickle store under ``root``, one file per key."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def key(self, fn: Callable, args: tuple, variant: str = "") -> str:
        """Cache key for calling ``fn(*args)`` against current sources.

        ``variant`` distinguishes entries whose stored *format* differs
        for the same call (e.g. metrics-collecting sweeps store
        ``(result, metrics)`` pairs instead of bare results).
        """
        payload = f"{point_identity(fn, args, variant)}|{source_digest()}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` otherwise."""
        path = self.root / f"{key}.pkl"
        try:
            with open(path, "rb") as fh:
                return True, pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            return False, None

    def evict(self, key: str) -> bool:
        """Delete the entry for ``key``; ``True`` if a file was removed."""
        try:
            os.remove(self.root / f"{key}.pkl")
            return True
        except OSError:
            return False

    def put(self, key: str, value: Any) -> None:
        """Atomic write (tmp file + rename) so concurrent sweeps never
        observe a torn entry."""
        path = self.root / f"{key}.pkl"
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(value, fh)
        os.replace(tmp, path)
