"""Content-addressed on-disk cache for sweep results.

A cache entry's key is ``sha256(worker id | repr(args) | source
digest)`` where the source digest hashes every ``.py`` file under the
installed ``repro`` package.  Invalidation is therefore automatic and
conservative: *any* source change makes every old key unreachable, so
a stale entry can never be replayed against new simulator semantics.
Stale files are simply never read again (delete the cache directory to
reclaim the space).

Values are pickled; sweep workers return small dataclasses (rows of a
figure table), never large arrays.

Entries are crash-safe: writes go through a temp file + ``os.replace``
(no torn entries even with concurrent sweeps), and every entry carries
an integrity footer — a magic marker plus the sha256 of the pickled
payload.  A truncated, bit-flipped, or otherwise corrupted entry is
*quarantined* on read (moved aside into ``quarantine/`` for forensics)
and reported as a miss, so the sweep recomputes the point instead of
crashing or silently replaying poison.
"""

from __future__ import annotations

import functools
import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Callable

__all__ = ["ResultCache", "point_identity", "source_digest"]

DEFAULT_CACHE_DIR = ".repro-perf-cache"

#: integrity footer: MAGIC + 64 hex chars of sha256(payload), appended
#: after the pickled payload.  Fixed-size, so reads can split payload
#: from footer without parsing the pickle stream.
_MAGIC = b"\n#repro-cache-sha256:"
_FOOTER_LEN = len(_MAGIC) + 64


@functools.lru_cache(maxsize=1)
def source_digest() -> str:
    """Hash of every repro source file (hex). Computed once per process."""
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def point_identity(fn: Callable, args: tuple, variant: str = "") -> str:
    """Source-independent identity of one sweep point.

    This is the manifest's row key: it names *which* point a cache key
    belongs to, and survives source edits (which change the key but
    not the identity).  ``repr(args)`` must be a faithful value
    rendering — sweep workers take primitives and frozen dataclasses,
    which it is.
    """
    return f"{fn.__module__}.{fn.__qualname__}|{args!r}|{variant}"


class ResultCache:
    """Pickle store under ``root``, one file per key."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: corrupted entries detected this process: (key, reason)
        self.quarantined: list[tuple[str, str]] = []

    def key(self, fn: Callable, args: tuple, variant: str = "") -> str:
        """Cache key for calling ``fn(*args)`` against current sources.

        ``variant`` distinguishes entries whose stored *format* differs
        for the same call (e.g. metrics-collecting sweeps store
        ``(result, metrics)`` pairs instead of bare results).
        """
        payload = f"{point_identity(fn, args, variant)}|{source_digest()}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a verified hit, ``(False, None)``
        otherwise.  A present-but-corrupt entry (truncated, flipped
        byte, zero bytes, missing/garbled footer) is quarantined and
        reported as a miss — the caller recomputes."""
        path = self.root / f"{key}.pkl"
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return False, None
        if len(blob) <= _FOOTER_LEN:
            self._quarantine(key, path, "truncated (shorter than the footer)")
            return False, None
        payload, footer = blob[:-_FOOTER_LEN], blob[-_FOOTER_LEN:]
        if not footer.startswith(_MAGIC):
            self._quarantine(key, path, "missing integrity footer")
            return False, None
        if hashlib.sha256(payload).hexdigest().encode() != footer[len(_MAGIC):]:
            self._quarantine(key, path, "sha256 mismatch")
            return False, None
        try:
            return True, pickle.loads(payload)
        except Exception:
            # checksum matched but the pickle is unreadable (e.g. it
            # references a class this process no longer has)
            self._quarantine(key, path, "unpicklable payload")
            return False, None

    def _quarantine(self, key: str, path: Path, reason: str) -> None:
        """Move a corrupt entry aside (never delete — forensics) and
        record it; the entry becomes a miss."""
        qdir = self.root / "quarantine"
        try:
            qdir.mkdir(exist_ok=True)
            os.replace(path, qdir / f"{key}.pkl")
        except OSError:
            pass  # concurrent quarantine of the same entry: fine
        self.quarantined.append((key, reason))

    def evict(self, key: str) -> bool:
        """Delete the entry for ``key``; ``True`` if a file was removed."""
        try:
            os.remove(self.root / f"{key}.pkl")
            return True
        except OSError:
            return False

    def put(self, key: str, value: Any) -> None:
        """Atomic write (tmp file + rename) so concurrent sweeps never
        observe a torn entry; the integrity footer makes torn *media*
        (power loss, full disk) detectable at read time too."""
        path = self.root / f"{key}.pkl"
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        payload = pickle.dumps(value)
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.write(_MAGIC)
            fh.write(hashlib.sha256(payload).hexdigest().encode())
        os.replace(tmp, path)
