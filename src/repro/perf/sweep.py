"""Deterministic parallel sweep execution.

:class:`SweepRunner` maps a top-level worker function over a list of
argument tuples — serially, or fanned out over a
``concurrent.futures.ProcessPoolExecutor`` — with an optional
:class:`~repro.perf.cache.ResultCache` consulted per point.  Results
are always assembled in *submission order*, so the output is
byte-identical no matter how many jobs ran or which points were cache
hits (the determinism contract enforced by ``tests/perf``).

Incremental replay rides on the same key machinery: a
:class:`~repro.perf.manifest.SweepManifest` can record every point's
cache key (``--save-manifest``) and a previously saved ledger can be
supplied as a baseline (``--changed-only``), in which case the runner
tallies which points were replayed unchanged, which re-ran because
their key changed, and which are new — see :mod:`repro.perf.manifest`
for the exact semantics.

Figure code never receives a runner explicitly: it calls
:func:`active_runner`, which defaults to a serial, cache-less runner
(plain function calls — the behavior unit tests see).  The CLI
installs a configured runner around a whole figure run with
:func:`use_runner`.
"""

from __future__ import annotations

import copy
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, Sequence

from repro.obs.metrics import MetricsRegistry, active_metrics, use_metrics
from repro.perf.batch import BatchAdapter, adapter_for
from repro.perf.cache import ResultCache, point_identity
from repro.perf.manifest import SweepJournal, SweepManifest

__all__ = ["QuarantinedPoint", "SweepRunner", "active_runner", "use_runner"]


@dataclass(frozen=True)
class QuarantinedPoint:
    """A sweep point whose worker process died (SIGKILL, segfault, OOM)
    on every allowed attempt.  It takes the point's slot in the result
    list and is reported in the sweep summary — one poison point never
    aborts the rest of the sweep."""

    index: int
    identity: str
    attempts: int
    reason: str = "worker process died (BrokenProcessPool)"


def _call_with_metrics(fn: Callable, args: tuple) -> tuple[Any, dict]:
    """Top-level (picklable) wrapper: run one sweep point against a
    fresh registry and return ``(result, metrics dump)``.  The caller
    merges dumps in submission order, so the combined registry is
    byte-identical no matter the job count — and identical whether the
    point was computed or replayed from the cache (the dump is cached
    alongside the result)."""
    registry = MetricsRegistry()
    with use_metrics(registry):
        result = fn(*args)
    return result, registry.to_dict()


class SweepRunner:
    """Maps workers over sweep points with optional processes + cache.

    ``jobs``
        Worker process count. 1 (default) runs in-process — no pool,
        no pickling. Workers must be top-level (picklable) functions
        when ``jobs > 1``.
    ``cache``
        A :class:`ResultCache`, or ``None`` to recompute everything.
    ``manifest``
        A :class:`SweepManifest` the runner records every point's
        (identity, key) into — save it afterwards to capture the run
        as a replay baseline.  Requires ``cache``.
    ``baseline``
        A previously saved manifest to compare against (the
        ``--changed-only`` mode).  Points whose key matches the
        baseline replay from the cache and count as ``replayed``
        (or ``stale`` if the cache entry was evicted and the point had
        to recompute); mismatches count as ``changed``; identities the
        baseline has never seen count as ``added``.  Requires
        ``cache`` — the comparison steers where results come from, it
        never changes what they are.
    ``profile_sink``
        When not ``None``, every *computed* point runs under its own
        ``cProfile`` and ``(identity, stats text)`` — sorted by
        cumulative time — is appended to this list.  Forces in-process
        execution (profiles cannot cross a process pool).
    ``batch``
        Consult the worker's registered :class:`~repro.perf.batch.
        BatchAdapter` and run compatible cache-miss points fused in one
        simulation (default).  Results, metrics dumps, and cache
        entries are byte-identical either way — cache keys are shared
        between the two paths — so the switch is purely a performance
        A/B lever.  Profiled runs never batch (per-point profiles are
        the product).
    ``progress``
        A :class:`~repro.obs.progress.ProgressSink` the runner narrates
        each map call through (point queued / cached / batched /
        started / finished).  Strictly an observer: results, cache
        keys, and scheduling are identical with or without a sink, and
        ``None`` (the default) costs nothing.
    ``journal``
        A :class:`~repro.perf.manifest.SweepJournal` the runner appends
        each completed point's (identity, key) to *as it finishes* —
        the crash-safe ledger behind ``repro.bench --resume``.
        Requires ``cache`` (a journal entry promises the cache holds
        the result).
    ``retries``
        Extra single-worker attempts granted to each point stranded by
        a dead pool worker before the point is quarantined (default 2).
        Retries only happen in this post-crash careful mode, so a
        healthy sweep's execution is byte-for-byte unchanged.
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 manifest: SweepManifest | None = None,
                 baseline: SweepManifest | None = None,
                 profile_sink: list[tuple[str, str]] | None = None,
                 batch: bool = True, progress: Any | None = None,
                 journal: SweepJournal | None = None,
                 retries: int = 2) -> None:
        if cache is None and (manifest is not None or baseline is not None
                              or journal is not None):
            raise ValueError("sweep manifests require a ResultCache "
                             "(keys are what they record)")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = max(1, jobs)
        self.cache = cache
        self.manifest = manifest
        self.baseline = baseline
        self.profile_sink = profile_sink
        self.batch = batch
        self.progress = progress
        self.journal = journal
        self.retries = retries
        #: poison points (worker death on every attempt), in index order
        self.quarantined: list[QuarantinedPoint] = []
        self.hits = 0
        self.misses = 0
        #: batched-execution tallies (stdout diagnostics, never metrics)
        self.batch_groups = 0
        self.batch_points = 0
        self.batch_fallbacks = 0
        #: --changed-only tallies (all zero when no baseline is set)
        self.replayed = 0
        self.changed = 0
        self.added = 0
        self.stale = 0

    def _classify(self, previous: str | None, key: str, hit: bool) -> None:
        """Fold one baseline comparison into the replay tallies."""
        if previous is None:
            self.added += 1
        elif previous != key:
            self.changed += 1
        elif hit:
            self.replayed += 1
        else:
            self.stale += 1

    def _profiled(self, fn: Callable, args: tuple, identity: str,
                  compute: Callable[[], Any]) -> Any:
        """Run ``compute`` under cProfile; append stats to the sink."""
        import cProfile
        import io
        import pstats

        profile = cProfile.Profile()
        profile.enable()
        try:
            result = compute()
        finally:
            profile.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profile, stream=buffer)
        stats.sort_stats("cumulative")
        stats.print_stats(25)
        self.profile_sink.append((identity, buffer.getvalue()))
        return result

    def _run_batch_groups(self, adapter: BatchAdapter, argtuples: Sequence[tuple],
                          pending: list[int], with_metrics: bool,
                          results: list[Any],
                          idents: list[str] | None = None,
                          on_done: Callable[[int], None] | None = None) -> list[int]:
        """Run groupable cache-miss points fused; returns the indices
        that still need per-point execution (ungroupable points,
        singleton groups, and groups whose fused run diverged)."""
        groups: dict[Any, list[int]] = {}
        rest: list[int] = []
        for i in pending:
            try:
                key = adapter.group_key(argtuples[i])
            except Exception:
                key = None
            if key is None:
                rest.append(i)
            else:
                groups.setdefault(key, []).append(i)
        for idxs in groups.values():
            if len(idxs) < 2:
                rest.extend(idxs)
                continue
            try:
                values = adapter.run([argtuples[i] for i in idxs], with_metrics)
            except Exception:
                # batching is strictly an optimization: divergence (or
                # any adapter failure) reverts the group to per-point
                self.batch_fallbacks += 1
                rest.extend(idxs)
                continue
            for i, value in zip(idxs, values):
                results[i] = value
                if on_done is not None:
                    on_done(i)
                if self.progress is not None:
                    self.progress.point_batched(i, idents[i], len(idxs),
                                                results[i])
            self.batch_groups += 1
            self.batch_points += len(idxs)
        rest.sort()
        return rest

    def _careful(self, fn: Callable, args: tuple, with_metrics: bool,
                 variant: str, index: int) -> Any:
        """Post-crash execution of one point: a fresh single-worker
        pool per attempt, so this point's death cannot strand others.
        Exhausting the retry budget quarantines the point."""
        attempts = 1 + self.retries
        for _ in range(attempts):
            try:
                with ProcessPoolExecutor(max_workers=1) as pool:
                    if with_metrics:
                        return pool.submit(_call_with_metrics, fn, args).result()
                    return pool.submit(fn, *args).result()
            except BrokenProcessPool:
                continue
        point = QuarantinedPoint(index=index,
                                 identity=point_identity(fn, args, variant),
                                 attempts=attempts)
        self.quarantined.append(point)
        return point

    def _run_pool(self, fn: Callable, argtuples: Sequence[tuple],
                  pending: list[int], with_metrics: bool, results: list[Any],
                  idents: list[str] | None, store: Callable[[int], None],
                  variant: str) -> None:
        """Fan pending points out to a process pool, surviving worker
        death: a :class:`BrokenProcessPool` flips the remaining points
        into careful mode instead of aborting the sweep."""
        resolved: set[int] = set()
        submitted = time.perf_counter()
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                if self.progress is not None:
                    for i in pending:
                        self.progress.point_started(i, idents[i])
                if with_metrics:
                    futures = [(i, pool.submit(_call_with_metrics, fn, argtuples[i]))
                               for i in pending]
                else:
                    futures = [(i, pool.submit(fn, *argtuples[i])) for i in pending]
                for i, future in futures:
                    results[i] = future.result()
                    resolved.add(i)
                    store(i)
                    if self.progress is not None:
                        # submit-to-resolve wall time: pooled points
                        # have no per-point clock on the worker side
                        self.progress.point_finished(
                            i, idents[i],
                            time.perf_counter() - submitted, results[i])
        except BrokenProcessPool:
            # a worker died (SIGKILL, segfault, OOM) and took the whole
            # pool down; every unresolved point re-runs alone with a
            # bounded retry budget, and a point that keeps killing its
            # worker is quarantined — reported, never fatal
            for i in pending:
                if i in resolved:
                    continue
                results[i] = self._careful(fn, argtuples[i], with_metrics,
                                           variant, i)
                store(i)
                if self.progress is not None:
                    self.progress.point_finished(
                        i, idents[i], time.perf_counter() - submitted,
                        results[i])

    def map(self, fn: Callable, argtuples: Sequence[tuple]) -> list[Any]:
        """``[fn(*args) for args in argtuples]``, accelerated."""
        argtuples = list(argtuples)
        ambient = active_metrics()
        with_metrics = ambient is not None
        variant = "+metrics" if with_metrics else ""
        results: list[Any] = [None] * len(argtuples)
        keys: list[str | None] = [None] * len(argtuples)
        idents: list[str] | None = None
        if self.progress is not None:
            idents = [point_identity(fn, args, variant) for args in argtuples]
            self.progress.sweep_begin(
                f"{fn.__module__}.{fn.__qualname__}", idents)
        pending: list[int] = []
        for i, args in enumerate(argtuples):
            if self.cache is not None:
                keys[i] = self.cache.key(fn, args, variant=variant)
                previous = None
                if (self.manifest is not None or self.baseline is not None
                        or self.journal is not None):
                    identity = point_identity(fn, args, variant)
                    if self.baseline is not None:
                        previous = self.baseline.key_for(identity)
                    if self.manifest is not None:
                        self.manifest.record(identity, keys[i])
                hit, value = self.cache.get(keys[i])
                if self.baseline is not None:
                    self._classify(previous, keys[i], hit)
                if hit:
                    results[i] = value
                    self.hits += 1
                    if self.journal is not None:
                        self.journal.append(identity, keys[i])
                    if self.progress is not None:
                        self.progress.point_cached(i, idents[i])
                    continue
                self.misses += 1
            pending.append(i)
        computed = list(pending)
        dup_of: dict[int, int] = {}

        def store(i: int) -> None:
            # persist each point the moment it completes, so a sweep
            # killed mid-flight leaves every finished point replayable
            # (the journal line promises the cache holds the result)
            if self.cache is None or keys[i] is None:
                return
            value = results[i]
            if isinstance(value, QuarantinedPoint):
                return
            if with_metrics and isinstance(value[1], MetricsRegistry):
                # normalize to the picklable cached form
                value = results[i] = (value[0], value[1].to_dict())
            self.cache.put(keys[i], value)
            if self.journal is not None:
                self.journal.append(
                    point_identity(fn, argtuples[i], variant), keys[i])

        if pending:
            adapter = (adapter_for(fn)
                       if self.batch and self.profile_sink is None else None)
            if adapter is not None:
                pending, dup_of = _dedupe_pending(argtuples, pending)
                pending = self._run_batch_groups(
                    adapter, argtuples, pending, with_metrics, results, idents,
                    on_done=store)
        if pending:
            # a single-core host gains nothing from a process pool and
            # pays its spawn + pickle overhead; run the points inline
            if (self.jobs > 1 and len(pending) > 1
                    and self.profile_sink is None
                    and (os.cpu_count() or 1) > 1):
                self._run_pool(fn, argtuples, pending, with_metrics, results,
                               idents, store, variant)
            else:
                for i in pending:
                    if with_metrics:
                        # in-process: keep the registry itself so the
                        # merge can skip the dump round-trip
                        def compute(args: tuple = argtuples[i]) -> Any:
                            registry = MetricsRegistry()
                            with use_metrics(registry):
                                return fn(*args), registry
                    else:
                        def compute(args: tuple = argtuples[i]) -> Any:
                            return fn(*args)
                    if self.progress is not None:
                        self.progress.point_started(i, idents[i])
                        started = time.perf_counter()
                    if self.profile_sink is not None:
                        results[i] = self._profiled(
                            fn, argtuples[i],
                            point_identity(fn, argtuples[i], variant), compute)
                    else:
                        results[i] = compute()
                    store(i)
                    if self.progress is not None:
                        self.progress.point_finished(
                            i, idents[i], time.perf_counter() - started,
                            results[i])
        if computed:
            # duplicate argtuples computed once (deterministic workers
            # produce identical values); copy into the remaining slots
            for i, j in dup_of.items():
                value = results[j]
                if isinstance(value, QuarantinedPoint):
                    results[i] = replace(value, index=i)
                    self.quarantined.append(results[i])
                else:
                    results[i] = copy.deepcopy(value)
                if self.progress is not None:
                    self.progress.point_cached(i, idents[i], duplicate_of=j)
        if with_metrics:
            # unwrap (result, dump) pairs; merge in submission order
            unwrapped: list[Any] = []
            for value in results:
                if isinstance(value, QuarantinedPoint):
                    # a quarantined point has no result and no metrics;
                    # it keeps its slot so callers see what was lost
                    unwrapped.append(value)
                    continue
                result, dump = value
                if isinstance(dump, MetricsRegistry):
                    ambient.merge_registry(dump)
                else:
                    ambient.merge_dict(dump)
                unwrapped.append(result)
            results = unwrapped
            # cache hit/miss tallies stay OFF the registry: they reflect
            # on-disk state, not simulated behavior, and would break the
            # byte-identical-dumps contract (the CLI prints self.hits /
            # self.misses to stdout instead)
            ambient.counter("perf.sweep.points").inc(len(argtuples))
        if self.progress is not None:
            self.progress.sweep_end(
                f"{fn.__module__}.{fn.__qualname__}", len(argtuples))
        return results


def _dedupe_pending(
    argtuples: Sequence[tuple], pending: list[int]
) -> tuple[list[int], dict[int, int]]:
    """Collapse pending points with identical argtuples onto the first
    occurrence; returns ``(kept, dup_of)`` where ``dup_of`` maps each
    dropped index to the index whose result it copies.  Unhashable
    argtuples stay unique (no equality scan on the hot path)."""
    seen: dict[Any, int] = {}
    dup_of: dict[int, int] = {}
    kept: list[int] = []
    for i in pending:
        try:
            first = seen.setdefault(argtuples[i], i)
        except TypeError:
            kept.append(i)
            continue
        if first == i:
            kept.append(i)
        else:
            dup_of[i] = first
    return kept, dup_of


#: module-level runner consulted by figure sweeps
_active = SweepRunner()


def active_runner() -> SweepRunner:
    """The runner figure sweeps should map through right now."""
    return _active


@contextmanager
def use_runner(runner: SweepRunner) -> Iterator[SweepRunner]:
    """Install ``runner`` as the active runner for the enclosed block."""
    global _active
    previous = _active
    _active = runner
    try:
        yield runner
    finally:
        _active = previous
