"""Deterministic parallel sweep execution.

:class:`SweepRunner` maps a top-level worker function over a list of
argument tuples — serially, or fanned out over a
``concurrent.futures.ProcessPoolExecutor`` — with an optional
:class:`~repro.perf.cache.ResultCache` consulted per point.  Results
are always assembled in *submission order*, so the output is
byte-identical no matter how many jobs ran or which points were cache
hits (the determinism contract enforced by ``tests/perf``).

Figure code never receives a runner explicitly: it calls
:func:`active_runner`, which defaults to a serial, cache-less runner
(plain function calls — the behavior unit tests see).  The CLI
installs a configured runner around a whole figure run with
:func:`use_runner`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.obs.metrics import MetricsRegistry, active_metrics, use_metrics
from repro.perf.cache import ResultCache

__all__ = ["SweepRunner", "active_runner", "use_runner"]


def _call_with_metrics(fn: Callable, args: tuple) -> tuple[Any, dict]:
    """Top-level (picklable) wrapper: run one sweep point against a
    fresh registry and return ``(result, metrics dump)``.  The caller
    merges dumps in submission order, so the combined registry is
    byte-identical no matter the job count — and identical whether the
    point was computed or replayed from the cache (the dump is cached
    alongside the result)."""
    registry = MetricsRegistry()
    with use_metrics(registry):
        result = fn(*args)
    return result, registry.to_dict()


class SweepRunner:
    """Maps workers over sweep points with optional processes + cache.

    ``jobs``
        Worker process count. 1 (default) runs in-process — no pool,
        no pickling. Workers must be top-level (picklable) functions
        when ``jobs > 1``.
    ``cache``
        A :class:`ResultCache`, or ``None`` to recompute everything.
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache
        self.hits = 0
        self.misses = 0

    def map(self, fn: Callable, argtuples: Sequence[tuple]) -> list[Any]:
        """``[fn(*args) for args in argtuples]``, accelerated."""
        argtuples = list(argtuples)
        ambient = active_metrics()
        with_metrics = ambient is not None
        results: list[Any] = [None] * len(argtuples)
        keys: list[str | None] = [None] * len(argtuples)
        pending: list[int] = []
        hits_now = misses_now = 0
        for i, args in enumerate(argtuples):
            if self.cache is not None:
                keys[i] = self.cache.key(fn, args,
                                         variant="+metrics" if with_metrics else "")
                hit, value = self.cache.get(keys[i])
                if hit:
                    results[i] = value
                    self.hits += 1
                    hits_now += 1
                    continue
                self.misses += 1
                misses_now += 1
            pending.append(i)
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    if with_metrics:
                        futures = [(i, pool.submit(_call_with_metrics, fn, argtuples[i]))
                                   for i in pending]
                    else:
                        futures = [(i, pool.submit(fn, *argtuples[i])) for i in pending]
                    for i, future in futures:
                        results[i] = future.result()
            else:
                for i in pending:
                    if with_metrics:
                        # in-process: keep the registry itself so the
                        # merge can skip the dump round-trip
                        registry = MetricsRegistry()
                        with use_metrics(registry):
                            results[i] = (fn(*argtuples[i]), registry)
                    else:
                        results[i] = fn(*argtuples[i])
            if self.cache is not None:
                for i in pending:
                    value = results[i]
                    if with_metrics and isinstance(value[1], MetricsRegistry):
                        # normalize to the picklable cached form
                        value = results[i] = (value[0], value[1].to_dict())
                    self.cache.put(keys[i], value)
        if with_metrics:
            # unwrap (result, dump) pairs; merge in submission order
            unwrapped: list[Any] = []
            for value in results:
                result, dump = value
                if isinstance(dump, MetricsRegistry):
                    ambient.merge_registry(dump)
                else:
                    ambient.merge_dict(dump)
                unwrapped.append(result)
            results = unwrapped
            # cache hit/miss tallies stay OFF the registry: they reflect
            # on-disk state, not simulated behavior, and would break the
            # byte-identical-dumps contract (the CLI prints self.hits /
            # self.misses to stdout instead)
            ambient.counter("perf.sweep.points").inc(len(argtuples))
        return results


#: module-level runner consulted by figure sweeps
_active = SweepRunner()


def active_runner() -> SweepRunner:
    """The runner figure sweeps should map through right now."""
    return _active


@contextmanager
def use_runner(runner: SweepRunner) -> Iterator[SweepRunner]:
    """Install ``runner`` as the active runner for the enclosed block."""
    global _active
    previous = _active
    _active = runner
    try:
        yield runner
    finally:
        _active = previous
