"""Performance infrastructure: parallel sweep execution and caching.

The figure sweeps in :mod:`repro.bench` are embarrassingly parallel —
every (variant, size, GPU-count) point is an independent simulation —
and fully deterministic, so they can be fanned out over worker
processes and their results cached on disk keyed by a content hash of
the configuration and the simulator sources.  See docs/performance.md.
"""

from repro.perf.cache import ResultCache, point_identity, source_digest
from repro.perf.manifest import ManifestDiff, SweepManifest
from repro.perf.sweep import SweepRunner, active_runner, use_runner

__all__ = [
    "ManifestDiff",
    "ResultCache",
    "SweepManifest",
    "SweepRunner",
    "active_runner",
    "point_identity",
    "source_digest",
    "use_runner",
]
