"""Chaos-matrix CLI.

Usage::

    python -m repro.faults                         # default matrix
    python -m repro.faults --variants cpufree --profiles transient,lost_signal
    python -m repro.faults --jobs 4 --report-out report.json
    python -m repro.faults --profiles transient@7 --metrics-out metrics.json

Runs every requested stencil variant under every requested fault
profile, judges each cell against the profile's expectation
(numerical convergence to the serial reference, or a watchdog
diagnostic for unrecoverable-hang profiles), prints the matrix, and
exits 1 if any cell misbehaves.

``--report-out`` writes the byte-stable JSON report (identical bytes
for the same matrix at any ``--jobs``); ``--metrics-out`` writes the
merged metrics-registry dump, fault counters included.
"""

from __future__ import annotations

import argparse
import sys

from repro.cliutil import CliError, cli_entry, parse_shape
from repro.faults.harness import DEFAULT_MATRIX_PROFILES, render_report, run_matrix
from repro.obs.metrics import MetricsRegistry, use_metrics

_STATUS_MARK = {"converged": "ok", "diagnostic": "diag", "recovered": "recov",
                "diverged": "DIVERGED", "failed": "FAILED"}


def _csv(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Chaos harness: variant x fault-profile matrix.",
    )
    parser.add_argument("--variants", type=_csv, default=None,
                        help="comma-separated stencil variants (default: all)")
    parser.add_argument("--profiles", type=_csv,
                        default=list(DEFAULT_MATRIX_PROFILES),
                        help="comma-separated fault profiles, optionally seeded "
                             "(e.g. transient,lost_signal@7; default: "
                             + ",".join(DEFAULT_MATRIX_PROFILES) + ")")
    parser.add_argument("--gpus", type=int, default=2,
                        help="number of GPUs/PEs (default: 2)")
    parser.add_argument("--shape", type=parse_shape, default=(34, 66),
                        help="global domain shape (default: 34x66)")
    parser.add_argument("--iterations", type=int, default=6,
                        help="stencil iterations per cell (default: 6)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the matrix (default: 1)")
    parser.add_argument("--report-out", metavar="PATH",
                        help="write the byte-stable JSON report to PATH")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write the merged metrics dump (JSON) to PATH")
    args = parser.parse_args(argv)

    import repro.stencil.variants  # noqa: F401 - populate the registry
    from repro.stencil.base import variant_names

    variants = args.variants if args.variants is not None else variant_names()
    unknown = sorted(set(variants) - set(variant_names()))
    if unknown:
        raise CliError(f"unknown variant(s) {unknown}; choose from {variant_names()}")

    registry = MetricsRegistry()
    with use_metrics(registry):
        report = run_matrix(
            variants,
            args.profiles,
            shape=args.shape,
            num_gpus=args.gpus,
            iterations=args.iterations,
            jobs=args.jobs,
        )

    width = max(len(v) for v in variants)
    print(f"chaos matrix: {'x'.join(map(str, args.shape))} on {args.gpus} GPU(s), "
          f"{args.iterations} iteration(s), jobs={args.jobs}")
    for variant in variants:
        rows = [c for c in report["cells"] if c["variant"] == variant]
        marks = []
        for cell in rows:
            mark = _STATUS_MARK.get(cell["status"], cell["status"])
            if not cell["ok"]:
                mark = f"!{mark}"
            marks.append(f"{cell['profile']}={mark}")
        print(f"  {variant:<{width}}  " + "  ".join(marks))
    for failure in report["failures"]:
        print(f"FAIL {failure}", file=sys.stderr)
    print(f"{len(report['cells'])} cell(s), {len(report['failures'])} failure(s)")

    if args.report_out:
        with open(args.report_out, "w") as fh:
            fh.write(render_report(report))
        print(f"(report written to {args.report_out})", file=sys.stderr)
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(registry.to_json())
        print(f"(metrics dump written to {args.metrics_out})", file=sys.stderr)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(cli_entry(main))
