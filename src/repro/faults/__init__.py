"""Deterministic fault injection and self-healing communication.

The fault plane has three pieces:

- **Plans** (:mod:`repro.faults.plan`): immutable, seeded descriptions
  of link degradation, straggler PEs, and transient delivery failures.
- **Injection** (:mod:`repro.faults.inject`): a per-run
  :class:`FaultInjector` that the topology, cost accounting, and
  NVSHMEM transport consult behind ``None``-safe hooks — disabled, the
  simulator executes byte-identical to a build without this package.
- **Profiles & harness** (:mod:`repro.faults.profiles`,
  :mod:`repro.faults.harness`): named fault scenarios and the
  ``python -m repro.faults`` chaos matrix that asserts every stencil
  variant converges (or fails with the right diagnostic) under them.

See ``docs/robustness.md`` for the taxonomy and knobs.
"""

from repro.faults.inject import (
    RETRY_EDGES,
    DeliveryError,
    FaultEvent,
    FaultInjector,
    SignalWaitTimeout,
)
from repro.faults.plan import (
    DeliveryFault,
    FaultPlan,
    LinkFault,
    PECrashFault,
    StragglerFault,
)
from repro.faults.profiles import (
    DEFAULT_SEED,
    PROFILES,
    UnknownProfileError,
    active_fault_profile,
    get_injector,
    get_plan,
    parse_profile,
    use_fault_profile,
)

__all__ = [
    "DEFAULT_SEED",
    "PROFILES",
    "RETRY_EDGES",
    "DeliveryError",
    "DeliveryFault",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "PECrashFault",
    "SignalWaitTimeout",
    "StragglerFault",
    "UnknownProfileError",
    "active_fault_profile",
    "get_injector",
    "get_plan",
    "parse_profile",
    "use_fault_profile",
]
