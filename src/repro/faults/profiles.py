"""Named fault profiles and the ambient profile context.

A *profile spec* is a profile name with an optional seed suffix:
``"transient"``, ``"transient@7"``.  :func:`get_plan` resolves it to a
:class:`~repro.faults.plan.FaultPlan`; :func:`get_injector` builds the
per-run :class:`~repro.faults.inject.FaultInjector` (``None`` for the
inert ``"none"`` profile, so fault-free runs execute the unmodified
code path).

The ambient profile installed with :func:`use_fault_profile` is
consulted by ``StencilConfig`` *at construction time* in the main
process — the resolved spec travels to sweep workers inside the pickled
config, never as module state, which is what keeps ``--jobs 1`` and
``--jobs 4`` byte-identical.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro.cliutil import CliError
from repro.faults.inject import FaultInjector
from repro.faults.plan import (
    DeliveryFault,
    FaultPlan,
    LinkFault,
    PECrashFault,
    StragglerFault,
)

__all__ = [
    "PROFILES",
    "UnknownProfileError",
    "active_fault_profile",
    "get_injector",
    "get_plan",
    "parse_profile",
    "use_fault_profile",
]


class UnknownProfileError(CliError, ValueError):
    """Unknown fault-profile name.

    Subclasses :class:`~repro.cliutil.CliError` so every CLI entry
    point reports it as ``error: ...`` on stderr with exit 2 (naming
    the available profiles), and :class:`ValueError` for backward
    compatibility with callers that catch that.
    """

DEFAULT_SEED = 2024


def _none(seed: int) -> FaultPlan:
    return FaultPlan(name="none", seed=seed)


def _transient(seed: int) -> FaultPlan:
    """Default chaos profile: latency jitter everywhere plus transient
    delivery drops/delays — everything recoverable, runs must converge."""
    return FaultPlan(
        name="transient",
        seed=seed,
        links=(LinkFault(jitter_us=2.0),),
        deliveries=(DeliveryFault(drop_prob=0.12, delay_prob=0.15, delay_us=4.0),),
        retry_limit=12,
        retry_backoff_us=1.5,
        retry_backoff_factor=2.0,
        watchdog_budget_us=1_000_000.0,
    )


def _degraded(seed: int) -> FaultPlan:
    """Deterministic slow node: one straggler PE and degraded links."""
    return FaultPlan(
        name="degraded",
        seed=seed,
        links=(LinkFault(bandwidth_scale=0.3, extra_latency_us=1.5),),
        stragglers=(StragglerFault(pe=0, compute_scale=1.75),),
        watchdog_budget_us=1_000_000.0,
    )


def _link_down(seed: int) -> FaultPlan:
    """Permanent failure of the 0<->1 NVLink: transfers must take the
    host-staged degraded path; runs still converge."""
    return FaultPlan(
        name="link_down",
        seed=seed,
        links=(LinkFault(src=0, dst=1, down=True),),
        watchdog_budget_us=1_000_000.0,
    )


def _lost_signal(seed: int) -> FaultPlan:
    """Silent (unretried) delivery loss on the whole 0->1 route — the
    CPU-Free hang scenario: PE1 never sees PE0's halo signal and blocks
    forever in ``signal_wait_until``.  (A *single* loss self-heals in
    the iteration-numbered SET protocol: the next iteration's signal
    satisfies the stuck wait, so the hang needs the route to keep
    eating messages.)  The watchdog must convert the hang into a
    diagnostic, so the harness expects ``"diagnostic"``."""
    return FaultPlan(
        name="lost_signal",
        seed=seed,
        deliveries=(DeliveryFault(src=0, dst=1, drop_prob=1.0, silent=True),),
        watchdog_budget_us=2_000.0,
        expect="diagnostic",
    )


def _crash(seed: int) -> FaultPlan:
    """Fail-stop loss of PE1 at a seeded mid-run instant, with NO
    checkpointing: the run cannot recover.  Survivors block on the dead
    PE's signals/joins; the watchdog (or the drain diagnostics) must
    convert that into an error naming the crashed PE — never a hang,
    never silently wrong data."""
    return FaultPlan(
        name="crash",
        seed=seed,
        crashes=(PECrashFault(pe=1, window_us=(10.0, 28.0)),),
        watchdog_budget_us=2_000.0,
        expect="diagnostic",
    )


def _crash_recover(seed: int) -> FaultPlan:
    """The same seeded PE1 crash, but run under the recovery runner:
    checkpoints every 2 iterations, heartbeat-based detection, rollback
    to the last checkpoint, restart, and resume.  The recovered run
    must produce byte-identical final fields vs the fault-free
    reference — only simulated time grows."""
    return FaultPlan(
        name="crash_recover",
        seed=seed,
        crashes=(PECrashFault(pe=1, window_us=(10.0, 28.0)),),
        watchdog_budget_us=1_000_000.0,
        checkpoint_every=2,
        restart_cost_us=200.0,
        heartbeat_us=5.0,
        heartbeat_misses=2,
        expect="recover",
    )


_BUILDERS: dict[str, Callable[[int], FaultPlan]] = {
    "none": _none,
    "transient": _transient,
    "degraded": _degraded,
    "link_down": _link_down,
    "lost_signal": _lost_signal,
    "crash": _crash,
    "crash_recover": _crash_recover,
}

#: all known profile names, in presentation order
PROFILES = ("none", "transient", "degraded", "link_down", "lost_signal",
            "crash", "crash_recover")


def parse_profile(spec: str) -> tuple[str, int]:
    """Split ``"name"`` / ``"name@seed"`` into ``(name, seed)``."""
    name, sep, seed_text = spec.partition("@")
    if not sep:
        return name, DEFAULT_SEED
    try:
        return name, int(seed_text)
    except ValueError:
        raise ValueError(f"bad fault-profile seed in {spec!r} (want name@integer)") from None


def get_plan(spec: str) -> FaultPlan:
    """Resolve a profile spec to its :class:`FaultPlan`."""
    name, seed = parse_profile(spec)
    builder = _BUILDERS.get(name)
    if builder is None:
        known = ", ".join(PROFILES)
        raise UnknownProfileError(
            f"unknown fault profile {name!r} (available: {known})")
    return builder(seed)


def get_injector(spec: str | None) -> FaultInjector | None:
    """Injector for a profile spec, or ``None`` when the spec is absent
    or resolves to an inert plan (fault-free runs stay untouched)."""
    if spec is None:
        return None
    plan = get_plan(spec)
    if plan.inert:
        return None
    return FaultInjector(plan)


#: module-level ambient profile spec (None = no faults)
_active: str | None = None


def active_fault_profile() -> str | None:
    """The profile spec new stencil configs should adopt, if any."""
    return _active


@contextmanager
def use_fault_profile(spec: str | None) -> Iterator[str | None]:
    """Install ``spec`` as the ambient fault profile for the block.

    Validates eagerly so CLI typos fail before any sweep starts.
    """
    if spec is not None:
        get_plan(spec)
    global _active
    previous = _active
    _active = spec
    try:
        yield spec
    finally:
        _active = previous
